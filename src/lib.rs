//! # order-dependencies
//!
//! Umbrella crate re-exporting the workspace members that together reproduce
//! *Fundamentals of Order Dependencies* (Szlichta, Godfrey, Gryz — VLDB 2012):
//!
//! * [`core`](od_core) — attribute lists, lexicographic operators, OD/FD
//!   statements, instance checking,
//! * [`infer`](od_infer) — the axiom system OD1–OD6, proofs, implication
//!   decision and witness construction,
//! * [`engine`](od_engine) — a small relational execution engine,
//! * [`optimizer`](od_optimizer) — OD-driven query rewrites,
//! * [`discovery`](od_discovery) — OD/FD discovery from data,
//! * [`setbased`](od_setbased) — the partition-powered set-based discovery
//!   subsystem (stripped partitions, canonical statements, level-wise lattice),
//! * [`workload`](od_workload) — the date-warehouse and tax workloads used by
//!   the experiments.
//!
//! See the `examples/` directory for guided tours (`tax_brackets`,
//! `date_warehouse`, `query_rewrites`, `armstrong_witness`,
//! `discovery_setbased`) and `DESIGN.md` for the crate map, the set-based
//! discovery architecture, and the experiment index.

pub use od_core as core;
pub use od_discovery as discovery;
pub use od_engine as engine;
pub use od_infer as infer;
pub use od_optimizer as optimizer;
pub use od_setbased as setbased;
pub use od_workload as workload;
