//! # order-dependencies
//!
//! Umbrella crate re-exporting the workspace members that together reproduce
//! *Fundamentals of Order Dependencies* (Szlichta, Godfrey, Gryz — VLDB 2012):
//!
//! * [`core`] — attribute lists, lexicographic operators, OD/FD statements,
//!   instance checking with split/swap violation evidence,
//! * [`infer`] — the axiom system OD1–OD6, proofs, implication decision and
//!   witness construction,
//! * [`engine`] — a small relational execution engine,
//! * [`optimizer`] — OD-driven query rewrites and the constraint registry,
//! * [`discovery`] — OD/FD discovery from data (exact and `g3`-approximate)
//!   and the live [`Monitor`](discovery::Monitor) keeping discovered ODs
//!   current on a changing table,
//! * [`setbased`] — the partition-powered set-based subsystem (stripped
//!   partitions, canonical statements, level-wise lattice, and the
//!   [`stream`](setbased::stream) module's delta-maintained verdict ledgers),
//! * [`server`] — the service layer: a dependency-free TCP server hosting
//!   relations and monitors as named resources behind a length-prefixed
//!   binary protocol, with pub/sub verdict-flip notifications, and the
//!   blocking [`Client`](server::Client),
//! * [`workload`] — the date-warehouse and tax workloads used by the
//!   experiments.
//!
//! See the `examples/` directory for guided tours (`tax_brackets`,
//! `date_warehouse`, `query_rewrites`, `armstrong_witness`,
//! `discovery_setbased`, `streaming_monitor`) and `DESIGN.md` for the crate
//! map, the set-based discovery architecture, the incremental-maintenance
//! design, and the experiment index.

pub use od_core as core;
pub use od_discovery as discovery;
pub use od_engine as engine;
pub use od_infer as infer;
pub use od_optimizer as optimizer;
pub use od_server as server;
pub use od_setbased as setbased;
pub use od_workload as workload;
