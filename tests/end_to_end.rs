//! Cross-crate integration tests: the paper's pipeline from declared ODs to
//! query plans, and the agreement between the semantic and axiomatic layers.

use od_core::check::od_holds;
use od_core::{AttrId, OrderDependency};
use od_engine::{execute, Aggregate, Catalog};
use od_infer::witness::{completeness_gaps, enumerate_ods, witness_table};
use od_infer::{Decider, OdSet, Outcome, Prover};
use od_optimizer::{aggregation_query, reduce_order_by_od, same_results, OdRegistry};
use od_workload::{daily_sales_table, dates, generate_date_dim};

/// The Example 1 story end to end: declared OD → Reduce-2 → sort-free plan →
/// identical results.
#[test]
fn example_1_end_to_end() {
    let table = daily_sales_table(2001, 200, 3, 5);
    let schema = table.schema().clone();
    let mut catalog = Catalog::new();
    catalog.add_table(table);
    let mut registry = OdRegistry::new();
    registry.declare_od(&schema, &["month"], &["quarter"]);

    let order = od_optimizer::names_to_list(&schema, &["year", "quarter", "month"]);
    let reduced = reduce_order_by_od(&order, "daily_sales", &mut registry);
    assert_eq!(
        reduced,
        od_optimizer::names_to_list(&schema, &["year", "month"])
    );

    let rev = schema.attr_by_name("revenue").unwrap();
    let q = aggregation_query(
        &catalog,
        "daily_sales",
        &["year", "quarter", "month"],
        &["year", "quarter", "month"],
        vec![Aggregate::Sum(rev)],
    );
    let baseline = q.plan_baseline(&mut registry);
    let optimized = q.plan_optimized(&catalog, &mut registry);
    assert_eq!(optimized.sort_count(), 0);
    let (b1, m1) = execute(&baseline, &catalog);
    let (b2, m2) = execute(&optimized, &catalog);
    assert!(same_results(&b1, &b2));
    assert!(m1.sorts_performed > m2.sorts_performed);
}

/// The declared constraints of the date dimension are consistent with the data
/// the generator produces, and the inference engine's consequences hold on it.
#[test]
fn date_dimension_constraints_agree_with_generated_data() {
    let rel = generate_date_dim(2000, 2 * 365, 1_000);
    let schema = rel.schema().clone();
    let m = dates::figure_2_odset(&schema);
    assert!(m.satisfied_by(&rel));

    // A few inferred consequences (not literally in ℳ) hold on the data too.
    let d = Decider::new(&m);
    let goals = [
        OrderDependency::new(
            od_optimizer::names_to_list(&schema, &["d_date_sk"]),
            od_optimizer::names_to_list(&schema, &["d_year", "d_month"]),
        ),
        OrderDependency::new(
            od_optimizer::names_to_list(&schema, &["d_year", "d_month"]),
            od_optimizer::names_to_list(&schema, &["d_year", "d_quarter"]),
        ),
    ];
    for goal in goals {
        assert!(d.implies(&goal), "{goal} should be implied");
        assert!(od_holds(&rel, &goal), "{goal} should hold on the calendar");
    }
}

/// Agreement of the three layers on a small universe: axiomatic prover (sound),
/// exact decider (sound + complete), and the witness table (a model of ℳ that
/// falsifies exactly the non-implied ODs).
#[test]
fn prover_decider_and_witness_table_agree() {
    let mut schema = od_core::Schema::new("t");
    for i in 0..3 {
        schema.add_attr(format!("a{i}"));
    }
    let universe: Vec<AttrId> = schema.attr_ids().collect();
    let m = OdSet::from_ods([
        OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)]),
        OrderDependency::new(vec![AttrId(1), AttrId(0)], vec![AttrId(2)]),
    ]);
    let prover = Prover::new(&m);
    let decider = Decider::new(&m);
    let table = witness_table(&m, &schema);
    let (sound_gaps, complete_gaps) = completeness_gaps(&m, &table, &universe, 2);
    assert!(sound_gaps.is_empty() && complete_gaps.is_empty());

    for od in enumerate_ods(&universe, 2) {
        let implied = decider.implies(&od);
        assert_eq!(
            implied,
            od_holds(&table, &od),
            "witness table disagrees on {od}"
        );
        match prover.prove(&od) {
            Outcome::Proved(proof) => {
                assert!(implied, "prover proved a non-consequence: {od}");
                proof.verify(&m.ods()).unwrap();
            }
            Outcome::ImpliedSemantically => assert!(implied),
            Outcome::NotImplied(cx) => {
                assert!(!implied);
                let rel = cx.to_relation(&schema);
                assert!(m.satisfied_by(&rel));
                assert!(!od_holds(&rel, &od));
            }
        }
    }
}

/// Discovery round-trip: ODs discovered from generated data are implied by the
/// constraints the generator was built to satisfy, and vice versa for small
/// statements.
#[test]
fn discovery_is_consistent_with_declared_constraints() {
    let rel = od_workload::tax::generate_taxes(400, 9);
    let schema = rel.schema().clone();
    let declared = od_workload::tax::tax_odset(&schema);
    let found = od_discovery::discover_ods(
        &rel,
        od_discovery::DiscoveryConfig {
            max_lhs: 1,
            max_rhs: 1,
            prune_implied: false,
            ..Default::default()
        },
    );
    // Everything declared (and within the discovery bounds) is found.
    let income = schema.attr_by_name("income").unwrap();
    let bracket = schema.attr_by_name("bracket").unwrap();
    assert!(found
        .ods
        .contains(&OrderDependency::new(vec![income], vec![bracket])));
    // Everything found genuinely holds (discovery never fabricates ODs).
    for od in &found.ods {
        assert!(od_holds(&rel, od));
    }
    // And the declared set is a subset of what holds on the instance.
    assert!(declared.satisfied_by(&rel));
}
