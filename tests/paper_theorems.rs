//! Property-based integration tests tying the axiom system to instance-level
//! semantics: every derived-theorem conclusion and every prover answer must be
//! consistent with satisfaction on arbitrary relations.

use od_core::check::od_holds;
use od_core::{AttrId, AttrList, OrderDependency, Relation, Schema, Value};
use od_infer::{theorems, Decider, OdSet, ProofBuilder};
use proptest::prelude::*;

fn relation_strategy(cols: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0i64..3, cols), 0..max_rows).prop_map(move |rows| {
        let mut schema = Schema::new("prop");
        for i in 0..cols {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect()),
        )
        .unwrap()
    })
}

fn list_strategy(cols: usize, max_len: usize) -> impl Strategy<Value = AttrList> {
    prop::collection::vec(0u32..cols as u32, 0..=max_len)
        .prop_map(|ids| ids.into_iter().map(AttrId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Semantic soundness of the decider: if ℳ ⊨ goal (per the decider) and a
    /// relation satisfies ℳ, then the relation satisfies the goal.
    #[test]
    fn decider_answers_are_sound_on_instances(
        rel in relation_strategy(4, 7),
        lhs1 in list_strategy(4, 2), rhs1 in list_strategy(4, 2),
        lhs2 in list_strategy(4, 2), rhs2 in list_strategy(4, 2),
        glhs in list_strategy(4, 2), grhs in list_strategy(4, 2),
    ) {
        let m = OdSet::from_ods([
            OrderDependency::new(lhs1, rhs1),
            OrderDependency::new(lhs2, rhs2),
        ]);
        let goal = OrderDependency::new(glhs, grhs);
        if Decider::new(&m).implies(&goal) && m.satisfied_by(&rel) {
            prop_assert!(od_holds(&rel, &goal), "decider-implied OD violated on a model of ℳ");
        }
    }

    /// The derived theorems (Union / Eliminate / Left-Eliminate) produce
    /// conclusions that hold on every instance satisfying their premises, and
    /// their generated proofs verify.
    #[test]
    fn derived_theorems_are_sound_on_instances(
        rel in relation_strategy(4, 7),
        x in list_strategy(4, 2),
        y in list_strategy(4, 2),
        z in list_strategy(4, 1),
    ) {
        let premise = OrderDependency::new(x.clone(), y.clone());
        if od_holds(&rel, &premise) {
            // Union with itself: X ↦ YY.
            let mut b = ProofBuilder::new();
            let p = b.given(premise.clone());
            let u = theorems::union(&mut b, p, p);
            let union_concl = b.step(u).clone();
            // Eliminate: ZXYW ↔ ZXW with W = [].
            let (elim_fwd, elim_bwd) = theorems::eliminate(&mut b, p, &z, &AttrList::empty());
            let elim_f = b.step(elim_fwd).clone();
            let elim_b = b.step(elim_bwd).clone();
            // Left Eliminate: ZYXW ↔ ZXW with W = [].
            let (le_fwd, le_bwd) = theorems::left_eliminate(&mut b, p, &z, &AttrList::empty());
            let le_f = b.step(le_fwd).clone();
            let le_b = b.step(le_bwd).clone();
            let proof = b.finish();
            proof.verify(std::slice::from_ref(&premise)).unwrap();
            for concl in [union_concl, elim_f, elim_b, le_f, le_b] {
                prop_assert!(od_holds(&rel, &concl), "{concl} violated although {premise} holds");
            }
        }
    }

    /// Order-by reduction via the registry never changes query answers: the
    /// reduced list orders the original on every instance satisfying the
    /// declared OD set.
    #[test]
    fn reduce2_is_sound_on_instances(
        rel in relation_strategy(4, 7),
        declared_lhs in list_strategy(4, 1),
        declared_rhs in list_strategy(4, 1),
        order in list_strategy(4, 3),
    ) {
        let declared = OrderDependency::new(declared_lhs, declared_rhs);
        if !od_holds(&rel, &declared) {
            return Ok(());
        }
        let mut registry = od_optimizer::OdRegistry::new();
        registry.add_od("t", declared);
        let reduced = od_optimizer::reduce_order_by_od(&order, "t", &mut registry);
        // Sorting by the reduced list must yield a stream ordered by the original.
        let mut rows = rel.tuples().to_vec();
        rows.sort_by(|a, b| od_core::lex_cmp(a, b, &reduced));
        for w in rows.windows(2) {
            prop_assert!(od_core::lex_le(&w[0], &w[1], &order));
        }
    }
}
