//! Example 5 of the paper: tax brackets and payable amounts are monotone in
//! income, the resulting ODs compose by Union, and OD discovery plus monotone
//! derived-column analysis find them automatically.
//!
//! Run with `cargo run --example tax_brackets`.

use od_core::check::od_holds;
use od_core::OrderDependency;
use od_discovery::{discover_ods, monotonicity, DerivedColumn, DiscoveryConfig, Monotonicity};
use od_engine::Expr;
use od_infer::Decider;
use od_workload::tax;

fn main() {
    let rel = tax::generate_taxes(2_000, 11);
    let schema = rel.schema().clone();
    let income = schema.attr_by_name("income").unwrap();
    let bracket = schema.attr_by_name("bracket").unwrap();
    let payable = schema.attr_by_name("payable").unwrap();

    // The declared ODs and the composite consequence.
    let m = tax::tax_odset(&schema);
    let goal = OrderDependency::new(vec![income], vec![bracket, payable]);
    println!(
        "income ↦ [bracket, payable]: implied = {}, holds on {} rows = {}",
        Decider::new(&m).implies(&goal),
        rel.len(),
        od_holds(&rel, &goal)
    );

    // Discover ODs from the data alone.
    let found = discover_ods(&rel, DiscoveryConfig::default());
    println!(
        "\ndiscovered {} minimal ODs ({} candidates, {} validated):",
        found.ods.len(),
        found.candidates,
        found.validated
    );
    for od in &found.ods {
        println!("  {}", od.display(&schema));
    }

    // Monotone derived columns (the generated-column technique of Section 2.2).
    let g = DerivedColumn {
        name: "effective_rate_scaled".into(),
        id: od_core::AttrId(schema.arity() as u32),
        expr: Expr::Add(
            Box::new(Expr::Div(
                Box::new(Expr::col(income)),
                Box::new(Expr::lit(100i64)),
            )),
            Box::new(Expr::Sub(
                Box::new(Expr::col(income)),
                Box::new(Expr::lit(3i64)),
            )),
        ),
    };
    assert_eq!(monotonicity(&g.expr, income), Monotonicity::Increasing);
    println!(
        "\ngenerated column '{}' is monotone in income → the OD [income] ↦ [{}] is declared automatically",
        g.name, g.name
    );
}
