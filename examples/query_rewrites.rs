//! The TPC-DS-style date-surrogate rewrite (Section 2.3 / reference [18]):
//! replace the fact–dimension join by a surrogate-key range predicate and prune
//! fact partitions.
//!
//! Run with `cargo run --release --example query_rewrites`.

use od_engine::execute;
use od_workload::{build_warehouse, date_query_suite, WarehouseConfig};

fn main() {
    let mut wh = build_warehouse(WarehouseConfig {
        fact_rows: 80_000,
        ..WarehouseConfig::default()
    });
    let suite = date_query_suite(&wh);
    println!(
        "{:<6} {:>12} {:>12} {:>8} {:>16}",
        "query", "baseline", "rewritten", "gain%", "partitions"
    );

    let mut gains = Vec::new();
    for sq in suite.iter().filter(|q| q.core) {
        let baseline = sq.query.plan_baseline();
        let rewritten = sq
            .query
            .plan_optimized(&wh.catalog, &mut wh.registry)
            .expect("rewrite applies");
        let t = std::time::Instant::now();
        let (b1, _) = execute(&baseline, &wh.catalog);
        let t1 = t.elapsed();
        let t = std::time::Instant::now();
        let (b2, m2) = execute(&rewritten, &wh.catalog);
        let t2 = t.elapsed();
        assert_eq!(b1.rows, b2.rows, "the rewrite must not change results");
        let gain = 100.0 * (t1.as_secs_f64() - t2.as_secs_f64()) / t1.as_secs_f64();
        gains.push(gain);
        println!(
            "{:<6} {:>12?} {:>12?} {:>7.1}% {:>7}/{:<8}",
            sq.name, t1, t2, gain, m2.partitions_scanned, m2.partitions_total
        );
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    println!("\naverage gain over the 13-query core set: {avg:.1}%  (the paper's DB2 prototype reported 48%)");
    println!(
        "\nexample rewritten plan:\n{}",
        suite[0]
            .query
            .plan_optimized(&wh.catalog, &mut wh.registry)
            .unwrap()
            .explain()
    );
}
