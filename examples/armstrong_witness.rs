//! The completeness construction of Section 4: build the `split(ℳ)` append
//! `swap(ℳ)` witness table for a small ℳ and audit it against the exact
//! implication decider.
//!
//! Run with `cargo run --example armstrong_witness`.

use od_core::{AttrId, OrderDependency, Schema};
use od_infer::witness::{completeness_gaps, witness_table};
use od_infer::OdSet;

fn main() {
    let mut schema = Schema::new("witness");
    for name in ["A", "B", "C", "D"] {
        schema.add_attr(name);
    }
    let universe: Vec<AttrId> = schema.attr_ids().collect();

    // ℳ = { A ↦ B, B ↦ C } plus a constant D.
    let mut m = OdSet::new();
    m.add_od(OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)]));
    m.add_od(OrderDependency::new(vec![AttrId(1)], vec![AttrId(2)]));
    m.add_constant(AttrId(3));

    let table = witness_table(&m, &schema);
    println!("ℳ = {}", m.display(&schema));
    println!("witness table ({} rows):\n{}", table.len(), table.render());
    println!("satisfies ℳ: {}", m.satisfied_by(&table));

    let (soundness_gaps, completeness_gaps) = completeness_gaps(&m, &table, &universe, 2);
    println!(
        "audited against the decider over all ODs with sides of length ≤ 2: {} soundness gaps, {} completeness gaps",
        soundness_gaps.len(),
        completeness_gaps.len()
    );
    assert!(soundness_gaps.is_empty() && completeness_gaps.is_empty());
    println!("→ the table is an Armstrong-style model of ℳ: it satisfies ℳ and falsifies everything outside ℳ⁺.");
}
