//! The Example 1 scenario end to end: a denormalized sales table, the
//! `month ↦ quarter` OD, and the ORDER BY / GROUP BY rewrite that removes the
//! sort from the query plan.
//!
//! Run with `cargo run --release --example date_warehouse`.

use od_engine::{execute, Aggregate, Catalog};
use od_optimizer::{aggregation_query, same_results, OdRegistry};
use od_workload::daily_sales_table;

fn main() {
    let table = daily_sales_table(2000, 3 * 365, 8, 7);
    let schema = table.schema().clone();
    let mut catalog = Catalog::new();
    catalog.add_table(table);

    // Declare the OD the optimizer needs (an OD check constraint).
    let mut registry = OdRegistry::new();
    registry.declare_od(&schema, &["month"], &["quarter"]);

    // SELECT year, quarter, month, SUM(revenue), COUNT(*) FROM daily_sales
    // GROUP BY year, quarter, month ORDER BY year, quarter, month;
    let revenue = schema.attr_by_name("revenue").unwrap();
    let q = aggregation_query(
        &catalog,
        "daily_sales",
        &["year", "quarter", "month"],
        &["year", "quarter", "month"],
        vec![Aggregate::Sum(revenue), Aggregate::CountStar],
    );

    let baseline = q.plan_baseline(&mut registry);
    let optimized = q.plan_optimized(&catalog, &mut registry);
    println!("baseline plan:\n{}", baseline.explain());
    println!("OD-rewritten plan:\n{}", optimized.explain());

    let t = std::time::Instant::now();
    let (b1, m1) = execute(&baseline, &catalog);
    let t1 = t.elapsed();
    let t = std::time::Instant::now();
    let (b2, m2) = execute(&optimized, &catalog);
    let t2 = t.elapsed();

    println!(
        "baseline : {t1:?}  sorts={} ({} rows sorted)",
        m1.sorts_performed, m1.sort_rows
    );
    println!("OD plan  : {t2:?}  sorts={}", m2.sorts_performed);
    println!(
        "identical results: {} ({} groups)",
        same_results(&b1, &b2),
        b1.len()
    );
    println!("first rows:");
    for row in b1.rows.iter().take(4) {
        println!("  {row:?}");
    }
}
