//! Live OD monitoring on a mutating date warehouse: discover once, then keep
//! the verdicts current under tuple churn instead of re-profiling.
//!
//! The pipeline: width-2 set-based discovery profiles `date_dim`, the
//! zero-error ODs are watched by an `od_discovery::Monitor` (delta-maintained
//! partitions + verdict ledgers from `od-setbased::stream`), and the
//! optimizer's registry is kept in sync — a corrupted batch flips ODs to
//! rejected and *retracts* their rewrite licenses, deleting the offending
//! tuples flips them back and reinstalls.
//!
//! Run with `cargo run --release --example streaming_monitor`.

use od_core::Value;
use od_discovery::{discover_ods, DiscoveryConfig, Monitor};
use od_optimizer::{names_to_list, OdRegistry};
use od_setbased::stream::DeltaBatch;
use od_workload::generate_date_dim;
use std::time::Instant;

fn main() {
    // --- Profile a snapshot -------------------------------------------------
    let rel = generate_date_dim(1998, 2_000, 2_450_000);
    let schema = rel.schema().clone();
    let discovery = discover_ods(&rel, DiscoveryConfig::default());
    println!(
        "date_dim: {} rows × {} attributes — {} exact ODs discovered\n",
        rel.len(),
        schema.arity(),
        discovery.ods.len()
    );

    // --- Watch the install set live ----------------------------------------
    let mut monitor = Monitor::watch_install_set(&rel, &discovery, 0.0);
    let mut registry = OdRegistry::new();
    let (installed, _) = monitor.sync_registry(&mut registry, schema.name());
    println!("monitoring {installed} ODs; all installed into the registry");
    let provided = names_to_list(&schema, &["d_date_sk"]);
    let required = names_to_list(&schema, &["d_year"]);
    assert!(registry.order_satisfies(schema.name(), &provided, &required));
    println!("ORDER BY d_year is satisfied by a d_date_sk scan: licensed\n");

    // --- Benign churn: fresh future days stream in --------------------------
    let fresh = generate_date_dim(2030, 400, 9_450_000);
    let mut batch = DeltaBatch::new();
    for i in 0..200 {
        batch = batch.delete(i as u32).insert(fresh.tuple(i).clone());
    }
    let start = Instant::now();
    let report = monitor.apply(&batch).expect("clean churn");
    println!(
        "applied 200 deletes + 200 inserts in {:?} ({} classes touched); {} flips",
        start.elapsed(),
        report.touched_classes,
        report.flips().count()
    );

    // --- Dirty batch: out-of-order years arrive ------------------------------
    let year_idx = schema.attr_by_name("d_year").unwrap().index();
    let mut dirty = DeltaBatch::new();
    for i in 200..208 {
        let mut row = fresh.tuple(i).clone();
        row[year_idx] = Value::Int(1900 - i as i64); // sk increases, year crashes
        dirty = dirty.insert(row);
    }
    let start = Instant::now();
    let report = monitor.apply(&dirty).expect("dirty batch");
    println!(
        "\ndirty batch applied in {:?}; live error scores of flipped ODs:",
        start.elapsed()
    );
    for status in report.flips() {
        println!(
            "  REJECT  g3 = {:.4}  remove {:>3}  {}",
            status.g3,
            status.removal_count,
            status.od.display(&schema)
        );
    }
    let (_, retracted) = monitor.sync_registry(&mut registry, schema.name());
    println!(
        "{retracted} rewrite licenses retracted; d_date_sk → d_year now licensed: {}",
        registry.order_satisfies(schema.name(), &provided, &required)
    );

    // --- Repair: delete the offenders, verdicts flip back --------------------
    let mut repair = DeltaBatch::new();
    for &id in &report.inserted {
        repair = repair.delete(id);
    }
    let report = monitor.apply(&repair).expect("repair batch");
    let healed = report.flips().count();
    let (reinstalled, _) = monitor.sync_registry(&mut registry, schema.name());
    println!(
        "\nafter deleting the {} offenders: {healed} ODs flipped back, \
         {reinstalled} licenses reinstalled",
        repair.deletes.len()
    );
    assert!(registry.order_satisfies(schema.name(), &provided, &required));

    // --- Compact: reclaim the dead ids the churn left behind -----------------
    // Tuple ids are never reused, so deleted rows linger until a compaction
    // rebuilds the monitor from its alive rows (verdicts survive untouched).
    let before = monitor.stream().total_rows();
    let compacted = monitor.compact();
    println!(
        "\ncompacted: {} dead ids reclaimed of {before} ({} KiB freed, {} B of that \
         from code tables and live partitions, rebuilt in {:?})",
        compacted.dead_ids_reclaimed,
        compacted.bytes_freed / 1024,
        compacted.rebuild_bytes_freed,
        compacted.rebuild
    );
    assert!(registry.order_satisfies(schema.name(), &provided, &required));

    let stats = monitor.stream().stats;
    println!(
        "\nmonitor stats: {} deltas, {} rows in, {} rows out, {} classes touched, \
         {} ledger patches, {} rows patched, {} splice events, {} LIS passes, \
         {} compactions",
        stats.deltas_applied,
        stats.rows_inserted,
        stats.rows_deleted,
        stats.classes_touched,
        stats.classes_recomputed,
        stats.rows_patched,
        stats.splice_events,
        stats.lis_invocations,
        stats.compactions
    );
}
