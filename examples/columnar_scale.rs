//! The columnar core in one sitting: build the E14 scale table (zipfian +
//! sorted-with-noise, seeded), inspect the dictionary encoding the relation
//! carries from construction, refine partitions on the shared code columns,
//! and run width-2 discovery — the workflow `reproduce -- e14` measures at a
//! million rows, here at an example-friendly size.
//!
//! Run with `cargo run --release --example columnar_scale`.

use od_setbased::{discover_statements, LatticeConfig, RefineScratch, StrippedPartition};
use od_workload::{scale_relation, SCALE_1M};
use std::time::Instant;

fn main() {
    let cfg = SCALE_1M.with_rows(100_000);
    let start = Instant::now();
    let rel = scale_relation(&cfg);
    let built = start.elapsed();
    let schema = rel.schema().clone();
    println!(
        "scale table: {} rows × {} attributes (seed {:#x}) built in {built:?}",
        rel.len(),
        schema.arity(),
        cfg.seed
    );

    // The struct-of-arrays encoding is a by-product of construction: one
    // sorted dictionary + one dense u32 code column per attribute.
    let enc = rel.encoding();
    println!("\nper-attribute dictionaries (codes preserve value order):");
    for (i, attr) in schema.attr_ids().enumerate() {
        println!(
            "  {:<12} {:>7} distinct values",
            schema.attr_name(attr),
            enc.dict(i).len()
        );
    }
    println!(
        "encoding footprint: ~{} KiB (dictionaries + code columns)",
        rel.approx_heap_bytes() / 1024
    );

    // Partition refinement runs on the code columns through a reused radix
    // scratch buffer — no Value comparisons on the hot path.
    let mut scratch = RefineScratch::default();
    let start = Instant::now();
    let by_day = StrippedPartition::by_codes_with(enc.codes(1), &mut scratch);
    let refined = by_day.refine_by_with(enc.codes(3), &mut scratch);
    println!(
        "\nΠ_{{ts_day}} has {} classes; refined by zipf_band: {} classes \
         ({} radix passes, {:?})",
        by_day.num_classes(),
        refined.num_classes(),
        scratch.radix_passes(),
        start.elapsed()
    );

    // Width-2 discovery over the same shared encoding.
    let start = Instant::now();
    let profile = discover_statements(
        &rel,
        &LatticeConfig {
            max_context: 2,
            ..Default::default()
        },
    );
    println!(
        "\nwidth-2 discovery in {:?}: {} minimal statements, e.g.:",
        start.elapsed(),
        profile.minimal_statements().len()
    );
    for stmt in profile.minimal_statements().iter().take(6) {
        println!("  {stmt}");
    }
}
