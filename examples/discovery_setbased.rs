//! Set-based OD discovery on the date warehouse: the FASTOD-style engine of
//! `od-setbased` against the naive sort-per-candidate baseline.
//!
//! The naive engine re-sorts the relation for every surviving candidate; the
//! set-based engine decomposes each candidate into canonical constancy /
//! compatibility statements, validates each distinct statement once with
//! stripped partitions, and shares the verdicts across candidates.
//!
//! Run with `cargo run --release --example discovery_setbased`.

use od_discovery::{discover_ods, discover_ods_naive, DiscoveryConfig};
use od_setbased::{discover_statements, LatticeConfig};
use od_workload::generate_date_dim;
use std::time::Instant;

fn main() {
    let rel = generate_date_dim(1998, 1_000, 2_450_000);
    let schema = rel.schema().clone();
    println!(
        "date_dim: {} rows × {} attributes\n",
        rel.len(),
        schema.arity()
    );

    // Width-2 discovery with both engines.
    let config = DiscoveryConfig::default();
    let start = Instant::now();
    let naive = discover_ods_naive(&rel, config);
    let naive_time = start.elapsed();
    let start = Instant::now();
    let set_based = discover_ods(&rel, config);
    let set_based_time = start.elapsed();

    println!(
        "naive engine:     {} candidates, {} validated against data, {:?}",
        naive.candidates, naive.validated, naive_time
    );
    println!(
        "set-based engine: {} candidates, {} touched data ({} statement scans), {:?}",
        set_based.candidates, set_based.validated, set_based.statement_validations, set_based_time
    );
    assert_eq!(naive.ods, set_based.ods, "the engines must agree");

    println!("\n{} minimal ODs discovered, e.g.:", set_based.ods.len());
    for od in set_based.ods.iter().take(8) {
        println!("  {}", od.display(&schema));
    }

    // The canonical profile behind the engine: every minimal set-based
    // statement up to context size 2.
    let profile = discover_statements(&rel, &LatticeConfig::default());
    println!(
        "\ncanonical lattice profile: {} candidates → {} validated, {} inherited, {} decider-pruned",
        profile.stats.candidates,
        profile.stats.validated,
        profile.stats.inherited,
        profile.stats.decider_pruned
    );
    println!(
        "{} minimal statements, e.g.:",
        profile.minimal_statements().len()
    );
    for stmt in profile.minimal_statements().iter().take(8) {
        println!("  {}", stmt.display(&schema));
    }
}
