//! Set-based OD discovery on the date warehouse: the FASTOD-style engine of
//! `od-setbased` against the naive sort-per-candidate baseline.
//!
//! The naive engine re-sorts the relation for every surviving candidate; the
//! set-based engine decomposes each candidate into canonical constancy /
//! compatibility statements, validates each distinct statement once with
//! stripped partitions, and shares the verdicts across candidates.
//!
//! The second half corrupts a slice of the data and reruns discovery with a
//! `g3` error threshold (approximate ODs), then installs the exactly-holding
//! results into the optimizer's registry so sort elimination benefits from
//! profiling without any manual constraint declarations.
//!
//! Run with `cargo run --release --example discovery_setbased`.

use od_core::Value;
use od_discovery::{discover_ods, discover_ods_naive, DiscoveryConfig};
use od_optimizer::{names_to_list, OdRegistry};
use od_setbased::{discover_statements, LatticeConfig};
use od_workload::generate_date_dim;
use std::time::Instant;

fn main() {
    let rel = generate_date_dim(1998, 1_000, 2_450_000);
    let schema = rel.schema().clone();
    println!(
        "date_dim: {} rows × {} attributes\n",
        rel.len(),
        schema.arity()
    );

    // Width-2 discovery with both engines.
    let config = DiscoveryConfig::default();
    let start = Instant::now();
    let naive = discover_ods_naive(&rel, config);
    let naive_time = start.elapsed();
    let start = Instant::now();
    let set_based = discover_ods(&rel, config);
    let set_based_time = start.elapsed();

    println!(
        "naive engine:     {} candidates, {} validated against data, {:?}",
        naive.candidates, naive.validated, naive_time
    );
    println!(
        "set-based engine: {} candidates, {} touched data ({} statement scans), {:?}",
        set_based.candidates, set_based.validated, set_based.statement_validations, set_based_time
    );
    assert_eq!(naive.ods, set_based.ods, "the engines must agree");

    println!("\n{} minimal ODs discovered, e.g.:", set_based.ods.len());
    for od in set_based.ods.iter().take(8) {
        println!("  {}", od.display(&schema));
    }

    // The node-based lattice profile behind the engine: every minimal
    // set-based statement up to context size 4 (the default since bitset
    // candidate sets made width 4 interactive), with the stats' own
    // `Display`/`summary()` rendering the per-level breakdown.
    let profile = discover_statements(&rel, &LatticeConfig::default());
    println!(
        "\nbitset lattice profile (width {}):",
        profile.max_context()
    );
    print!("{}", profile.summary());
    println!(
        "{} minimal statements, e.g.:",
        profile.minimal_statements().len()
    );
    for stmt in profile.minimal_statements().iter().take(8) {
        println!("  {}", stmt.display(&schema));
    }

    // --- Approximate discovery on dirty data -------------------------------
    // Corrupt ~1% of the d_year column: exact discovery drops every OD that
    // leans on it, a 2% g3 threshold keeps them, each tagged with its error.
    let mut dirty = rel.clone();
    let year_idx = schema.attr_by_name("d_year").unwrap().index();
    for (i, row) in dirty.tuples_mut().iter_mut().enumerate() {
        if i % 101 == 7 {
            row[year_idx] = Value::Int(-1);
        }
    }
    let exact_on_dirty = discover_ods(&dirty, config);
    let approx = discover_ods(
        &dirty,
        DiscoveryConfig {
            epsilon: 0.02,
            ..config
        },
    );
    println!(
        "\nafter corrupting ~1% of d_year: {} exact ODs, {} ODs at ε = 2%",
        exact_on_dirty.ods.len(),
        approx.ods.len()
    );
    for (od, err) in approx
        .ods
        .iter()
        .zip(&approx.errors)
        .filter(|(_, e)| **e > 0.0)
        .take(5)
    {
        println!("  g3 = {:.4}  {}", err, od.display(&schema));
    }

    // --- Feeding the optimizer --------------------------------------------
    // Discovered exact ODs become registry constraints: the date hierarchy
    // licenses ORDER BY elimination with zero manual declarations.
    let mut registry = OdRegistry::new();
    let installed = set_based.install_into(&mut registry, schema.name());
    let provided = names_to_list(&schema, &["d_date_sk"]);
    let required = names_to_list(&schema, &["d_year"]);
    println!(
        "\ninstalled {installed} discovered ODs into the registry; \
         stream ordered by d_date_sk satisfies ORDER BY d_year: {}",
        registry.order_satisfies(schema.name(), &provided, &required)
    );
    assert!(registry.order_satisfies(schema.name(), &provided, &required));
}
