//! Quickstart: declare order dependencies, check them on data, and reason about
//! their consequences.
//!
//! This tour uses the sort-based checker of `od-core` directly because the
//! table is four rows; at scale, discovery and validation go through the
//! partition-backed **set-based engine** (`od-setbased`), which is the
//! default behind `od_discovery::DiscoveryConfig` — see
//! `examples/discovery_setbased.rs` for that path, and
//! `examples/streaming_monitor.rs` for keeping verdicts live under changing
//! data.  Checks return violation evidence (split/swap witnesses, `g3`
//! removal counts), not bare booleans.
//!
//! Run with `cargo run --example quickstart`.

use od_core::{check, OrderDependency, Relation, Schema, Value};
use od_infer::{OdSet, Outcome, Prover};

fn main() {
    // A tiny taxes table (Example 5 of the paper).
    let mut schema = Schema::new("taxes");
    let income = schema.add_attr("income");
    let bracket = schema.add_attr("bracket");
    let payable = schema.add_attr("payable");
    let rel = Relation::from_rows(
        schema.clone(),
        [
            (9_000, 1, 900),
            (32_000, 2, 4_800),
            (75_000, 3, 15_000),
            (120_000, 4, 30_000),
        ]
        .iter()
        .map(|&(i, b, p)| vec![Value::Int(i), Value::Int(b), Value::Int(p)]),
    )
    .unwrap();

    // 1. Check ODs directly on the instance (split/swap witnesses on failure).
    let od1 = OrderDependency::new(vec![income], vec![bracket]);
    let od2 = OrderDependency::new(vec![income], vec![payable]);
    let bad = OrderDependency::new(vec![bracket], vec![payable, income]);
    println!(
        "{}  holds: {}",
        od1.display(&schema),
        check::od_holds(&rel, &od1)
    );
    println!(
        "{}  holds: {}",
        od2.display(&schema),
        check::od_holds(&rel, &od2)
    );
    println!(
        "{}  -> {:?}",
        bad.display(&schema),
        check::check_od(&rel, &bad)
    );

    // 2. Reason about consequences: ℳ ⊨ income ↦ [bracket, payable] (Theorem 2).
    let m = OdSet::from_ods([od1, od2]);
    let goal = OrderDependency::new(vec![income], vec![bracket, payable]);
    let prover = Prover::new(&m);
    match prover.prove(&goal) {
        Outcome::Proved(proof) => {
            println!("\n{} is implied; axiom-level proof:", goal.display(&schema));
            print!("{proof}");
            proof
                .verify(&m.ods())
                .expect("the proof replays under the six axioms");
        }
        other => println!("\nunexpected outcome: {other:?}"),
    }

    // 3. Non-consequences come with a two-tuple counterexample.
    let not_implied = OrderDependency::new(vec![bracket], vec![income]);
    if let Outcome::NotImplied(pattern) = prover.prove(&not_implied) {
        println!(
            "\n{} is NOT implied; counterexample relation:\n{}",
            not_implied.display(&schema),
            pattern.to_relation(&schema).render()
        );
    }
}
