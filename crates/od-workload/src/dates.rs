//! The calendar / date-dimension workload.
//!
//! Generates a TPC-DS-style `date_dim` table — one row per calendar day with a
//! surrogate key and the natural hierarchy columns of **Figure 2** — together
//! with the order dependencies that hold on it.  The dimension also carries a
//! `month_name` text column to reproduce the Section 1 pitfall: month *names*
//! order lexicographically ("April" before "January"), so the FD
//! `month → month_name` does **not** yield an OD, whereas the numeric hierarchy
//! columns do.

use od_core::{days_from_date, AttrList, DataType, OrderDependency, Relation, Schema, Value};
use od_engine::Table;
use od_infer::OdSet;
use od_optimizer::{names_to_list, OdRegistry};

/// English month names (1-based indexing into the array with `month - 1`).
pub const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Column layout of the generated date dimension.
pub fn date_dim_schema() -> Schema {
    let mut s = Schema::new("date_dim");
    s.add_typed_attr("d_date_sk", DataType::Integer);
    s.add_typed_attr("d_date", DataType::Date);
    s.add_typed_attr("d_year", DataType::Integer);
    s.add_typed_attr("d_quarter", DataType::Integer);
    s.add_typed_attr("d_month", DataType::Integer);
    s.add_typed_attr("d_week_of_year", DataType::Integer);
    s.add_typed_attr("d_day_of_month", DataType::Integer);
    s.add_typed_attr("d_day_of_year", DataType::Integer);
    s.add_typed_attr("d_month_name", DataType::Text);
    s
}

/// Generate `n_days` consecutive calendar days starting at `start_year`-01-01.
///
/// Surrogate keys are assigned in calendar order starting at `sk_base`, which is
/// exactly the property (`[d_date_sk] ↔ [d_date]`) the surrogate-key rewrite of
/// Section 2.3 relies on.
pub fn generate_date_dim(start_year: i32, n_days: usize, sk_base: i64) -> Relation {
    let schema = date_dim_schema();
    let start = days_from_date(start_year, 1, 1);
    let mut rows = Vec::with_capacity(n_days);
    for i in 0..n_days as i32 {
        let days = start + i;
        let (y, m, d) = od_core::date_from_days(days);
        let doy = days - days_from_date(y, 1, 1) + 1;
        let week = (doy - 1) / 7 + 1;
        let quarter = (m as i64 - 1) / 3 + 1;
        rows.push(vec![
            Value::Int(sk_base + i as i64),
            Value::Date(days),
            Value::Int(y as i64),
            Value::Int(quarter),
            Value::Int(m as i64),
            Value::Int(week as i64),
            Value::Int(d as i64),
            Value::Int(doy as i64),
            Value::Str(MONTH_NAMES[(m - 1) as usize].to_string()),
        ]);
    }
    Relation::from_rows(schema, rows).expect("generator arity is fixed")
}

/// The **Figure 2** hierarchy as order dependencies over the date dimension:
/// every edge of the path diagram, with `d_date` on the left-hand side.
pub fn figure_2_ods(schema: &Schema) -> Vec<(String, OrderDependency)> {
    let l = |names: &[&str]| names_to_list(schema, names);
    let od = |name: &str, lhs: &[&str], rhs: &[&str]| {
        (name.to_string(), OrderDependency::new(l(lhs), l(rhs)))
    };
    vec![
        od("date ↦ [year]", &["d_date"], &["d_year"]),
        od(
            "date ↦ [year, quarter]",
            &["d_date"],
            &["d_year", "d_quarter"],
        ),
        od("date ↦ [year, month]", &["d_date"], &["d_year", "d_month"]),
        od(
            "date ↦ [year, quarter, month]",
            &["d_date"],
            &["d_year", "d_quarter", "d_month"],
        ),
        od(
            "date ↦ [year, week]",
            &["d_date"],
            &["d_year", "d_week_of_year"],
        ),
        od(
            "date ↦ [year, day_of_year]",
            &["d_date"],
            &["d_year", "d_day_of_year"],
        ),
        od(
            "date ↦ [year, month, day_of_month]",
            &["d_date"],
            &["d_year", "d_month", "d_day_of_month"],
        ),
        od("month ↦ quarter", &["d_month"], &["d_quarter"]),
        od(
            "[year, day_of_year] ↦ [year, month]",
            &["d_year", "d_day_of_year"],
            &["d_year", "d_month"],
        ),
        od(
            "day_of_year ↦ week",
            &["d_day_of_year"],
            &["d_week_of_year"],
        ),
        od("sk ↦ date", &["d_date_sk"], &["d_date"]),
        od("date ↦ sk", &["d_date"], &["d_date_sk"]),
        od(
            "sk ↦ [year, quarter, month, day_of_month]",
            &["d_date_sk"],
            &["d_year", "d_quarter", "d_month", "d_day_of_month"],
        ),
    ]
}

/// The Figure 2 ODs as an [`OdSet`] (for the inference experiments).
pub fn figure_2_odset(schema: &Schema) -> OdSet {
    OdSet::from_ods(figure_2_ods(schema).into_iter().map(|(_, od)| od))
}

/// ODs that do **not** hold on the date dimension (negative controls used by the
/// experiments), most prominently the month-name trap of Section 1.
pub fn negative_control_ods(schema: &Schema) -> Vec<(String, OrderDependency)> {
    let l = |names: &[&str]| names_to_list(schema, names);
    vec![
        (
            "month ↦ month_name (the Section 1 trap)".to_string(),
            OrderDependency::new(l(&["d_month"]), l(&["d_month_name"])),
        ),
        (
            "quarter ↦ month".to_string(),
            OrderDependency::new(l(&["d_quarter"]), l(&["d_month"])),
        ),
        (
            "week ↦ month".to_string(),
            OrderDependency::new(l(&["d_week_of_year"]), l(&["d_month"])),
        ),
        (
            "year ↦ date".to_string(),
            OrderDependency::new(l(&["d_year"]), l(&["d_date"])),
        ),
    ]
}

/// Build the date dimension as an engine [`Table`] with an index on the
/// surrogate key and one on `(d_year, d_month, d_day_of_month)`.
pub fn date_dim_table(start_year: i32, n_days: usize, sk_base: i64) -> Table {
    let rel = generate_date_dim(start_year, n_days, sk_base);
    let schema = rel.schema().clone();
    let mut t = Table::new(rel);
    t.add_index("ix_date_sk", names_to_list(&schema, &["d_date_sk"]));
    t.add_index(
        "ix_year_month_day",
        names_to_list(&schema, &["d_year", "d_month", "d_day_of_month"]),
    );
    t
}

/// Register the date dimension's declared constraints (the ones the paper's
/// reference \[18\], the DB2 prototype, relies on) into an [`OdRegistry`].
pub fn register_date_constraints(registry: &mut OdRegistry, schema: &Schema) {
    registry.declare_equivalence(schema, &["d_date_sk"], &["d_date"]);
    registry.declare_od(schema, &["d_month"], &["d_quarter"]);
    registry.declare_od(schema, &["d_date"], &["d_year", "d_quarter", "d_month"]);
    registry.declare_od(
        schema,
        &["d_date"],
        &["d_year", "d_month", "d_day_of_month"],
    );
    registry.declare_fd(schema, &["d_month"], &["d_month_name"]);
}

/// The example-1 style *denormalized* daily sales table: one row per (day, store)
/// with the date hierarchy columns inlined, an index on `(year, month, day)`, and
/// a pseudo-random revenue measure.
pub fn daily_sales_table(start_year: i32, n_days: usize, stores: usize, seed: u64) -> Table {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut schema = Schema::new("daily_sales");
    let year = schema.add_typed_attr("year", DataType::Integer);
    let _q = schema.add_typed_attr("quarter", DataType::Integer);
    let month = schema.add_typed_attr("month", DataType::Integer);
    let day = schema.add_typed_attr("day", DataType::Integer);
    let _store = schema.add_typed_attr("store", DataType::Integer);
    let _rev = schema.add_typed_attr("revenue", DataType::Integer);

    let mut rng = StdRng::seed_from_u64(seed);
    let start = days_from_date(start_year, 1, 1);
    let mut rows = Vec::with_capacity(n_days * stores);
    for i in 0..n_days as i32 {
        let (y, m, d) = od_core::date_from_days(start + i);
        for s in 0..stores as i64 {
            rows.push(vec![
                Value::Int(y as i64),
                Value::Int((m as i64 - 1) / 3 + 1),
                Value::Int(m as i64),
                Value::Int(d as i64),
                Value::Int(s),
                Value::Int(rng.gen_range(100..10_000)),
            ]);
        }
    }
    // The base table arrives in no useful order (shuffle deterministically).
    use rand::seq::SliceRandom;
    rows.shuffle(&mut rng);
    let rel = Relation::from_rows(schema, rows).expect("generator arity is fixed");
    let mut t = Table::new(rel);
    t.add_index("ix_year_month_day", AttrList::new([year, month, day]));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::check::od_holds;
    use od_infer::Decider;

    #[test]
    fn figure_2_ods_hold_on_generated_data() {
        let rel = generate_date_dim(1998, 3 * 365, 2_450_000);
        for (name, od) in figure_2_ods(rel.schema()) {
            assert!(
                od_holds(&rel, &od),
                "{name} must hold on the generated calendar"
            );
        }
    }

    #[test]
    fn negative_controls_fail_on_generated_data() {
        let rel = generate_date_dim(1998, 3 * 365, 2_450_000);
        for (name, od) in negative_control_ods(rel.schema()) {
            assert!(!od_holds(&rel, &od), "{name} must NOT hold");
        }
    }

    #[test]
    fn example_4_composite_od_follows_and_holds() {
        // From date ↦ [year, month] and year ↦ quarter-ish knowledge, Theorem 10
        // (Path) gives date ↦ [year, quarter, month]; both the inference engine and
        // the data agree.
        let rel = generate_date_dim(2000, 800, 1);
        let schema = rel.schema();
        let m = figure_2_odset(schema);
        let d = Decider::new(&m);
        let goal = OrderDependency::new(
            names_to_list(schema, &["d_date"]),
            names_to_list(schema, &["d_year", "d_quarter", "d_month"]),
        );
        assert!(d.implies(&goal));
        assert!(od_holds(&rel, &goal));
    }

    #[test]
    fn date_dim_table_indexes_are_ordered() {
        let t = date_dim_table(2001, 400, 10_000);
        for ix in &t.indexes {
            assert!(
                t.index_order_is_sorted(ix),
                "index {} must be sorted",
                ix.name
            );
        }
        assert_eq!(t.row_count(), 400);
    }

    #[test]
    fn daily_sales_satisfies_the_hierarchy_ods() {
        let t = daily_sales_table(2002, 120, 3, 7);
        let schema = t.schema().clone();
        let rel = &t.relation;
        let month_quarter = OrderDependency::new(
            names_to_list(&schema, &["month"]),
            names_to_list(&schema, &["quarter"]),
        );
        assert!(od_holds(rel, &month_quarter));
        assert_eq!(t.row_count(), 360);
    }
}
