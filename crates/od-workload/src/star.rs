//! The star-schema sales workload standing in for TPC-DS in the Section 2.3
//! experiment: a `store_sales`-like fact table keyed by the date surrogate, plus
//! the 18-query date-predicate suite (13 "core" queries matching the conditions
//! of the original prototype, 5 "extended" ones added by the follow-up work the
//! paper mentions).

use crate::dates::{date_dim_table, register_date_constraints};
use od_core::{days_from_date, DataType, Relation, Schema, Value};
use od_engine::{Catalog, Table};
use od_optimizer::{DateRangeStarQuery, OdRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sizing knobs for the generated warehouse.
#[derive(Debug, Clone, Copy)]
pub struct WarehouseConfig {
    /// First calendar year covered by the date dimension.
    pub start_year: i32,
    /// Number of days in the date dimension.
    pub n_days: usize,
    /// Number of fact rows.
    pub fact_rows: usize,
    /// Number of distinct items.
    pub items: usize,
    /// Number of range partitions of the fact table (by date surrogate key).
    pub fact_partitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WarehouseConfig {
    fn default() -> Self {
        WarehouseConfig {
            start_year: 1998,
            n_days: 5 * 365,
            fact_rows: 200_000,
            items: 200,
            fact_partitions: 24,
            seed: 42,
        }
    }
}

/// Base value of the date surrogate keys (mirrors TPC-DS's 2415022-style keys).
pub const SK_BASE: i64 = 2_450_000;

/// The generated warehouse: catalog (fact + dimension), declared constraints,
/// and the column handles queries need.
#[derive(Debug)]
pub struct Warehouse {
    /// Catalog holding `store_sales` and `date_dim`.
    pub catalog: Catalog,
    /// Declared OD/FD constraints.
    pub registry: OdRegistry,
    /// Sizing used to generate the data.
    pub config: WarehouseConfig,
}

/// Column layout of the fact table.
pub fn fact_schema() -> Schema {
    let mut s = Schema::new("store_sales");
    s.add_typed_attr("ss_sold_date_sk", DataType::Integer);
    s.add_typed_attr("ss_item_sk", DataType::Integer);
    s.add_typed_attr("ss_store_sk", DataType::Integer);
    s.add_typed_attr("ss_quantity", DataType::Integer);
    s.add_typed_attr("ss_net_paid", DataType::Integer);
    s
}

/// Generate the warehouse.
pub fn build_warehouse(config: WarehouseConfig) -> Warehouse {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Dimension.
    let dim = date_dim_table(config.start_year, config.n_days, SK_BASE);
    let dim_schema = dim.schema().clone();

    // Fact table: sold_date_sk drawn over the dimension's key range with a mild
    // skew towards recent days (as in retail data).
    let schema = fact_schema();
    let mut rows = Vec::with_capacity(config.fact_rows);
    for _ in 0..config.fact_rows {
        let day = if rng.gen_bool(0.3) {
            rng.gen_range((config.n_days as i64 * 3 / 4)..config.n_days as i64)
        } else {
            rng.gen_range(0..config.n_days as i64)
        };
        rows.push(vec![
            Value::Int(SK_BASE + day),
            Value::Int(rng.gen_range(0..config.items as i64)),
            Value::Int(rng.gen_range(0..10)),
            Value::Int(rng.gen_range(1..100)),
            Value::Int(rng.gen_range(1..50_000)),
        ]);
    }
    let fact_rel = Relation::from_rows(schema.clone(), rows).expect("generator arity");
    let mut fact = Table::new(fact_rel);
    let sk = schema
        .attr_by_name("ss_sold_date_sk")
        .expect("column exists");
    fact.partition_by(sk, config.fact_partitions);

    let mut catalog = Catalog::new();
    catalog.add_table(dim);
    catalog.add_table(fact);

    let mut registry = OdRegistry::new();
    register_date_constraints(&mut registry, &dim_schema);

    Warehouse {
        catalog,
        registry,
        config,
    }
}

/// One query of the date-predicate suite.
#[derive(Debug, Clone)]
pub struct SuiteQuery {
    /// Query label (e.g. `"Q03"`).
    pub name: String,
    /// Whether the query belongs to the 13-query core set that matched the
    /// original prototype's rewrite conditions (the remaining 5 form the
    /// extended set the paper mentions as later work).
    pub core: bool,
    /// The star query itself.
    pub query: DateRangeStarQuery,
}

/// Build the 18-query suite over a generated warehouse: every query filters the
/// date dimension by a natural-date range (of varying position and width),
/// groups the fact table by item and sums quantities — the pattern the paper
/// reports 13 (later 18) TPC-DS queries share.
pub fn date_query_suite(wh: &Warehouse) -> Vec<SuiteQuery> {
    let dim_schema = wh
        .catalog
        .table("date_dim")
        .expect("dimension exists")
        .schema()
        .clone();
    let fact = wh
        .catalog
        .table("store_sales")
        .expect("fact exists")
        .schema()
        .clone();
    let col = |s: &Schema, n: &str| s.attr_by_name(n).expect("column exists");

    let start = days_from_date(wh.config.start_year, 1, 1);
    let total_days = wh.config.n_days as i32;
    let mut out = Vec::new();
    for i in 0..18 {
        // Vary both the position and the width of the date window.
        let width_days = match i % 3 {
            0 => 30,
            1 => 91,
            _ => 365,
        }
        .min(total_days - 1);
        let offset = (i * 97) % (total_days - width_days).max(1);
        let lo = start + offset;
        let hi = lo + width_days;
        out.push(SuiteQuery {
            name: format!("Q{:02}", i + 1),
            core: i < 13,
            query: DateRangeStarQuery {
                fact: "store_sales".into(),
                fact_sk: col(&fact, "ss_sold_date_sk"),
                dim: "date_dim".into(),
                dim_sk: col(&dim_schema, "d_date_sk"),
                dim_date: col(&dim_schema, "d_date"),
                date_lo: Value::Date(lo),
                date_hi: Value::Date(hi),
                group_col: col(&fact, "ss_item_sk"),
                measure: col(&fact, "ss_net_paid"),
            },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_engine::execute;
    use od_optimizer::same_results;

    fn small() -> Warehouse {
        build_warehouse(WarehouseConfig {
            start_year: 2000,
            n_days: 200,
            fact_rows: 3_000,
            items: 20,
            fact_partitions: 8,
            seed: 1,
        })
    }

    #[test]
    fn warehouse_has_expected_shapes() {
        let wh = small();
        assert_eq!(wh.catalog.table("date_dim").unwrap().row_count(), 200);
        assert_eq!(wh.catalog.table("store_sales").unwrap().row_count(), 3_000);
        assert!(wh
            .catalog
            .table("store_sales")
            .unwrap()
            .partitioning
            .is_some());
    }

    #[test]
    fn suite_has_13_core_and_5_extended_queries() {
        let wh = small();
        let suite = date_query_suite(&wh);
        assert_eq!(suite.len(), 18);
        assert_eq!(suite.iter().filter(|q| q.core).count(), 13);
    }

    #[test]
    fn every_suite_query_rewrites_and_preserves_results() {
        let mut wh = small();
        let suite = date_query_suite(&wh);
        for sq in &suite {
            let baseline = sq.query.plan_baseline();
            let optimized = sq
                .query
                .plan_optimized(&wh.catalog, &mut wh.registry)
                .unwrap_or_else(|| panic!("{} must match the rewrite conditions", sq.name));
            let (b1, m1) = execute(&baseline, &wh.catalog);
            let (b2, m2) = execute(&optimized, &wh.catalog);
            assert!(
                same_results(&b1, &b2),
                "{}: results must be identical",
                sq.name
            );
            assert!(
                m2.rows_scanned <= m1.rows_scanned,
                "{}: the rewrite must not scan more rows",
                sq.name
            );
            assert!(
                m2.join_input_rows == 0,
                "{}: the rewrite removes the join",
                sq.name
            );
        }
    }
}
