//! Million-row scale workload for the columnar-core experiments (E14).
//!
//! The paper's motivating workloads (dates, star, tax) are shaped for
//! *semantic* coverage; this module is shaped for *throughput* measurement:
//! seeded, deterministic relations of 1M–10M rows mixing the column profiles
//! that exercise the columnar encoder and radix partition refinement
//! differently:
//!
//! * `ts` — a strictly increasing event timestamp (row `i` draws from
//!   `[8i, 8i + 8)`), i.e. a key column: dense codes `0..n`, every partition
//!   strips to nothing;
//! * `ts_day` — `ts / 8192`, a coarsening of `ts`, so the exact OD
//!   `[ts] ↦ [ts_day]` holds by construction (the scale analogue of the
//!   date-hierarchy ODs of Figure 2);
//! * `zipf_key` — zipfian-distributed keys (a few values own most rows:
//!   large partition classes, the radix bucketing's worst/best case);
//! * `zipf_band` — `zipf_key / 32`, so `[zipf_key] ↦ [zipf_band]` holds;
//! * `noisy_rank` — `i` plus bounded noise: *sorted with noise*, making the
//!   empty-context compatibility `{} : ts ~ noisy_rank` an approximate OD
//!   (small g3) — the ε > 0 material;
//! * `payload` — near-unique uniform noise (wide dictionaries, tiny classes).
//!
//! Generation is `O(rows)` per column off one [`StdRng`] stream, so the same
//! `(rows, seed)` always produces the identical relation, bit for bit —
//! BENCH_e14's deterministic section depends on it.

use od_core::{DataType, OrderDependency, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of one scale relation: row count, RNG seed, and the zipfian profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Number of rows to generate.
    pub rows: usize,
    /// Seed of the single RNG stream all columns draw from.
    pub seed: u64,
    /// Distinct `zipf_key` values (codomain `0..zipf_domain`).
    pub zipf_domain: usize,
    /// Zipf exponent `s` (weight of value `k` is `1 / (k + 1)^s`).
    pub zipf_exponent: f64,
    /// Half-width of the `noisy_rank` perturbation: row `i` carries
    /// `i + u` with `u` uniform in `[-noise, noise]`.
    pub noise: i64,
}

/// The 1M-row preset used by experiment E14.
pub const SCALE_1M: ScaleConfig = ScaleConfig {
    rows: 1_000_000,
    seed: 0x0D5C_A1E1,
    zipf_domain: 1024,
    zipf_exponent: 1.1,
    noise: 32,
};

/// The 10M-row preset (same distributions, one order of magnitude up).
pub const SCALE_10M: ScaleConfig = ScaleConfig {
    rows: 10_000_000,
    ..SCALE_1M
};

impl ScaleConfig {
    /// The preset scaled down to `rows` rows (CI smoke runs and unit tests
    /// shrink E14 this way rather than inventing a different distribution).
    pub fn with_rows(self, rows: usize) -> Self {
        ScaleConfig { rows, ..self }
    }
}

/// Column layout of the scale table (all integer-typed: the homogeneous
/// fast path of the columnar encoder).
pub fn scale_schema() -> Schema {
    let mut s = Schema::new("scale");
    s.add_typed_attr("ts", DataType::Integer);
    s.add_typed_attr("ts_day", DataType::Integer);
    s.add_typed_attr("zipf_key", DataType::Integer);
    s.add_typed_attr("zipf_band", DataType::Integer);
    s.add_typed_attr("noisy_rank", DataType::Integer);
    s.add_typed_attr("payload", DataType::Integer);
    s
}

/// Cumulative zipf weights over `0..domain`: `cum[k]` is the total weight of
/// values `0..=k`, so a uniform draw in `[0, cum[domain − 1])` inverts to a
/// zipf-distributed value by binary search.
fn zipf_cumulative(domain: usize, exponent: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(domain);
    let mut total = 0.0f64;
    for k in 0..domain {
        total += 1.0 / ((k + 1) as f64).powf(exponent);
        cum.push(total);
    }
    cum
}

/// Generate the raw rows of a scale relation (benchmarks call this first so
/// [`Relation::from_rows`] — including its columnar encode — can be timed
/// separately from data generation).
pub fn generate_scale_rows(cfg: &ScaleConfig) -> Vec<Vec<Value>> {
    generate_scale_rows_sampled(cfg, 1)
}

/// Every `keep_every`-th row of the table [`generate_scale_rows`] would
/// produce for `cfg`.  The single RNG stream is drawn in full — every row's
/// values are generated — so the kept rows are bit-identical to their
/// counterparts in the unsampled relation; only `ceil(rows / keep_every)`
/// tuples are materialized.  CI uses this to walk the 10M-row preset's whole
/// generation stream without holding (or refining) ten million tuples.
pub fn generate_scale_rows_sampled(cfg: &ScaleConfig, keep_every: usize) -> Vec<Vec<Value>> {
    assert!(keep_every >= 1, "keep_every must be at least 1");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cum = zipf_cumulative(cfg.zipf_domain.max(1), cfg.zipf_exponent);
    let total = *cum.last().expect("domain >= 1");
    let mut rows = Vec::with_capacity(cfg.rows.div_ceil(keep_every));
    for i in 0..cfg.rows as i64 {
        // Strictly increasing: rows draw from disjoint 8-wide windows.
        let ts = i * 8 + rng.gen_range(0i64..8);
        let ts_day = ts / 8192;
        // 53 uniform bits → [0, 1) → invert the cumulative weights.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let zipf_key = cum.partition_point(|&c| c <= unit * total) as i64;
        let zipf_band = zipf_key / 32;
        let noisy_rank = i + rng.gen_range(-cfg.noise..=cfg.noise);
        let payload = rng.gen_range(0i64..1_000_000);
        if (i as usize).is_multiple_of(keep_every) {
            rows.push(vec![
                Value::Int(ts),
                Value::Int(ts_day),
                Value::Int(zipf_key),
                Value::Int(zipf_band),
                Value::Int(noisy_rank),
                Value::Int(payload),
            ]);
        }
    }
    rows
}

/// Generate a scale relation (rows plus the eagerly built columnar encoding).
pub fn scale_relation(cfg: &ScaleConfig) -> Relation {
    Relation::from_rows(scale_schema(), generate_scale_rows(cfg)).expect("schema-conformant rows")
}

/// [`scale_relation`] over [`generate_scale_rows_sampled`]: the full RNG
/// stream, every `keep_every`-th tuple materialized and encoded.
pub fn scale_relation_sampled(cfg: &ScaleConfig, keep_every: usize) -> Relation {
    Relation::from_rows(scale_schema(), generate_scale_rows_sampled(cfg, keep_every))
        .expect("schema-conformant rows")
}

/// The exact ODs the scale table satisfies by construction:
/// `[ts] ↦ [ts_day]` and `[zipf_key] ↦ [zipf_band]`.
pub fn scale_ods(schema: &Schema) -> Vec<OrderDependency> {
    let attr = |name: &str| {
        schema
            .attr_by_name(name)
            .unwrap_or_else(|_| panic!("scale schema has {name}"))
    };
    vec![
        OrderDependency::new(vec![attr("ts")], vec![attr("ts_day")]),
        OrderDependency::new(vec![attr("zipf_key")], vec![attr("zipf_band")]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::check::od_holds;
    use od_core::AttrId;

    fn tiny() -> ScaleConfig {
        SCALE_1M.with_rows(5_000)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_scale_rows(&tiny());
        let b = generate_scale_rows(&tiny());
        assert_eq!(a, b);
        let other = generate_scale_rows(&ScaleConfig { seed: 7, ..tiny() });
        assert_ne!(a, other, "a different seed must change the data");
    }

    #[test]
    fn sampling_keeps_the_exact_rows_of_the_full_stream() {
        let cfg = tiny();
        let full = generate_scale_rows(&cfg);
        assert_eq!(generate_scale_rows_sampled(&cfg, 1), full);
        let sampled = generate_scale_rows_sampled(&cfg, 7);
        assert_eq!(sampled.len(), cfg.rows.div_ceil(7));
        for (k, row) in sampled.iter().enumerate() {
            assert_eq!(
                row,
                &full[k * 7],
                "sampled row {k} must be full row {}",
                k * 7
            );
        }
        // The constructed ODs survive sampling: they hold row-wise.
        let rel = scale_relation_sampled(&cfg, 7);
        for od in scale_ods(rel.schema()) {
            assert!(od_holds(&rel, &od));
        }
    }

    #[test]
    fn constructed_ods_hold_and_ts_is_a_key() {
        let rel = scale_relation(&tiny());
        for od in scale_ods(rel.schema()) {
            assert!(od_holds(&rel, &od), "{od} must hold by construction");
        }
        // ts strictly increasing ⇒ dense codes are exactly 0..n.
        let ts_codes = rel.rank_column(AttrId(0));
        assert!(ts_codes.iter().enumerate().all(|(i, &c)| c == i as u32));
    }

    #[test]
    fn zipf_skews_and_noise_perturbs() {
        let rel = scale_relation(&tiny());
        let n = rel.len();
        // Zipf head: value 0 should own far more than a uniform share.
        let zipf = rel.rank_column(AttrId(2));
        let head = zipf.iter().filter(|&&c| c == 0).count();
        assert!(
            head * SCALE_1M.zipf_domain > 4 * n,
            "zipf head owns {head}/{n} rows — not skewed enough"
        );
        // noisy_rank is locally shuffled (some adjacent inversions exist) but
        // globally sorted: beyond the ±noise window, order is never violated.
        // That is exactly the "approximate OD with small g3" profile.
        let noisy = rel.rank_column(AttrId(4));
        let adjacent_inversions = noisy.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(
            adjacent_inversions > 0,
            "noise must produce some inversions"
        );
        let lag = 2 * SCALE_1M.noise as usize + 1;
        assert!(
            (0..n - lag).all(|i| noisy[i] < noisy[i + lag]),
            "beyond the noise window the column must be strictly increasing"
        );
    }
}
