//! # od-workload — synthetic workloads for the order-dependency experiments
//!
//! Data generators and query suites standing in for the artifacts the paper
//! evaluates against (see DESIGN.md for the substitution argument):
//!
//! * [`dates`] — the calendar / `date_dim` dimension with the Figure 2 hierarchy
//!   ODs (and the Section 1 month-name trap), plus the denormalized
//!   `daily_sales` table used by the Example 1 experiment;
//! * [`star`] — the TPC-DS-style star schema (fact table keyed by date
//!   surrogate) and the 18-query date-predicate suite of Section 2.3;
//! * [`tax`] — the Example 5 progressive-tax workload;
//! * [`scale`] — seeded million-row relations (zipfian + sorted-with-noise
//!   columns) for the columnar throughput experiment E14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dates;
pub mod scale;
pub mod star;
pub mod tax;

pub use dates::{
    daily_sales_table, date_dim_table, figure_2_ods, figure_2_odset, generate_date_dim,
};
pub use scale::{
    generate_scale_rows, generate_scale_rows_sampled, scale_ods, scale_relation,
    scale_relation_sampled, scale_schema, ScaleConfig, SCALE_10M, SCALE_1M,
};
pub use star::{build_warehouse, date_query_suite, SuiteQuery, Warehouse, WarehouseConfig};
pub use tax::{generate_taxes, tax_odset, tax_table};
