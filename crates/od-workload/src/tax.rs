//! The Example 5 workload: a `taxes` table with taxable income, tax bracket and
//! tax payable, where brackets and payable amounts rise with income — the
//! natural source of the ODs `[income] ↦ [bracket]` and `[income] ↦ [payable]`.

use od_core::{DataType, OrderDependency, Relation, Schema, Value};
use od_engine::Table;
use od_infer::OdSet;
use od_optimizer::names_to_list;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A progressive tax schedule: bracket thresholds and marginal rates (percent).
pub const BRACKETS: [(i64, i64); 5] = [
    (0, 10),
    (20_000, 15),
    (50_000, 25),
    (100_000, 33),
    (200_000, 40),
];

/// Tax bracket (1-based) for an income.
pub fn bracket_of(income: i64) -> i64 {
    BRACKETS
        .iter()
        .rposition(|(lo, _)| income >= *lo)
        .unwrap_or(0) as i64
        + 1
}

/// Total tax payable for an income under the progressive schedule.
pub fn payable_of(income: i64) -> i64 {
    let mut tax = 0i64;
    for (i, (lo, rate)) in BRACKETS.iter().enumerate() {
        let hi = BRACKETS
            .get(i + 1)
            .map(|(next, _)| *next)
            .unwrap_or(i64::MAX);
        if income > *lo {
            let taxed = income.min(hi) - lo;
            tax += taxed * rate / 100;
        }
    }
    tax
}

/// Column layout of the taxes table.
pub fn tax_schema() -> Schema {
    let mut s = Schema::new("taxes");
    s.add_typed_attr("taxpayer_id", DataType::Integer);
    s.add_typed_attr("income", DataType::Integer);
    s.add_typed_attr("bracket", DataType::Integer);
    s.add_typed_attr("payable", DataType::Integer);
    s
}

/// Generate `n` taxpayers with pseudo-random incomes.
pub fn generate_taxes(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = tax_schema();
    let rows = (0..n)
        .map(|id| {
            let income = rng.gen_range(5_000i64..400_000);
            vec![
                Value::Int(id as i64),
                Value::Int(income),
                Value::Int(bracket_of(income)),
                Value::Int(payable_of(income)),
            ]
        })
        .collect::<Vec<_>>();
    Relation::from_rows(schema, rows).expect("generator arity")
}

/// The Example 5 ODs.
pub fn tax_ods(schema: &Schema) -> Vec<OrderDependency> {
    vec![
        OrderDependency::new(
            names_to_list(schema, &["income"]),
            names_to_list(schema, &["bracket"]),
        ),
        OrderDependency::new(
            names_to_list(schema, &["income"]),
            names_to_list(schema, &["payable"]),
        ),
    ]
}

/// The Example 5 ODs as an [`OdSet`].
pub fn tax_odset(schema: &Schema) -> OdSet {
    OdSet::from_ods(tax_ods(schema))
}

/// The taxes table with a tree index on `income` (the index the paper's Example 5
/// uses to answer an `ORDER BY bracket, payable` without sorting).
pub fn tax_table(n: usize, seed: u64) -> Table {
    let rel = generate_taxes(n, seed);
    let schema = rel.schema().clone();
    let mut t = Table::new(rel);
    t.add_index("ix_income", names_to_list(&schema, &["income"]));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::check::od_holds;
    use od_infer::{Decider, OdSet};

    #[test]
    fn schedule_is_monotone() {
        let mut last_b = 0;
        let mut last_p = 0;
        for income in (0..400_000).step_by(1_000) {
            let b = bracket_of(income);
            let p = payable_of(income);
            assert!(b >= last_b, "brackets must not decrease");
            assert!(p >= last_p, "payable must not decrease");
            last_b = b;
            last_p = p;
        }
        assert_eq!(bracket_of(0), 1);
        assert_eq!(bracket_of(25_000), 2);
        assert_eq!(bracket_of(60_000), 3);
        assert_eq!(payable_of(0), 0);
        // 20k at 10% + 30k at 15% + 10k at 25% = 2000 + 4500 + 2500.
        assert_eq!(payable_of(60_000), 9_000);
    }

    #[test]
    fn example_5_ods_hold_and_compose_by_union() {
        let rel = generate_taxes(500, 11);
        let schema = rel.schema().clone();
        for od in tax_ods(&schema) {
            assert!(od_holds(&rel, &od));
        }
        // Theorem 2 (Union): [income] ↦ [bracket, payable] follows and holds.
        let goal = OrderDependency::new(
            names_to_list(&schema, &["income"]),
            names_to_list(&schema, &["bracket", "payable"]),
        );
        assert!(Decider::new(&tax_odset(&schema)).implies(&goal));
        assert!(od_holds(&rel, &goal));
        // But the converse (bracket determines income) does not.
        let converse = OrderDependency::new(
            names_to_list(&schema, &["bracket"]),
            names_to_list(&schema, &["income"]),
        );
        assert!(!Decider::new(&OdSet::new()).implies(&converse));
        assert!(!od_holds(&rel, &converse));
    }

    #[test]
    fn tax_table_index_provides_income_order() {
        let t = tax_table(200, 3);
        let schema = t.schema().clone();
        assert!(t
            .index_providing_order(&names_to_list(&schema, &["income"]))
            .is_some());
        assert!(t.index_order_is_sorted(&t.indexes[0]));
    }
}
