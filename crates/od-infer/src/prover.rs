//! A goal-directed prover that combines the exact implication decider with
//! axiom-level proof construction.
//!
//! The paper's future-work section asks for a *theorem prover* that decides
//! `ℳ ⊨ X ↦ Y` efficiently.  [`Prover::prove`] answers every query exactly
//! (via [`crate::decide::Decider`], which is sound and complete) and additionally
//! tries to return an explicit axiom-level [`Proof`] for positive answers:
//!
//! 1. trivial goals (`∅ ⊨ X ↦ Y`) get a Reflexivity/Normalization proof,
//! 2. goals whose FD part *and* whose order-compatibility part both follow from
//!    the FD fragment get a constructive proof via [`crate::fd_bridge::prove_fd`]
//!    and the Eliminate/Left-Eliminate theorems,
//! 3. otherwise a bounded forward-chaining search over normalized ODs using
//!    Transitivity, Union, Suffix and goal-directed Prefix applications is run.
//!
//! When a goal is implied but no syntactic proof is found within the search
//! budget, [`Outcome::ImpliedSemantically`] is returned: the answer is still
//! definitive (the decider is complete), only the human-readable derivation is
//! missing.  Negative answers carry a two-tuple counterexample.

use crate::decide::{Decider, TwoTuplePattern};
use crate::odset::OdSet;
use crate::proof::{Proof, ProofBuilder};
use crate::theorems;
use od_core::OrderDependency;
use std::collections::HashMap;

/// Result of a [`Prover::prove`] call.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The goal is implied and an axiom-level proof was constructed.
    Proved(Proof),
    /// The goal is implied (the decider is complete) but the bounded proof
    /// search did not produce a derivation.
    ImpliedSemantically,
    /// The goal is not implied; the pattern is a two-tuple counterexample.
    NotImplied(TwoTuplePattern),
}

impl Outcome {
    /// True if the goal is a logical consequence of `ℳ`.
    pub fn is_implied(&self) -> bool {
        !matches!(self, Outcome::NotImplied(_))
    }

    /// The constructed proof, if any.
    pub fn proof(&self) -> Option<&Proof> {
        match self {
            Outcome::Proved(p) => Some(p),
            _ => None,
        }
    }
}

/// Search budget for the forward-chaining phase.
#[derive(Debug, Clone, Copy)]
pub struct SearchLimits {
    /// Maximum number of distinct derived ODs to retain.
    pub max_derived: usize,
    /// Maximum number of chaining rounds.
    pub max_rounds: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_derived: 4_000,
            max_rounds: 4,
        }
    }
}

/// Prover for a fixed `ℳ`.
#[derive(Debug, Clone)]
pub struct Prover {
    m: OdSet,
    decider: Decider,
    limits: SearchLimits,
}

impl Prover {
    /// Build a prover for `ℳ` with default search limits.
    pub fn new(m: &OdSet) -> Self {
        Prover {
            m: m.clone(),
            decider: Decider::new(m),
            limits: SearchLimits::default(),
        }
    }

    /// Override the forward-chaining search budget.
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Access the underlying exact decider.
    pub fn decider(&self) -> &Decider {
        &self.decider
    }

    /// Decide (exactly) and, when implied, attempt to construct a proof.
    pub fn prove(&self, goal: &OrderDependency) -> Outcome {
        if let Some(cx) = self.decider.counterexample(goal) {
            return Outcome::NotImplied(cx);
        }
        if let Some(p) = trivial_proof(goal) {
            return Outcome::Proved(p);
        }
        if let Some(p) = self.forward_chain(goal) {
            return Outcome::Proved(p);
        }
        Outcome::ImpliedSemantically
    }

    /// Convenience: does `ℳ ⊨ goal`?
    pub fn implies(&self, goal: &OrderDependency) -> bool {
        self.decider.implies(goal)
    }

    /// Bounded forward chaining producing one growing proof; returns the proof
    /// truncated at the goal step when the goal (up to normalization of both
    /// sides) is reached.
    fn forward_chain(&self, goal: &OrderDependency) -> Option<Proof> {
        let mut b = ProofBuilder::new();
        // Known ODs, keyed by their normalized form, mapped to the proving step.
        let mut known: HashMap<OrderDependency, usize> = HashMap::new();

        let add =
            |b: &mut ProofBuilder, known: &mut HashMap<OrderDependency, usize>, idx: usize| {
                let od = b.step(idx).normalize();
                known.entry(od).or_insert(idx);
            };

        for od in self.m.ods() {
            let g = b.given(od.clone());
            add(&mut b, &mut known, g);
            // Suffix both ways is cheap and frequently needed.
            let sf = b.suffix_forward(g);
            add(&mut b, &mut known, sf);
            let sb = b.suffix_backward(g);
            add(&mut b, &mut known, sb);
        }
        let goal_norm = goal.normalize();

        for _ in 0..self.limits.max_rounds {
            if known.len() > self.limits.max_derived {
                break;
            }
            let snapshot: Vec<(OrderDependency, usize)> =
                known.iter().map(|(k, v)| (k.clone(), *v)).collect();
            // Goal-directed Prefix: prepend prefixes of the goal's left side.
            for (od, idx) in &snapshot {
                for plen in 1..=goal_norm.lhs.len() {
                    let z = goal_norm.lhs.prefix(plen);
                    if z.concat(&od.lhs).normalize().len() <= goal_norm.lhs.len() + 2 {
                        let p = b.prefix(z, *idx);
                        add(&mut b, &mut known, p);
                    }
                }
            }
            // Transitivity and Union over all pairs (on the normalized forms).
            let snapshot: Vec<(OrderDependency, usize)> =
                known.iter().map(|(k, v)| (k.clone(), *v)).collect();
            for (od1, i1) in &snapshot {
                for (od2, i2) in &snapshot {
                    if known.len() > self.limits.max_derived {
                        break;
                    }
                    if od1.rhs == od2.lhs {
                        // Chain the two steps; if their concrete lists differ only up
                        // to normalization, bridge with an OD3 step first.
                        let t = if b.step(*i1).rhs == b.step(*i2).lhs {
                            b.transitivity(*i1, *i2)
                        } else {
                            let n =
                                b.normalization(b.step(*i1).rhs.clone(), b.step(*i2).lhs.clone());
                            let t1 = b.transitivity(*i1, n);
                            b.transitivity(t1, *i2)
                        };
                        add(&mut b, &mut known, t);
                    }
                    if od1.lhs == od2.lhs && b.step(*i1).lhs == b.step(*i2).lhs {
                        let u = theorems::union(&mut b, *i1, *i2);
                        add(&mut b, &mut known, u);
                    }
                }
            }
            // Bridge normalization differences towards the goal.
            if let Some(&idx) = known.get(&goal_norm) {
                // known step concludes an OD normalizing to the goal's normalization;
                // glue Normalization steps on both sides to reach the goal verbatim.
                let found = b.step(idx).clone();
                let n1 = b.normalization(goal.lhs.clone(), found.lhs.clone());
                let t1 = b.transitivity(n1, idx);
                let n2 = b.normalization(found.rhs.clone(), goal.rhs.clone());
                let last = b.transitivity(t1, n2);
                debug_assert_eq!(b.step(last), goal);
                let proof = b.finish();
                return Some(proof);
            }
        }
        None
    }
}

/// A proof for a trivial OD (`∅ ⊨ X ↦ Y`), i.e. one whose normalized right-hand
/// side is a prefix of its normalized left-hand side: `X ↦ norm(X) ↦ norm(Y) ↦ Y`
/// by Normalization, Reflexivity, Normalization.
pub fn trivial_proof(goal: &OrderDependency) -> Option<Proof> {
    let ln = goal.lhs.normalize();
    let rn = goal.rhs.normalize();
    if !rn.is_prefix_of(&ln) {
        return None;
    }
    let mut b = ProofBuilder::new();
    let s1 = b.normalization(goal.lhs.clone(), ln.clone());
    let s2 = b.reflexivity(ln, rn.clone());
    let t1 = b.transitivity(s1, s2);
    let s3 = b.normalization(rn, goal.rhs.clone());
    b.transitivity(t1, s3);
    Some(b.finish())
}

/// Syntactic triviality test used by `trivial_proof`; by Theorem 15 this
/// coincides with semantic triviality (`∅ ⊨ X ↦ Y`), which the test-suite
/// cross-checks against the decider.
pub fn is_syntactically_trivial(goal: &OrderDependency) -> bool {
    goal.rhs.normalize().is_prefix_of(&goal.lhs.normalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide;
    use od_core::{AttrId, AttrList};

    fn od(lhs: &[u32], rhs: &[u32]) -> OrderDependency {
        OrderDependency::new(
            lhs.iter().map(|&i| AttrId(i)).collect::<AttrList>(),
            rhs.iter().map(|&i| AttrId(i)).collect::<AttrList>(),
        )
    }

    #[test]
    fn trivial_goals_get_proofs() {
        let p = Prover::new(&OdSet::new());
        for goal in [
            od(&[0, 1], &[0]),
            od(&[0], &[]),
            od(&[0, 1, 0], &[0, 1]),
            od(&[2], &[2, 2]),
        ] {
            match p.prove(&goal) {
                Outcome::Proved(proof) => {
                    proof.verify(&[]).unwrap();
                    assert_eq!(proof.conclusion().unwrap(), &goal);
                }
                other => panic!("expected a proof for trivial {goal}, got {other:?}"),
            }
        }
    }

    #[test]
    fn syntactic_triviality_matches_semantic_triviality() {
        // Exhaustive over small lists on 3 attributes.
        let universe: Vec<AttrId> = (0..3).map(AttrId).collect();
        for goal in crate::witness::enumerate_ods(&universe, 2) {
            assert_eq!(
                is_syntactically_trivial(&goal),
                decide::is_trivial(&goal),
                "mismatch for {goal}"
            );
        }
    }

    #[test]
    fn transitive_goals_are_proved() {
        let m = OdSet::from_ods([od(&[0], &[1]), od(&[1], &[2])]);
        let p = Prover::new(&m);
        match p.prove(&od(&[0], &[2])) {
            Outcome::Proved(proof) => {
                proof.verify(&m.ods()).unwrap();
                assert_eq!(proof.conclusion().unwrap(), &od(&[0], &[2]));
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn union_style_goals_are_proved() {
        let m = OdSet::from_ods([od(&[0], &[1]), od(&[0], &[2])]);
        let p = Prover::new(&m);
        let outcome = p.prove(&od(&[0], &[1, 2]));
        assert!(outcome.is_implied());
        if let Some(proof) = outcome.proof() {
            proof.verify(&m.ods()).unwrap();
        }
    }

    #[test]
    fn non_consequences_return_counterexamples() {
        let m = OdSet::from_ods([od(&[0], &[1])]);
        let p = Prover::new(&m);
        match p.prove(&od(&[1], &[0])) {
            Outcome::NotImplied(pattern) => {
                let mut schema = od_core::Schema::new("cx");
                schema.add_attr("a");
                schema.add_attr("b");
                let rel = pattern.to_relation(&schema);
                assert!(m.satisfied_by(&rel));
                assert!(!od_core::check::od_holds(&rel, &od(&[1], &[0])));
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
        assert!(!p.implies(&od(&[1], &[0])));
        assert!(p.implies(&od(&[0], &[1, 0])));
    }

    #[test]
    fn every_constructed_proof_is_sound() {
        // Whatever the prover returns must verify and must be decider-implied.
        let m = OdSet::from_ods([od(&[0], &[1]), od(&[1], &[2]), od(&[3], &[0])]);
        let p = Prover::new(&m);
        let universe: Vec<AttrId> = (0..4).map(AttrId).collect();
        for goal in crate::witness::enumerate_ods(&universe, 2) {
            match p.prove(&goal) {
                Outcome::Proved(proof) => {
                    proof
                        .verify(&m.ods())
                        .unwrap_or_else(|e| panic!("proof for {goal} failed verification: {e}"));
                    assert!(p.implies(&goal));
                }
                Outcome::ImpliedSemantically => assert!(p.implies(&goal)),
                Outcome::NotImplied(_) => assert!(!p.implies(&goal)),
            }
        }
    }
}
