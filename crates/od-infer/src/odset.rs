//! Sets of prescribed order dependencies — the paper's `ℳ`.

use od_core::{AttrList, AttrSet, OrderCompatibility, OrderDependency, OrderEquivalence, Schema};
use std::fmt;

/// A single prescribed constraint, as a user would declare it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// `X ↦ Y`.
    Od(OrderDependency),
    /// `X ↔ Y`.
    Equivalence(OrderEquivalence),
    /// `X ~ Y`.
    Compatibility(OrderCompatibility),
}

impl Constraint {
    /// The order dependencies whose conjunction this constraint denotes.
    pub fn to_ods(&self) -> Vec<OrderDependency> {
        match self {
            Constraint::Od(od) => vec![od.clone()],
            Constraint::Equivalence(eq) => eq.as_ods().to_vec(),
            Constraint::Compatibility(c) => c.as_ods().to_vec(),
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Od(od) => write!(f, "{od}"),
            Constraint::Equivalence(eq) => write!(f, "{eq}"),
            Constraint::Compatibility(c) => write!(f, "{c}"),
        }
    }
}

/// A set `ℳ` of prescribed order dependencies over a schema.
///
/// This is the object the axioms, the implication decider, and the witness
/// construction all operate on.  Equivalence and compatibility constraints are
/// kept in declared form for display, and expanded into their constituent ODs
/// (Definition 5 / Theorem 15) on demand.
#[derive(Debug, Clone, Default)]
pub struct OdSet {
    constraints: Vec<Constraint>,
}

impl OdSet {
    /// An empty set of constraints.
    pub fn new() -> Self {
        OdSet::default()
    }

    /// Build a set directly from ODs.
    pub fn from_ods(ods: impl IntoIterator<Item = OrderDependency>) -> Self {
        let mut s = OdSet::new();
        for od in ods {
            s.add_od(od);
        }
        s
    }

    /// Declare `X ↦ Y`.
    pub fn add_od(&mut self, od: OrderDependency) -> &mut Self {
        self.constraints.push(Constraint::Od(od));
        self
    }

    /// Declare `X ↔ Y`.
    pub fn add_equivalence(&mut self, eq: OrderEquivalence) -> &mut Self {
        self.constraints.push(Constraint::Equivalence(eq));
        self
    }

    /// Declare `X ~ Y`.
    pub fn add_compatibility(&mut self, c: OrderCompatibility) -> &mut Self {
        self.constraints.push(Constraint::Compatibility(c));
        self
    }

    /// Declare that an attribute is a constant (`[] ↦ [A]`, Definition 18).
    pub fn add_constant(&mut self, attr: od_core::AttrId) -> &mut Self {
        self.add_od(OrderDependency::new(AttrList::empty(), vec![attr]))
    }

    /// Retract one OD from the set; returns true if anything was removed.
    ///
    /// Plain `Od` constraints matching the argument are dropped.  An
    /// equivalence or compatibility constraint whose expansion contains the OD
    /// is replaced by its **remaining** direction ODs — retracting one
    /// direction must not silently retract the other.  Used by streaming
    /// monitors to withdraw constraints the live data no longer satisfies.
    pub fn remove_od(&mut self, od: &OrderDependency) -> bool {
        let mut removed = false;
        let mut rebuilt = Vec::with_capacity(self.constraints.len());
        for constraint in self.constraints.drain(..) {
            let expansion = constraint.to_ods();
            if !expansion.iter().any(|o| o == od) {
                rebuilt.push(constraint);
                continue;
            }
            removed = true;
            rebuilt.extend(
                expansion
                    .into_iter()
                    .filter(|o| o != od)
                    .map(Constraint::Od),
            );
        }
        self.constraints = rebuilt;
        removed
    }

    /// The declared constraints, in declaration order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of declared constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if no constraints are declared.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Every constraint expanded into plain ODs.
    pub fn ods(&self) -> Vec<OrderDependency> {
        self.constraints.iter().flat_map(|c| c.to_ods()).collect()
    }

    /// All attributes mentioned by any constraint.
    pub fn attributes(&self) -> AttrSet {
        let mut s = AttrSet::new();
        for od in self.ods() {
            s.extend(od.attributes());
        }
        s
    }

    /// Check whether a relation instance satisfies every declared constraint.
    pub fn satisfied_by(&self, rel: &od_core::Relation) -> bool {
        self.ods()
            .iter()
            .all(|od| od_core::check::od_holds(rel, od))
    }

    /// Render the set with attribute names resolved against a schema.
    pub fn display(&self, schema: &Schema) -> String {
        let parts: Vec<String> = self
            .constraints
            .iter()
            .map(|c| match c {
                Constraint::Od(od) => od.display(schema).to_string(),
                Constraint::Equivalence(eq) => eq.display(schema).to_string(),
                Constraint::Compatibility(cc) => cc.display(schema).to_string(),
            })
            .collect();
        format!("{{ {} }}", parts.join(", "))
    }
}

impl fmt::Display for OdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.constraints.iter().map(|c| c.to_string()).collect();
        write!(f, "{{ {} }}", parts.join(", "))
    }
}

impl FromIterator<OrderDependency> for OdSet {
    fn from_iter<T: IntoIterator<Item = OrderDependency>>(iter: T) -> Self {
        OdSet::from_ods(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::AttrId;

    fn l(ids: &[u32]) -> AttrList {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn constraints_expand_to_ods() {
        let mut m = OdSet::new();
        m.add_od(OrderDependency::new(l(&[0]), l(&[1])));
        m.add_equivalence(OrderEquivalence::new(l(&[0]), l(&[2])));
        m.add_compatibility(OrderCompatibility::new(l(&[1]), l(&[2])));
        assert_eq!(m.len(), 3);
        assert_eq!(m.ods().len(), 1 + 2 + 2);
        assert_eq!(m.attributes().len(), 3);
    }

    #[test]
    fn remove_od_retracts_and_preserves_other_directions() {
        let mut m = OdSet::new();
        m.add_od(OrderDependency::new(l(&[0]), l(&[1])));
        m.add_equivalence(OrderEquivalence::new(l(&[0]), l(&[2])));
        assert_eq!(m.ods().len(), 3);

        // Removing a plain OD drops only it.
        assert!(m.remove_od(&OrderDependency::new(l(&[0]), l(&[1]))));
        assert_eq!(m.ods().len(), 2);

        // Removing one direction of the equivalence keeps the other.
        assert!(m.remove_od(&OrderDependency::new(l(&[0]), l(&[2]))));
        let remaining = m.ods();
        assert_eq!(remaining, vec![OrderDependency::new(l(&[2]), l(&[0]))]);

        // Removing something absent is a no-op.
        assert!(!m.remove_od(&OrderDependency::new(l(&[1]), l(&[0]))));
        assert_eq!(m.ods().len(), 1);
    }

    #[test]
    fn constants_are_empty_lhs_ods() {
        let mut m = OdSet::new();
        m.add_constant(AttrId(4));
        let ods = m.ods();
        assert_eq!(ods.len(), 1);
        assert!(ods[0].lhs.is_empty());
        assert_eq!(ods[0].rhs, l(&[4]));
    }

    #[test]
    fn display_lists_constraints() {
        let mut m = OdSet::new();
        m.add_od(OrderDependency::new(l(&[0]), l(&[1])));
        assert!(m.to_string().contains("↦"));
        let mut schema = Schema::new("t");
        schema.add_attr("a");
        schema.add_attr("b");
        assert_eq!(m.display(&schema), "{ [a] ↦ [b] }");
    }

    #[test]
    fn satisfied_by_checks_all_constraints() {
        let mut schema = Schema::new("t");
        let a = schema.add_attr("a");
        let b = schema.add_attr("b");
        let rel = od_core::Relation::from_rows(
            schema,
            vec![
                vec![od_core::Value::Int(1), od_core::Value::Int(10)],
                vec![od_core::Value::Int(2), od_core::Value::Int(20)],
            ],
        )
        .unwrap();
        let mut m = OdSet::new();
        m.add_od(OrderDependency::new(vec![a], vec![b]));
        assert!(m.satisfied_by(&rel));
        m.add_od(OrderDependency::new(vec![b], vec![a]));
        assert!(m.satisfied_by(&rel));
        m.add_constant(a);
        assert!(!m.satisfied_by(&rel));
    }
}
