//! Exact logical-implication decision for order dependencies.
//!
//! **Why two tuples are enough.**  Satisfaction of an OD is a condition on every
//! *pair* of tuples (Definition 4).  Consequently, if `ℳ ⊭ X ↦ Y` then some
//! relation `r` satisfies `ℳ` and contains a pair `s, t` violating `X ↦ Y`; the
//! two-tuple sub-relation `{s, t}` still satisfies `ℳ` (OD satisfaction is closed
//! under taking sub-relations) and still violates `X ↦ Y`.  A two-tuple relation,
//! in turn, is fully characterized — as far as any lexicographic comparison is
//! concerned — by one [`Orientation`] per attribute: whether the first tuple's
//! value is less than, equal to, or greater than the second tuple's value.
//!
//! The decider therefore searches the space of per-attribute orientations over
//! the mentioned attribute universe (3^|U| patterns, with backtracking and
//! early pruning) for a pattern that satisfies every OD in `ℳ` and falsifies the
//! goal.  If none exists the implication holds.  This gives a sound **and
//! complete** decision procedure, which the rest of the crate uses as the ground
//! truth: the axiomatic prover is checked against it, and the witness-table
//! construction queries it for membership in `ℳ⁺`.
//!
//! This mirrors the paper's own two-row split/swap analysis (Theorem 15 and the
//! constructions of Section 4); the exponential worst case is expected — OD
//! implication is co-NP-complete — but the mentioned universe is small in
//! practice (only attributes appearing in `ℳ` and the goal matter).

use crate::odset::OdSet;
use od_core::{
    AttrId, AttrList, AttrSet, OrderCompatibility, OrderDependency, OrderEquivalence, Relation,
    Schema, Value,
};

/// Relationship between the two tuples' values on one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `s[A] < t[A]`.
    Lt,
    /// `s[A] = t[A]`.
    Eq,
    /// `s[A] > t[A]`.
    Gt,
}

impl Orientation {
    /// The three orientations, in the order the search explores them.
    pub const ALL: [Orientation; 3] = [Orientation::Eq, Orientation::Lt, Orientation::Gt];

    fn flip(self) -> Orientation {
        match self {
            Orientation::Lt => Orientation::Gt,
            Orientation::Gt => Orientation::Lt,
            Orientation::Eq => Orientation::Eq,
        }
    }
}

/// A fully or partially specified two-tuple pattern: one orientation per
/// attribute of the universe (attributes are addressed by their dense ids).
#[derive(Debug, Clone)]
pub struct TwoTuplePattern {
    /// `None` = not yet assigned (only occurs during search).
    assignment: Vec<Option<Orientation>>,
}

impl TwoTuplePattern {
    /// A pattern with no attribute assigned yet, sized for `n_attrs` attributes.
    pub fn unassigned(n_attrs: usize) -> Self {
        TwoTuplePattern {
            assignment: vec![None; n_attrs],
        }
    }

    /// Build a fully specified pattern from explicit orientations.
    pub fn from_orientations(orients: &[(AttrId, Orientation)], n_attrs: usize) -> Self {
        let mut p = TwoTuplePattern::unassigned(n_attrs);
        for &(a, o) in orients {
            p.assignment[a.index()] = Some(o);
        }
        p
    }

    /// Orientation of an attribute, if assigned.
    pub fn orientation(&self, attr: AttrId) -> Option<Orientation> {
        self.assignment.get(attr.index()).copied().flatten()
    }

    /// Evaluate the lexicographic comparison of the two implicit tuples on an
    /// attribute list.  `None` means the comparison is not yet determined by the
    /// partial assignment.
    pub fn eval(&self, list: &AttrList) -> Option<Orientation> {
        for attr in list.iter() {
            match self.assignment.get(attr.index()).copied().flatten() {
                Some(Orientation::Eq) => continue,
                Some(o) => return Some(o),
                None => return None,
            }
        }
        Some(Orientation::Eq)
    }

    /// Whether the pattern (if fully determined on the relevant attributes)
    /// satisfies `X ↦ Y` for **both** ordered pairs `(s, t)` and `(t, s)`.
    ///
    /// Returns `None` when the partial assignment does not yet determine the
    /// answer, `Some(true/false)` otherwise.
    pub fn satisfies(&self, od: &OrderDependency) -> Option<bool> {
        let cx = self.eval(&od.lhs);
        let cy = self.eval(&od.rhs);
        match (cx, cy) {
            (Some(x), Some(y)) => Some(pair_ok(x, y) && pair_ok(x.flip(), y.flip())),
            // If the left side is already strictly oriented and the right side is
            // already strictly oriented the other way, the OD is definitely violated
            // regardless of unassigned attributes deeper in the lists.
            _ => None,
        }
    }

    /// True if the partial assignment already *guarantees* a violation of the OD.
    fn definitely_violates(&self, od: &OrderDependency) -> bool {
        matches!(self.satisfies(od), Some(false))
    }

    /// Materialize the pattern as a two-row relation over the given schema
    /// (attributes outside the pattern get equal values).  `s` is row 0, `t` row 1.
    pub fn to_relation(&self, schema: &Schema) -> Relation {
        let mut s_row = Vec::with_capacity(schema.arity());
        let mut t_row = Vec::with_capacity(schema.arity());
        for attr in schema.attr_ids() {
            let o = self.orientation(attr).unwrap_or(Orientation::Eq);
            let (a, b) = match o {
                Orientation::Lt => (0, 1),
                Orientation::Eq => (0, 0),
                Orientation::Gt => (1, 0),
            };
            s_row.push(Value::Int(a));
            t_row.push(Value::Int(b));
        }
        Relation::from_rows(schema.clone(), vec![s_row, t_row])
            .expect("pattern rows match schema arity")
    }
}

/// `s ≼_X t ⇒ s ≼_Y t` for one ordered pair, given the two comparisons.
#[inline]
fn pair_ok(cx: Orientation, cy: Orientation) -> bool {
    // s ≼_X t  iff  cx != Gt.
    if cx == Orientation::Gt {
        true
    } else {
        cy != Orientation::Gt
    }
}

/// The exact implication decider for a fixed constraint set `ℳ`.
///
/// Construction pre-expands `ℳ` into plain ODs; each [`Decider::implies`] query
/// performs a backtracking search over two-tuple patterns.
#[derive(Debug, Clone)]
pub struct Decider {
    ods: Vec<OrderDependency>,
    universe: Vec<AttrId>,
    max_attr: usize,
}

impl Decider {
    /// Build a decider for the constraint set.
    pub fn new(m: &OdSet) -> Self {
        let ods = m.ods();
        let mut universe: Vec<AttrId> = m.attributes().into_iter().collect();
        universe.sort();
        let max_attr = universe.iter().map(|a| a.index() + 1).max().unwrap_or(0);
        Decider {
            ods,
            universe,
            max_attr,
        }
    }

    /// Number of attributes mentioned by `ℳ`.
    pub fn universe_size(&self) -> usize {
        self.universe.len()
    }

    /// Decide `ℳ ⊨ X ↦ Y`.
    pub fn implies(&self, goal: &OrderDependency) -> bool {
        self.counterexample(goal).is_none()
    }

    /// Decide `ℳ ⊨ X ↔ Y`.
    pub fn implies_equivalence(&self, eq: &OrderEquivalence) -> bool {
        eq.as_ods().iter().all(|od| self.implies(od))
    }

    /// Decide `ℳ ⊨ X ~ Y` (Definition 5).
    pub fn implies_compatibility(&self, c: &OrderCompatibility) -> bool {
        self.implies_equivalence(&c.as_equivalence())
    }

    /// Is the attribute a constant with respect to `ℳ` (Definition 18:
    /// `[] ↦ [A]` is in `ℳ⁺`)?
    pub fn is_constant(&self, attr: AttrId) -> bool {
        self.implies(&OrderDependency::new(AttrList::empty(), vec![attr]))
    }

    /// Decide `ℳ ⊨ 𝒞 : [] ↦ A` — is `A` constant within every equivalence class
    /// of the context set `𝒞`?  This is the set-based *constancy* statement of
    /// the FASTOD canonical form, equivalent to the list OD `C' ↦ C'A` for any
    /// linearization `C'` of the context (all linearizations are equivalent by
    /// the Permutation theorem).  Used by `od-setbased` as an implication-pruning
    /// hook: candidates implied by already-confirmed statements are never
    /// validated against data.
    pub fn implies_context_constancy(&self, context: &AttrSet, attr: AttrId) -> bool {
        if context.contains(attr) {
            return true;
        }
        let ctx: AttrList = context.iter().collect();
        self.implies(&OrderDependency::new(ctx.clone(), ctx.with_suffix(attr)))
    }

    /// Decide `ℳ ⊨ 𝒞 : A ~ B` — are `A` and `B` order compatible within every
    /// equivalence class of the context set `𝒞`?  This is the set-based
    /// *compatibility* statement of the FASTOD canonical form, equivalent to
    /// `C'A ~ C'B` for any linearization `C'` of the context.
    pub fn implies_context_compatibility(&self, context: &AttrSet, a: AttrId, b: AttrId) -> bool {
        if a == b || context.contains(a) || context.contains(b) {
            return true;
        }
        let ctx: AttrList = context.iter().collect();
        self.implies_compatibility(&OrderCompatibility::new(
            ctx.with_suffix(a),
            ctx.with_suffix(b),
        ))
    }

    /// Find a two-tuple counterexample to `ℳ ⊨ X ↦ Y`, if one exists.
    pub fn counterexample(&self, goal: &OrderDependency) -> Option<TwoTuplePattern> {
        search_counterexample(&self.ods, &self.universe, self.max_attr, goal)
    }
}

/// Find a two-tuple pattern satisfying every OD of `ods` and violating `goal`,
/// if one exists (the shared search behind [`Decider`] and [`DeciderBatch`]).
fn search_counterexample(
    ods: &[OrderDependency],
    universe: &[AttrId],
    max_attr: usize,
    goal: &OrderDependency,
) -> Option<TwoTuplePattern> {
    // The attributes that matter: those of ℳ plus those of the goal.
    let mut attrs: Vec<AttrId> = universe.to_vec();
    for a in goal.attributes() {
        if !attrs.contains(&a) {
            attrs.push(a);
        }
    }
    let width = attrs
        .iter()
        .map(|a| a.index() + 1)
        .max()
        .unwrap_or(0)
        .max(max_attr);
    // Explore goal attributes first so the goal check can fail fast.
    let mut order: Vec<AttrId> = Vec::with_capacity(attrs.len());
    for a in goal.lhs.iter().chain(goal.rhs.iter()) {
        if !order.contains(&a) {
            order.push(a);
        }
    }
    for a in attrs {
        if !order.contains(&a) {
            order.push(a);
        }
    }
    let mut pattern = TwoTuplePattern::unassigned(width);
    search(ods, &mut pattern, &order, 0, goal).then_some(pattern)
}

/// Depth-first search for a pattern satisfying every OD of `ods` and violating
/// `goal`.  Returns true (leaving the assignment in place) when one is found.
fn search(
    ods: &[OrderDependency],
    pattern: &mut TwoTuplePattern,
    order: &[AttrId],
    depth: usize,
    goal: &OrderDependency,
) -> bool {
    // Prune: if any constraint is already definitely violated, this branch is dead.
    if ods.iter().any(|od| pattern.definitely_violates(od)) {
        return false;
    }
    if depth == order.len() {
        // Fully assigned: every constraint is decided; require goal violated.
        return ods.iter().all(|od| pattern.satisfies(od) == Some(true))
            && pattern.satisfies(goal) == Some(false);
    }
    // If the goal is already decided as satisfied, no extension can violate it
    // only if all its attributes are assigned; `satisfies` is None otherwise,
    // so a Some(true) here is safe to prune on only when fully determined.
    if pattern.satisfies(goal) == Some(true)
        && goal
            .attributes()
            .iter()
            .all(|a| pattern.orientation(a).is_some())
    {
        return false;
    }
    let attr = order[depth];
    for o in Orientation::ALL {
        pattern.assignment[attr.index()] = Some(o);
        if search(ods, pattern, order, depth + 1, goal) {
            return true;
        }
    }
    pattern.assignment[attr.index()] = None;
    false
}

/// Cap on counterexample patterns a [`DeciderBatch`] keeps for reuse.
const WITNESS_CACHE_CAP: usize = 64;

/// Resolution counters of one [`DeciderBatch`] round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeciderBatchStats {
    /// Context-statement queries answered.
    pub queries: usize,
    /// Queries refuted by a cached counterexample pattern, search-free.
    pub witness_hits: usize,
    /// Backtracking searches actually run.
    pub searches: usize,
    /// Premises appended after construction.
    pub premises_added: usize,
}

/// One **batched decider round-trip**: a premise snapshot taken once (per
/// lattice level), grown incrementally with [`DeciderBatch::add_premise`], and
/// queried many times with **counterexample reuse**.
///
/// The per-candidate pattern the lattice used to follow — rebuild a
/// [`Decider`] after every confirmation, run a fresh exponential search per
/// query — priced each candidate at a full decider round-trip.  A batch
/// replaces that with one round-trip per level:
///
/// * premises are *appended* (an `OdSet` re-snapshot per confirmation is
///   gone); implication is monotone in the premise set, so every earlier
///   positive answer stays valid;
/// * every counterexample pattern found by a search is cached; a later query
///   refuted by a cached pattern costs an `O(|pattern|)` evaluation instead
///   of a `3^|U|` search.  Cached patterns satisfy every current premise by
///   construction (on `add_premise` the cache drops patterns the new premise
///   does not definitely satisfy), so a cached pattern violating a goal is a
///   genuine counterexample — answers are bit-identical to fresh
///   [`Decider`] queries, only the work changes.
///
/// Queries take `&mut self` (they may grow the witness cache); answers depend
/// only on the premises added so far, exactly like a fresh `Decider` over the
/// same set.
#[derive(Debug, Clone)]
pub struct DeciderBatch {
    ods: Vec<OrderDependency>,
    universe: Vec<AttrId>,
    max_attr: usize,
    witnesses: Vec<TwoTuplePattern>,
    /// How the round resolved its queries.
    pub stats: DeciderBatchStats,
}

impl DeciderBatch {
    /// Open a batch round over the premise snapshot `ℳ`.
    pub fn new(m: &OdSet) -> Self {
        let ods = m.ods();
        let mut universe: Vec<AttrId> = m.attributes().into_iter().collect();
        universe.sort();
        let max_attr = universe.iter().map(|a| a.index() + 1).max().unwrap_or(0);
        DeciderBatch {
            ods,
            universe,
            max_attr,
            witnesses: Vec::new(),
            stats: DeciderBatchStats::default(),
        }
    }

    /// Number of premises currently in force.
    pub fn premise_count(&self) -> usize {
        self.ods.len()
    }

    /// Append one confirmed OD to the premise set.
    ///
    /// Cached counterexamples that do not *definitely* satisfy the new premise
    /// are dropped (sound: a kept pattern still models every premise, so it
    /// still refutes whatever it violates).
    pub fn add_premise(&mut self, od: OrderDependency) {
        self.witnesses.retain(|w| w.satisfies(&od) == Some(true));
        for a in od.attributes() {
            if let Err(pos) = self.universe.binary_search(&a) {
                self.universe.insert(pos, a);
                self.max_attr = self.max_attr.max(a.index() + 1);
            }
        }
        self.ods.push(od);
        self.stats.premises_added += 1;
    }

    /// Decide `ℳ ⊨ goal` against the current premises, reusing and growing
    /// the counterexample cache.
    fn implies_od(&mut self, goal: &OrderDependency) -> bool {
        if self
            .witnesses
            .iter()
            .any(|w| w.satisfies(goal) == Some(false))
        {
            self.stats.witness_hits += 1;
            return false;
        }
        self.stats.searches += 1;
        match search_counterexample(&self.ods, &self.universe, self.max_attr, goal) {
            Some(pattern) => {
                if self.witnesses.len() < WITNESS_CACHE_CAP {
                    self.witnesses.push(pattern);
                }
                false
            }
            None => true,
        }
    }

    /// Batched form of [`Decider::implies_context_constancy`].
    pub fn implies_context_constancy(&mut self, context: &AttrSet, attr: AttrId) -> bool {
        self.stats.queries += 1;
        if context.contains(attr) {
            return true;
        }
        let ctx: AttrList = context.iter().collect();
        let goal = OrderDependency::new(ctx.clone(), ctx.with_suffix(attr));
        self.implies_od(&goal)
    }

    /// Batched form of [`Decider::implies_context_compatibility`].
    pub fn implies_context_compatibility(
        &mut self,
        context: &AttrSet,
        a: AttrId,
        b: AttrId,
    ) -> bool {
        self.stats.queries += 1;
        if a == b || context.contains(a) || context.contains(b) {
            return true;
        }
        let ctx: AttrList = context.iter().collect();
        OrderCompatibility::new(ctx.with_suffix(a), ctx.with_suffix(b))
            .as_equivalence()
            .as_ods()
            .iter()
            .all(|od| self.implies_od(od))
    }
}

/// Decide `ℳ ⊨ X ↦ Y` (convenience wrapper constructing a [`Decider`]).
pub fn implies(m: &OdSet, goal: &OrderDependency) -> bool {
    Decider::new(m).implies(goal)
}

/// Decide whether an OD is *trivial*: satisfied by every relation instance
/// (`∅ ⊨ X ↦ Y`).
pub fn is_trivial(od: &OrderDependency) -> bool {
    implies(&OdSet::new(), od)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(ids: &[u32]) -> AttrList {
        ids.iter().map(|&i| AttrId(i)).collect()
    }
    fn od(lhs: &[u32], rhs: &[u32]) -> OrderDependency {
        OrderDependency::new(l(lhs), l(rhs))
    }

    #[test]
    fn trivial_ods_are_implied_by_nothing() {
        assert!(is_trivial(&od(&[0, 1], &[0])));
        assert!(is_trivial(&od(&[0], &[])));
        assert!(is_trivial(&od(&[0, 1, 0], &[0, 1])));
        assert!(!is_trivial(&od(&[0], &[1])));
        assert!(!is_trivial(&od(&[0, 1], &[1])));
        assert!(!is_trivial(&od(&[], &[0])));
    }

    #[test]
    fn transitivity_is_recognized() {
        let m = OdSet::from_ods([od(&[0], &[1]), od(&[1], &[2])]);
        assert!(implies(&m, &od(&[0], &[2])));
        assert!(!implies(&m, &od(&[2], &[0])));
    }

    #[test]
    fn prefix_and_suffix_consequences() {
        let m = OdSet::from_ods([od(&[0], &[1])]);
        // Prefix: ZX ↦ ZY.
        assert!(implies(&m, &od(&[5, 0], &[5, 1])));
        // Suffix: X ↔ YX.
        assert!(implies(&m, &od(&[0], &[1, 0])));
        assert!(implies(&m, &od(&[1, 0], &[0])));
        // But not X ↦ XY's converse shapes that do not follow.
        assert!(!implies(&m, &od(&[1], &[0])));
    }

    #[test]
    fn union_and_eliminate_consequences() {
        // Example 5: income ↦ bracket, income ↦ payable  ⊨  income ↦ [bracket, payable].
        let m = OdSet::from_ods([od(&[0], &[1]), od(&[0], &[2])]);
        assert!(implies(&m, &od(&[0], &[1, 2])));
        assert!(implies(&m, &od(&[0], &[2, 1])));
        // Eliminate: month ↦ quarter ⊨ [year, month, quarter] ↔ [year, month].
        let m2 = OdSet::from_ods([od(&[1], &[2])]);
        assert!(implies(&m2, &od(&[0, 1, 2], &[0, 1])));
        assert!(implies(&m2, &od(&[0, 1], &[0, 1, 2])));
        // Left Eliminate (Theorem 8): [year, quarter, month] ↔ [year, month].
        assert!(implies(&m2, &od(&[0, 2, 1], &[0, 1])));
        assert!(implies(&m2, &od(&[0, 1], &[0, 2, 1])));
        // The intervening-attribute caveat from Section 2.3: D ↦ B justifies
        // ABD → AD but NOT ABCD → AD.
        let m3 = OdSet::from_ods([od(&[3], &[1])]);
        assert!(implies(&m3, &od(&[0, 1, 3], &[0, 3])));
        assert!(!implies(&m3, &od(&[0, 1, 2, 3], &[0, 3])));
    }

    #[test]
    fn fd_only_information_does_not_justify_order_rewrites() {
        // The Example 1 pitfall: month → quarter as an FD (month ↦ [month, quarter])
        // does NOT imply [year, quarter, month] ↔ [year, month].
        let fd_like = OdSet::from_ods([od(&[1], &[1, 2])]);
        assert!(!implies(&fd_like, &od(&[0, 1], &[0, 2, 1])));
        // Whereas the true OD month ↦ quarter does (previous test).
    }

    #[test]
    fn constants_are_detected() {
        let mut m = OdSet::new();
        m.add_constant(AttrId(3));
        let d = Decider::new(&m);
        assert!(d.is_constant(AttrId(3)));
        assert!(!d.is_constant(AttrId(0)));
        // A constant can be inserted anywhere in an ORDER BY.
        assert!(d.implies(&od(&[0], &[3, 0])));
        assert!(d.implies(&od(&[0], &[0, 3])));
    }

    #[test]
    fn compatibility_queries() {
        let m = OdSet::from_ods([od(&[0], &[1])]);
        let d = Decider::new(&m);
        assert!(d.implies_compatibility(&OrderCompatibility::new(l(&[0]), l(&[1]))));
        assert!(d.implies_equivalence(&OrderEquivalence::new(l(&[0]), l(&[1, 0]))));
        // Two unrelated attributes are not order compatible in general.
        let empty = Decider::new(&OdSet::new());
        assert!(!empty.implies_compatibility(&OrderCompatibility::new(l(&[0]), l(&[1]))));
    }

    #[test]
    fn context_statement_hooks_agree_with_list_level_queries() {
        // income ↦ bracket  ⊨  {} : income ~ bracket  and  {income} : [] ↦ bracket.
        let m = OdSet::from_ods([od(&[0], &[1])]);
        let d = Decider::new(&m);
        let ctx = |ids: &[u32]| ids.iter().map(|&i| AttrId(i)).collect::<AttrSet>();
        assert!(d.implies_context_compatibility(&ctx(&[]), AttrId(0), AttrId(1)));
        assert!(d.implies_context_constancy(&ctx(&[0]), AttrId(1)));
        // Neither follows for unrelated attributes.
        assert!(!d.implies_context_constancy(&ctx(&[0]), AttrId(2)));
        assert!(!d.implies_context_compatibility(&ctx(&[]), AttrId(0), AttrId(2)));
        // Context monotonicity: what holds in the empty context holds in larger ones.
        assert!(d.implies_context_compatibility(&ctx(&[2]), AttrId(0), AttrId(1)));
        // Trivial shapes never need a search.
        assert!(d.implies_context_constancy(&ctx(&[5]), AttrId(5)));
        assert!(d.implies_context_compatibility(&ctx(&[]), AttrId(7), AttrId(7)));
        assert!(d.implies_context_compatibility(&ctx(&[7]), AttrId(7), AttrId(2)));
    }

    #[test]
    fn counterexample_patterns_really_are_counterexamples() {
        let m = OdSet::from_ods([od(&[0], &[1])]);
        let d = Decider::new(&m);
        let goal = od(&[1], &[0]);
        let pattern = d.counterexample(&goal).expect("goal is not implied");
        // Materialize and check with the instance-level checker.
        let mut schema = Schema::new("cx");
        schema.add_attr("a0");
        schema.add_attr("a1");
        let rel = pattern.to_relation(&schema);
        assert!(m.satisfied_by(&rel));
        assert!(!od_core::check::od_holds(&rel, &goal));
    }

    #[test]
    fn chain_style_consequence() {
        // A ~ B together with the FDs A → B and B → A in OD form ([A] ↔ [B])
        // implies [A] ↦ [B].
        let m = OdSet::from_ods([od(&[0], &[1]), od(&[1], &[0])]);
        assert!(implies(&m, &od(&[0], &[1])));
        let d = Decider::new(&m);
        assert!(d.implies_equivalence(&OrderEquivalence::new(l(&[0]), l(&[1]))));
    }

    #[test]
    fn empty_goal_sides() {
        let m = OdSet::new();
        assert!(implies(&m, &od(&[0], &[])));
        assert!(implies(&m, &od(&[], &[])));
        assert!(!implies(&m, &od(&[], &[0])));
    }

    #[test]
    fn batch_answers_match_fresh_deciders_under_premise_growth() {
        // Replay a premise-growing sequence through one batch and compare
        // every answer against a fresh Decider over the same premise set.
        let premises = [od(&[0], &[1]), od(&[1], &[2]), od(&[3], &[0])];
        let ctx = |ids: &[u32]| ids.iter().map(|&i| AttrId(i)).collect::<AttrSet>();
        let queries: Vec<(AttrSet, u32, Option<u32>)> = vec![
            (ctx(&[0]), 1, None),
            (ctx(&[0]), 2, None),
            (ctx(&[]), 0, Some(1)),
            (ctx(&[]), 0, Some(2)),
            (ctx(&[2]), 1, Some(0)),
            (ctx(&[3]), 2, None),
            (ctx(&[1]), 3, None),
        ];
        let mut m = OdSet::new();
        let mut batch = DeciderBatch::new(&m);
        for premise in premises {
            for &(ref c, a, b) in &queries {
                let fresh = Decider::new(&m);
                match b {
                    None => assert_eq!(
                        batch.implies_context_constancy(c, AttrId(a)),
                        fresh.implies_context_constancy(c, AttrId(a)),
                        "constancy {c:?} ↦ {a} with {} premises",
                        batch.premise_count()
                    ),
                    Some(b) => assert_eq!(
                        batch.implies_context_compatibility(c, AttrId(a), AttrId(b)),
                        fresh.implies_context_compatibility(c, AttrId(a), AttrId(b)),
                        "compatibility {c:?}: {a} ~ {b} with {} premises",
                        batch.premise_count()
                    ),
                }
            }
            m.add_od(premise.clone());
            batch.add_premise(premise);
        }
        assert_eq!(batch.premise_count(), 3);
        assert_eq!(batch.stats.premises_added, 3);
        assert!(batch.stats.queries >= queries.len());
    }

    #[test]
    fn batch_reuses_counterexamples_across_queries() {
        // An empty premise set refutes every non-trivial constancy with the
        // same two-tuple shape: after the first search, later refutations
        // must come from the witness cache.
        let mut batch = DeciderBatch::new(&OdSet::new());
        let empty = AttrSet::new();
        assert!(!batch.implies_context_constancy(&empty, AttrId(0)));
        let searches_after_first = batch.stats.searches;
        assert!(!batch.implies_context_constancy(&empty, AttrId(0)));
        assert_eq!(batch.stats.searches, searches_after_first);
        assert!(batch.stats.witness_hits >= 1);
        // Trivial queries never search at all.
        let before = batch.stats.searches;
        assert!(batch.implies_context_constancy(&AttrSet::singleton(AttrId(5)), AttrId(5)));
        assert!(batch.implies_context_compatibility(&empty, AttrId(7), AttrId(7)));
        assert_eq!(batch.stats.searches, before);
    }

    #[test]
    fn batch_drops_witnesses_invalidated_by_new_premises() {
        // The counterexample to {}: [] ↦ #1 (two rows differing on #1) stops
        // modelling ℳ once [] ↦ #1 itself becomes a premise; the query must
        // flip to implied rather than reuse the stale pattern.
        let mut batch = DeciderBatch::new(&OdSet::new());
        let empty = AttrSet::new();
        assert!(!batch.implies_context_constancy(&empty, AttrId(1)));
        batch.add_premise(OrderDependency::new(AttrList::empty(), vec![AttrId(1)]));
        assert!(batch.implies_context_constancy(&empty, AttrId(1)));
        // And a constant slots into any compatibility.
        assert!(batch.implies_context_compatibility(&empty, AttrId(0), AttrId(1)));
    }
}
