//! # od-infer — axioms, proofs, implication and witness construction for ODs
//!
//! This crate implements the primary contribution of *Fundamentals of Order
//! Dependencies* (VLDB 2012): the axiom system for lexicographic order
//! dependencies, together with the machinery around it.
//!
//! | Module | Paper material |
//! |---|---|
//! | [`odset`] | the prescribed set `ℳ` of ODs / equivalences / compatibilities |
//! | [`proof`] | Definition 6 (proofs), Definition 7 (axioms OD1–OD6), proof verification |
//! | [`theorems`] | Theorems 2–10 and 14 as axiom-level proof constructors |
//! | [`decide`] | exact implication decision `ℳ ⊨ X ↦ Y` via two-tuple patterns |
//! | [`closure`] | FD closure, constants (Definition 18), compatibility queries |
//! | [`witness`] | the completeness construction `split(ℳ)` append `swap(ℳ)` (Section 4), plus [`witness::violation_table`] materializing sampled violating pairs from the discovery validators' evidence |
//! | [`fd_bridge`] | ODs subsume FDs (Lemma 1, Theorems 13, 15, 16) |
//! | [`prover`] | the "theorem prover" sketched in the paper's future work |
//!
//! ```
//! use od_core::{OrderDependency, AttrId};
//! use od_infer::{OdSet, Prover};
//!
//! // month ↦ quarter (as in Example 1)
//! let month = AttrId(0);
//! let quarter = AttrId(1);
//! let year = AttrId(2);
//! let m = OdSet::from_ods([OrderDependency::new(vec![month], vec![quarter])]);
//!
//! // ORDER BY year, quarter, month collapses to ORDER BY year, month.
//! let goal = OrderDependency::new(vec![year, quarter, month], vec![year, month]);
//! assert!(Prover::new(&m).implies(&goal));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closure;
pub mod decide;
pub mod fd_bridge;
pub mod odset;
pub mod proof;
pub mod prover;
pub mod theorems;
pub mod witness;

pub use decide::{Decider, DeciderBatch, DeciderBatchStats, Orientation, TwoTuplePattern};
pub use odset::{Constraint, OdSet};
pub use proof::{Proof, ProofBuilder, ProofError, ProofStep, Rule};
pub use prover::{Outcome, Prover, SearchLimits};
pub use witness::witness_table;
