//! ODs subsume FDs (Section 4.2: Lemma 1, Theorems 13, 15 and 16).
//!
//! * [`fd_as_od`] / [`od_as_fd`] translate between the two worlds
//!   (Theorem 13: `X → Y` holds iff `X′ ↦ X′Y′` holds for any permutations).
//! * [`split_part`] / [`compatibility_part`] decompose an OD per Theorem 15:
//!   `X ↦ Y` holds iff `X ↦ XY` (the FD part, falsifiable only by a *split*) and
//!   `X ~ Y` (the order-compatibility part, falsifiable only by a *swap*) hold.
//! * [`prove_fd`] produces an axiom-level [`Proof`] of any FD consequence of `ℳ`,
//!   which is the constructive content of Theorem 16 ("the OD axioms are sound
//!   and complete over FDs"): Armstrong's reflexivity / augmentation /
//!   transitivity never need to be assumed — every FD derivation is replayed with
//!   OD1–OD5.

use crate::closure::{fd_closure, implied_fds};
use crate::odset::OdSet;
use crate::proof::{Proof, ProofBuilder};
use crate::theorems;
use od_core::{AttrList, AttrSet, FunctionalDependency, OrderCompatibility, OrderDependency};

/// Theorem 13: embed the FD `X → Y` as the OD `X′ ↦ X′Y′`, with `X′`, `Y′` the
/// ascending-id enumerations of the two sets.
pub fn fd_as_od(fd: &FunctionalDependency) -> OrderDependency {
    fd.to_od()
}

/// Lemma 1: the FD implied by an OD.
pub fn od_as_fd(od: &OrderDependency) -> FunctionalDependency {
    od.implied_fd()
}

/// The FD part of an OD (Theorem 15): `X ↦ XY`, violated only by splits.
pub fn split_part(od: &OrderDependency) -> OrderDependency {
    OrderDependency::new(od.lhs.clone(), od.lhs.concat(&od.rhs))
}

/// The order-compatibility part of an OD (Theorem 15): `X ~ Y`, violated only by
/// swaps.
pub fn compatibility_part(od: &OrderDependency) -> OrderCompatibility {
    od.compatibility_part()
}

/// Does `ℳ` entail the FD `X → Y`?  (Decided via attribute-set closure over the
/// FDs implied by the ODs of `ℳ` — Lemma 1 plus Armstrong completeness.)
pub fn fd_implied(m: &OdSet, goal: &FunctionalDependency) -> bool {
    goal.rhs.is_subset(&fd_closure(m, &goal.lhs))
}

/// Produce an axiom-level proof of `X′ ↦ X′Y′` (the OD embedding of the FD
/// `X → Y`) from `ℳ`, or `None` if `ℳ` does not entail the FD.
///
/// The proof replays the attribute-set closure computation: starting from
/// `X′ ↦ X′`, each FD of `ℳ` that fires during the closure is cited as its
/// originating OD (`Given`), permuted into the needed shape (Theorem 14), glued
/// on with Prefix/Normalization/Transitivity, and the final right-hand side is
/// permuted into `X′Y′`.
pub fn prove_fd(m: &OdSet, goal: &FunctionalDependency) -> Option<Proof> {
    if !fd_implied(m, goal) {
        return None;
    }
    let x_list: AttrList = goal.lhs.iter().collect();
    let y_list: AttrList = goal.rhs.iter().collect();

    let mut b = ProofBuilder::new();
    // cur: X′ ↦ C where C is the closed attribute list so far (starts as X′).
    let mut closed: AttrSet = goal.lhs;
    let mut cur = b.normalization(x_list.clone(), x_list.clone()); // X′ ↦ X′

    let ods = m.ods();
    let fds = implied_fds(m);
    // Fire FDs until the goal's right-hand side is covered (the closure loop).
    let mut progress = true;
    while progress && !goal.rhs.is_subset(&closed) {
        progress = false;
        for (od, fd) in ods.iter().zip(fds.iter()) {
            if fd.lhs.is_subset(&closed) && !fd.rhs.is_subset(&closed) {
                // Cite the OD and permute it into U′ ↦ U′V′ with U′, V′ ascending.
                let given = b.given(od.clone());
                let u: AttrList = fd.lhs.iter().collect();
                let v: AttrList = fd.rhs.iter().collect();
                let perm = theorems::permutation(&mut b, given, &u, &v); // U′ ↦ U′V′
                                                                         // C ↦ C·U′  (U′ ⊆ C, so this is Normalization).
                let c_list = b.step(cur).rhs.clone();
                let n1 = b.normalization(c_list.clone(), c_list.concat(&u));
                // C·U′ ↦ C·U′V′  (Prefix of the permuted OD with Z = C).
                let p = b.prefix(c_list.clone(), perm);
                // Chain them: X′ ↦ C ↦ C·U′ ↦ C·U′V′, then normalize to the new C.
                let t1 = b.transitivity(cur, n1);
                let t2 = b.transitivity(t1, p);
                let new_c: AttrList = b.step(t2).rhs.normalize();
                let n2 = b.normalization(b.step(t2).rhs.clone(), new_c.clone());
                cur = b.transitivity(t2, n2); // X′ ↦ new C
                closed = closed.union(fd.rhs);
                progress = true;
            }
        }
    }
    debug_assert!(
        goal.rhs.is_subset(&closed),
        "closure reached the goal (checked above)"
    );
    // cur: X′ ↦ C with set(C) ⊇ X ∪ Y.  Permute into X′ ↦ X′Y′.
    let final_step = theorems::permutation(&mut b, cur, &x_list, &y_list);
    let _ = final_step;
    Some(b.finish())
}

/// Armstrong's three inference rules, replayed inside the OD world as ready-made
/// proofs (the "FD axioms are implied by the OD axioms" half of Theorem 16).
pub mod armstrong {
    use super::*;

    /// FD Reflexivity: `Y ⊆ X ⊢ X → Y`, as a proof of `X′ ↦ X′Y′` from nothing.
    pub fn reflexivity(x: &AttrSet, y: &AttrSet) -> Option<Proof> {
        if !y.is_subset(x) {
            return None;
        }
        let x_list: AttrList = x.iter().collect();
        let y_list: AttrList = y.iter().collect();
        let mut b = ProofBuilder::new();
        // X′ and X′Y′ normalize identically when Y ⊆ X.
        b.normalization(x_list.clone(), x_list.concat(&y_list));
        Some(b.finish())
    }

    /// FD Augmentation: from `X → Y` conclude `XZ → YZ`.
    pub fn augmentation(m: &OdSet, x: &AttrSet, y: &AttrSet, z: &AttrSet) -> Option<Proof> {
        let goal = FunctionalDependency::new(x.union(*z), y.union(*z));
        prove_fd(m, &goal)
    }

    /// FD Transitivity: from `X → Y` and `Y → Z` conclude `X → Z`.
    pub fn transitivity(m: &OdSet, x: &AttrSet, z: &AttrSet) -> Option<Proof> {
        prove_fd(m, &FunctionalDependency::new(*x, *z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::Decider;
    use od_core::AttrId;

    fn od(lhs: &[u32], rhs: &[u32]) -> OrderDependency {
        OrderDependency::new(
            lhs.iter().map(|&i| AttrId(i)).collect::<AttrList>(),
            rhs.iter().map(|&i| AttrId(i)).collect::<AttrList>(),
        )
    }
    fn set(ids: &[u32]) -> AttrSet {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn theorem_15_decomposition() {
        let d = od(&[0], &[1, 2]);
        assert_eq!(split_part(&d), od(&[0], &[0, 1, 2]));
        let c = compatibility_part(&d);
        assert_eq!(c.as_ods()[0], od(&[0, 1, 2], &[1, 2, 0]));
    }

    #[test]
    fn fd_od_round_trip() {
        let fd = FunctionalDependency::new(set(&[1, 0]), set(&[2]));
        let od = fd_as_od(&fd);
        assert_eq!(
            od,
            OrderDependency::new(
                vec![AttrId(0), AttrId(1)],
                vec![AttrId(0), AttrId(1), AttrId(2)]
            )
        );
        let back = od_as_fd(&od);
        assert_eq!(back.lhs, set(&[0, 1]));
        assert_eq!(back.rhs, set(&[0, 1, 2]));
    }

    #[test]
    fn prove_fd_constructs_verifiable_proofs() {
        // ℳ: A ↦ B, [B,C] ↦ D.  FD consequence: {A, C} → {D}.
        let m = OdSet::from_ods([od(&[0], &[1]), od(&[1, 2], &[3])]);
        let goal = FunctionalDependency::new(set(&[0, 2]), set(&[3]));
        let proof = prove_fd(&m, &goal).expect("the FD is implied");
        proof
            .verify(&m.ods())
            .expect("proof must verify with the axioms only");
        // Conclusion is the OD embedding of the FD.
        let conclusion = proof.conclusion().unwrap().clone();
        assert_eq!(conclusion, fd_as_od(&goal));
        // And the decider agrees it is implied.
        assert!(Decider::new(&m).implies(&conclusion));
        // A non-consequence is rejected.
        assert!(prove_fd(&m, &FunctionalDependency::new(set(&[3]), set(&[0]))).is_none());
    }

    #[test]
    fn prove_fd_handles_trivial_goals() {
        let m = OdSet::new();
        let goal = FunctionalDependency::new(set(&[0, 1]), set(&[1]));
        let proof = prove_fd(&m, &goal).expect("trivial FD");
        proof.verify(&[]).unwrap();
        assert_eq!(proof.conclusion().unwrap(), &fd_as_od(&goal));
    }

    #[test]
    fn armstrong_rules_as_od_proofs() {
        let m = OdSet::from_ods([od(&[0], &[1]), od(&[1], &[2])]);
        let p = armstrong::reflexivity(&set(&[0, 1]), &set(&[1])).unwrap();
        p.verify(&[]).unwrap();
        assert!(armstrong::reflexivity(&set(&[0]), &set(&[1])).is_none());

        let p = armstrong::augmentation(&m, &set(&[0]), &set(&[1]), &set(&[2])).unwrap();
        p.verify(&m.ods()).unwrap();

        let p = armstrong::transitivity(&m, &set(&[0]), &set(&[2])).unwrap();
        p.verify(&m.ods()).unwrap();
        assert!(armstrong::transitivity(&m, &set(&[2]), &set(&[0])).is_none());
    }

    #[test]
    fn fd_implication_matches_decider_on_fd_shapes() {
        let m = OdSet::from_ods([od(&[0], &[1]), od(&[1, 2], &[3])]);
        let d = Decider::new(&m);
        for (lhs, rhs) in [
            (vec![0u32], vec![1u32]),
            (vec![0, 2], vec![3]),
            (vec![2], vec![3]),
            (vec![3], vec![1]),
        ] {
            let fd = FunctionalDependency::new(set(&lhs), set(&rhs));
            let od_form = fd_as_od(&fd);
            assert_eq!(
                fd_implied(&m, &fd),
                d.implies(&od_form),
                "closure-based FD implication must agree with the decider on {fd}"
            );
        }
    }
}
