//! The completeness construction of Section 4: Armstrong-style **witness
//! tables**.
//!
//! Given a set `ℳ` of ODs over an attribute universe, [`witness_table`] builds a
//! relation that
//!
//! 1. **satisfies** `ℳ` (and hence everything in `ℳ⁺`, by soundness), and
//! 2. **falsifies** every OD over the universe that is *not* in `ℳ⁺`
//!    (completeness — checked empirically by [`completeness_gaps`] up to a
//!    bounded statement size).
//!
//! The construction follows the paper's proof of Theorem 17:
//!
//! * `split(ℳ)` (Definition 15, Figure 7): for every subset `W` of the universe,
//!   two rows agreeing exactly on the FD-closure `W⁺` — this falsifies every
//!   FD-shaped OD (`X ↦ XY`) not in `ℳ⁺`, exactly as in Ullman's completeness
//!   proof for Armstrong's axioms (Theorem 16).
//! * `swap(ℳ)` (Definition 16, Figures 8–9): for every ordered pair of
//!   non-constant attributes `A`, `B` and every **context** `C` (Definition 19) —
//!   a set of attributes frozen to a single value — if `[A] ~ [B]` is not implied
//!   once the context is frozen, a two-row block realizing the swap is added.
//!   The block is obtained from the exact implication decider's counterexample,
//!   so it is guaranteed to satisfy `ℳ` while exhibiting the swap.  (The paper
//!   iterates only over *maximal* contexts and recurses; iterating over all
//!   contexts is a superset of that construction and preserves both properties.)
//! * Blocks are combined with **append** (Definition 17, Figures 4–6), which
//!   shifts value ranges so that no new splits or swaps arise across blocks
//!   (Lemma 9).
//! * Constant attributes (Definition 18) are projected out first and re-added as
//!   single-valued columns at the end (Lemma 8).

use crate::closure::{constants, fd_closure};
use crate::decide::Decider;
use crate::odset::OdSet;
use od_core::{
    AttrId, AttrList, AttrSet, OrderCompatibility, OrderDependency, Relation, Schema, Value,
};

/// Append two tables over the same schema per Definition 17: normalize both to a
/// zero minimum, then shift the second so all of its values exceed the first's.
///
/// Panics if the schemas differ or any cell is not an integer (witness tables are
/// integer-valued by construction).
pub fn append(t1: &Relation, t2: &Relation) -> Relation {
    assert_eq!(
        t1.schema(),
        t2.schema(),
        "append requires identical schemas"
    );
    let cell = |v: &Value| v.as_int().expect("witness tables hold integer cells");
    let min1 = t1
        .iter()
        .flat_map(|r| r.iter())
        .map(cell)
        .min()
        .unwrap_or(0);
    let max1 = t1
        .iter()
        .flat_map(|r| r.iter())
        .map(cell)
        .max()
        .unwrap_or(0)
        - min1;
    let min2 = t2
        .iter()
        .flat_map(|r| r.iter())
        .map(cell)
        .min()
        .unwrap_or(0);
    let shift2 = max1 + 1 - min2;

    let mut out = Relation::new(t1.schema().clone());
    for row in t1.iter() {
        out.push(row.iter().map(|v| Value::Int(cell(v) - min1)).collect())
            .expect("same arity");
    }
    for row in t2.iter() {
        out.push(row.iter().map(|v| Value::Int(cell(v) + shift2)).collect())
            .expect("same arity");
    }
    out
}

/// The `split(ℳ)` sub-table (Definition 15): for every subset `W` of the
/// universe, a two-row block with `0` on `W⁺` and `(0, 1)` elsewhere (Figure 7),
/// blocks combined with [`append`].
pub fn split_table(m: &OdSet, schema: &Schema, universe: &[AttrId]) -> Relation {
    let mut result = Relation::new(schema.clone());
    let n = universe.len();
    for mask in 0..(1u64 << n.min(20)) {
        let subset: AttrSet = universe
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, a)| *a)
            .collect();
        let closure = fd_closure(m, &subset);
        let row0 = vec![Value::Int(0); schema.arity()];
        let mut row1 = vec![Value::Int(0); schema.arity()];
        for a in universe {
            if !closure.contains(a) {
                row1[a.index()] = Value::Int(1);
            }
        }
        // Attributes outside the universe (constants) stay 0 in both rows.
        let block = Relation::from_rows(schema.clone(), vec![row0, row1]).expect("arity");
        result = if result.is_empty() {
            block
        } else {
            append(&result, &block)
        };
    }
    result
}

/// The `swap(ℳ)` sub-table (Definition 16): two-row swap blocks for every pair
/// of non-constant attributes and every context in which a swap is admissible.
pub fn swap_table(m: &OdSet, schema: &Schema, universe: &[AttrId]) -> Relation {
    let mut result = Relation::new(schema.clone());
    let non_const: Vec<AttrId> = {
        let k = constants(m);
        universe
            .iter()
            .copied()
            .filter(|a| !k.contains(a))
            .collect()
    };
    for (ai, &a) in non_const.iter().enumerate() {
        for (bi, &b) in non_const.iter().enumerate() {
            if bi <= ai {
                continue;
            }
            // Iterate over every context: a subset of the remaining non-constant attributes.
            let others: Vec<AttrId> = non_const
                .iter()
                .copied()
                .filter(|&x| x != a && x != b)
                .collect();
            let k = others.len().min(16);
            for mask in 0..(1u64 << k) {
                let context: Vec<AttrId> = others
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, x)| *x)
                    .collect();
                let mut frozen = m.clone();
                for &c in &context {
                    frozen.add_constant(c);
                }
                let d = Decider::new(&frozen);
                let compat = OrderCompatibility::new(vec![a], vec![b]);
                if d.implies_compatibility(&compat) {
                    continue;
                }
                // Find the direction that fails and materialize its counterexample.
                let pattern = compat
                    .as_ods()
                    .iter()
                    .find_map(|od| d.counterexample(od))
                    .expect("compatibility not implied, so one direction has a counterexample");
                let block = pattern.to_relation(schema);
                result = if result.is_empty() {
                    block
                } else {
                    append(&result, &block)
                };
            }
        }
    }
    result
}

/// Build the full witness table `split(ℳ)` append `swap(ℳ)` over the attributes
/// of `schema` (constants of `ℳ` are frozen to a single value per Lemma 8).
pub fn witness_table(m: &OdSet, schema: &Schema) -> Relation {
    let consts = constants(m);
    let universe: Vec<AttrId> = schema.attr_ids().filter(|a| !consts.contains(a)).collect();

    // Project the constants out of ℳ (Lemma 8).
    let projected =
        OdSet::from_ods(m.ods().iter().map(|od| {
            OrderDependency::new(od.lhs.project_out(&consts), od.rhs.project_out(&consts))
        }));

    let split = split_table(&projected, schema, &universe);
    let swap = swap_table(&projected, schema, &universe);
    let mut table = if swap.is_empty() {
        split
    } else {
        append(&split, &swap)
    };
    // Freeze the constant columns to a single value.
    for row in table.tuples_mut() {
        for c in &consts {
            row[c.index()] = Value::Int(0);
        }
    }
    table
}

/// Materialize sampled violating row pairs as a standalone witness relation:
/// the counterexample-table counterpart of the Armstrong construction above,
/// fed by the violation evidence the discovery validators now return.
///
/// Each pair becomes a two-row block holding the rows' per-column **rank
/// codes** (order-preserving integers, so blocks compose with [`append`] even
/// when the source relation holds NULLs or strings, and every within-pair
/// equality and order relation — hence every split or swap the pair witnesses
/// — survives verbatim).  The resulting table falsifies every dependency the
/// sampled pairs falsify, in as many rows as there are sampled pairs times
/// two.
pub fn violation_table(rel: &Relation, pairs: &[(usize, usize)]) -> Relation {
    let codes: Vec<Vec<u32>> = rel
        .schema()
        .attr_ids()
        .map(|a| rel.rank_column(a))
        .collect();
    let row_of =
        |t: usize| -> Vec<Value> { codes.iter().map(|col| Value::Int(col[t] as i64)).collect() };
    let mut out = Relation::new(rel.schema().clone());
    for &(s, t) in pairs {
        let block =
            Relation::from_rows(rel.schema().clone(), vec![row_of(s), row_of(t)]).expect("arity");
        out = if out.is_empty() {
            block
        } else {
            append(&out, &block)
        };
    }
    out
}

/// Enumerate every normalized OD over `universe` with each side of length at most
/// `max_len`.
pub fn enumerate_ods(universe: &[AttrId], max_len: usize) -> Vec<OrderDependency> {
    let lists = enumerate_lists(universe, max_len);
    let mut out = Vec::new();
    for lhs in &lists {
        for rhs in &lists {
            out.push(OrderDependency::new(lhs.clone(), rhs.clone()));
        }
    }
    out
}

/// All normalized lists (no repeated attribute) over `universe` of length ≤ `max_len`.
pub fn enumerate_lists(universe: &[AttrId], max_len: usize) -> Vec<AttrList> {
    let mut out = vec![AttrList::empty()];
    let mut frontier = vec![AttrList::empty()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for list in &frontier {
            for &a in universe {
                if !list.contains(a) {
                    let extended = list.with_suffix(a);
                    next.push(extended.clone());
                    out.push(extended);
                }
            }
        }
        frontier = next;
    }
    out
}

/// Empirically audit the two defining properties of the witness table against
/// the exact decider, over all ODs with sides of length ≤ `max_len`:
///
/// * returns in `.0` the implied ODs that the table *falsifies* (soundness gaps —
///   must be empty),
/// * returns in `.1` the non-implied ODs that the table *satisfies*
///   (completeness gaps — must be empty).
pub fn completeness_gaps(
    m: &OdSet,
    table: &Relation,
    universe: &[AttrId],
    max_len: usize,
) -> (Vec<OrderDependency>, Vec<OrderDependency>) {
    let d = Decider::new(m);
    let mut soundness = Vec::new();
    let mut completeness = Vec::new();
    for od in enumerate_ods(universe, max_len) {
        let implied = d.implies(&od);
        let holds = od_core::check::od_holds(table, &od);
        if implied && !holds {
            soundness.push(od);
        } else if !implied && holds {
            completeness.push(od);
        }
    }
    (soundness, completeness)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn od(lhs: &[u32], rhs: &[u32]) -> OrderDependency {
        OrderDependency::new(
            lhs.iter().map(|&i| AttrId(i)).collect::<AttrList>(),
            rhs.iter().map(|&i| AttrId(i)).collect::<AttrList>(),
        )
    }

    fn schema(n: usize) -> Schema {
        let mut s = Schema::new("witness");
        for i in 0..n {
            s.add_attr(format!("a{i}"));
        }
        s
    }

    #[test]
    fn append_matches_figures_4_to_6() {
        // Figure 4 and Figure 5 appended give Figure 6.
        let s = schema(4);
        let t1 = Relation::from_rows(
            s.clone(),
            vec![
                vec![0, 0, 0, 0].into_iter().map(Value::Int).collect(),
                vec![0, 0, 1, 1].into_iter().map(Value::Int).collect(),
            ],
        )
        .unwrap();
        let t2 = Relation::from_rows(
            s.clone(),
            vec![
                vec![0, 1, 0, 0].into_iter().map(Value::Int).collect(),
                vec![1, 0, 0, 0].into_iter().map(Value::Int).collect(),
            ],
        )
        .unwrap();
        let combined = append(&t1, &t2);
        let expect: Vec<Vec<i64>> = vec![
            vec![0, 0, 0, 0],
            vec![0, 0, 1, 1],
            vec![2, 3, 2, 2],
            vec![3, 2, 2, 2],
        ];
        let got: Vec<Vec<i64>> = combined
            .iter()
            .map(|r| r.iter().map(|v| v.as_int().unwrap()).collect())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn append_introduces_no_cross_block_splits_or_swaps() {
        // Lemma 9: all values of the first block are below all values of the second.
        let s = schema(2);
        let t1 = Relation::from_rows(
            s.clone(),
            vec![
                vec![Value::Int(5), Value::Int(7)],
                vec![Value::Int(6), Value::Int(5)],
            ],
        )
        .unwrap();
        let t2 = Relation::from_rows(
            s.clone(),
            vec![
                vec![Value::Int(-3), Value::Int(0)],
                vec![Value::Int(2), Value::Int(-1)],
            ],
        )
        .unwrap();
        let c = append(&t1, &t2);
        let max1: i64 = c.tuples()[..2]
            .iter()
            .flat_map(|r| r.iter())
            .map(|v| v.as_int().unwrap())
            .max()
            .unwrap();
        let min2: i64 = c.tuples()[2..]
            .iter()
            .flat_map(|r| r.iter())
            .map(|v| v.as_int().unwrap())
            .min()
            .unwrap();
        assert!(max1 < min2);
    }

    #[test]
    fn witness_table_satisfies_and_completes_small_sets() {
        let s = schema(3);
        let m = OdSet::from_ods([od(&[0], &[1])]);
        let table = witness_table(&m, &s);
        assert!(m.satisfied_by(&table), "witness table must satisfy ℳ");
        let universe: Vec<AttrId> = s.attr_ids().collect();
        let (soundness, completeness) = completeness_gaps(&m, &table, &universe, 2);
        assert!(soundness.is_empty(), "implied ODs falsified: {soundness:?}");
        assert!(
            completeness.is_empty(),
            "non-implied ODs not falsified: {completeness:?}"
        );
    }

    #[test]
    fn witness_table_with_constants() {
        let s = schema(3);
        let mut m = OdSet::new();
        m.add_constant(AttrId(2));
        m.add_od(od(&[0], &[1]));
        let table = witness_table(&m, &s);
        assert!(m.satisfied_by(&table));
        let universe: Vec<AttrId> = s.attr_ids().collect();
        let (soundness, completeness) = completeness_gaps(&m, &table, &universe, 2);
        assert!(soundness.is_empty(), "{soundness:?}");
        assert!(completeness.is_empty(), "{completeness:?}");
    }

    #[test]
    fn witness_table_for_empty_m_falsifies_all_nontrivial_ods() {
        let s = schema(2);
        let m = OdSet::new();
        let table = witness_table(&m, &s);
        assert!(!od_core::check::od_holds(&table, &od(&[0], &[1])));
        assert!(!od_core::check::od_holds(&table, &od(&[1], &[0])));
        assert!(od_core::check::od_holds(&table, &od(&[0, 1], &[0])));
        let universe: Vec<AttrId> = s.attr_ids().collect();
        let (soundness, completeness) = completeness_gaps(&m, &table, &universe, 2);
        assert!(soundness.is_empty());
        assert!(completeness.is_empty());
    }

    #[test]
    fn violation_table_preserves_the_witnessed_violations() {
        // income ↦ bracket fails by swap (rows 1, 2) and bracket ↦ income by
        // split (rows 0, 2): the materialized pair tables must refute them too.
        let mut s = Schema::new("t");
        let income = s.add_attr("income");
        let bracket = s.add_attr("bracket");
        let rel = Relation::from_rows(
            s,
            vec![
                vec![Value::Int(10), Value::Int(1)],
                vec![Value::Int(20), Value::Int(2)],
                vec![Value::Int(30), Value::Int(1)],
            ],
        )
        .unwrap();
        let od = OrderDependency::new(vec![income], vec![bracket]);
        let violations = od_core::check::collect_violations(&rel, &od, 4);
        assert!(!violations.is_empty());
        let pairs: Vec<(usize, usize)> = violations.iter().map(|v| v.pair()).collect();
        let table = violation_table(&rel, &pairs);
        assert_eq!(table.len(), 2 * pairs.len());
        assert!(
            !od_core::check::od_holds(&table, &od),
            "witness table must refute the violated OD"
        );
        // A dependency the pairs do not witness against stays satisfied: the
        // blocks are append-composed, so no cross-block violations arise.
        let compatible = OrderDependency::new(vec![income], vec![income, bracket]);
        assert_eq!(
            od_core::check::od_holds(&table, &compatible),
            od_core::check::od_holds(&rel, &compatible)
        );
        // An empty sample produces an empty table.
        assert!(violation_table(&rel, &[]).is_empty());
    }

    #[test]
    fn enumerate_lists_counts() {
        let universe: Vec<AttrId> = (0..3).map(AttrId).collect();
        // 1 empty + 3 singletons + 6 pairs = 10 normalized lists of length ≤ 2.
        assert_eq!(enumerate_lists(&universe, 2).len(), 10);
        // Full permutations: 10 + 6 triples... length ≤ 3 adds 6 more.
        assert_eq!(enumerate_lists(&universe, 3).len(), 16);
        assert_eq!(enumerate_ods(&universe, 1).len(), 16);
    }
}
