//! Derived theorems (Section 3.3 of the paper), implemented as *proof
//! constructors*: each function appends to a [`ProofBuilder`] a derivation of the
//! theorem's conclusion **using only the six axioms**, mirroring the paper's own
//! derivations, and returns the index of the concluding step.  Because the
//! resulting proofs are replayed by [`crate::Proof::verify`], the theorems carry
//! no trusted code of their own.
//!
//! Implemented theorems (paper numbering):
//!
//! | Theorem | Statement |
//! |---|---|
//! | 2 Union | `X ↦ Y`, `X ↦ Z` ⊢ `X ↦ YZ` |
//! | 3 Augmentation | `X ↦ Y` ⊢ `XZ ↦ Y` |
//! | 4 Shift | `X ↔ Y`, `V ↦ W` ⊢ `XV ↦ YW` |
//! | 5 Decomposition | `X ↦ YZ` ⊢ `X ↦ Y` |
//! | 6 Replace | `X ↔ Y` ⊢ `ZXW ↔ ZYW` |
//! | 7 Eliminate | `X ↦ Y` ⊢ `ZXYW ↔ ZXW` |
//! | 8 Left Eliminate | `X ↦ Y` ⊢ `ZYXW ↔ ZXW` |
//! | 10 Path | `X ↦ VW`, `V ↦ Z` ⊢ `X ↦ VZW` |
//! | 14 Permutation | `X ↦ Y` ⊢ `X′ ↦ X′Y′` for permutations `X′`, `Y′` |
//!
//! plus the auxiliary **Insert** lemma (`X ↦ R` ⊢ `XV ↔ XRV`), which is the heart
//! of the paper's Shift proof and is reused by Eliminate and Path.  Theorems 11
//! (Partition) and 12 (Downward Closure) are available as dedicated rules on the
//! builder (see [`ProofBuilder::partition`] / [`ProofBuilder::downward_closure`]);
//! the paper derives them from the Chain axiom.

use crate::proof::ProofBuilder;
use od_core::{AttrId, AttrList};

/// Theorem 3 — Augmentation: from step `p : X ↦ Y`, derive `XZ ↦ Y`.
pub fn augmentation(b: &mut ProofBuilder, p: usize, z: &AttrList) -> usize {
    let x = b.step(p).lhs.clone();
    let xz = x.concat(z);
    let s1 = b.reflexivity(xz, x); // XZ ↦ X
    b.transitivity(s1, p) // XZ ↦ Y
}

/// Theorem 2 — Union: from `p1 : X ↦ Y` and `p2 : X ↦ Z` (same left side),
/// derive `X ↦ YZ`.  This is the paper's three-step Prefix/Suffix/Transitivity
/// derivation.
pub fn union(b: &mut ProofBuilder, p1: usize, p2: usize) -> usize {
    assert_eq!(
        b.step(p1).lhs,
        b.step(p2).lhs,
        "Union requires a common left-hand side"
    );
    let y = b.step(p1).rhs.clone();
    let s3 = b.prefix(y, p2); // YX ↦ YZ
    let s4 = b.suffix_forward(p1); // X ↦ YX
    b.transitivity(s4, s3) // X ↦ YZ
}

/// Theorem 5 — Decomposition: from `p : X ↦ YZ`, derive `X ↦ Y` where `y` is a
/// prefix of the premise's right-hand side.
pub fn decomposition(b: &mut ProofBuilder, p: usize, y: &AttrList) -> usize {
    let rhs = b.step(p).rhs.clone();
    assert!(
        y.is_prefix_of(&rhs),
        "Decomposition target must be a prefix of the right-hand side"
    );
    let s1 = b.reflexivity(rhs, y.clone()); // YZ ↦ Y
    b.transitivity(p, s1) // X ↦ Y
}

/// Auxiliary **Insert** lemma: from `p : X ↦ R`, derive the equivalence
/// `XV ↔ XRV` (returned as `(forward, backward)` step indices:
/// `XV ↦ XRV` and `XRV ↦ XV`).
///
/// This captures the key manoeuvre of the paper's proof of Theorem 4 (Shift):
/// a list `R` that is ordered by a preceding context `X` can be inserted after
/// (or removed from behind) that context without affecting the induced order.
pub fn insert(b: &mut ProofBuilder, p: usize, v: &AttrList) -> (usize, usize) {
    let x = b.step(p).lhs.clone();
    let r = b.step(p).rhs.clone();
    let xv = x.concat(v);
    let xr = x.concat(&r);
    let xrv = xr.concat(v);
    let xrxv = xr.concat(&xv);
    let xxv = x.concat(&xv);

    let i1 = b.reflexivity(xv.clone(), x.clone()); // XV ↦ X
    let i2 = b.transitivity(i1, p); // XV ↦ R
    let i3 = b.prefix(x.clone(), i2); // XXV ↦ XR
    let i4 = b.normalization(xv.clone(), xxv); // XV ↦ XXV
    let i5 = b.transitivity(i4, i3); // XV ↦ XR
    let i6 = b.suffix_forward(i5); // XV ↦ XRXV
    let i7 = b.normalization(xrxv.clone(), xrv.clone()); // XRXV ↦ XRV
    let fwd = b.transitivity(i6, i7); // XV ↦ XRV
    let i9 = b.normalization(xrv, xrxv); // XRV ↦ XRXV
    let i10 = b.suffix_backward(i5); // XRXV ↦ XV
    let bwd = b.transitivity(i9, i10); // XRV ↦ XV
    (fwd, bwd)
}

/// Theorem 4 — Shift: from the equivalence `X ↔ Y` (steps `p_xy : X ↦ Y` and
/// `p_yx : Y ↦ X`) and `p_vw : V ↦ W`, derive `XV ↦ YW`.
pub fn shift(b: &mut ProofBuilder, p_xy: usize, p_yx: usize, p_vw: usize) -> usize {
    assert_eq!(
        b.step(p_xy).lhs,
        b.step(p_yx).rhs,
        "Shift premises must form an equivalence"
    );
    assert_eq!(
        b.step(p_xy).rhs,
        b.step(p_yx).lhs,
        "Shift premises must form an equivalence"
    );
    let y = b.step(p_xy).rhs.clone();
    let v = b.step(p_vw).lhs.clone();

    // YV ↔ YXV  (insert X, which Y orders, behind Y).
    let (_yv_to_yxv, yxv_to_yv) = insert(b, p_yx, &v);
    // XV ↦ Y, then Suffix: XV ↦ YXV.
    let aug = augmentation(b, p_xy, &v); // XV ↦ Y
    let sf = b.suffix_forward(aug); // XV ↦ Y·XV = YXV
    let t1 = b.transitivity(sf, yxv_to_yv); // XV ↦ YV
    let pv = b.prefix(y, p_vw); // YV ↦ YW
    b.transitivity(t1, pv) // XV ↦ YW
}

/// Theorem 6 — Replace: from the equivalence `X ↔ Y` (steps `p_xy`, `p_yx`),
/// derive `ZXW ↔ ZYW` (returned as `(ZXW ↦ ZYW, ZYW ↦ ZXW)`).
pub fn replace(
    b: &mut ProofBuilder,
    p_xy: usize,
    p_yx: usize,
    z: &AttrList,
    w: &AttrList,
) -> (usize, usize) {
    let r1 = b.reflexivity(w.clone(), w.clone()); // W ↦ W
    let f = shift(b, p_xy, p_yx, r1); // XW ↦ YW
    let r2 = b.reflexivity(w.clone(), w.clone());
    let g = shift(b, p_yx, p_xy, r2); // YW ↦ XW
    let pf = b.prefix(z.clone(), f); // ZXW ↦ ZYW
    let pg = b.prefix(z.clone(), g); // ZYW ↦ ZXW
    (pf, pg)
}

/// Theorem 7 — Eliminate: from `p : X ↦ Y`, derive `ZXYW ↔ ZXW`
/// (returned as `(ZXYW ↦ ZXW, ZXW ↦ ZXYW)`).
///
/// This is the rewrite that drops a *functionally following* list from an
/// `ORDER BY`: with `[month] ↦ [quarter]`, `ORDER BY year, month, quarter`
/// reduces to `ORDER BY year, month`.
pub fn eliminate(b: &mut ProofBuilder, p: usize, z: &AttrList, w: &AttrList) -> (usize, usize) {
    let (ins_f, ins_b) = insert(b, p, w); // XW ↔ XYW
    let fwd = b.prefix(z.clone(), ins_b); // ZXYW ↦ ZXW
    let bwd = b.prefix(z.clone(), ins_f); // ZXW ↦ ZXYW
    (fwd, bwd)
}

/// Theorem 8 — Left Eliminate: from `p : X ↦ Y`, derive `ZYXW ↔ ZXW`
/// (returned as `(ZYXW ↦ ZXW, ZXW ↦ ZYXW)`).
///
/// This is the rewrite that drops a list *ordered by what follows it*: with
/// `[month] ↦ [quarter]`, `ORDER BY year, quarter, month` reduces to
/// `ORDER BY year, month` — the rewrite FDs alone cannot justify (Example 1).
pub fn left_eliminate(
    b: &mut ProofBuilder,
    p: usize,
    z: &AttrList,
    w: &AttrList,
) -> (usize, usize) {
    // X ↔ YX by Suffix, then Replace X by YX inside Z·_·W.
    let sf = b.suffix_forward(p); // X ↦ YX
    let sb = b.suffix_backward(p); // YX ↦ X
    let (zxw_to_zyxw, zyxw_to_zxw) = replace(b, sf, sb, z, w);
    (zyxw_to_zxw, zxw_to_zyxw)
}

/// Theorem 10 — Path: from `p1 : X ↦ VW` and `p2 : V ↦ Z`, derive `X ↦ VZW`.
///
/// This is the rule behind Example 4: paths through the Figure 2 date hierarchy
/// can be refined by inserting attributes that are ordered by a prefix of the
/// path.
pub fn path(b: &mut ProofBuilder, p1: usize, p2: usize, v: &AttrList, w: &AttrList) -> usize {
    assert_eq!(
        &b.step(p2).lhs,
        v,
        "Path: p2 must have V as its left-hand side"
    );
    assert_eq!(
        b.step(p1).rhs,
        v.concat(w),
        "Path: p1's right-hand side must be the concatenation VW"
    );
    let z = b.step(p2).rhs.clone();
    // V ↦ VZ by Union(V ↦ V, V ↦ Z).
    let rv = b.reflexivity(v.clone(), v.clone()); // V ↦ V
    let u = union(b, rv, p2); // V ↦ VZ
                              // VW ↔ V·(VZ)·W, then normalize the duplicate V away: VW ↦ VZW.
    let (ins_f, _ins_b) = insert(b, u, w); // VW ↦ V·VZ·W
    let vvzw = v.concat(v).concat(&z).concat(w);
    let vzw = v.concat(&z).concat(w);
    let n1 = b.normalization(vvzw, vzw); // VVZW ↦ VZW
    let t = b.transitivity(ins_f, n1); // VW ↦ VZW
    b.transitivity(p1, t) // X ↦ VZW
}

/// Theorem 14 — Permutation: from `p : X ↦ Y`, derive `X′ ↦ X′Y′` where `x_perm`
/// is a permutation of `set(X)` and `y_perm` is any list over `set(X) ∪ set(Y)`.
///
/// This is the rule that makes the FD fragment of the OD world insensitive to
/// list order (Theorems 13 and 16): `X → Y` as an FD corresponds to *every*
/// `X′ ↦ X′Y′`.
pub fn permutation(b: &mut ProofBuilder, p: usize, x_perm: &AttrList, y_perm: &AttrList) -> usize {
    let x = b.step(p).lhs.clone();
    let y = b.step(p).rhs.clone();
    assert_eq!(
        x_perm.to_set(),
        x.to_set(),
        "Permutation: x_perm must be a permutation of the premise's left-hand side"
    );
    let mut allowed = x.to_set();
    allowed.extend(y.to_set());
    assert!(
        y_perm.iter().all(|a| allowed.contains(a)),
        "Permutation: y_perm may only mention attributes of the premise"
    );

    // Step 0: strengthen the premise to the FD shape X ↦ XY via Union(X ↦ X, X ↦ Y).
    let rx = b.reflexivity(x.clone(), x.clone()); // X ↦ X
    let fd_shape = union(b, rx, p); // X ↦ XY
    let xy = b.step(fd_shape).rhs.clone();

    // Claim B: X′ ↦ X′·XY via Norm + Prefix.
    let b1 = b.normalization(x_perm.clone(), x_perm.concat(&x)); // X′ ↦ X′X
    let b2 = b.prefix(x_perm.clone(), fd_shape); // X′X ↦ X′XY
    let b3 = b.transitivity(b1, b2); // X′ ↦ X′XY

    // Claim A: for each attribute of y_perm, derive X′ ↦ X′A, then Union them in
    // the order of y_perm and normalize.
    if y_perm.is_empty() {
        return b.normalization(x_perm.clone(), x_perm.concat(y_perm));
    }
    let base = b3; // X′ ↦ X′·XY is the working premise for decompositions.
    let full_rhs = x_perm.concat(&xy);
    let mut single_steps: Vec<usize> = Vec::with_capacity(y_perm.len());
    for a in y_perm.iter() {
        if x_perm.contains(a) {
            // Attributes already in X′ are redundant on the right: X′ ↦ X′A by OD3.
            single_steps.push(b.normalization(x_perm.clone(), x_perm.with_suffix(a)));
            continue;
        }
        // P = prefix of X′·XY before the first occurrence of `a` (P starts with X′).
        let pos = full_rhs
            .position(a)
            .expect("attribute occurs in the premise");
        let pfx = full_rhs.prefix(pos);
        let pa = full_rhs.prefix(pos + 1);
        let d1 = decomposition(b, base, &pa); // X′ ↦ P·A
        let d2 = decomposition(b, base, &pfx); // X′ ↦ P
                                               // Insert lemma with premise X′ ↦ P: X′A ↔ X′·P·A; since P starts with X′,
                                               // normalization bridges P·A and X′·P·A.
        let (_ins_f, ins_b) = insert(b, d2, &AttrList::new([a])); // X′·P·A ↦ X′A
        let xpa = x_perm.concat(&pfx).with_suffix(a);
        let n_to = b.normalization(pa.clone(), xpa.clone()); // P·A ↦ X′·P·A
        let t_back = b.transitivity(n_to, ins_b); // P·A ↦ X′·A
        let s = b.transitivity(d1, t_back); // X′ ↦ X′·A
        single_steps.push(s);
    }
    // Union the singletons in y_perm order.
    let mut acc = single_steps[0];
    for &s in &single_steps[1..] {
        acc = union(b, acc, s);
    }
    // Normalize the accumulated right-hand side to X′Y′.
    let acc_rhs = b.step(acc).rhs.clone();
    let target = x_perm.concat(y_perm);
    let n = b.normalization(acc_rhs, target);
    b.transitivity(acc, n)
}

/// Convenience: the list `[a]`.
pub fn single(a: AttrId) -> AttrList {
    AttrList::new([a])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::Decider;
    use crate::odset::OdSet;
    use od_core::{AttrId, OrderDependency};

    fn l(ids: &[u32]) -> AttrList {
        ids.iter().map(|&i| AttrId(i)).collect()
    }
    fn od(lhs: &[u32], rhs: &[u32]) -> OrderDependency {
        OrderDependency::new(l(lhs), l(rhs))
    }

    /// Helper: build a proof from premises with `f`, verify it against the
    /// premises, check the expected conclusion, and confirm the conclusion is
    /// semantically implied (soundness cross-check with the decider).
    fn check(
        premises: &[OrderDependency],
        expected: OrderDependency,
        f: impl FnOnce(&mut ProofBuilder, &[usize]) -> usize,
    ) {
        let mut b = ProofBuilder::new();
        let idx: Vec<usize> = premises.iter().map(|p| b.given(p.clone())).collect();
        let last = f(&mut b, &idx);
        assert_eq!(b.step(last), &expected, "conclusion mismatch");
        let proof = b.finish();
        proof
            .verify(premises)
            .expect("theorem expansion must verify against the axioms");
        let m = OdSet::from_ods(premises.iter().cloned());
        assert!(
            Decider::new(&m).implies(&expected),
            "theorem conclusion must be semantically implied"
        );
    }

    #[test]
    fn union_theorem_2() {
        check(
            &[od(&[0], &[1]), od(&[0], &[2])],
            od(&[0], &[1, 2]),
            |b, p| union(b, p[0], p[1]),
        );
    }

    #[test]
    fn augmentation_theorem_3() {
        check(&[od(&[0], &[1])], od(&[0, 2], &[1]), |b, p| {
            augmentation(b, p[0], &l(&[2]))
        });
    }

    #[test]
    fn decomposition_theorem_5() {
        check(&[od(&[0], &[1, 2])], od(&[0], &[1]), |b, p| {
            decomposition(b, p[0], &l(&[1]))
        });
    }

    #[test]
    fn insert_lemma_both_directions() {
        check(&[od(&[0], &[1])], od(&[0, 2], &[0, 1, 2]), |b, p| {
            insert(b, p[0], &l(&[2])).0
        });
        check(&[od(&[0], &[1])], od(&[0, 1, 2], &[0, 2]), |b, p| {
            insert(b, p[0], &l(&[2])).1
        });
    }

    #[test]
    fn shift_theorem_4() {
        // X = [0], Y = [1] (equivalent), V = [2], W = [3]: XV ↦ YW.
        check(
            &[od(&[0], &[1]), od(&[1], &[0]), od(&[2], &[3])],
            od(&[0, 2], &[1, 3]),
            |b, p| shift(b, p[0], p[1], p[2]),
        );
    }

    #[test]
    fn replace_theorem_6() {
        check(
            &[od(&[0], &[1]), od(&[1], &[0])],
            od(&[4, 0, 5], &[4, 1, 5]),
            |b, p| replace(b, p[0], p[1], &l(&[4]), &l(&[5])).0,
        );
        check(
            &[od(&[0], &[1]), od(&[1], &[0])],
            od(&[4, 1, 5], &[4, 0, 5]),
            |b, p| replace(b, p[0], p[1], &l(&[4]), &l(&[5])).1,
        );
    }

    #[test]
    fn eliminate_theorem_7() {
        // month ↦ quarter: [year, month, quarter] ↔ [year, month]
        // (year = 0, month = 1, quarter = 2, nothing after).
        check(&[od(&[1], &[2])], od(&[0, 1, 2], &[0, 1]), |b, p| {
            eliminate(b, p[0], &l(&[0]), &AttrList::empty()).0
        });
        check(&[od(&[1], &[2])], od(&[0, 1], &[0, 1, 2]), |b, p| {
            eliminate(b, p[0], &l(&[0]), &AttrList::empty()).1
        });
    }

    #[test]
    fn left_eliminate_theorem_8() {
        // month ↦ quarter: [year, quarter, month] ↔ [year, month] — the Example 1
        // rewrite that FDs alone cannot justify.
        check(&[od(&[1], &[2])], od(&[0, 2, 1], &[0, 1]), |b, p| {
            left_eliminate(b, p[0], &l(&[0]), &AttrList::empty()).0
        });
        check(&[od(&[1], &[2])], od(&[0, 1], &[0, 2, 1]), |b, p| {
            left_eliminate(b, p[0], &l(&[0]), &AttrList::empty()).1
        });
    }

    #[test]
    fn path_theorem_10() {
        // date ↦ [year, month], year ↦ quarter  ⊢  date ↦ [year, quarter, month].
        // (date = 0, year = 1, month = 2, quarter = 3.)
        check(
            &[od(&[0], &[1, 2]), od(&[1], &[3])],
            od(&[0], &[1, 3, 2]),
            |b, p| path(b, p[0], p[1], &l(&[1]), &l(&[2])),
        );
    }

    #[test]
    fn permutation_theorem_14() {
        // The FD {A,B} → {C,D} as the OD [A,B] ↦ [A,B,C,D] yields any permuted form.
        check(
            &[od(&[0, 1], &[2, 3])],
            od(&[1, 0], &[1, 0, 3, 2]),
            |b, p| permutation(b, p[0], &l(&[1, 0]), &l(&[3, 2])),
        );
        // Also with attributes of X reused on the right.
        check(&[od(&[0, 1], &[2])], od(&[1, 0], &[1, 0, 2, 0]), |b, p| {
            permutation(b, p[0], &l(&[1, 0]), &l(&[2, 0]))
        });
    }

    #[test]
    fn partition_and_downward_closure_rules() {
        // Partition (Theorem 11): X ↦ Y, X ↦ Z, set(Y)=set(Z) ⊢ Y ↦ Z.
        let premises = [od(&[0], &[1, 2]), od(&[0], &[2, 1])];
        let mut b = ProofBuilder::new();
        let p1 = b.given(premises[0].clone());
        let p2 = b.given(premises[1].clone());
        let c = b.partition(p1, p2);
        assert_eq!(b.step(c), &od(&[1, 2], &[2, 1]));
        let proof = b.finish();
        proof.verify(&premises).unwrap();
        assert!(
            Decider::new(&OdSet::from_ods(premises.iter().cloned())).implies(&od(&[1, 2], &[2, 1]))
        );

        // Downward Closure (Theorem 12): X ~ YZ ⊢ X ~ Y.
        let x = l(&[0]);
        let y = l(&[1]);
        let z = l(&[2]);
        let compat_yz = od_core::OrderCompatibility::new(x.clone(), y.concat(&z));
        let [g1, g2] = compat_yz.as_ods();
        let premises = [g1.clone(), g2.clone()];
        let mut b = ProofBuilder::new();
        let s1 = b.given(g1);
        let s2 = b.given(g2);
        let c = b.downward_closure(x.clone(), y.clone(), z, s1, s2, false);
        let expected = od_core::OrderCompatibility::new(x, y).as_ods()[0].clone();
        assert_eq!(b.step(c), &expected);
        let proof = b.finish();
        proof.verify(&premises).unwrap();
        assert!(Decider::new(&OdSet::from_ods(premises.iter().cloned())).implies(&expected));
    }
}
