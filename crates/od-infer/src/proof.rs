//! Proof objects for the OD axiom system (Definition 6).
//!
//! A [`Proof`] is a sequence of [`ProofStep`]s; each step concludes an
//! [`OrderDependency`] and is justified either by membership in the prescribed
//! set `ℳ` ([`Rule::Given`]) or by an application of one of the six axioms
//! OD1–OD6 (Definition 7) to earlier steps.  [`Proof::verify`] replays the proof
//! and checks every step structurally, so proofs produced by the higher-level
//! theorem constructors (`theorems` module) and by the prover can be validated
//! independently of how they were produced — the proof checker is the trusted
//! kernel, everything else is untrusted search.
//!
//! Notes on how the axioms are represented:
//!
//! * **Reflexivity (OD1)** `XY ↦ X`: the conclusion's right-hand side must be a
//!   prefix of its left-hand side.
//! * **Prefix (OD2)**: the rule application records the prepended list `Z`.
//! * **Normalization (OD3)** is checked in its exhaustively-applied form: the two
//!   sides must have the same normalization (every single application of OD3
//!   removes one occurrence of a list whose attributes all occur earlier, and the
//!   reflexive–transitive closure of such removals/insertions is exactly
//!   "equal normalizations").
//! * **Suffix (OD5)** `X ↦ Y ⊢ X ↔ YX`: a step may conclude either direction.
//! * **Chain (OD6)** applications carry their instantiation (`X`, `Y₁ … Yₙ`, `Z`)
//!   explicitly; the checker verifies that both ODs of every required order
//!   compatibility appear among the premises and that the conclusion is one of
//!   the two ODs of `X ~ Z`.
//! * Theorems 11 and 12 (Partition, Downward Closure) may also appear as steps;
//!   they are derived in the paper from the Chain axiom, and are checked here
//!   against their statement patterns (see `theorems`).

use od_core::{AttrList, OrderCompatibility, OrderDependency};
use std::collections::BTreeSet;
use std::fmt;

/// Justification of a proof step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rule {
    /// The OD is one of the prescribed dependencies in `ℳ`.
    Given,
    /// OD1 — Reflexivity: `XY ↦ X`.
    Reflexivity,
    /// OD2 — Prefix: from `X ↦ Y` infer `ZX ↦ ZY`; `z` is the prepended list.
    Prefix {
        /// The list prepended to both sides.
        z: AttrList,
    },
    /// OD3 — Normalization (exhaustive form): `L₁ ↦ L₂` with equal normalizations.
    Normalization,
    /// OD4 — Transitivity: from `X ↦ Y` and `Y ↦ Z` infer `X ↦ Z`.
    Transitivity,
    /// OD5 — Suffix: from `X ↦ Y` infer `X ↦ YX` or `YX ↦ X`.
    Suffix,
    /// OD6 — Chain, instantiated with `x`, the chain `ys = Y₁ … Yₙ` and `z`.
    Chain {
        /// The list `X`.
        x: AttrList,
        /// The intermediate lists `Y₁ … Yₙ` (non-empty).
        ys: Vec<AttrList>,
        /// The list `Z`.
        z: AttrList,
    },
    /// Theorem 11 — Partition: from `X ↦ Y`, `X ↦ Z` with `set(Y) = set(Z)`,
    /// infer `Y ↔ Z` (derived from the Chain axiom in the paper).
    Partition,
    /// Theorem 12 — Downward Closure: from `X ~ YZ` infer `X ~ Y` (derived from
    /// Partition in the paper).  Premises/conclusion are the compatibility ODs.
    DownwardClosure {
        /// The list `X`.
        x: AttrList,
        /// The list `Y` kept by the conclusion.
        y: AttrList,
        /// The dropped tail `Z`.
        z: AttrList,
    },
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::Given => write!(f, "Given"),
            Rule::Reflexivity => write!(f, "OD1 Reflexivity"),
            Rule::Prefix { z } => write!(f, "OD2 Prefix[{z}]"),
            Rule::Normalization => write!(f, "OD3 Normalization"),
            Rule::Transitivity => write!(f, "OD4 Transitivity"),
            Rule::Suffix => write!(f, "OD5 Suffix"),
            Rule::Chain { .. } => write!(f, "OD6 Chain"),
            Rule::Partition => write!(f, "Thm 11 Partition"),
            Rule::DownwardClosure { .. } => write!(f, "Thm 12 Downward Closure"),
        }
    }
}

/// One step of a proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStep {
    /// The OD concluded by this step.
    pub conclusion: OrderDependency,
    /// The rule justifying the step.
    pub rule: Rule,
    /// Indices (into the proof) of the premise steps the rule is applied to.
    pub premises: Vec<usize>,
}

/// Errors reported by [`Proof::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// A premise index referred to this or a later step.
    ForwardReference {
        /// The offending step.
        step: usize,
    },
    /// A `Given` step concluded an OD not present in `ℳ`.
    NotGiven {
        /// The offending step.
        step: usize,
    },
    /// A rule application did not match its structural side conditions.
    InvalidApplication {
        /// The offending step.
        step: usize,
        /// The rule that failed to validate.
        rule: String,
    },
    /// The proof is empty.
    Empty,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::ForwardReference { step } => {
                write!(f, "step {step} references a step that does not precede it")
            }
            ProofError::NotGiven { step } => {
                write!(f, "step {step} claims to be a premise of ℳ but is not")
            }
            ProofError::InvalidApplication { step, rule } => {
                write!(f, "step {step} is not a valid application of {rule}")
            }
            ProofError::Empty => write!(f, "proof has no steps"),
        }
    }
}

impl std::error::Error for ProofError {}

/// A checked sequence of inference steps deriving its last conclusion from `ℳ`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Proof {
    steps: Vec<ProofStep>,
}

impl Proof {
    /// The steps, in order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the proof has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The final conclusion, if any.
    pub fn conclusion(&self) -> Option<&OrderDependency> {
        self.steps.last().map(|s| &s.conclusion)
    }

    /// Verify every step against the prescribed ODs `given` (already expanded to
    /// plain ODs, e.g. via [`crate::OdSet::ods`]).
    pub fn verify(&self, given: &[OrderDependency]) -> Result<(), ProofError> {
        if self.steps.is_empty() {
            return Err(ProofError::Empty);
        }
        let given_set: BTreeSet<&OrderDependency> = given.iter().collect();
        for (i, step) in self.steps.iter().enumerate() {
            if step.premises.iter().any(|&p| p >= i) {
                return Err(ProofError::ForwardReference { step: i });
            }
            let prem: Vec<&OrderDependency> = step
                .premises
                .iter()
                .map(|&p| &self.steps[p].conclusion)
                .collect();
            let ok = match &step.rule {
                Rule::Given => given_set.contains(&step.conclusion),
                Rule::Reflexivity => {
                    prem.is_empty() && step.conclusion.rhs.is_prefix_of(&step.conclusion.lhs)
                }
                Rule::Prefix { z } => {
                    prem.len() == 1
                        && step.conclusion.lhs == z.concat(&prem[0].lhs)
                        && step.conclusion.rhs == z.concat(&prem[0].rhs)
                }
                Rule::Normalization => {
                    prem.is_empty()
                        && step.conclusion.lhs.normalize() == step.conclusion.rhs.normalize()
                }
                Rule::Transitivity => {
                    prem.len() == 2
                        && prem[0].rhs == prem[1].lhs
                        && step.conclusion.lhs == prem[0].lhs
                        && step.conclusion.rhs == prem[1].rhs
                }
                Rule::Suffix => {
                    prem.len() == 1 && {
                        let x = &prem[0].lhs;
                        let y = &prem[0].rhs;
                        let yx = y.concat(x);
                        (step.conclusion.lhs == *x && step.conclusion.rhs == yx)
                            || (step.conclusion.lhs == yx && step.conclusion.rhs == *x)
                    }
                }
                Rule::Chain { x, ys, z } => Self::check_chain(x, ys, z, &prem, &step.conclusion),
                Rule::Partition => {
                    prem.len() == 2
                        && prem[0].lhs == prem[1].lhs
                        && prem[0].rhs.to_set() == prem[1].rhs.to_set()
                        && ((step.conclusion.lhs == prem[0].rhs
                            && step.conclusion.rhs == prem[1].rhs)
                            || (step.conclusion.lhs == prem[1].rhs
                                && step.conclusion.rhs == prem[0].rhs))
                }
                Rule::DownwardClosure { x, y, z } => {
                    // Premises: both ODs of X ~ YZ.  Conclusion: one OD of X ~ Y.
                    let yz = y.concat(z);
                    let premise_compat = OrderCompatibility::new(x.clone(), yz);
                    let conclusion_compat = OrderCompatibility::new(x.clone(), y.clone());
                    Self::contains_compat(&prem, &premise_compat)
                        && conclusion_compat.as_ods().contains(&step.conclusion)
                }
            };
            if !ok {
                if matches!(step.rule, Rule::Given) {
                    return Err(ProofError::NotGiven { step: i });
                }
                return Err(ProofError::InvalidApplication {
                    step: i,
                    rule: step.rule.to_string(),
                });
            }
        }
        Ok(())
    }

    fn contains_compat(premises: &[&OrderDependency], compat: &OrderCompatibility) -> bool {
        compat.as_ods().iter().all(|od| premises.contains(&od))
    }

    /// Side conditions of the Chain axiom (OD6):
    /// `X ~ Y₁`, `Yᵢ ~ Yᵢ₊₁`, `Yₙ ~ Z`, and `YᵢX ~ YᵢZ` for every `i`; the
    /// conclusion is one of the two ODs of `X ~ Z`.
    fn check_chain(
        x: &AttrList,
        ys: &[AttrList],
        z: &AttrList,
        premises: &[&OrderDependency],
        conclusion: &OrderDependency,
    ) -> bool {
        if ys.is_empty() {
            return false;
        }
        let mut required: Vec<OrderCompatibility> = Vec::new();
        required.push(OrderCompatibility::new(x.clone(), ys[0].clone()));
        for w in ys.windows(2) {
            required.push(OrderCompatibility::new(w[0].clone(), w[1].clone()));
        }
        required.push(OrderCompatibility::new(ys[ys.len() - 1].clone(), z.clone()));
        for y in ys {
            required.push(OrderCompatibility::new(y.concat(x), y.concat(z)));
        }
        if !required.iter().all(|c| Self::contains_compat(premises, c)) {
            return false;
        }
        OrderCompatibility::new(x.clone(), z.clone())
            .as_ods()
            .iter()
            .any(|od| od == conclusion)
    }
}

impl fmt::Display for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            let prem = if step.premises.is_empty() {
                String::new()
            } else {
                format!(
                    "({})",
                    step.premises
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )
            };
            writeln!(f, "{i:>3}. {}   [{}{}]", step.conclusion, step.rule, prem)?;
        }
        Ok(())
    }
}

/// Incremental builder used by the theorem constructors and the prover.
///
/// Every method appends one step and returns its index.  Duplicate conclusions
/// are *not* deduplicated — proofs stay readable and match the paper's style.
#[derive(Debug, Clone, Default)]
pub struct ProofBuilder {
    proof: Proof,
}

impl ProofBuilder {
    /// Start an empty proof.
    pub fn new() -> Self {
        ProofBuilder::default()
    }

    /// The conclusion of an existing step.
    pub fn step(&self, idx: usize) -> &OrderDependency {
        &self.proof.steps[idx].conclusion
    }

    /// Number of steps so far.
    pub fn len(&self) -> usize {
        self.proof.len()
    }

    /// True if no steps have been added.
    pub fn is_empty(&self) -> bool {
        self.proof.is_empty()
    }

    /// Finish and return the proof.
    pub fn finish(self) -> Proof {
        self.proof
    }

    fn push(&mut self, conclusion: OrderDependency, rule: Rule, premises: Vec<usize>) -> usize {
        self.proof.steps.push(ProofStep {
            conclusion,
            rule,
            premises,
        });
        self.proof.steps.len() - 1
    }

    /// Cite a prescribed OD from `ℳ`.
    pub fn given(&mut self, od: OrderDependency) -> usize {
        self.push(od, Rule::Given, vec![])
    }

    /// OD1 — Reflexivity: conclude `XY ↦ X`.
    pub fn reflexivity(&mut self, xy: AttrList, x: AttrList) -> usize {
        self.push(OrderDependency::new(xy, x), Rule::Reflexivity, vec![])
    }

    /// OD2 — Prefix: from step `p : X ↦ Y`, conclude `ZX ↦ ZY`.
    pub fn prefix(&mut self, z: AttrList, p: usize) -> usize {
        let od = self.step(p).clone();
        let conclusion = OrderDependency::new(z.concat(&od.lhs), z.concat(&od.rhs));
        self.push(conclusion, Rule::Prefix { z }, vec![p])
    }

    /// OD3 — Normalization: conclude `L₁ ↦ L₂` where the normalizations agree.
    pub fn normalization(&mut self, l1: AttrList, l2: AttrList) -> usize {
        self.push(OrderDependency::new(l1, l2), Rule::Normalization, vec![])
    }

    /// OD4 — Transitivity: from `p1 : X ↦ Y` and `p2 : Y ↦ Z`, conclude `X ↦ Z`.
    pub fn transitivity(&mut self, p1: usize, p2: usize) -> usize {
        let conclusion = OrderDependency::new(self.step(p1).lhs.clone(), self.step(p2).rhs.clone());
        self.push(conclusion, Rule::Transitivity, vec![p1, p2])
    }

    /// OD5 — Suffix (forward): from `p : X ↦ Y`, conclude `X ↦ YX`.
    pub fn suffix_forward(&mut self, p: usize) -> usize {
        let od = self.step(p).clone();
        let conclusion = OrderDependency::new(od.lhs.clone(), od.rhs.concat(&od.lhs));
        self.push(conclusion, Rule::Suffix, vec![p])
    }

    /// OD5 — Suffix (backward): from `p : X ↦ Y`, conclude `YX ↦ X`.
    pub fn suffix_backward(&mut self, p: usize) -> usize {
        let od = self.step(p).clone();
        let conclusion = OrderDependency::new(od.rhs.concat(&od.lhs), od.lhs.clone());
        self.push(conclusion, Rule::Suffix, vec![p])
    }

    /// OD6 — Chain: conclude one OD of `X ~ Z` from the required compatibility
    /// premises (`direction = false` gives `XZ ↦ ZX`, `true` gives `ZX ↦ XZ`).
    pub fn chain(
        &mut self,
        x: AttrList,
        ys: Vec<AttrList>,
        z: AttrList,
        premises: Vec<usize>,
        direction: bool,
    ) -> usize {
        let compat = OrderCompatibility::new(x.clone(), z.clone());
        let [fwd, bwd] = compat.as_ods();
        let conclusion = if direction { bwd } else { fwd };
        self.push(conclusion, Rule::Chain { x, ys, z }, premises)
    }

    /// Theorem 11 — Partition: from `p1 : X ↦ Y` and `p2 : X ↦ Z` with
    /// `set(Y) = set(Z)`, conclude `Y ↦ Z`.
    pub fn partition(&mut self, p1: usize, p2: usize) -> usize {
        let conclusion = OrderDependency::new(self.step(p1).rhs.clone(), self.step(p2).rhs.clone());
        self.push(conclusion, Rule::Partition, vec![p1, p2])
    }

    /// Theorem 12 — Downward Closure: from the two ODs of `X ~ YZ` (steps `p1`,
    /// `p2`), conclude one OD of `X ~ Y`.
    pub fn downward_closure(
        &mut self,
        x: AttrList,
        y: AttrList,
        z: AttrList,
        p1: usize,
        p2: usize,
        direction: bool,
    ) -> usize {
        let compat = OrderCompatibility::new(x.clone(), y.clone());
        let [fwd, bwd] = compat.as_ods();
        let conclusion = if direction { bwd } else { fwd };
        self.push(conclusion, Rule::DownwardClosure { x, y, z }, vec![p1, p2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::AttrId;

    fn l(ids: &[u32]) -> AttrList {
        ids.iter().map(|&i| AttrId(i)).collect()
    }
    fn od(lhs: &[u32], rhs: &[u32]) -> OrderDependency {
        OrderDependency::new(l(lhs), l(rhs))
    }

    #[test]
    fn transitivity_proof_verifies() {
        // ℳ = {A ↦ B, B ↦ C}; derive A ↦ C.
        let given = vec![od(&[0], &[1]), od(&[1], &[2])];
        let mut b = ProofBuilder::new();
        let s1 = b.given(given[0].clone());
        let s2 = b.given(given[1].clone());
        let s3 = b.transitivity(s1, s2);
        let proof = b.finish();
        assert_eq!(proof.conclusion(), Some(&od(&[0], &[2])));
        assert_eq!(proof.len(), 3);
        proof.verify(&given).unwrap();
        assert_eq!(s3, 2);
        // With an incomplete ℳ the Given step fails.
        let err = proof.verify(&[od(&[0], &[1])]).unwrap_err();
        assert!(matches!(err, ProofError::NotGiven { step: 1 }));
    }

    #[test]
    fn reflexivity_and_normalization_side_conditions() {
        let mut b = ProofBuilder::new();
        b.reflexivity(l(&[0, 1]), l(&[0]));
        b.normalization(l(&[0, 1, 0]), l(&[0, 1]));
        b.finish().verify(&[]).unwrap();

        // An invalid "reflexivity" (rhs not a prefix of lhs) must be rejected.
        let bogus = Proof {
            steps: vec![ProofStep {
                conclusion: od(&[0, 1], &[1]),
                rule: Rule::Reflexivity,
                premises: vec![],
            }],
        };
        assert!(matches!(
            bogus.verify(&[]),
            Err(ProofError::InvalidApplication { step: 0, .. })
        ));

        // An invalid "normalization" (different attribute sets) must be rejected.
        let bogus = Proof {
            steps: vec![ProofStep {
                conclusion: od(&[0], &[1]),
                rule: Rule::Normalization,
                premises: vec![],
            }],
        };
        assert!(bogus.verify(&[]).is_err());
    }

    #[test]
    fn prefix_and_suffix_shapes() {
        let given = vec![od(&[0], &[1])];
        let mut b = ProofBuilder::new();
        let g = b.given(given[0].clone());
        let p = b.prefix(l(&[7]), g);
        assert_eq!(b.step(p), &od(&[7, 0], &[7, 1]));
        let sf = b.suffix_forward(g);
        assert_eq!(b.step(sf), &od(&[0], &[1, 0]));
        let sb = b.suffix_backward(g);
        assert_eq!(b.step(sb), &od(&[1, 0], &[0]));
        b.finish().verify(&given).unwrap();
    }

    #[test]
    fn forward_references_are_rejected() {
        let proof = Proof {
            steps: vec![ProofStep {
                conclusion: od(&[0], &[2]),
                rule: Rule::Transitivity,
                premises: vec![0, 1],
            }],
        };
        assert!(matches!(
            proof.verify(&[]),
            Err(ProofError::ForwardReference { step: 0 })
        ));
    }

    #[test]
    fn empty_proof_is_an_error() {
        assert_eq!(Proof::default().verify(&[]), Err(ProofError::Empty));
        assert!(Proof::default().conclusion().is_none());
    }

    #[test]
    fn chain_rule_requires_all_compatibility_premises() {
        // X = [A], ys = [[B]], Z = [C]; required: A~B, B~C, BA~BC; conclude A~C.
        let x = l(&[0]);
        let y = l(&[1]);
        let z = l(&[2]);
        let mut premises = Vec::new();
        let mut b = ProofBuilder::new();
        let add_compat = |b: &mut ProofBuilder, a: &AttrList, c: &AttrList| -> Vec<usize> {
            OrderCompatibility::new(a.clone(), c.clone())
                .as_ods()
                .iter()
                .map(|o| b.given(o.clone()))
                .collect()
        };
        premises.extend(add_compat(&mut b, &x, &y));
        premises.extend(add_compat(&mut b, &y, &z));
        premises.extend(add_compat(&mut b, &y.concat(&x), &y.concat(&z)));
        b.chain(
            x.clone(),
            vec![y.clone()],
            z.clone(),
            premises.clone(),
            false,
        );
        let proof = b.finish();
        let given: Vec<OrderDependency> = proof
            .steps()
            .iter()
            .filter(|s| s.rule == Rule::Given)
            .map(|s| s.conclusion.clone())
            .collect();
        proof.verify(&given).unwrap();

        // Dropping one premise breaks the application.
        let mut b2 = ProofBuilder::new();
        let mut prem2 = Vec::new();
        prem2.extend(add_compat(&mut b2, &x, &y));
        prem2.extend(add_compat(&mut b2, &y, &z));
        // (missing the YᵢX ~ YᵢZ premises)
        b2.chain(x, vec![y], z, prem2, false);
        let proof2 = b2.finish();
        let given2: Vec<OrderDependency> = proof2
            .steps()
            .iter()
            .filter(|s| s.rule == Rule::Given)
            .map(|s| s.conclusion.clone())
            .collect();
        assert!(proof2.verify(&given2).is_err());
    }

    #[test]
    fn display_renders_each_step() {
        let mut b = ProofBuilder::new();
        let g = b.given(od(&[0], &[1]));
        b.prefix(l(&[2]), g);
        let text = b.finish().to_string();
        assert!(text.contains("Given"));
        assert!(text.contains("OD2 Prefix"));
        assert!(text.lines().count() == 2);
    }
}
