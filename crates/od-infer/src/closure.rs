//! Set-level closures derived from a set of ODs: the functional-dependency
//! closure (Lemma 1 gives one FD per OD), constant attributes (Definition 18),
//! and order-compatibility queries between single attributes — the ingredients
//! of the completeness construction of Section 4.

use crate::decide::Decider;
use crate::odset::OdSet;
use od_core::{AttrId, AttrSet, FunctionalDependency, OrderCompatibility};

/// The functional dependencies implied attribute-set-wise by the ODs of `ℳ`
/// (Lemma 1: `X ↦ Y` yields `set(X) → set(Y)`).
pub fn implied_fds(m: &OdSet) -> Vec<FunctionalDependency> {
    m.ods().iter().map(|od| od.implied_fd()).collect()
}

/// Closure of an attribute set under a collection of FDs (the classical
/// `X⁺` computation used by Ullman's completeness construction and by
/// `split(ℳ)`).
pub fn attr_closure(fds: &[FunctionalDependency], attrs: &AttrSet) -> AttrSet {
    let mut closure = *attrs;
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs.is_subset(&closure) && !fd.rhs.is_subset(&closure) {
                closure = closure.union(fd.rhs);
                changed = true;
            }
        }
    }
    closure
}

/// Closure of an attribute set under the FDs implied by `ℳ`.
pub fn fd_closure(m: &OdSet, attrs: &AttrSet) -> AttrSet {
    attr_closure(&implied_fds(m), attrs)
}

/// Does `ℳ` imply the FD `X → Y` (via the FD fragment of the ODs)?
pub fn fd_implied(m: &OdSet, fd: &FunctionalDependency) -> bool {
    fd.rhs.is_subset(&fd_closure(m, &fd.lhs))
}

/// The constant attributes of `ℳ` (Definition 18): attributes `A` with
/// `[] ↦ [A]` in `ℳ⁺`.
pub fn constants(m: &OdSet) -> AttrSet {
    let d = Decider::new(m);
    m.attributes()
        .into_iter()
        .filter(|a| d.is_constant(*a))
        .collect()
}

/// Is the single-attribute compatibility `[A] ~ [B]` in `ℳ⁺`?
pub fn attrs_compatible(d: &Decider, a: AttrId, b: AttrId) -> bool {
    d.implies_compatibility(&OrderCompatibility::new(vec![a], vec![b]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::{AttrList, OrderDependency};

    fn od(lhs: &[u32], rhs: &[u32]) -> OrderDependency {
        OrderDependency::new(
            lhs.iter().map(|&i| AttrId(i)).collect::<AttrList>(),
            rhs.iter().map(|&i| AttrId(i)).collect::<AttrList>(),
        )
    }
    fn set(ids: &[u32]) -> AttrSet {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn closure_follows_fd_chains() {
        let m = OdSet::from_ods([od(&[0], &[1]), od(&[1], &[2]), od(&[3], &[4])]);
        assert_eq!(fd_closure(&m, &set(&[0])), set(&[0, 1, 2]));
        assert_eq!(fd_closure(&m, &set(&[3])), set(&[3, 4]));
        assert_eq!(fd_closure(&m, &set(&[2])), set(&[2]));
        assert!(fd_implied(
            &m,
            &FunctionalDependency::new(set(&[0]), set(&[2]))
        ));
        assert!(!fd_implied(
            &m,
            &FunctionalDependency::new(set(&[2]), set(&[0]))
        ));
    }

    #[test]
    fn constants_require_empty_lhs_derivation() {
        let mut m = OdSet::new();
        m.add_constant(AttrId(1));
        m.add_od(od(&[1], &[2])); // a constant orders 2, so 2 is constant as well
        let k = constants(&m);
        assert!(k.contains(AttrId(1)));
        assert!(k.contains(AttrId(2)));
        assert!(!k.contains(AttrId(0)));
    }

    #[test]
    fn single_attribute_compatibility() {
        let m = OdSet::from_ods([od(&[0], &[1])]);
        let d = Decider::new(&m);
        assert!(attrs_compatible(&d, AttrId(0), AttrId(1)));
        assert!(attrs_compatible(&d, AttrId(1), AttrId(0)));
        let empty = Decider::new(&OdSet::new());
        assert!(!attrs_compatible(&empty, AttrId(0), AttrId(1)));
        assert!(attrs_compatible(&empty, AttrId(0), AttrId(0)));
    }
}
