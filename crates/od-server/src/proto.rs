//! The od-server message protocol: typed requests, responses, and
//! notifications over the [`od_core::wire`] codec.
//!
//! ## Frame format
//!
//! Every message travels in one length-prefixed frame (`u32 LE` payload
//! length + payload, see [`od_core::wire`]).  Payload layouts:
//!
//! | direction       | payload                                             |
//! |-----------------|-----------------------------------------------------|
//! | client → server | `[opcode: u8]` + request body                       |
//! | server → client | `[kind: u8]` + `[opcode: u8]` + body                |
//!
//! where `kind` is [`MSG_RESPONSE`] or [`MSG_NOTIFICATION`].  Requests need
//! no kind byte — a client only ever receives; a server only ever receives
//! requests.  Responses answer requests **in order** on each connection;
//! notification frames may interleave between responses at any point after a
//! [`Request::Subscribe`].
//!
//! Attribute sets (lattice contexts, candidate sets) are serialized as raw
//! `u64` bitmasks; attribute lists as `u32` id sequences; every integer is
//! fixed-width little-endian.  Encoding is canonical: for any message,
//! `encode ∘ decode ∘ encode == encode` bit-for-bit (pinned by the protocol
//! round-trip proptests).

use od_core::wire::{
    get_od, get_relation, get_tuple, put_od, put_relation, put_tuple, Reader, WireError,
    WireResult,
};
use od_core::{wire, OrderDependency, Relation, Tuple};
use od_setbased::wire::{get_statement, put_statement};
use od_setbased::SetOd;

/// Server→client frame kind: a response to a request.
pub const MSG_RESPONSE: u8 = 0;
/// Server→client frame kind: an unsolicited subscription notification.
pub const MSG_NOTIFICATION: u8 = 1;

/// Machine-readable failure category carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request payload did not decode (framing was still intact).
    Protocol,
    /// The request's opcode byte is not part of this protocol version.
    UnknownOpcode,
    /// A named relation or monitor does not exist.
    NoSuchResource,
    /// A create collided with an existing resource of the same name.
    DuplicateResource,
    /// The request decoded but its content was unusable (bad arity, stream
    /// error, >64-attribute schema, …).
    BadRequest,
    /// A frame or embedded object exceeded a size cap.
    TooLarge,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::Protocol => 0,
            ErrorCode::UnknownOpcode => 1,
            ErrorCode::NoSuchResource => 2,
            ErrorCode::DuplicateResource => 3,
            ErrorCode::BadRequest => 4,
            ErrorCode::TooLarge => 5,
            ErrorCode::ShuttingDown => 6,
        }
    }

    fn from_tag(tag: u8) -> WireResult<Self> {
        Ok(match tag {
            0 => ErrorCode::Protocol,
            1 => ErrorCode::UnknownOpcode,
            2 => ErrorCode::NoSuchResource,
            3 => ErrorCode::DuplicateResource,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::TooLarge,
            6 => ErrorCode::ShuttingDown,
            tag => {
                return Err(WireError::InvalidTag {
                    what: "ErrorCode",
                    tag,
                })
            }
        })
    }
}

/// One watched OD's live verdict as it crosses the wire: the exact ledger
/// removal count plus the ε-boundary accept/flip bits.  `g3` itself is not
/// transmitted — it is `removal_count / rows`, and shipping only integers
/// keeps the message (and the load harness's deterministic artifacts)
/// float-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireOdStatus {
    /// The watched OD.
    pub od: OrderDependency,
    /// Worst canonical statement's exact `g3` removal count.
    pub removal_count: u64,
    /// Within the monitor's ε budget right now?
    pub accepted: bool,
    /// Did `accepted` change in the batch this status reports on?
    pub flipped: bool,
}

fn put_status(buf: &mut Vec<u8>, s: &WireOdStatus) {
    put_od(buf, &s.od);
    wire::put_u64(buf, s.removal_count);
    wire::put_bool(buf, s.accepted);
    wire::put_bool(buf, s.flipped);
}

fn get_status(r: &mut Reader<'_>) -> WireResult<WireOdStatus> {
    Ok(WireOdStatus {
        od: get_od(r)?,
        removal_count: r.u64()?,
        accepted: r.bool()?,
        flipped: r.bool()?,
    })
}

fn put_statuses(buf: &mut Vec<u8>, statuses: &[WireOdStatus]) {
    wire::put_u32(buf, statuses.len() as u32);
    for s in statuses {
        put_status(buf, s);
    }
}

fn get_statuses(r: &mut Reader<'_>) -> WireResult<Vec<WireOdStatus>> {
    let n = r.seq_len(8)?;
    (0..n).map(|_| get_status(r)).collect()
}

fn put_ods(buf: &mut Vec<u8>, ods: &[OrderDependency]) {
    wire::put_u32(buf, ods.len() as u32);
    for od in ods {
        put_od(buf, od);
    }
}

fn get_ods(r: &mut Reader<'_>) -> WireResult<Vec<OrderDependency>> {
    let n = r.seq_len(8)?;
    (0..n).map(|_| get_od(r)).collect()
}

// Request opcodes.
const REQ_PING: u8 = 0;
const REQ_CREATE_RELATION: u8 = 1;
const REQ_DROP_RELATION: u8 = 2;
const REQ_LIST_RESOURCES: u8 = 3;
const REQ_DISCOVER: u8 = 4;
const REQ_DISCOVER_STATEMENTS: u8 = 5;
const REQ_CREATE_MONITOR: u8 = 6;
const REQ_DROP_MONITOR: u8 = 7;
const REQ_APPLY_DELTA: u8 = 8;
const REQ_MONITOR_STATUS: u8 = 9;
const REQ_IMPLIES: u8 = 10;
const REQ_SUBSCRIBE: u8 = 11;
const REQ_UNSUBSCRIBE: u8 = 12;
const REQ_SHUTDOWN: u8 = 13;

/// A client request.  Every variant is answered by exactly one [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Host `relation` under `name`.
    CreateRelation {
        /// Resource name, unique among hosted relations.
        name: String,
        /// The full relation (schema + rows).
        relation: Relation,
    },
    /// Drop a hosted relation.  Monitors created from it keep their own
    /// snapshot and are unaffected.
    DropRelation {
        /// Resource name.
        name: String,
    },
    /// Enumerate hosted relations and monitors.
    ListResources,
    /// Run OD discovery over a hosted relation.
    Discover {
        /// Hosted relation name.
        relation: String,
        /// Maximum left-hand side length.
        max_lhs: u32,
        /// Maximum right-hand side length.
        max_rhs: u32,
        /// `g3` acceptance threshold (0 = exact).
        epsilon: f64,
        /// Lattice context bound.
        max_context: u32,
    },
    /// Run the set-based lattice over a hosted relation and return the
    /// minimal canonical statements (contexts as `u64` bitmasks).
    DiscoverStatements {
        /// Hosted relation name.
        relation: String,
        /// Lattice context bound.
        max_context: u32,
    },
    /// Create a live monitor named `name` from a snapshot of a hosted
    /// relation.  With an empty `ods` list the server first discovers the
    /// relation's zero-error install set and watches that.
    CreateMonitor {
        /// Monitor resource name.
        name: String,
        /// Hosted relation to snapshot.
        relation: String,
        /// ε acceptance threshold the monitor reports flips against.
        epsilon: f64,
        /// ODs to watch (empty = watch the discovered install set).
        ods: Vec<OrderDependency>,
    },
    /// Drop a monitor, detaching all its subscribers.
    DropMonitor {
        /// Monitor resource name.
        name: String,
    },
    /// Apply a delta batch to a monitor's live table.
    ApplyDelta {
        /// Monitor resource name.
        monitor: String,
        /// Rows to insert (validated against the monitor's schema).
        inserts: Vec<Tuple>,
        /// Tuple ids to delete (as returned by earlier `DeltaApplied`s).
        deletes: Vec<u32>,
    },
    /// Read a monitor's current per-OD verdicts without mutating anything.
    MonitorStatus {
        /// Monitor resource name.
        monitor: String,
    },
    /// Axiomatic implication: does `premises` imply `goal`?
    Implies {
        /// The premise set ℳ.
        premises: Vec<OrderDependency>,
        /// The candidate consequence.
        goal: OrderDependency,
    },
    /// Subscribe this connection to a monitor's verdict-flip notifications.
    Subscribe {
        /// Monitor resource name.
        monitor: String,
    },
    /// Stop delivering a monitor's notifications to this connection.
    Unsubscribe {
        /// Monitor resource name.
        monitor: String,
    },
    /// Ask the server to stop accepting connections and wind down.
    Shutdown,
}

impl Request {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Ping => wire::put_u8(&mut buf, REQ_PING),
            Request::CreateRelation { name, relation } => {
                wire::put_u8(&mut buf, REQ_CREATE_RELATION);
                wire::put_str(&mut buf, name);
                put_relation(&mut buf, relation);
            }
            Request::DropRelation { name } => {
                wire::put_u8(&mut buf, REQ_DROP_RELATION);
                wire::put_str(&mut buf, name);
            }
            Request::ListResources => wire::put_u8(&mut buf, REQ_LIST_RESOURCES),
            Request::Discover {
                relation,
                max_lhs,
                max_rhs,
                epsilon,
                max_context,
            } => {
                wire::put_u8(&mut buf, REQ_DISCOVER);
                wire::put_str(&mut buf, relation);
                wire::put_u32(&mut buf, *max_lhs);
                wire::put_u32(&mut buf, *max_rhs);
                wire::put_f64(&mut buf, *epsilon);
                wire::put_u32(&mut buf, *max_context);
            }
            Request::DiscoverStatements {
                relation,
                max_context,
            } => {
                wire::put_u8(&mut buf, REQ_DISCOVER_STATEMENTS);
                wire::put_str(&mut buf, relation);
                wire::put_u32(&mut buf, *max_context);
            }
            Request::CreateMonitor {
                name,
                relation,
                epsilon,
                ods,
            } => {
                wire::put_u8(&mut buf, REQ_CREATE_MONITOR);
                wire::put_str(&mut buf, name);
                wire::put_str(&mut buf, relation);
                wire::put_f64(&mut buf, *epsilon);
                put_ods(&mut buf, ods);
            }
            Request::DropMonitor { name } => {
                wire::put_u8(&mut buf, REQ_DROP_MONITOR);
                wire::put_str(&mut buf, name);
            }
            Request::ApplyDelta {
                monitor,
                inserts,
                deletes,
            } => {
                wire::put_u8(&mut buf, REQ_APPLY_DELTA);
                wire::put_str(&mut buf, monitor);
                wire::put_u32(&mut buf, inserts.len() as u32);
                for t in inserts {
                    put_tuple(&mut buf, t);
                }
                wire::put_u32(&mut buf, deletes.len() as u32);
                for id in deletes {
                    wire::put_u32(&mut buf, *id);
                }
            }
            Request::MonitorStatus { monitor } => {
                wire::put_u8(&mut buf, REQ_MONITOR_STATUS);
                wire::put_str(&mut buf, monitor);
            }
            Request::Implies { premises, goal } => {
                wire::put_u8(&mut buf, REQ_IMPLIES);
                put_ods(&mut buf, premises);
                put_od(&mut buf, goal);
            }
            Request::Subscribe { monitor } => {
                wire::put_u8(&mut buf, REQ_SUBSCRIBE);
                wire::put_str(&mut buf, monitor);
            }
            Request::Unsubscribe { monitor } => {
                wire::put_u8(&mut buf, REQ_UNSUBSCRIBE);
                wire::put_str(&mut buf, monitor);
            }
            Request::Shutdown => wire::put_u8(&mut buf, REQ_SHUTDOWN),
        }
        buf
    }

    /// Parse a frame payload.  An unknown opcode byte is
    /// `WireError::InvalidTag { what: "Request", .. }` so the server can
    /// answer [`ErrorCode::UnknownOpcode`] while keeping the connection.
    pub fn decode(payload: &[u8]) -> WireResult<Self> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            REQ_PING => Request::Ping,
            REQ_CREATE_RELATION => Request::CreateRelation {
                name: r.str()?,
                relation: get_relation(&mut r)?,
            },
            REQ_DROP_RELATION => Request::DropRelation { name: r.str()? },
            REQ_LIST_RESOURCES => Request::ListResources,
            REQ_DISCOVER => Request::Discover {
                relation: r.str()?,
                max_lhs: r.u32()?,
                max_rhs: r.u32()?,
                epsilon: r.f64()?,
                max_context: r.u32()?,
            },
            REQ_DISCOVER_STATEMENTS => Request::DiscoverStatements {
                relation: r.str()?,
                max_context: r.u32()?,
            },
            REQ_CREATE_MONITOR => Request::CreateMonitor {
                name: r.str()?,
                relation: r.str()?,
                epsilon: r.f64()?,
                ods: get_ods(&mut r)?,
            },
            REQ_DROP_MONITOR => Request::DropMonitor { name: r.str()? },
            REQ_APPLY_DELTA => {
                let monitor = r.str()?;
                let n = r.seq_len(4)?;
                let inserts = (0..n)
                    .map(|_| get_tuple(&mut r))
                    .collect::<WireResult<Vec<_>>>()?;
                let n = r.seq_len(4)?;
                let deletes = (0..n).map(|_| r.u32()).collect::<WireResult<Vec<_>>>()?;
                Request::ApplyDelta {
                    monitor,
                    inserts,
                    deletes,
                }
            }
            REQ_MONITOR_STATUS => Request::MonitorStatus { monitor: r.str()? },
            REQ_IMPLIES => Request::Implies {
                premises: get_ods(&mut r)?,
                goal: get_od(&mut r)?,
            },
            REQ_SUBSCRIBE => Request::Subscribe { monitor: r.str()? },
            REQ_UNSUBSCRIBE => Request::Unsubscribe { monitor: r.str()? },
            REQ_SHUTDOWN => Request::Shutdown,
            tag => {
                return Err(WireError::InvalidTag {
                    what: "Request",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(req)
    }
}

// Response opcodes.
const RESP_PONG: u8 = 0;
const RESP_OK: u8 = 1;
const RESP_ERROR: u8 = 2;
const RESP_RELATION_CREATED: u8 = 3;
const RESP_RESOURCES: u8 = 4;
const RESP_DISCOVERED: u8 = 5;
const RESP_STATEMENTS: u8 = 6;
const RESP_MONITOR_CREATED: u8 = 7;
const RESP_DELTA_APPLIED: u8 = 8;
const RESP_STATUSES: u8 = 9;
const RESP_IMPLICATION: u8 = 10;
const RESP_SUBSCRIBED: u8 = 11;
const RESP_UNSUBSCRIBED: u8 = 12;
const RESP_SHUTTING_DOWN: u8 = 13;

/// A server reply.  Responses arrive in request order on each connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Generic success (drops).
    Ok,
    /// The request failed; the connection stays usable unless the framing
    /// itself was broken.
    Error {
        /// Failure category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// A relation is now hosted.
    RelationCreated {
        /// Row count of the hosted relation.
        rows: u64,
    },
    /// Resource listing, names sorted.
    Resources {
        /// `(name, rows)` per hosted relation.
        relations: Vec<(String, u64)>,
        /// `(name, watched ODs)` per hosted monitor.
        monitors: Vec<(String, u64)>,
    },
    /// Discovery result over a hosted relation.
    Discovered {
        /// Minimal ODs confirmed on the instance.
        ods: Vec<OrderDependency>,
        /// Per-OD `g3` scores, aligned with `ods`.
        errors: Vec<f64>,
    },
    /// Minimal canonical statements of a lattice run.
    Statements {
        /// Statements with their contexts as `u64` bitmasks.
        statements: Vec<SetOd>,
    },
    /// A monitor is now live.
    MonitorCreated {
        /// Number of watched ODs.
        watched: u64,
    },
    /// A delta batch was applied.
    DeltaApplied {
        /// Ids assigned to the batch's inserts, in insert order.
        inserted: Vec<u32>,
        /// Rows the batch deleted.
        deleted: u64,
        /// Partition classes touched (the maintenance cost unit).
        touched_classes: u64,
        /// Alive rows after the batch.
        rows: u64,
        /// Statuses that crossed the ε boundary in this batch.
        flipped: Vec<WireOdStatus>,
    },
    /// A monitor's current verdicts.
    Statuses {
        /// Alive rows in the live table.
        rows: u64,
        /// Per-OD statuses in watch order (`flipped` always false here).
        statuses: Vec<WireOdStatus>,
    },
    /// Answer to an implication query.
    Implication {
        /// `premises ⊨ goal`?
        implied: bool,
    },
    /// The connection now receives the monitor's flip notifications.
    Subscribed,
    /// Delivery stopped.
    Unsubscribed {
        /// Whether the connection had been subscribed.
        was_subscribed: bool,
    },
    /// The server acknowledged [`Request::Shutdown`].
    ShuttingDown,
}

impl Response {
    fn encode_body(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Pong => wire::put_u8(buf, RESP_PONG),
            Response::Ok => wire::put_u8(buf, RESP_OK),
            Response::Error { code, message } => {
                wire::put_u8(buf, RESP_ERROR);
                wire::put_u8(buf, code.tag());
                wire::put_str(buf, message);
            }
            Response::RelationCreated { rows } => {
                wire::put_u8(buf, RESP_RELATION_CREATED);
                wire::put_u64(buf, *rows);
            }
            Response::Resources {
                relations,
                monitors,
            } => {
                wire::put_u8(buf, RESP_RESOURCES);
                wire::put_u32(buf, relations.len() as u32);
                for (name, rows) in relations {
                    wire::put_str(buf, name);
                    wire::put_u64(buf, *rows);
                }
                wire::put_u32(buf, monitors.len() as u32);
                for (name, watched) in monitors {
                    wire::put_str(buf, name);
                    wire::put_u64(buf, *watched);
                }
            }
            Response::Discovered { ods, errors } => {
                wire::put_u8(buf, RESP_DISCOVERED);
                put_ods(buf, ods);
                wire::put_u32(buf, errors.len() as u32);
                for e in errors {
                    wire::put_f64(buf, *e);
                }
            }
            Response::Statements { statements } => {
                wire::put_u8(buf, RESP_STATEMENTS);
                wire::put_u32(buf, statements.len() as u32);
                for s in statements {
                    put_statement(buf, s);
                }
            }
            Response::MonitorCreated { watched } => {
                wire::put_u8(buf, RESP_MONITOR_CREATED);
                wire::put_u64(buf, *watched);
            }
            Response::DeltaApplied {
                inserted,
                deleted,
                touched_classes,
                rows,
                flipped,
            } => {
                wire::put_u8(buf, RESP_DELTA_APPLIED);
                wire::put_u32(buf, inserted.len() as u32);
                for id in inserted {
                    wire::put_u32(buf, *id);
                }
                wire::put_u64(buf, *deleted);
                wire::put_u64(buf, *touched_classes);
                wire::put_u64(buf, *rows);
                put_statuses(buf, flipped);
            }
            Response::Statuses { rows, statuses } => {
                wire::put_u8(buf, RESP_STATUSES);
                wire::put_u64(buf, *rows);
                put_statuses(buf, statuses);
            }
            Response::Implication { implied } => {
                wire::put_u8(buf, RESP_IMPLICATION);
                wire::put_bool(buf, *implied);
            }
            Response::Subscribed => wire::put_u8(buf, RESP_SUBSCRIBED),
            Response::Unsubscribed { was_subscribed } => {
                wire::put_u8(buf, RESP_UNSUBSCRIBED);
                wire::put_bool(buf, *was_subscribed);
            }
            Response::ShuttingDown => wire::put_u8(buf, RESP_SHUTTING_DOWN),
        }
    }

    /// Serialize as a server→client frame payload (`MSG_RESPONSE` + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![MSG_RESPONSE];
        self.encode_body(&mut buf);
        buf
    }

    fn decode_body(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(match r.u8()? {
            RESP_PONG => Response::Pong,
            RESP_OK => Response::Ok,
            RESP_ERROR => Response::Error {
                code: ErrorCode::from_tag(r.u8()?)?,
                message: r.str()?,
            },
            RESP_RELATION_CREATED => Response::RelationCreated { rows: r.u64()? },
            RESP_RESOURCES => {
                let n = r.seq_len(12)?;
                let relations = (0..n)
                    .map(|_| Ok((r.str()?, r.u64()?)))
                    .collect::<WireResult<Vec<_>>>()?;
                let n = r.seq_len(12)?;
                let monitors = (0..n)
                    .map(|_| Ok((r.str()?, r.u64()?)))
                    .collect::<WireResult<Vec<_>>>()?;
                Response::Resources {
                    relations,
                    monitors,
                }
            }
            RESP_DISCOVERED => {
                let ods = get_ods(r)?;
                let n = r.seq_len(8)?;
                let errors = (0..n).map(|_| r.f64()).collect::<WireResult<Vec<_>>>()?;
                Response::Discovered { ods, errors }
            }
            RESP_STATEMENTS => {
                let n = r.seq_len(13)?;
                let statements = (0..n)
                    .map(|_| get_statement(r))
                    .collect::<WireResult<Vec<_>>>()?;
                Response::Statements { statements }
            }
            RESP_MONITOR_CREATED => Response::MonitorCreated { watched: r.u64()? },
            RESP_DELTA_APPLIED => {
                let n = r.seq_len(4)?;
                let inserted = (0..n).map(|_| r.u32()).collect::<WireResult<Vec<_>>>()?;
                Response::DeltaApplied {
                    inserted,
                    deleted: r.u64()?,
                    touched_classes: r.u64()?,
                    rows: r.u64()?,
                    flipped: get_statuses(r)?,
                }
            }
            RESP_STATUSES => Response::Statuses {
                rows: r.u64()?,
                statuses: get_statuses(r)?,
            },
            RESP_IMPLICATION => Response::Implication { implied: r.bool()? },
            RESP_SUBSCRIBED => Response::Subscribed,
            RESP_UNSUBSCRIBED => Response::Unsubscribed {
                was_subscribed: r.bool()?,
            },
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            tag => {
                return Err(WireError::InvalidTag {
                    what: "Response",
                    tag,
                })
            }
        })
    }
}

// Notification opcodes.
const NOTIFY_FLIPS: u8 = 0;
const NOTIFY_LAGGED: u8 = 1;

/// An unsolicited server→client push on a subscribed connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Notification {
    /// One or more watched ODs crossed the ε acceptance boundary.
    Flips {
        /// The monitor that flipped.
        monitor: String,
        /// Monotonically increasing per-monitor broadcast number (gap
        /// detection for laggy subscribers).
        seq: u64,
        /// The flipped statuses only.
        statuses: Vec<WireOdStatus>,
    },
    /// This subscriber's queue overflowed and `dropped` flip broadcasts were
    /// discarded; re-query [`Request::MonitorStatus`] to resynchronize.
    Lagged {
        /// The affected monitor.
        monitor: String,
        /// Number of broadcasts dropped since the last delivery.
        dropped: u64,
    },
}

impl Notification {
    /// Serialize as a server→client frame payload (`MSG_NOTIFICATION` + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![MSG_NOTIFICATION];
        match self {
            Notification::Flips {
                monitor,
                seq,
                statuses,
            } => {
                wire::put_u8(&mut buf, NOTIFY_FLIPS);
                wire::put_str(&mut buf, monitor);
                wire::put_u64(&mut buf, *seq);
                put_statuses(&mut buf, statuses);
            }
            Notification::Lagged { monitor, dropped } => {
                wire::put_u8(&mut buf, NOTIFY_LAGGED);
                wire::put_str(&mut buf, monitor);
                wire::put_u64(&mut buf, *dropped);
            }
        }
        buf
    }

    fn decode_body(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(match r.u8()? {
            NOTIFY_FLIPS => Notification::Flips {
                monitor: r.str()?,
                seq: r.u64()?,
                statuses: get_statuses(r)?,
            },
            NOTIFY_LAGGED => Notification::Lagged {
                monitor: r.str()?,
                dropped: r.u64()?,
            },
            tag => {
                return Err(WireError::InvalidTag {
                    what: "Notification",
                    tag,
                })
            }
        })
    }
}

/// Any server→client frame payload: the kind byte dispatches between a
/// response and a notification.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// Reply to a request.
    Response(Response),
    /// Subscription push.
    Notification(Notification),
}

impl ServerMessage {
    /// Serialize as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerMessage::Response(resp) => resp.encode(),
            ServerMessage::Notification(n) => n.encode(),
        }
    }

    /// Parse a server→client frame payload.
    pub fn decode(payload: &[u8]) -> WireResult<Self> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            MSG_RESPONSE => ServerMessage::Response(Response::decode_body(&mut r)?),
            MSG_NOTIFICATION => ServerMessage::Notification(Notification::decode_body(&mut r)?),
            tag => {
                return Err(WireError::InvalidTag {
                    what: "ServerMessage",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::{AttrId, AttrSet, Value};

    #[test]
    fn request_roundtrip_examples() {
        let rel = od_core::fixtures::example_5_taxes();
        let od = OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)]);
        for req in [
            Request::Ping,
            Request::CreateRelation {
                name: "taxes".into(),
                relation: rel,
            },
            Request::ApplyDelta {
                monitor: "m".into(),
                inserts: vec![vec![Value::Int(1), Value::Null]],
                deletes: vec![0, 7],
            },
            Request::Implies {
                premises: vec![od.clone()],
                goal: od,
            },
            Request::Shutdown,
        ] {
            let bytes = req.encode();
            let back = Request::decode(&bytes).unwrap();
            assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn server_message_kind_dispatch() {
        let resp = Response::Implication { implied: true };
        let note = Notification::Lagged {
            monitor: "m".into(),
            dropped: 3,
        };
        assert_eq!(
            ServerMessage::decode(&resp.encode()).unwrap(),
            ServerMessage::Response(resp)
        );
        assert_eq!(
            ServerMessage::decode(&note.encode()).unwrap(),
            ServerMessage::Notification(note)
        );
        assert!(matches!(
            ServerMessage::decode(&[9]),
            Err(WireError::InvalidTag { .. })
        ));
    }

    #[test]
    fn statements_carry_u64_contexts() {
        let resp = Response::Statements {
            statements: vec![
                SetOd::constancy(AttrSet::from_mask(u64::MAX), AttrId(3)),
                SetOd::compatibility(AttrSet::new(), AttrId(1), AttrId(0)),
            ],
        };
        let bytes = resp.encode();
        match ServerMessage::decode(&bytes).unwrap() {
            ServerMessage::Response(Response::Statements { statements }) => {
                assert_eq!(statements[0].context().mask(), u64::MAX);
                // Pair order was normalized at construction and survives.
                assert_eq!(
                    statements[1],
                    SetOd::compatibility(AttrSet::new(), AttrId(0), AttrId(1))
                );
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn unknown_request_opcode_is_invalid_tag() {
        assert_eq!(
            Request::decode(&[0xEE]),
            Err(WireError::InvalidTag {
                what: "Request",
                tag: 0xEE
            })
        );
    }

    #[test]
    fn truncated_request_never_panics() {
        let full = Request::CreateMonitor {
            name: "m".into(),
            relation: "r".into(),
            epsilon: 0.25,
            ods: vec![OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)])],
        }
        .encode();
        for cut in 0..full.len() {
            assert!(Request::decode(&full[..cut]).is_err());
        }
        // Trailing garbage after a complete request is rejected too.
        let mut padded = full.clone();
        padded.push(0);
        assert!(matches!(
            Request::decode(&padded),
            Err(WireError::TrailingBytes { .. })
        ));
    }
}
