//! # od-server — the wire-protocol service layer
//!
//! Everything below this crate operates on in-process values; this crate
//! turns the workspace into a *service*: a long-running TCP server hosting
//! [`Relation`](od_core::Relation)s and live
//! [`Monitor`](od_discovery::Monitor)s as **named resources**, with clients
//! submitting delta batches, discovery runs, and implication queries over a
//! length-prefixed binary protocol — and receiving verdict-flip
//! notifications pushed over subscribed connections.
//!
//! ## Protocol in one paragraph
//!
//! Every frame is `u32` little-endian payload length + payload (see
//! [`od_core::wire`]).  Client→server payloads start with a request opcode
//! byte ([`proto::Request`]); server→client payloads start with a kind byte —
//! `0` response, `1` notification — then their own opcode
//! ([`proto::ServerMessage`]).  All integers are fixed-width little-endian;
//! attribute sets travel as raw `u64` bitmasks, so a canonical statement's
//! context costs eight bytes on the wire exactly as it does in memory.
//! Requests on one connection are answered in order, one response each;
//! notifications may interleave between responses but never split a frame.
//!
//! ## Determinism
//!
//! The service keeps the workspace's reproducibility contract: verdicts are
//! integer-exact (`removal_count`, never floats, cross the wire in
//! [`proto::WireOdStatus`]), per-monitor flip sequences are contiguous, and
//! concurrent clients driving one monitor land on final verdicts
//! bit-identical to a single-threaded replay of the same batches (pinned by
//! this crate's integration tests and the `e15` bench artifact).
//!
//! ```no_run
//! use od_server::{Client, OdServer, proto::{Request, Response}};
//!
//! let server = OdServer::bind("127.0.0.1:0").unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let pong = client.request(&Request::Ping).unwrap();
//! assert!(matches!(pong, Response::Pong));
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::Client;
pub use server::{OdServer, ServerConfig};
