//! A minimal blocking client for the od-server wire protocol.
//!
//! One [`Client`] owns one connection.  Requests are synchronous
//! (send → wait for the matching [`Response`]); notification frames that
//! arrive while waiting are queued and later drained with
//! [`Client::recv_notification`].

use crate::proto::{Notification, Request, Response, ServerMessage};
use od_core::wire;
use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Blocking wire-protocol client.
pub struct Client {
    write: TcpStream,
    reader: BufReader<TcpStream>,
    pending: VecDeque<Notification>,
}

impl Client {
    /// Connect to a running [`OdServer`](crate::OdServer).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let write = TcpStream::connect(addr)?;
        write.set_nodelay(true)?;
        let read = write.try_clone()?;
        Ok(Client {
            write,
            reader: BufReader::new(read),
            pending: VecDeque::new(),
        })
    }

    /// Send `request` and wait for its [`Response`].  Notifications that
    /// arrive in between are queued for [`Client::recv_notification`].
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        wire::write_frame(&mut self.write, &request.encode())?;
        self.write.flush()?;
        loop {
            match self.read_message()? {
                ServerMessage::Response(response) => return Ok(response),
                ServerMessage::Notification(n) => self.pending.push_back(n),
            }
        }
    }

    /// Wait up to `timeout` for the next notification.  Returns `Ok(None)`
    /// when none arrives in time.
    pub fn recv_notification(&mut self, timeout: Duration) -> io::Result<Option<Notification>> {
        if let Some(n) = self.pending.pop_front() {
            return Ok(Some(n));
        }
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        let result = self.read_message();
        self.reader.get_ref().set_read_timeout(None)?;
        match result {
            Ok(ServerMessage::Notification(n)) => Ok(Some(n)),
            Ok(ServerMessage::Response(_)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unsolicited response frame",
            )),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Drain every notification already buffered locally (never blocks).
    pub fn drain_notifications(&mut self) -> Vec<Notification> {
        self.pending.drain(..).collect()
    }

    fn read_message(&mut self) -> io::Result<ServerMessage> {
        let payload = wire::read_frame(&mut self.reader, wire::MAX_FRAME_LEN)?;
        ServerMessage::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
