//! The od-server runtime: a thread-per-connection TCP server hosting
//! relations and live monitors as named resources.
//!
//! ## Resource lifecycle
//!
//! * **Relations** are immutable snapshots (`Arc<Relation>`): created by
//!   [`Request::CreateRelation`], read by discovery and implication handlers,
//!   dropped by name.  Creating a monitor *snapshots* the relation — dropping
//!   the relation afterwards never invalidates the monitor.
//! * **Monitors** wrap an [`od_discovery::Monitor`] behind a per-monitor
//!   mutex: concurrent `ApplyDelta`s serialize on that mutex (never on a
//!   global lock), so two clients driving different monitors proceed fully in
//!   parallel, while the per-monitor verdict stream stays identical to *some*
//!   serial order of the submitted batches — and ledger verdicts depend only
//!   on the final alive multiset, so any serial order of the same batches
//!   lands on bit-identical final verdicts (pinned by the concurrent-client
//!   integration test).
//!
//! ## Pub/sub
//!
//! [`od_discovery::Monitor::subscribe`]'s synchronous callback is lifted onto
//! the wire here: each monitor entry registers exactly one callback at
//! creation, and that callback fans a [`Notification::Flips`] frame out to
//! every subscribed connection.  Delivery is **non-blocking**: each
//! connection owns a bounded outbound queue drained by a dedicated writer
//! thread, and flips are enqueued with `try_send` — a subscriber that has
//! stopped reading overflows its own queue and loses notifications (flagged
//! by a [`Notification::Lagged`] frame once it drains) while every other
//! client keeps receiving.  A slow consumer can therefore never stall the
//! monitor, the batch submitter, or other subscribers.

use crate::proto::{ErrorCode, Notification, Request, Response, WireOdStatus};
use od_core::wire::{self, WireError, MAX_FRAME_LEN};
use od_core::{OrderDependency, Relation};
use od_discovery::{DiscoveryConfig, Monitor, MonitorReport};
use od_infer::{Decider, OdSet};
use od_setbased::stream::DeltaBatch;
use od_setbased::LatticeConfig;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for [`OdServer::bind_with`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Per-frame payload cap for reads (writes share the global
    /// [`MAX_FRAME_LEN`]).
    pub max_frame: usize,
    /// Outbound queue depth per connection.  Responses always fit (a
    /// connection has at most a handful of requests in flight); notifications
    /// beyond this bound are dropped for that subscriber only.
    pub outbound_queue: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame: MAX_FRAME_LEN,
            outbound_queue: 1024,
        }
    }
}

/// One subscribed connection of a monitor.
struct SubEntry {
    conn_id: u64,
    tx: SyncSender<Vec<u8>>,
    /// Flip broadcasts dropped since this subscriber last kept up.
    dropped: u64,
}

impl SubEntry {
    /// Try to deliver `frame`; returns `false` when the connection is gone
    /// (the caller then unregisters the subscriber).  Never blocks.
    fn push(&mut self, monitor: &str, frame: &[u8]) -> bool {
        if self.dropped > 0 {
            let lag = Notification::Lagged {
                monitor: monitor.to_string(),
                dropped: self.dropped,
            }
            .encode();
            match self.tx.try_send(lag) {
                Ok(()) => self.dropped = 0,
                Err(TrySendError::Full(_)) => {
                    // Still backed up: this broadcast is dropped too.
                    self.dropped += 1;
                    od_obs::add("server.notifications_dropped", 1);
                    return true;
                }
                Err(TrySendError::Disconnected(_)) => return false,
            }
        }
        match self.tx.try_send(frame.to_vec()) {
            Ok(()) => {
                od_obs::add("server.notifications_sent", 1);
                true
            }
            Err(TrySendError::Full(_)) => {
                self.dropped += 1;
                od_obs::add("server.notifications_dropped", 1);
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        }
    }
}

/// A hosted monitor: the live monitor itself plus its wire subscribers and
/// the name of the relation it snapshotted (deltas against the monitor
/// invalidate that relation's cached discovery profiles).
struct MonitorEntry {
    monitor: Mutex<Monitor>,
    subs: Arc<Mutex<Vec<SubEntry>>>,
    relation: String,
}

/// A hosted relation: the immutable snapshot plus a server-unique generation
/// stamp.  The stamp keys the discovery cache, so re-creating a relation
/// under a dropped name can never resurrect a stale cached profile.
struct RelationEntry {
    relation: Arc<Relation>,
    generation: u64,
}

/// Cache key for a discovery profile: the named relation at a specific
/// generation under a specific config.  `epsilon_bits` carries the f64
/// through `to_bits` — requests with bitwise-equal epsilons (the only kind a
/// client can repeat over the wire) hit the same entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DiscoverKey {
    relation: String,
    generation: u64,
    /// `true` for `DiscoverStatements`, `false` for `Discover`.
    statements: bool,
    max_lhs: u32,
    max_rhs: u32,
    epsilon_bits: u64,
    max_context: u32,
}

struct Shared {
    config: ServerConfig,
    relations: Mutex<HashMap<String, RelationEntry>>,
    monitors: Mutex<HashMap<String, Arc<MonitorEntry>>>,
    /// Memoized `Discover`/`DiscoverStatements` responses.  Discovery is
    /// deterministic, so a cached response encodes to the byte-identical
    /// frame a fresh run would produce.  Entries die with their relation
    /// (drop, or generation bump on re-create) and whenever an `ApplyDelta`
    /// lands on one of the relation's monitors — the snapshot itself is
    /// immutable, but a delta signals the named dataset has moved on, so
    /// serving a pre-delta profile for it would be misleading.
    discover_cache: Mutex<HashMap<DiscoverKey, Response>>,
    /// Write-half clones of every live connection, for shutdown.
    conns: Mutex<HashMap<u64, TcpStream>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    next_generation: AtomicU64,
    shutting_down: AtomicBool,
}

/// Drop every cached discovery profile of `relation`.
fn invalidate_profiles(shared: &Shared, relation: &str) {
    let mut cache = shared.discover_cache.lock().unwrap();
    let before = cache.len();
    cache.retain(|key, _| key.relation != relation);
    od_obs::add(
        "server.discover.cache_invalidations",
        (before - cache.len()) as u64,
    );
}

/// A running od-server.  Bind with [`OdServer::bind`], stop with
/// [`OdServer::shutdown`] (which joins every connection thread).
pub struct OdServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl OdServer {
    /// Bind and start serving with default [`ServerConfig`].
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<OdServer> {
        Self::bind_with(addr, ServerConfig::default())
    }

    /// Bind and start serving.  Use port 0 to let the OS pick one
    /// ([`OdServer::local_addr`] reports the choice).
    pub fn bind_with(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<OdServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            relations: Mutex::new(HashMap::new()),
            monitors: Mutex::new(HashMap::new()),
            discover_cache: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            next_generation: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("od-server-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(OdServer {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Has a shutdown been requested (via [`OdServer::shutdown`] or a
    /// [`Request::Shutdown`] frame)?
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Stop accepting connections, close every live connection, and join all
    /// server threads.  Idempotent with a wire-initiated shutdown.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared, self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Connection threads exit once their sockets are shut down; writer
        // threads exit once their queue senders drop.  Join everything so a
        // test that calls shutdown() observes a quiescent process.
        let threads = std::mem::take(&mut *self.shared.threads.lock().unwrap());
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for OdServer {
    fn drop(&mut self) {
        // Best-effort: unblock the accept thread so an OdServer leaked by a
        // failing test does not wedge the process on exit.  No joining here —
        // shutdown() is the orderly path.
        trigger_shutdown(&self.shared, self.addr);
    }
}

fn trigger_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    // Wake the blocking accept() with a throwaway connection.
    let _ = TcpStream::connect(addr);
    // Shut every live connection's socket: readers unblock with EOF/error.
    for stream in shared.conns.lock().unwrap().values() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => break,
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        od_obs::add("server.connections", 1);
        let (Ok(write_half), Ok(shutdown_half)) = (stream.try_clone(), stream.try_clone()) else {
            continue;
        };
        shared.conns.lock().unwrap().insert(conn_id, shutdown_half);
        // Depth ≥ 2 so a `Lagged` marker and the frame after it can coexist;
        // with a single slot the marker would starve the payloads forever.
        let (tx, rx) = sync_channel::<Vec<u8>>(shared.config.outbound_queue.max(2));
        let writer = std::thread::Builder::new()
            .name(format!("od-server-write-{conn_id}"))
            .spawn(move || writer_loop(write_half, rx))
            .expect("spawn writer thread");
        let reader_shared = Arc::clone(&shared);
        let reader = std::thread::Builder::new()
            .name(format!("od-server-conn-{conn_id}"))
            .spawn(move || {
                conn_loop(stream, conn_id, tx, &reader_shared);
                disconnect(conn_id, &reader_shared);
            })
            .expect("spawn reader thread");
        let mut threads = shared.threads.lock().unwrap();
        threads.push(writer);
        threads.push(reader);
    }
}

fn writer_loop(stream: TcpStream, rx: Receiver<Vec<u8>>) {
    let mut w = BufWriter::new(stream);
    while let Ok(payload) = rx.recv() {
        if wire::write_frame(&mut w, &payload).is_err() {
            // The peer is gone; drain silently so senders never block on a
            // dead connection (the queue keeps accepting until dropped).
            while rx.recv().is_ok() {}
            return;
        }
    }
}

/// Remove a finished connection: its write half and any subscriptions it
/// held.  Its queue sender drops with the reader thread, ending the writer.
fn disconnect(conn_id: u64, shared: &Shared) {
    shared.conns.lock().unwrap().remove(&conn_id);
    for entry in shared.monitors.lock().unwrap().values() {
        entry
            .subs
            .lock()
            .unwrap()
            .retain(|sub| sub.conn_id != conn_id);
    }
}

/// Per-connection read → handle → respond loop.  Returns when the client
/// closes, the framing breaks, or shutdown is requested.
fn conn_loop(stream: TcpStream, conn_id: u64, tx: SyncSender<Vec<u8>>, shared: &Arc<Shared>) {
    let max_frame = shared.config.max_frame;
    let mut reader = BufReader::new(stream);
    let respond = |resp: Response| {
        od_obs::add("server.responses", 1);
        // Blocking send: responses are never dropped.  The queue can only
        // stay full if this very client stops reading — then its own reader
        // thread (us) parks here, harming nobody else.
        tx.send(resp.encode()).is_ok()
    };
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let payload = match wire::read_frame_opt(&mut reader, max_frame) {
            Ok(Some(payload)) => payload,
            // Clean close between frames.
            Ok(None) => return,
            Err(err) if err.kind() == io::ErrorKind::InvalidData => {
                // Oversized length prefix: report, then close — the stream
                // position can no longer be trusted.
                respond(Response::Error {
                    code: ErrorCode::TooLarge,
                    message: err.to_string(),
                });
                return;
            }
            // Mid-frame EOF or transport error: nothing to answer.
            Err(_) => return,
        };
        od_obs::add("server.requests", 1);
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(WireError::InvalidTag {
                what: "Request",
                tag,
            }) => {
                // Frame boundaries are intact — answer and keep serving.
                respond(Response::Error {
                    code: ErrorCode::UnknownOpcode,
                    message: format!("unknown request opcode {tag:#04x}"),
                });
                continue;
            }
            Err(err) => {
                respond(Response::Error {
                    code: ErrorCode::Protocol,
                    message: err.to_string(),
                });
                continue;
            }
        };
        let shutdown_requested = matches!(request, Request::Shutdown);
        let response = handle(request, conn_id, &tx, shared);
        if !respond(response) {
            return;
        }
        if shutdown_requested {
            trigger_shutdown(shared, conn_loop_addr(&reader));
            return;
        }
    }
}

fn conn_loop_addr(reader: &BufReader<TcpStream>) -> SocketAddr {
    reader
        .get_ref()
        .local_addr()
        .unwrap_or_else(|_| SocketAddr::from(([127, 0, 0, 1], 0)))
}

fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

fn no_such(kind: &str, name: &str) -> Response {
    err(
        ErrorCode::NoSuchResource,
        format!("no {kind} named '{name}'"),
    )
}

/// Validate that an OD only names attributes the schema actually has —
/// watching an out-of-range attribute would panic deep in partition code.
fn od_fits_schema(od: &OrderDependency, arity: usize) -> bool {
    od.lhs
        .iter()
        .chain(od.rhs.iter())
        .all(|attr| attr.index() < arity)
}

fn wire_status(status: &od_discovery::OdStatus) -> WireOdStatus {
    WireOdStatus {
        od: status.od.clone(),
        removal_count: status.removal_count as u64,
        accepted: status.accepted,
        flipped: status.flipped,
    }
}

fn handle(
    request: Request,
    conn_id: u64,
    tx: &SyncSender<Vec<u8>>,
    shared: &Arc<Shared>,
) -> Response {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return err(ErrorCode::ShuttingDown, "server is shutting down");
    }
    match request {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::ShuttingDown,
        Request::CreateRelation { name, relation } => {
            let mut relations = shared.relations.lock().unwrap();
            if relations.contains_key(&name) {
                return err(
                    ErrorCode::DuplicateResource,
                    format!("relation '{name}' already exists"),
                );
            }
            let rows = relation.len() as u64;
            relations.insert(
                name,
                RelationEntry {
                    relation: Arc::new(relation),
                    generation: shared.next_generation.fetch_add(1, Ordering::Relaxed),
                },
            );
            Response::RelationCreated { rows }
        }
        Request::DropRelation { name } => match shared.relations.lock().unwrap().remove(&name) {
            Some(_) => {
                invalidate_profiles(shared, &name);
                Response::Ok
            }
            None => no_such("relation", &name),
        },
        Request::ListResources => {
            let mut relations: Vec<(String, u64)> = shared
                .relations
                .lock()
                .unwrap()
                .iter()
                .map(|(name, entry)| (name.clone(), entry.relation.len() as u64))
                .collect();
            relations.sort();
            let mut monitors: Vec<(String, u64)> = shared
                .monitors
                .lock()
                .unwrap()
                .iter()
                .map(|(name, entry)| {
                    let watched = entry.monitor.lock().unwrap().statuses().len() as u64;
                    (name.clone(), watched)
                })
                .collect();
            monitors.sort();
            Response::Resources {
                relations,
                monitors,
            }
        }
        Request::Discover {
            relation,
            max_lhs,
            max_rhs,
            epsilon,
            max_context,
        } => {
            let (rel, generation) = {
                let relations = shared.relations.lock().unwrap();
                let Some(entry) = relations.get(&relation) else {
                    return no_such("relation", &relation);
                };
                (Arc::clone(&entry.relation), entry.generation)
            };
            if !(0.0..=1.0).contains(&epsilon) {
                return err(ErrorCode::BadRequest, "epsilon must be within [0, 1]");
            }
            let key = DiscoverKey {
                relation,
                generation,
                statements: false,
                max_lhs,
                max_rhs,
                epsilon_bits: epsilon.to_bits(),
                max_context,
            };
            if let Some(cached) = shared.discover_cache.lock().unwrap().get(&key).cloned() {
                od_obs::add("server.discover.cache_hits", 1);
                return cached;
            }
            od_obs::add("server.discover.cache_misses", 1);
            let config = DiscoveryConfig {
                max_lhs: max_lhs as usize,
                max_rhs: max_rhs as usize,
                epsilon,
                max_context: max_context as usize,
                ..DiscoveryConfig::default()
            };
            // Discover outside the cache lock: profiling can be heavy and
            // must not block unrelated requests.  A concurrent miss on the
            // same key computes the same deterministic response — the
            // duplicated work is bounded and the cache stays consistent.
            match od_discovery::try_discover_ods(&rel, config) {
                Ok(discovery) => {
                    let response = Response::Discovered {
                        ods: discovery.ods,
                        errors: discovery.errors,
                    };
                    shared
                        .discover_cache
                        .lock()
                        .unwrap()
                        .insert(key, response.clone());
                    response
                }
                Err(e) => err(ErrorCode::BadRequest, e.to_string()),
            }
        }
        Request::DiscoverStatements {
            relation,
            max_context,
        } => {
            let (rel, generation) = {
                let relations = shared.relations.lock().unwrap();
                let Some(entry) = relations.get(&relation) else {
                    return no_such("relation", &relation);
                };
                (Arc::clone(&entry.relation), entry.generation)
            };
            let key = DiscoverKey {
                relation,
                generation,
                statements: true,
                max_lhs: 0,
                max_rhs: 0,
                epsilon_bits: 0,
                max_context,
            };
            if let Some(cached) = shared.discover_cache.lock().unwrap().get(&key).cloned() {
                od_obs::add("server.discover.cache_hits", 1);
                return cached;
            }
            od_obs::add("server.discover.cache_misses", 1);
            let config = LatticeConfig {
                max_context: max_context as usize,
                ..LatticeConfig::default()
            };
            match od_setbased::try_discover_statements(&rel, &config) {
                Ok(discovery) => {
                    let response = Response::Statements {
                        statements: discovery.minimal_statements().to_vec(),
                    };
                    shared
                        .discover_cache
                        .lock()
                        .unwrap()
                        .insert(key, response.clone());
                    response
                }
                Err(e) => err(ErrorCode::BadRequest, e.to_string()),
            }
        }
        Request::CreateMonitor {
            name,
            relation,
            epsilon,
            ods,
        } => {
            let rel = {
                let relations = shared.relations.lock().unwrap();
                let Some(entry) = relations.get(&relation) else {
                    return no_such("relation", &relation);
                };
                Arc::clone(&entry.relation)
            };
            if !(0.0..=1.0).contains(&epsilon) {
                return err(ErrorCode::BadRequest, "epsilon must be within [0, 1]");
            }
            if rel.schema().arity() > od_core::AttrSet::MAX_ATTRS {
                return err(
                    ErrorCode::BadRequest,
                    "monitors require schemas of at most 64 attributes",
                );
            }
            if let Some(bad) = ods
                .iter()
                .find(|od| !od_fits_schema(od, rel.schema().arity()))
            {
                return err(
                    ErrorCode::BadRequest,
                    format!("OD names an attribute outside the schema: {bad:?}"),
                );
            }
            {
                let monitors = shared.monitors.lock().unwrap();
                if monitors.contains_key(&name) {
                    return err(
                        ErrorCode::DuplicateResource,
                        format!("monitor '{name}' already exists"),
                    );
                }
            }
            // Build outside the monitors lock: initial scans can be heavy and
            // must not block unrelated monitors.
            let mut monitor = if ods.is_empty() {
                let discovery = od_discovery::discover_ods(&rel, DiscoveryConfig::default());
                Monitor::watch_install_set(&rel, &discovery, epsilon)
            } else {
                Monitor::watch(&rel, ods, epsilon, 1)
            };
            let watched = monitor.statuses().len() as u64;
            // Lift the sync callback onto the wire: one broadcast callback
            // per monitor, fanning each report's flips to every subscriber.
            let subs: Arc<Mutex<Vec<SubEntry>>> = Arc::new(Mutex::new(Vec::new()));
            // Broadcast counter; `Flips.seq` values are contiguous per monitor.
            let cb_seq = AtomicU64::new(0);
            let cb_subs = Arc::clone(&subs);
            let cb_name = name.clone();
            monitor.subscribe(move |report: &MonitorReport| {
                let statuses: Vec<WireOdStatus> = report.flips().map(wire_status).collect();
                if statuses.is_empty() {
                    return;
                }
                let seq = cb_seq.fetch_add(1, Ordering::Relaxed) + 1;
                let frame = Notification::Flips {
                    monitor: cb_name.clone(),
                    seq,
                    statuses,
                }
                .encode();
                cb_subs
                    .lock()
                    .unwrap()
                    .retain_mut(|sub| sub.push(&cb_name, &frame));
            });
            let entry = Arc::new(MonitorEntry {
                monitor: Mutex::new(monitor),
                subs,
                relation,
            });
            let mut monitors = shared.monitors.lock().unwrap();
            if monitors.contains_key(&name) {
                // Lost a create race while building; the later insert wins
                // nothing — report the collision.
                return err(
                    ErrorCode::DuplicateResource,
                    format!("monitor '{name}' already exists"),
                );
            }
            monitors.insert(name, entry);
            Response::MonitorCreated { watched }
        }
        Request::DropMonitor { name } => match shared.monitors.lock().unwrap().remove(&name) {
            Some(_) => Response::Ok,
            None => no_such("monitor", &name),
        },
        Request::ApplyDelta {
            monitor,
            inserts,
            deletes,
        } => {
            let Some(entry) = shared.monitors.lock().unwrap().get(&monitor).cloned() else {
                return no_such("monitor", &monitor);
            };
            let mut batch = DeltaBatch::new();
            batch.inserts = inserts;
            batch.deletes = deletes;
            // The per-monitor lock is the serialization point: notification
            // broadcast happens inside apply() while it is held, so seq order
            // equals verdict order.
            let mut live = entry.monitor.lock().unwrap();
            match live.apply(&batch) {
                Ok(report) => {
                    // The delta landed: the named dataset has moved past the
                    // snapshot, so cached discovery profiles for it are stale.
                    invalidate_profiles(shared, &entry.relation);
                    Response::DeltaApplied {
                        inserted: report.inserted.clone(),
                        deleted: report.deleted as u64,
                        touched_classes: report.touched_classes as u64,
                        rows: live.rows() as u64,
                        flipped: report.flips().map(wire_status).collect(),
                    }
                }
                Err(e) => err(ErrorCode::BadRequest, e.to_string()),
            }
        }
        Request::MonitorStatus { monitor } => {
            let Some(entry) = shared.monitors.lock().unwrap().get(&monitor).cloned() else {
                return no_such("monitor", &monitor);
            };
            let live = entry.monitor.lock().unwrap();
            Response::Statuses {
                rows: live.rows() as u64,
                statuses: live.statuses().iter().map(wire_status).collect(),
            }
        }
        Request::Implies { premises, goal } => {
            let m = OdSet::from_ods(premises);
            Response::Implication {
                implied: Decider::new(&m).implies(&goal),
            }
        }
        Request::Subscribe { monitor } => {
            let Some(entry) = shared.monitors.lock().unwrap().get(&monitor).cloned() else {
                return no_such("monitor", &monitor);
            };
            let mut subs = entry.subs.lock().unwrap();
            if !subs.iter().any(|sub| sub.conn_id == conn_id) {
                subs.push(SubEntry {
                    conn_id,
                    tx: tx.clone(),
                    dropped: 0,
                });
            }
            Response::Subscribed
        }
        Request::Unsubscribe { monitor } => {
            let Some(entry) = shared.monitors.lock().unwrap().get(&monitor).cloned() else {
                return no_such("monitor", &monitor);
            };
            let mut subs = entry.subs.lock().unwrap();
            let before = subs.len();
            subs.retain(|sub| sub.conn_id != conn_id);
            Response::Unsubscribed {
                was_subscribed: subs.len() < before,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ServerMessage;

    fn sub(depth: usize) -> (SubEntry, Receiver<Vec<u8>>) {
        let (tx, rx) = sync_channel(depth);
        (
            SubEntry {
                conn_id: 0,
                tx,
                dropped: 0,
            },
            rx,
        )
    }

    fn decode(frame: Vec<u8>) -> Notification {
        match ServerMessage::decode(&frame).unwrap() {
            ServerMessage::Notification(n) => n,
            ServerMessage::Response(r) => panic!("unexpected response {r:?}"),
        }
    }

    /// A full queue never blocks the broadcaster: the push returns
    /// immediately, counting the drop against this subscriber alone.
    #[test]
    fn full_queue_drops_without_blocking() {
        let (mut entry, rx) = sub(2);
        for i in 0..5u8 {
            assert!(entry.push("m", &[i]));
        }
        assert_eq!(entry.dropped, 3);
        // Only the first two broadcasts made it through.
        assert_eq!(rx.try_recv().unwrap(), vec![0]);
        assert_eq!(rx.try_recv().unwrap(), vec![1]);
        assert!(rx.try_recv().is_err());
    }

    /// Once the subscriber drains its queue, the next broadcast is preceded
    /// by a `Lagged` frame carrying the exact drop count, and the counter
    /// resets.
    #[test]
    fn lagged_notification_reports_exact_drop_count() {
        let (mut entry, rx) = sub(2);
        for i in 0..6u8 {
            assert!(entry.push("m", &[i]));
        }
        assert_eq!(entry.dropped, 4);
        // Subscriber catches up.
        rx.try_recv().unwrap();
        rx.try_recv().unwrap();
        // Next broadcast: Lagged{dropped: 4} first, then the fresh frame.
        let fresh = Notification::Lagged {
            monitor: "other".into(),
            dropped: 0,
        }
        .encode();
        assert!(entry.push("m", &fresh));
        assert_eq!(entry.dropped, 0);
        match decode(rx.try_recv().unwrap()) {
            Notification::Lagged { monitor, dropped } => {
                assert_eq!(monitor, "m");
                assert_eq!(dropped, 4);
            }
            n => panic!("expected Lagged, got {n:?}"),
        }
        assert_eq!(rx.try_recv().unwrap(), fresh);
    }

    /// If there is room for the `Lagged` marker but not the payload, the
    /// marker wins the slot and the payload counts as dropped — frames are
    /// never delivered out of order relative to their gap marker.  (This is
    /// why the server clamps queue depth to ≥ 2: with two slots the next
    /// drain converges to `Lagged` + fresh frame.)
    #[test]
    fn lagged_marker_takes_the_slot_and_payload_counts_dropped() {
        let (mut entry, rx) = sub(1);
        assert!(entry.push("m", &[1]));
        assert!(entry.push("m", &[2])); // dropped (queue full)
        assert_eq!(entry.dropped, 1);
        rx.try_recv().unwrap(); // drain [1]
        assert!(entry.push("m", &[3])); // Lagged fills the single slot; [3] drops
        assert_eq!(entry.dropped, 1);
        match decode(rx.try_recv().unwrap()) {
            Notification::Lagged { dropped, .. } => assert_eq!(dropped, 1),
            n => panic!("expected Lagged, got {n:?}"),
        }
    }

    /// With the server's minimum depth of two, a drained subscriber receives
    /// the gap marker *and* the fresh frame in one push, and the counter
    /// fully resets.
    #[test]
    fn depth_two_converges_to_lagged_plus_frame() {
        let (mut entry, rx) = sub(2);
        assert!(entry.push("m", &[1]));
        assert!(entry.push("m", &[2]));
        assert!(entry.push("m", &[3])); // dropped
        assert_eq!(entry.dropped, 1);
        rx.try_recv().unwrap();
        rx.try_recv().unwrap();
        assert!(entry.push("m", &[4]));
        match decode(rx.try_recv().unwrap()) {
            Notification::Lagged { dropped, .. } => assert_eq!(dropped, 1),
            n => panic!("expected Lagged, got {n:?}"),
        }
        assert_eq!(rx.try_recv().unwrap(), vec![4]);
        assert_eq!(entry.dropped, 0);
    }

    /// A subscriber whose connection is gone reports `false` so the
    /// broadcaster unregisters it.
    #[test]
    fn disconnected_subscriber_is_reported_dead() {
        let (mut entry, rx) = sub(1);
        drop(rx);
        assert!(!entry.push("m", &[1]));
    }
}
