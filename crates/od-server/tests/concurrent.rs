//! Concurrent-client determinism: N threads interleaving delta batches and
//! queries against one hosted monitor must land on final ledger verdicts
//! **bit-identical** to a single-threaded replay of the same batches.
//!
//! The argument being pinned: ledger verdicts depend only on the final alive
//! multiset, each thread deletes a disjoint slice of the snapshot's tuple ids
//! and inserts its own rows, so every interleaving ends on the same multiset —
//! and therefore the same `removal_count`s, byte for byte.

use od_core::wire;
use od_core::{AttrId, OrderDependency, Tuple, Value};
use od_server::proto::{Request, Response, ServerMessage};
use od_server::{Client, OdServer};
use std::net::SocketAddr;

const INITIAL_ROWS: usize = 240;
const THREADS: usize = 4;
const BATCHES_PER_THREAD: usize = 8;
const EPSILON: f64 = 0.02;

// Tax schema columns (od_workload::tax): id, income, bracket, payable.
const INCOME: u32 = 1;
const BRACKET: u32 = 2;
const PAYABLE: u32 = 3;

fn watched_ods() -> Vec<OrderDependency> {
    vec![
        OrderDependency::new(vec![AttrId(INCOME)], vec![AttrId(BRACKET)]),
        OrderDependency::new(vec![AttrId(INCOME)], vec![AttrId(PAYABLE)]),
        OrderDependency::new(vec![AttrId(BRACKET)], vec![AttrId(PAYABLE)]),
    ]
}

/// The delta batch thread `t` submits as its `b`-th batch — a pure function
/// of `(t, b)`, so the serial replay reuses the exact same data.  Violating
/// rows (high income, bracket 1) push `income ↦ bracket` over the ε budget;
/// deletes consume a per-thread disjoint slice of the initial snapshot's ids.
fn batch_for(t: usize, b: usize) -> (Vec<Tuple>, Vec<u32>) {
    let mut inserts = Vec::new();
    for i in 0..3 {
        let k = (t * BATCHES_PER_THREAD + b) * 3 + i;
        let income = 300_000 + (k as i64 * 1_237) % 50_000;
        // Deliberately wrong bracket for every third row.
        let bracket = if k.is_multiple_of(3) { 1 } else { 6 };
        inserts.push(vec![
            Value::Int(1_000_000 + k as i64),
            Value::Int(income),
            Value::Int(bracket),
            Value::Int(income / 10 * bracket),
        ]);
    }
    let per_thread = INITIAL_ROWS / THREADS;
    let base = t * per_thread;
    let deletes = if b < 4 {
        vec![(base + b * 2) as u32, (base + b * 2 + 1) as u32]
    } else {
        Vec::new()
    };
    (inserts, deletes)
}

/// Boot a server hosting the tax relation and a monitor watching `watched_ods`.
fn boot() -> (OdServer, SocketAddr) {
    let server = OdServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let rel = od_workload::tax::generate_taxes(INITIAL_ROWS, 42);
    assert!(matches!(
        client
            .request(&Request::CreateRelation {
                name: "taxes".into(),
                relation: rel,
            })
            .unwrap(),
        Response::RelationCreated { .. }
    ));
    match client
        .request(&Request::CreateMonitor {
            name: "ledger".into(),
            relation: "taxes".into(),
            epsilon: EPSILON,
            ods: watched_ods(),
        })
        .unwrap()
    {
        Response::MonitorCreated { watched } => assert_eq!(watched, 3),
        other => panic!("monitor create failed: {other:?}"),
    }
    (server, addr)
}

/// Encoded bytes of the monitor's final `Statuses` response.
fn final_status_bytes(addr: SocketAddr) -> Vec<u8> {
    let mut client = Client::connect(addr).unwrap();
    let response = client
        .request(&Request::MonitorStatus {
            monitor: "ledger".into(),
        })
        .unwrap();
    match &response {
        Response::Statuses { rows, statuses } => {
            assert_eq!(statuses.len(), 3);
            // Sanity on the expected end state: all deletes and inserts landed.
            let expected = INITIAL_ROWS - THREADS * 8 + THREADS * BATCHES_PER_THREAD * 3;
            assert_eq!(*rows, expected as u64);
        }
        other => panic!("expected statuses, got {other:?}"),
    }
    response.encode()
}

fn apply(client: &mut Client, t: usize, b: usize) {
    let (inserts, deletes) = batch_for(t, b);
    match client
        .request(&Request::ApplyDelta {
            monitor: "ledger".into(),
            inserts,
            deletes,
        })
        .unwrap()
    {
        Response::DeltaApplied { .. } => {}
        other => panic!("delta failed: {other:?}"),
    }
}

#[test]
fn concurrent_clients_match_serial_replay_bit_for_bit() {
    // Serial reference: one client applies every batch in a fixed order.
    let (server, addr) = boot();
    let mut client = Client::connect(addr).unwrap();
    for t in 0..THREADS {
        for b in 0..BATCHES_PER_THREAD {
            apply(&mut client, t, b);
        }
    }
    let serial = final_status_bytes(addr);
    server.shutdown();

    // Concurrent run: same batches, one thread per client, racing, with
    // status and implication queries interleaved between deltas.
    let (server, addr) = boot();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for b in 0..BATCHES_PER_THREAD {
                    apply(&mut client, t, b);
                    // Interleave read-only queries to stress the router.
                    let status = client
                        .request(&Request::MonitorStatus {
                            monitor: "ledger".into(),
                        })
                        .unwrap();
                    assert!(matches!(status, Response::Statuses { .. }));
                    let implied = client
                        .request(&Request::Implies {
                            premises: watched_ods(),
                            goal: OrderDependency::new(
                                vec![AttrId(INCOME)],
                                vec![AttrId(BRACKET), AttrId(PAYABLE)],
                            ),
                        })
                        .unwrap();
                    assert_eq!(implied, Response::Implication { implied: true });
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    let concurrent = final_status_bytes(addr);
    server.shutdown();

    assert_eq!(
        serial, concurrent,
        "final ledger verdicts must be bit-identical to single-threaded replay"
    );
}

/// Same monitor driven through two servers in sequence with identical input
/// must also produce identical bytes — pins server-level determinism (no
/// wall-clock, map-iteration, or thread-id leakage into responses).
#[test]
fn repeated_serial_runs_are_bit_identical() {
    let run = || {
        let (server, addr) = boot();
        let mut client = Client::connect(addr).unwrap();
        let mut transcript = Vec::new();
        for t in 0..THREADS {
            for b in 0..BATCHES_PER_THREAD {
                let (inserts, deletes) = batch_for(t, b);
                let response = client
                    .request(&Request::ApplyDelta {
                        monitor: "ledger".into(),
                        inserts,
                        deletes,
                    })
                    .unwrap();
                transcript.extend_from_slice(&response.encode());
            }
        }
        transcript.extend_from_slice(&final_status_bytes(addr));
        server.shutdown();
        transcript
    };
    assert_eq!(run(), run());
}

/// The wire view of a monitor matches the in-process monitor exactly: every
/// removal count the server reports equals what a local `Monitor` fed the
/// same batches computes.
#[test]
fn wire_statuses_match_in_process_monitor() {
    let (server, addr) = boot();
    let mut client = Client::connect(addr).unwrap();
    let rel = od_workload::tax::generate_taxes(INITIAL_ROWS, 42);
    let mut local = od_discovery::Monitor::watch(&rel, watched_ods(), EPSILON, 1);
    for t in 0..THREADS {
        for b in 0..BATCHES_PER_THREAD {
            apply(&mut client, t, b);
            let (inserts, deletes) = batch_for(t, b);
            let mut batch = od_setbased::stream::DeltaBatch::new();
            batch.inserts = inserts;
            batch.deletes = deletes;
            local.apply(&batch).unwrap();
        }
    }
    let wire_bytes = final_status_bytes(addr);
    let reference = Response::Statuses {
        rows: local.rows() as u64,
        statuses: local
            .statuses()
            .iter()
            .map(|s| od_server::proto::WireOdStatus {
                od: s.od.clone(),
                removal_count: s.removal_count as u64,
                accepted: s.accepted,
                flipped: s.flipped,
            })
            .collect(),
    };
    assert_eq!(wire_bytes, reference.encode());
    // And the framing machinery agrees end to end.
    let decoded = ServerMessage::decode(&wire_bytes).unwrap();
    assert!(matches!(
        decoded,
        ServerMessage::Response(Response::Statuses { .. })
    ));
    let mut framed = Vec::new();
    wire::write_frame(&mut framed, &wire_bytes).unwrap();
    assert_eq!(
        wire::read_frame(&mut &framed[..], wire::MAX_FRAME_LEN).unwrap(),
        wire_bytes
    );
    server.shutdown();
}
