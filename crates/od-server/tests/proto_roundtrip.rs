//! Property tests for the wire protocol: every request, response, and
//! notification frame must encode → decode → re-encode **bit-identically**
//! (the canonical-encoding contract the deterministic bench artifacts and the
//! cross-process tests rely on), including empty and maximum-size payloads.

use od_core::wire;
use od_core::{AttrId, AttrSet, OrderDependency, Relation, Schema, Value};
use od_server::proto::{ErrorCode, Notification, Request, Response, ServerMessage, WireOdStatus};
use od_setbased::SetOd;
use proptest::prelude::*;

/// Deterministic splitmix64 generator so one `u64` seed drives an entire
/// message tree (the proptest shim's strategies compose over scalars, not
/// recursive enums).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn string(&mut self) -> String {
        let len = self.below(12) as usize;
        (0..len)
            .map(|_| char::from(b'a' + (self.below(26) as u8)))
            .collect()
    }

    /// Finite floats only: value-level equality must hold alongside the
    /// byte-level contract (NaN gets its own dedicated test below).
    fn float(&mut self) -> f64 {
        (self.next() as i64 % 1_000_000) as f64 / 128.0
    }

    fn value(&mut self) -> Value {
        match self.below(6) {
            0 => Value::Null,
            1 => Value::Bool(self.next() & 1 == 0),
            2 => Value::Int(self.next() as i64),
            3 => Value::Float(self.float()),
            4 => Value::Str(self.string()),
            _ => Value::Date(self.next() as i32),
        }
    }

    fn relation(&mut self) -> Relation {
        let arity = 1 + self.below(4) as usize;
        let rows = self.below(8) as usize;
        let mut schema = Schema::new(self.string());
        for i in 0..arity {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            (0..rows).map(|_| (0..arity).map(|_| self.value()).collect()),
        )
        .expect("arity fixed by construction")
    }

    fn od(&mut self) -> OrderDependency {
        let side = |g: &mut Gen| -> Vec<AttrId> {
            (0..g.below(4))
                .map(|_| AttrId(g.below(64) as u32))
                .collect()
        };
        OrderDependency::new(side(self), side(self))
    }

    fn ods(&mut self) -> Vec<OrderDependency> {
        (0..self.below(4)).map(|_| self.od()).collect()
    }

    fn statement(&mut self) -> SetOd {
        let context = AttrSet::from_mask(self.next());
        if self.next() & 1 == 0 {
            SetOd::constancy(context, AttrId(self.below(64) as u32))
        } else {
            SetOd::compatibility(
                context,
                AttrId(self.below(64) as u32),
                AttrId(self.below(64) as u32),
            )
        }
    }

    fn status(&mut self) -> WireOdStatus {
        WireOdStatus {
            od: self.od(),
            removal_count: self.next(),
            accepted: self.next() & 1 == 0,
            flipped: self.next() & 1 == 0,
        }
    }

    fn statuses(&mut self) -> Vec<WireOdStatus> {
        (0..self.below(4)).map(|_| self.status()).collect()
    }

    fn error_code(&mut self) -> ErrorCode {
        [
            ErrorCode::Protocol,
            ErrorCode::UnknownOpcode,
            ErrorCode::NoSuchResource,
            ErrorCode::DuplicateResource,
            ErrorCode::BadRequest,
            ErrorCode::TooLarge,
            ErrorCode::ShuttingDown,
        ][self.below(7) as usize]
    }

    fn request(&mut self, variant: u64) -> Request {
        match variant {
            0 => Request::Ping,
            1 => Request::CreateRelation {
                name: self.string(),
                relation: self.relation(),
            },
            2 => Request::DropRelation {
                name: self.string(),
            },
            3 => Request::ListResources,
            4 => Request::Discover {
                relation: self.string(),
                max_lhs: self.next() as u32,
                max_rhs: self.next() as u32,
                epsilon: self.float(),
                max_context: self.next() as u32,
            },
            5 => Request::DiscoverStatements {
                relation: self.string(),
                max_context: self.next() as u32,
            },
            6 => Request::CreateMonitor {
                name: self.string(),
                relation: self.string(),
                epsilon: self.float(),
                ods: self.ods(),
            },
            7 => Request::DropMonitor {
                name: self.string(),
            },
            8 => Request::ApplyDelta {
                monitor: self.string(),
                inserts: (0..self.below(5))
                    .map(|_| (0..3).map(|_| self.value()).collect())
                    .collect(),
                deletes: (0..self.below(5)).map(|_| self.next() as u32).collect(),
            },
            9 => Request::MonitorStatus {
                monitor: self.string(),
            },
            10 => Request::Implies {
                premises: self.ods(),
                goal: self.od(),
            },
            11 => Request::Subscribe {
                monitor: self.string(),
            },
            12 => Request::Unsubscribe {
                monitor: self.string(),
            },
            _ => Request::Shutdown,
        }
    }

    fn response(&mut self, variant: u64) -> Response {
        match variant {
            0 => Response::Pong,
            1 => Response::Ok,
            2 => Response::Error {
                code: self.error_code(),
                message: self.string(),
            },
            3 => Response::RelationCreated { rows: self.next() },
            4 => Response::Resources {
                relations: (0..self.below(4))
                    .map(|_| (self.string(), self.next()))
                    .collect(),
                monitors: (0..self.below(4))
                    .map(|_| (self.string(), self.next()))
                    .collect(),
            },
            5 => {
                let ods = self.ods();
                let errors = ods.iter().map(|_| self.float()).collect();
                Response::Discovered { ods, errors }
            }
            6 => Response::Statements {
                statements: (0..self.below(5)).map(|_| self.statement()).collect(),
            },
            7 => Response::MonitorCreated {
                watched: self.next(),
            },
            8 => Response::DeltaApplied {
                inserted: (0..self.below(5)).map(|_| self.next() as u32).collect(),
                deleted: self.next(),
                touched_classes: self.next(),
                rows: self.next(),
                flipped: self.statuses(),
            },
            9 => Response::Statuses {
                rows: self.next(),
                statuses: self.statuses(),
            },
            10 => Response::Implication {
                implied: self.next() & 1 == 0,
            },
            11 => Response::Subscribed,
            12 => Response::Unsubscribed {
                was_subscribed: self.next() & 1 == 0,
            },
            _ => Response::ShuttingDown,
        }
    }

    fn notification(&mut self, variant: u64) -> Notification {
        match variant {
            0 => Notification::Flips {
                monitor: self.string(),
                seq: self.next(),
                statuses: self.statuses(),
            },
            _ => Notification::Lagged {
                monitor: self.string(),
                dropped: self.next(),
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Requests: encode → decode → re-encode is the identity on bytes AND on
    /// values.
    #[test]
    fn request_roundtrip(seed in 0u64..u64::MAX, variant in 0u64..14) {
        let request = Gen(seed).request(variant);
        let bytes = request.encode();
        let decoded = Request::decode(&bytes).expect("self-encoded frame decodes");
        prop_assert_eq!(&decoded, &request);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Responses, via the framed `ServerMessage` path the client actually
    /// reads.
    #[test]
    fn response_roundtrip(seed in 0u64..u64::MAX, variant in 0u64..14) {
        let response = Gen(seed).response(variant);
        let bytes = response.encode();
        let decoded = match ServerMessage::decode(&bytes).expect("decodes") {
            ServerMessage::Response(r) => r,
            ServerMessage::Notification(n) => panic!("kind byte flipped: {n:?}"),
        };
        prop_assert_eq!(&decoded, &response);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Notifications round-trip the same way.
    #[test]
    fn notification_roundtrip(seed in 0u64..u64::MAX, variant in 0u64..2) {
        let notification = Gen(seed).notification(variant);
        let bytes = notification.encode();
        let decoded = match ServerMessage::decode(&bytes).expect("decodes") {
            ServerMessage::Notification(n) => n,
            ServerMessage::Response(r) => panic!("kind byte flipped: {r:?}"),
        };
        prop_assert_eq!(&decoded, &notification);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Frame transport is the identity for arbitrary payloads, empty included.
    #[test]
    fn frame_roundtrip(payload in prop::collection::vec(0u8..255, 0..64)) {
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, &payload).unwrap();
        prop_assert_eq!(buf.len(), 4 + payload.len());
        let back = wire::read_frame(&mut &buf[..], wire::MAX_FRAME_LEN).unwrap();
        prop_assert_eq!(back, payload);
    }
}

/// NaN payloads keep their exact bit pattern (floats travel as `to_bits`).
#[test]
fn nan_float_roundtrips_bitwise() {
    let nan = f64::from_bits(0x7ff8_dead_beef_0123);
    let request = Request::ApplyDelta {
        monitor: "m".into(),
        inserts: vec![vec![Value::Float(nan)]],
        deletes: vec![],
    };
    let bytes = request.encode();
    let decoded = Request::decode(&bytes).unwrap();
    // `Value::Float(NaN) != Value::Float(NaN)` — the byte-level identity is
    // the contract.
    assert_eq!(decoded.encode(), bytes);
    match decoded {
        Request::ApplyDelta { inserts, .. } => match inserts[0][0] {
            Value::Float(f) => assert_eq!(f.to_bits(), nan.to_bits()),
            ref v => panic!("wrong value {v:?}"),
        },
        r => panic!("wrong request {r:?}"),
    }
}

/// The empty payload is a valid frame (length prefix 0) and distinct from a
/// closed connection.
#[test]
fn empty_payload_frame() {
    let mut buf = Vec::new();
    wire::write_frame(&mut buf, &[]).unwrap();
    assert_eq!(buf, [0, 0, 0, 0]);
    let back = wire::read_frame_opt(&mut &buf[..], wire::MAX_FRAME_LEN).unwrap();
    assert_eq!(back, Some(Vec::new()));
    // And after the empty frame, clean EOF reads as None.
    let mut rest: &[u8] = &[];
    assert_eq!(
        wire::read_frame_opt(&mut rest, wire::MAX_FRAME_LEN).unwrap(),
        None
    );
}

/// A payload exactly at the cap round-trips; one byte over is rejected
/// before any allocation happens.
#[test]
fn max_size_payload_frame() {
    let cap = 1 << 16;
    let payload = vec![0xabu8; cap];
    let mut buf = Vec::new();
    wire::write_frame(&mut buf, &payload).unwrap();
    let back = wire::read_frame(&mut &buf[..], cap).unwrap();
    assert_eq!(back, payload);

    let mut over = Vec::new();
    wire::write_frame(&mut over, &vec![0xcdu8; cap + 1]).unwrap();
    let err = wire::read_frame(&mut &over[..], cap).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

/// A maximum-size *meaningful* message: a wide relation with long strings
/// survives the round trip byte-for-byte.
#[test]
fn large_request_roundtrip() {
    let mut schema = Schema::new("wide");
    for i in 0..64 {
        schema.add_attr(format!("c{i}"));
    }
    let big = "x".repeat(4096);
    let rel = Relation::from_rows(
        schema,
        (0..32).map(|r| {
            (0..64)
                .map(|c| {
                    if (r + c) % 2 == 0 {
                        Value::Str(big.clone())
                    } else {
                        Value::Int(r as i64 * 64 + c as i64)
                    }
                })
                .collect()
        }),
    )
    .unwrap();
    let request = Request::CreateRelation {
        name: "big".into(),
        relation: rel,
    };
    let bytes = request.encode();
    assert!(bytes.len() > 4 * 1024 * 1024);
    assert!(bytes.len() <= wire::MAX_FRAME_LEN);
    let decoded = Request::decode(&bytes).unwrap();
    assert_eq!(decoded.encode(), bytes);
}
