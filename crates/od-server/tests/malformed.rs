//! Hostile-input tests: truncated frames, oversized length prefixes, unknown
//! opcodes, garbage payloads, and mid-frame disconnects must produce a
//! protocol error or a clean close — never a panic, and never a hang (every
//! read below runs under a timeout).

use od_core::wire;
use od_server::proto::{ErrorCode, Request, Response, ServerMessage};
use od_server::{OdServer, ServerConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const READ_TIMEOUT: Duration = Duration::from_secs(5);

fn server() -> OdServer {
    OdServer::bind_with(
        "127.0.0.1:0",
        ServerConfig {
            // Small read cap so the oversized-prefix test does not need a
            // 32 MiB declared length to trip it.
            max_frame: 1 << 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

/// Read one server frame (with the connection's read timeout active).
fn read_message(stream: &mut TcpStream) -> std::io::Result<ServerMessage> {
    let payload = wire::read_frame(stream, wire::MAX_FRAME_LEN)?;
    ServerMessage::decode(&payload)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))
}

fn expect_error(stream: &mut TcpStream, code: ErrorCode) {
    match read_message(stream).expect("server answers before closing") {
        ServerMessage::Response(Response::Error { code: got, .. }) => assert_eq!(got, code),
        other => panic!("expected {code:?} error, got {other:?}"),
    }
}

/// The server closed our connection: the next read yields EOF (or a reset),
/// not a hang.
fn expect_close(stream: &mut TcpStream) {
    let mut buf = [0u8; 1];
    match stream.read(&mut buf) {
        Ok(0) => {}
        Ok(_) => panic!("server kept talking after a fatal framing error"),
        Err(e) if matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe) => {}
        Err(e) => panic!("expected clean close, got {e}"),
    }
}

/// Sanity: the connection is still alive and serving.
fn expect_pong(stream: &mut TcpStream) {
    wire::write_frame(stream, &Request::Ping.encode()).unwrap();
    match read_message(stream).expect("pong") {
        ServerMessage::Response(Response::Pong) => {}
        other => panic!("expected pong, got {other:?}"),
    }
}

#[test]
fn unknown_opcode_gets_error_and_connection_survives() {
    let server = server();
    let mut stream = connect(server.local_addr());
    // Opcode 0xEE is not part of the protocol.
    wire::write_frame(&mut stream, &[0xEE, 1, 2, 3]).unwrap();
    expect_error(&mut stream, ErrorCode::UnknownOpcode);
    // The frame boundary was intact, so the connection keeps serving.
    expect_pong(&mut stream);
    server.shutdown();
}

#[test]
fn truncated_payload_gets_protocol_error_and_connection_survives() {
    let server = server();
    let mut stream = connect(server.local_addr());
    // A DropRelation whose declared string length runs past the payload.
    let mut payload = Request::DropRelation {
        name: "abcdef".into(),
    }
    .encode();
    payload.truncate(payload.len() - 3);
    wire::write_frame(&mut stream, &payload).unwrap();
    expect_error(&mut stream, ErrorCode::Protocol);
    expect_pong(&mut stream);
    server.shutdown();
}

#[test]
fn trailing_garbage_gets_protocol_error() {
    let server = server();
    let mut stream = connect(server.local_addr());
    let mut payload = Request::Ping.encode();
    payload.extend_from_slice(b"extra");
    wire::write_frame(&mut stream, &payload).unwrap();
    expect_error(&mut stream, ErrorCode::Protocol);
    expect_pong(&mut stream);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_reports_too_large_then_closes() {
    let server = server();
    let mut stream = connect(server.local_addr());
    // Declare a 1 GiB frame (past the server's 64 KiB cap) without sending it.
    stream.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
    stream.flush().unwrap();
    expect_error(&mut stream, ErrorCode::TooLarge);
    // The stream position can't be trusted after a lying prefix: closed.
    expect_close(&mut stream);
    server.shutdown();
}

#[test]
fn absurd_element_count_inside_valid_frame_is_rejected_not_allocated() {
    let server = server();
    let mut stream = connect(server.local_addr());
    // A syntactically valid small frame whose ApplyDelta declares u32::MAX
    // deletes: the decoder must refuse (count > remaining bytes) instead of
    // trying to allocate 16 GiB.
    let mut payload = vec![8u8]; // REQ_APPLY_DELTA
    wire::put_str(&mut payload, "mon");
    wire::put_u32(&mut payload, 0); // no inserts
    wire::put_u32(&mut payload, u32::MAX); // "deletes" count
    wire::write_frame(&mut stream, &payload).unwrap();
    expect_error(&mut stream, ErrorCode::Protocol);
    expect_pong(&mut stream);
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_is_a_clean_close_for_the_server() {
    let server = server();
    {
        let mut stream = connect(server.local_addr());
        // Send a length prefix plus half the promised payload, then vanish.
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 37]).unwrap();
        stream.flush().unwrap();
    } // drop = disconnect
      // The server must have survived: a fresh connection still works.
    let mut probe = connect(server.local_addr());
    expect_pong(&mut probe);
    server.shutdown();
}

#[test]
fn disconnect_between_frames_is_clean() {
    let server = server();
    for _ in 0..8 {
        let mut stream = connect(server.local_addr());
        expect_pong(&mut stream);
        // Drop with no pending bytes: the reader sees EOF between frames.
    }
    let mut probe = connect(server.local_addr());
    expect_pong(&mut probe);
    server.shutdown();
}

#[test]
fn zero_length_frame_is_a_protocol_error_not_a_crash() {
    let server = server();
    let mut stream = connect(server.local_addr());
    // An empty payload has no opcode byte at all.
    wire::write_frame(&mut stream, &[]).unwrap();
    expect_error(&mut stream, ErrorCode::Protocol);
    expect_pong(&mut stream);
    server.shutdown();
}

#[test]
fn byte_dribble_does_not_wedge_other_clients() {
    let server = server();
    // One client sends a frame one byte at a time with pauses…
    let mut slow = connect(server.local_addr());
    let frame = {
        let mut buf = Vec::new();
        wire::write_frame(&mut buf, &Request::Ping.encode()).unwrap();
        buf
    };
    slow.write_all(&frame[..2]).unwrap();
    slow.flush().unwrap();
    // …while another client gets served normally in the meantime.
    let mut fast = connect(server.local_addr());
    expect_pong(&mut fast);
    // The slow client finishes its frame and still gets its answer.
    slow.write_all(&frame[2..]).unwrap();
    slow.flush().unwrap();
    match read_message(&mut slow).expect("dribbled ping answered") {
        ServerMessage::Response(Response::Pong) => {}
        other => panic!("expected pong, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn requests_to_missing_resources_are_errors_not_panics() {
    let server = server();
    let mut stream = connect(server.local_addr());
    for request in [
        Request::DropRelation {
            name: "ghost".into(),
        },
        Request::DropMonitor {
            name: "ghost".into(),
        },
        Request::ApplyDelta {
            monitor: "ghost".into(),
            inserts: vec![],
            deletes: vec![],
        },
        Request::MonitorStatus {
            monitor: "ghost".into(),
        },
        Request::Subscribe {
            monitor: "ghost".into(),
        },
        Request::Unsubscribe {
            monitor: "ghost".into(),
        },
    ] {
        wire::write_frame(&mut stream, &request.encode()).unwrap();
        expect_error(&mut stream, ErrorCode::NoSuchResource);
    }
    expect_pong(&mut stream);
    server.shutdown();
}
