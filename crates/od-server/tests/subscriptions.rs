//! Pub/sub behavior: verdict flips are delivered exactly once per subscribed
//! connection, unsubscribing stops delivery immediately, dead subscribers are
//! pruned, and a subscriber that never reads cannot stall the flip source or
//! any other client.  (The bounded-queue drop/`Lagged` accounting itself is
//! pinned deterministically by unit tests inside `od-server`.)

use od_core::{AttrId, OrderDependency, Value};
use od_server::proto::{Notification, Request, Response};
use od_server::{Client, OdServer};
use std::net::SocketAddr;
use std::time::Duration;

const RECV: Duration = Duration::from_secs(5);
const QUIET: Duration = Duration::from_millis(300);

/// Tax schema columns: id, income, bracket, payable.
const INCOME: u32 = 1;
const BRACKET: u32 = 2;

/// Boot a server hosting a clean tax relation and a monitor watching the
/// (exactly satisfied) `[income] ↦ [bracket]` with ε = 0 — a single violating
/// row flips it to rejected, deleting that row flips it back.
fn boot() -> (OdServer, SocketAddr) {
    let server = OdServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let rel = od_workload::tax::generate_taxes(120, 7);
    client
        .request(&Request::CreateRelation {
            name: "taxes".into(),
            relation: rel,
        })
        .unwrap();
    match client
        .request(&Request::CreateMonitor {
            name: "ledger".into(),
            relation: "taxes".into(),
            epsilon: 0.0,
            ods: vec![OrderDependency::new(
                vec![AttrId(INCOME)],
                vec![AttrId(BRACKET)],
            )],
        })
        .unwrap()
    {
        Response::MonitorCreated { watched } => assert_eq!(watched, 1),
        other => panic!("monitor create failed: {other:?}"),
    }
    (server, addr)
}

fn subscribe(client: &mut Client) {
    assert!(matches!(
        client
            .request(&Request::Subscribe {
                monitor: "ledger".into()
            })
            .unwrap(),
        Response::Subscribed
    ));
}

/// Insert one violating row and delete it again: exactly two flips
/// (accepted → rejected → accepted).  Returns nothing; panics on any error.
fn toggle(driver: &mut Client, k: i64) {
    let inserted = match driver
        .request(&Request::ApplyDelta {
            monitor: "ledger".into(),
            inserts: vec![vec![
                Value::Int(9_000_000 + k),
                Value::Int(399_000 + k),
                Value::Int(1), // wrong bracket for that income
                Value::Int(0),
            ]],
            deletes: vec![],
        })
        .unwrap()
    {
        Response::DeltaApplied {
            inserted, flipped, ..
        } => {
            assert_eq!(flipped.len(), 1, "violating insert must flip");
            inserted
        }
        other => panic!("insert failed: {other:?}"),
    };
    match driver
        .request(&Request::ApplyDelta {
            monitor: "ledger".into(),
            inserts: vec![],
            deletes: inserted,
        })
        .unwrap()
    {
        Response::DeltaApplied { flipped, .. } => {
            assert_eq!(flipped.len(), 1, "repairing delete must flip back");
        }
        other => panic!("delete failed: {other:?}"),
    }
}

/// Receive exactly `want` flip notifications with contiguous sequence numbers
/// `from..from + want`, then verify silence.
fn expect_flips(client: &mut Client, from: u64, want: u64) {
    for offset in 0..want {
        match client.recv_notification(RECV).unwrap() {
            Some(Notification::Flips {
                monitor,
                seq,
                statuses,
            }) => {
                assert_eq!(monitor, "ledger");
                assert_eq!(
                    seq,
                    from + offset,
                    "flips must arrive exactly once, in order"
                );
                assert_eq!(statuses.len(), 1);
            }
            other => panic!("expected flip #{offset}, got {other:?}"),
        }
    }
    assert!(
        client.recv_notification(QUIET).unwrap().is_none(),
        "no duplicate or phantom notifications"
    );
}

#[test]
fn flips_are_delivered_exactly_once_per_subscriber() {
    let (server, addr) = boot();
    let mut driver = Client::connect(addr).unwrap();
    let mut alice = Client::connect(addr).unwrap();
    let mut bob = Client::connect(addr).unwrap();
    subscribe(&mut alice);
    subscribe(&mut bob);

    for k in 0..3 {
        toggle(&mut driver, k);
    }

    // Both subscribers see all six flips, once each, in seq order.
    expect_flips(&mut alice, 1, 6);
    expect_flips(&mut bob, 1, 6);
    // The driver never subscribed: it must see none.
    assert!(driver.drain_notifications().is_empty());
    assert!(driver.recv_notification(QUIET).unwrap().is_none());
    server.shutdown();
}

#[test]
fn unsubscribe_stops_delivery() {
    let (server, addr) = boot();
    let mut driver = Client::connect(addr).unwrap();
    let mut alice = Client::connect(addr).unwrap();
    let mut bob = Client::connect(addr).unwrap();
    subscribe(&mut alice);
    subscribe(&mut bob);

    toggle(&mut driver, 0); // seqs 1, 2
    expect_flips(&mut alice, 1, 2);
    expect_flips(&mut bob, 1, 2);

    match bob
        .request(&Request::Unsubscribe {
            monitor: "ledger".into(),
        })
        .unwrap()
    {
        Response::Unsubscribed { was_subscribed } => assert!(was_subscribed),
        other => panic!("unsubscribe failed: {other:?}"),
    }

    toggle(&mut driver, 1); // seqs 3, 4
    expect_flips(&mut alice, 3, 2);
    assert!(
        bob.recv_notification(QUIET).unwrap().is_none(),
        "unsubscribed connection must receive nothing"
    );

    // Unsubscribing again reports the connection was not subscribed.
    match bob
        .request(&Request::Unsubscribe {
            monitor: "ledger".into(),
        })
        .unwrap()
    {
        Response::Unsubscribed { was_subscribed } => assert!(!was_subscribed),
        other => panic!("unsubscribe failed: {other:?}"),
    }

    // Resubscribing resumes delivery with *new* flips only — no replay.
    subscribe(&mut bob);
    toggle(&mut driver, 2); // seqs 5, 6
    expect_flips(&mut bob, 5, 2);
    expect_flips(&mut alice, 5, 2);
    server.shutdown();
}

#[test]
fn disconnected_subscriber_is_pruned_without_disrupting_others() {
    let (server, addr) = boot();
    let mut driver = Client::connect(addr).unwrap();
    let mut alice = Client::connect(addr).unwrap();
    subscribe(&mut alice);
    {
        let mut ghost = Client::connect(addr).unwrap();
        subscribe(&mut ghost);
    } // ghost drops its connection with an active subscription

    // Give the server a moment to reap the dead connection, then flip.
    std::thread::sleep(Duration::from_millis(50));
    for k in 0..2 {
        toggle(&mut driver, k);
    }
    expect_flips(&mut alice, 1, 4);
    server.shutdown();
}

#[test]
fn slow_subscriber_cannot_stall_flip_source_or_other_clients() {
    let (server, addr) = boot();
    let mut slow = Client::connect(addr).unwrap();
    let mut fast = Client::connect(addr).unwrap();
    subscribe(&mut slow);
    subscribe(&mut fast);
    // `slow` now stops reading entirely until the storm is over.

    const TOGGLES: u64 = 40; // 80 flip broadcasts

    // Drive flips from a separate thread; a stalled broadcast would make this
    // thread (and the whole test) hang.
    let driver = std::thread::spawn(move || {
        let mut driver = Client::connect(addr).unwrap();
        for k in 0..TOGGLES as i64 {
            toggle(&mut driver, k);
        }
        // An unrelated client must also stay responsive mid-storm.
        let mut probe = Client::connect(addr).unwrap();
        assert!(matches!(
            probe.request(&Request::Ping).unwrap(),
            Response::Pong
        ));
    });

    // The fast subscriber keeps up and sees every flip exactly once.
    expect_flips(&mut fast, 1, 2 * TOGGLES);
    driver.join().expect("flip source must never stall");

    // The slow subscriber finally reads: at this small volume everything was
    // buffered, so it too gets every flip exactly once (the bounded-queue
    // overflow path is unit-tested deterministically in od-server).
    expect_flips(&mut slow, 1, 2 * TOGGLES);
    server.shutdown();
}

#[test]
fn dropping_the_monitor_detaches_subscribers() {
    let (server, addr) = boot();
    let mut driver = Client::connect(addr).unwrap();
    let mut alice = Client::connect(addr).unwrap();
    subscribe(&mut alice);
    toggle(&mut driver, 0);
    expect_flips(&mut alice, 1, 2);

    assert!(matches!(
        driver
            .request(&Request::DropMonitor {
                name: "ledger".into()
            })
            .unwrap(),
        Response::Ok
    ));
    // The monitor is gone: no further notifications can arrive, and the
    // subscriber's connection remains usable for ordinary requests.
    assert!(alice.recv_notification(QUIET).unwrap().is_none());
    assert!(matches!(
        alice.request(&Request::Ping).unwrap(),
        Response::Pong
    ));
    server.shutdown();
}
