//! Discovery-profile cache: `Discover`/`DiscoverStatements` responses are
//! memoized per (relation, generation, config), invalidated when an
//! `ApplyDelta` lands on one of the relation's monitors, and keyed by
//! generation so a dropped-and-recreated relation never serves a stale
//! profile.  The wire-visible contract pinned here: a cached response is
//! **byte-identical** to a fresh one — discovery is deterministic and the
//! cache stores the decoded response, so encode ∘ cache ∘ encode is the
//! identity on frames.

use od_core::{AttrId, OrderDependency, Value};
use od_server::proto::{Request, Response};
use od_server::{Client, OdServer};
use std::net::SocketAddr;

// Tax schema columns (od_workload::tax): id, income, bracket, payable.
const INCOME: u32 = 1;
const BRACKET: u32 = 2;

fn boot(rows: usize) -> (OdServer, SocketAddr) {
    let server = OdServer::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let rel = od_workload::tax::generate_taxes(rows, 42);
    assert!(matches!(
        client
            .request(&Request::CreateRelation {
                name: "taxes".into(),
                relation: rel,
            })
            .unwrap(),
        Response::RelationCreated { .. }
    ));
    (server, addr)
}

fn discover_request() -> Request {
    Request::Discover {
        relation: "taxes".into(),
        max_lhs: 1,
        max_rhs: 1,
        epsilon: 0.0,
        max_context: 2,
    }
}

/// Concurrent clients hammering the same Discover (and DiscoverStatements)
/// config — first requests miss, later ones hit the cache, interleaved
/// arbitrarily across threads — must all receive frames byte-identical to a
/// fresh single-threaded reference.
#[test]
fn cached_and_fresh_discover_frames_are_byte_identical_under_concurrency() {
    let (server, addr) = boot(160);
    let mut reference_client = Client::connect(addr).unwrap();
    let reference_response = reference_client.request(&discover_request()).unwrap();
    assert!(matches!(reference_response, Response::Discovered { .. }));
    let reference = reference_response.encode();
    let statements_request = Request::DiscoverStatements {
        relation: "taxes".into(),
        max_context: 2,
    };
    let statements_reference = reference_client
        .request(&statements_request)
        .unwrap()
        .encode();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let statements_request = statements_request.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut frames = Vec::new();
                for _ in 0..5 {
                    frames.push((
                        client.request(&discover_request()).unwrap().encode(),
                        client.request(&statements_request).unwrap().encode(),
                    ));
                }
                frames
            })
        })
        .collect();
    for handle in handles {
        for (discover_frame, statements_frame) in handle.join().unwrap() {
            assert_eq!(
                discover_frame, reference,
                "a cached Discover frame diverged from the fresh reference"
            );
            assert_eq!(
                statements_frame, statements_reference,
                "a cached DiscoverStatements frame diverged from the fresh reference"
            );
        }
    }
    server.shutdown();
}

/// Deltas against the relation's monitor invalidate the cached profile, and
/// the re-discovered profile (the snapshot is immutable, so it is the same
/// profile) still arrives byte-identical — concurrent invalidation never
/// tears a response.
#[test]
fn apply_delta_invalidation_preserves_byte_identity() {
    let (server, addr) = boot(160);
    let mut client = Client::connect(addr).unwrap();
    assert!(matches!(
        client
            .request(&Request::CreateMonitor {
                name: "ledger".into(),
                relation: "taxes".into(),
                epsilon: 0.05,
                ods: vec![OrderDependency::new(
                    vec![AttrId(INCOME)],
                    vec![AttrId(BRACKET)],
                )],
            })
            .unwrap(),
        Response::MonitorCreated { .. }
    ));
    let reference = client.request(&discover_request()).unwrap().encode();

    let discoverer = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        (0..20)
            .map(|_| client.request(&discover_request()).unwrap().encode())
            .collect::<Vec<_>>()
    });
    for i in 0..10u32 {
        let inserted = match client
            .request(&Request::ApplyDelta {
                monitor: "ledger".into(),
                inserts: vec![vec![
                    Value::Int(1_000_000 + i as i64),
                    Value::Int(50_000 + i as i64),
                    Value::Int(3),
                    Value::Int(15_000),
                ]],
                deletes: vec![],
            })
            .unwrap()
        {
            Response::DeltaApplied { inserted, .. } => inserted,
            other => panic!("delta failed: {other:?}"),
        };
        assert_eq!(inserted.len(), 1);
    }
    for frame in discoverer.join().unwrap() {
        assert_eq!(
            frame, reference,
            "Discover raced an invalidation and produced a different frame"
        );
    }
    server.shutdown();
}

/// Dropping a relation and recreating the name with different data must
/// re-discover: the generation stamp in the cache key makes the old entries
/// unreachable, so the stale profile is never served.
#[test]
fn recreated_relation_never_serves_the_old_profile() {
    let (server, addr) = boot(160);
    let mut client = Client::connect(addr).unwrap();
    let first = client.request(&discover_request()).unwrap();
    // Prime the cache, then replace the dataset under the same name.
    assert_eq!(client.request(&discover_request()).unwrap(), first);
    assert!(matches!(
        client
            .request(&Request::DropRelation {
                name: "taxes".into()
            })
            .unwrap(),
        Response::Ok
    ));
    // A single row: every OD holds trivially, so the profile must differ
    // from the 160-row tax table's.
    let rel = od_workload::tax::generate_taxes(1, 7);
    assert!(matches!(
        client
            .request(&Request::CreateRelation {
                name: "taxes".into(),
                relation: rel,
            })
            .unwrap(),
        Response::RelationCreated { rows: 1 }
    ));
    let second = client.request(&discover_request()).unwrap();
    let (Response::Discovered { ods: before, .. }, Response::Discovered { ods: after, .. }) =
        (&first, &second)
    else {
        panic!("expected Discovered responses, got {first:?} / {second:?}");
    };
    assert_ne!(
        before, after,
        "the recreated relation must be re-profiled, not served from cache"
    );
    // And the new profile is itself cached consistently.
    assert_eq!(client.request(&discover_request()).unwrap(), second);
    server.shutdown();
}
