//! Tables, composite B-tree indexes, range partitioning, and the catalog.
//!
//! This is the physical-storage substrate the paper's query-optimization
//! use-cases assume: tables can carry ordered (tree) indexes over attribute
//! lists — the source of "interesting orders" — and a fact table can be range
//! partitioned by a column (the paper's distributed-warehouse scenario, where
//! partition pruning is only possible once a natural-date predicate has been
//! rewritten into a surrogate-key range).

use crate::expr::Expr;
use od_core::{lex_cmp, AttrId, AttrList, Relation, Schema, Tuple, Value};
use std::collections::HashMap;
use std::ops::Bound;

/// An ordered composite index over an attribute list.
///
/// Entries are kept sorted by key (then by row id for stability), so the index
/// supports both full ordered scans (providing the list as a physical order) and
/// range scans.
#[derive(Debug, Clone)]
pub struct Index {
    /// Index name.
    pub name: String,
    /// The key attribute list, in index order.
    pub key: AttrList,
    entries: Vec<(Vec<Value>, usize)>,
}

impl Index {
    /// Build an index over a relation.
    pub fn build(name: impl Into<String>, key: AttrList, rel: &Relation) -> Self {
        let mut entries: Vec<(Vec<Value>, usize)> = (0..rel.len())
            .map(|i| (rel.project_tuple(i, &key), i))
            .collect();
        entries.sort();
        Index {
            name: name.into(),
            key,
            entries,
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Row ids in index (key) order.
    pub fn ordered_row_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|(_, i)| *i)
    }

    /// Row ids whose key falls within the bounds on the *first* key column.
    pub fn range_row_ids(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<usize> {
        let in_lo = |v: &Value| match lo {
            Bound::Unbounded => true,
            Bound::Included(b) => v >= b,
            Bound::Excluded(b) => v > b,
        };
        let in_hi = |v: &Value| match hi {
            Bound::Unbounded => true,
            Bound::Included(b) => v <= b,
            Bound::Excluded(b) => v < b,
        };
        self.entries
            .iter()
            .filter(|(k, _)| !k.is_empty() && in_lo(&k[0]) && in_hi(&k[0]))
            .map(|(_, i)| *i)
            .collect()
    }

    /// Minimum and maximum first-column key values among rows matching a predicate
    /// on the indexed relation (used by the date-surrogate rewrite's two probes).
    pub fn min_max_matching(&self, rel: &Relation, pred: &Expr) -> Option<(Value, Value)> {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for (key, row) in &self.entries {
            if pred.eval_bool(rel.tuple(*row)) {
                let v = key.first()?.clone();
                if min.as_ref().map(|m| v < *m).unwrap_or(true) {
                    min = Some(v.clone());
                }
                if max.as_ref().map(|m| v > *m).unwrap_or(true) {
                    max = Some(v);
                }
            }
        }
        Some((min?, max?))
    }
}

/// Range partitioning of a table by a single column.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// The partitioning column.
    pub column: AttrId,
    /// Per-partition: (min, max) of the column plus the member row ids.
    pub partitions: Vec<Partition>,
}

/// One range partition.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Minimum value of the partitioning column within this partition.
    pub min: Value,
    /// Maximum value of the partitioning column within this partition.
    pub max: Value,
    /// Row ids belonging to the partition.
    pub rows: Vec<usize>,
}

impl Partitioning {
    /// Partition a relation into `n_partitions` equal-width ranges of the column
    /// (by sorted row order, so ranges are contiguous in the column's value
    /// order).
    pub fn build(rel: &Relation, column: AttrId, n_partitions: usize) -> Self {
        let mut ids: Vec<usize> = (0..rel.len()).collect();
        ids.sort_unstable_by(|&a, &b| rel.value(a, column).cmp(rel.value(b, column)));
        let n_partitions = n_partitions.max(1);
        let chunk = ids.len().div_ceil(n_partitions).max(1);
        let partitions = ids
            .chunks(chunk)
            .map(|rows| Partition {
                min: rel.value(rows[0], column).clone(),
                max: rel.value(rows[rows.len() - 1], column).clone(),
                rows: rows.to_vec(),
            })
            .collect();
        Partitioning { column, partitions }
    }

    /// Partitions overlapping the inclusive range `[lo, hi]`.
    pub fn prune(&self, lo: &Value, hi: &Value) -> Vec<&Partition> {
        self.partitions
            .iter()
            .filter(|p| !(p.max < *lo || p.min > *hi))
            .collect()
    }
}

/// A stored table: a relation plus its indexes and optional partitioning.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name (matches the relation's schema name).
    pub name: String,
    /// The stored rows.
    pub relation: Relation,
    /// Secondary / clustered indexes.
    pub indexes: Vec<Index>,
    /// Optional range partitioning.
    pub partitioning: Option<Partitioning>,
}

impl Table {
    /// Create a table from a relation.
    pub fn new(relation: Relation) -> Self {
        Table {
            name: relation.schema().name().to_string(),
            relation,
            indexes: Vec::new(),
            partitioning: None,
        }
    }

    /// Add an index over the given key list.
    pub fn add_index(&mut self, name: impl Into<String>, key: AttrList) -> &mut Self {
        self.indexes.push(Index::build(name, key, &self.relation));
        self
    }

    /// Range partition the table by a column.
    pub fn partition_by(&mut self, column: AttrId, n_partitions: usize) -> &mut Self {
        self.partitioning = Some(Partitioning::build(&self.relation, column, n_partitions));
        self
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.relation.len()
    }

    /// Find an index whose key *starts with* the required order (so an ordered
    /// index scan satisfies `ORDER BY required` directly).
    pub fn index_providing_order(&self, required: &AttrList) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| required.is_prefix_of(&ix.key))
    }

    /// Find an index whose leading key column is the given attribute (usable for
    /// a range scan on that attribute).
    pub fn index_on_leading(&self, attr: AttrId) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.key.head() == Some(attr))
    }

    /// Verify that the stored rows, read in the order of an index, are sorted by
    /// the index key (sanity check used in tests).
    pub fn index_order_is_sorted(&self, index: &Index) -> bool {
        let rows: Vec<&Tuple> = index
            .ordered_row_ids()
            .map(|i| self.relation.tuple(i))
            .collect();
        rows.windows(2)
            .all(|w| lex_cmp(w[0], w[1], &index.key) != std::cmp::Ordering::Greater)
    }
}

/// A named collection of tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table (replacing any previous table of the same name).
    pub fn add_table(&mut self, table: Table) -> &mut Self {
        self.tables.insert(table.name.clone(), table);
        self
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn sample_table() -> Table {
        let mut schema = Schema::new("t");
        let a = schema.add_attr("a");
        let _b = schema.add_attr("b");
        let rel = Relation::from_rows(
            schema,
            (0..10)
                .map(|i| vec![Value::Int(9 - i), Value::Int(i * 10)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let mut t = Table::new(rel);
        t.add_index("ix_a", AttrList::new([a]));
        t
    }

    #[test]
    fn index_orders_rows() {
        let t = sample_table();
        let ix = &t.indexes[0];
        assert_eq!(ix.len(), 10);
        assert!(t.index_order_is_sorted(ix));
        let first = ix.ordered_row_ids().next().unwrap();
        assert_eq!(t.relation.value(first, AttrId(0)), &Value::Int(0));
    }

    #[test]
    fn index_range_scan() {
        let t = sample_table();
        let ix = &t.indexes[0];
        let rows = ix.range_row_ids(
            Bound::Included(&Value::Int(3)),
            Bound::Included(&Value::Int(5)),
        );
        assert_eq!(rows.len(), 3);
        for r in rows {
            let v = t.relation.value(r, AttrId(0)).as_int().unwrap();
            assert!((3..=5).contains(&v));
        }
        let all = ix.range_row_ids(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn min_max_probe() {
        let t = sample_table();
        let ix = &t.indexes[0];
        // Predicate on b: 20 <= b <= 50 corresponds to a in {7,6,5,4} → min 4 max 7.
        let pred = Expr::col(AttrId(1)).between(Expr::lit(20i64), Expr::lit(50i64));
        let (lo, hi) = ix.min_max_matching(&t.relation, &pred).unwrap();
        assert_eq!(lo, Value::Int(4));
        assert_eq!(hi, Value::Int(7));
        // No matching rows → None.
        let none = Expr::col(AttrId(1)).cmp(CmpOp::Gt, Expr::lit(10_000i64));
        assert!(ix.min_max_matching(&t.relation, &none).is_none());
    }

    #[test]
    fn partition_pruning() {
        let mut t = sample_table();
        t.partition_by(AttrId(0), 5);
        let p = t.partitioning.as_ref().unwrap();
        assert_eq!(p.partitions.len(), 5);
        assert_eq!(p.partitions.iter().map(|x| x.rows.len()).sum::<usize>(), 10);
        let pruned = p.prune(&Value::Int(2), &Value::Int(3));
        assert!(
            pruned.len() <= 2,
            "a narrow range should touch at most 2 of 5 partitions"
        );
        let all = p.prune(&Value::Int(-100), &Value::Int(100));
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn catalog_roundtrip_and_order_providing_index() {
        let mut c = Catalog::new();
        c.add_table(sample_table());
        assert!(c.table("t").is_some());
        assert!(c.table("missing").is_none());
        assert_eq!(c.table_names(), vec!["t"]);
        let t = c.table("t").unwrap();
        assert!(t
            .index_providing_order(&AttrList::new([AttrId(0)]))
            .is_some());
        assert!(t
            .index_providing_order(&AttrList::new([AttrId(1)]))
            .is_none());
        assert!(t.index_on_leading(AttrId(0)).is_some());
        assert_eq!(t.row_count(), 10);
        assert_eq!(t.schema().name(), "t");
    }
}
