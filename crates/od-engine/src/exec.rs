//! Physical plans and a materializing executor.
//!
//! The operator repertoire is exactly what the paper's optimization scenarios
//! need: table scans, ordered and range index scans, partition-pruned scans,
//! filters, projections, sorts, a hash equi-join, hash- and stream-based
//! aggregation and distinct, and limit.  Every execution returns [`Metrics`]
//! recording how much work was done (rows scanned, sorts performed and their
//! input sizes, partitions touched, index probes) — the quantities the OD-aware
//! rewrites are supposed to reduce.

use crate::expr::Expr;
use crate::table::Catalog;
use od_core::{lex_cmp, AttrId, AttrList, Schema, Tuple, Value};
use std::collections::HashMap;
use std::ops::Bound;

/// A materialized intermediate result: a schema plus rows.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Column layout of `rows`.
    pub schema: Schema,
    /// The tuples.
    pub rows: Vec<Tuple>,
}

impl Batch {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column index by name (panics if absent — executor-internal use).
    pub fn col(&self, name: &str) -> AttrId {
        self.schema.attr_by_name(name).expect("column exists")
    }
}

/// Work counters accumulated during execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Rows produced by the root operator.
    pub rows_output: u64,
    /// Number of explicit sort operations performed.
    pub sorts_performed: u64,
    /// Total rows fed into sort operations.
    pub sort_rows: u64,
    /// Partitions read (for partitioned scans).
    pub partitions_scanned: u64,
    /// Partitions that exist on scanned partitioned tables.
    pub partitions_total: u64,
    /// Point probes into indexes (e.g. the two probes of the date rewrite).
    pub index_probes: u64,
    /// Rows that crossed a join operator (both sides).
    pub join_input_rows: u64,
}

/// Aggregate functions supported by the aggregation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(column)`.
    Sum(AttrId),
    /// `MIN(column)`.
    Min(AttrId),
    /// `MAX(column)`.
    Max(AttrId),
}

/// A physical query plan.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Full scan of a stored table.
    TableScan {
        /// Table name in the catalog.
        table: String,
    },
    /// Scan a table in the order of one of its indexes (no sort needed afterwards).
    IndexOrderedScan {
        /// Table name.
        table: String,
        /// Index name.
        index: String,
    },
    /// Range scan on the leading column of an index.
    IndexRangeScan {
        /// Table name.
        table: String,
        /// Index name.
        index: String,
        /// Inclusive lower bound on the leading key column.
        lo: Value,
        /// Inclusive upper bound on the leading key column.
        hi: Value,
    },
    /// Scan of a partitioned table with partition pruning for an inclusive range
    /// on the partitioning column.
    PrunedPartitionScan {
        /// Table name.
        table: String,
        /// Inclusive lower bound on the partitioning column.
        lo: Value,
        /// Inclusive upper bound on the partitioning column.
        hi: Value,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Project (and rename) columns.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Columns to keep, in output order.
        columns: Vec<AttrId>,
        /// Output names (same length as `columns`).
        names: Vec<String>,
    },
    /// Explicit sort by an attribute list.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort key.
        by: AttrList,
    },
    /// Hash equi-join on single key columns; output schema is the concatenation
    /// of both input schemas (right columns prefixed by the right schema name).
    HashJoin {
        /// Left (probe) input.
        left: Box<PhysicalPlan>,
        /// Right (build) input.
        right: Box<PhysicalPlan>,
        /// Join key column in the left schema.
        left_key: AttrId,
        /// Join key column in the right schema.
        right_key: AttrId,
    },
    /// Aggregation over a *sorted* input stream: groups are emitted on the fly;
    /// requires the input to be sorted so that equal group keys are adjacent.
    StreamAggregate {
        /// Input plan (must be ordered compatibly with `group_by`).
        input: Box<PhysicalPlan>,
        /// Grouping columns, in order.
        group_by: AttrList,
        /// Aggregates to compute.
        aggregates: Vec<Aggregate>,
    },
    /// Hash aggregation (no ordering requirement).
    HashAggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping columns.
        group_by: Vec<AttrId>,
        /// Aggregates to compute.
        aggregates: Vec<Aggregate>,
    },
    /// First `n` rows.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Row budget.
        n: usize,
    },
}

impl PhysicalPlan {
    /// Count the sort operators in the plan (a static plan-quality metric used by
    /// the experiments alongside the runtime metrics).
    pub fn sort_count(&self) -> usize {
        match self {
            PhysicalPlan::Sort { input, .. } => 1 + input.sort_count(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::StreamAggregate { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.sort_count(),
            PhysicalPlan::HashJoin { left, right, .. } => left.sort_count() + right.sort_count(),
            _ => 0,
        }
    }

    /// Render the plan as an indented tree (for examples and EXPERIMENTS.md).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let line = match self {
            PhysicalPlan::TableScan { table } => format!("TableScan {table}"),
            PhysicalPlan::IndexOrderedScan { table, index } => {
                format!("IndexOrderedScan {table} via {index}")
            }
            PhysicalPlan::IndexRangeScan {
                table,
                index,
                lo,
                hi,
            } => {
                format!("IndexRangeScan {table} via {index} [{lo} .. {hi}]")
            }
            PhysicalPlan::PrunedPartitionScan { table, lo, hi } => {
                format!("PrunedPartitionScan {table} [{lo} .. {hi}]")
            }
            PhysicalPlan::Filter { .. } => "Filter".to_string(),
            PhysicalPlan::Project { names, .. } => format!("Project [{}]", names.join(", ")),
            PhysicalPlan::Sort { by, .. } => format!("Sort by {by}"),
            PhysicalPlan::HashJoin { .. } => "HashJoin".to_string(),
            PhysicalPlan::StreamAggregate { group_by, .. } => {
                format!("StreamAggregate group by {group_by}")
            }
            PhysicalPlan::HashAggregate { .. } => "HashAggregate".to_string(),
            PhysicalPlan::Limit { n, .. } => format!("Limit {n}"),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        match self {
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::StreamAggregate { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.explain_into(out, depth + 1),
            PhysicalPlan::HashJoin { left, right, .. } => {
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            _ => {}
        }
    }
}

/// Execute a plan against a catalog, returning the result batch and metrics.
pub fn execute(plan: &PhysicalPlan, catalog: &Catalog) -> (Batch, Metrics) {
    let mut metrics = Metrics::default();
    let batch = run(plan, catalog, &mut metrics);
    metrics.rows_output = batch.rows.len() as u64;
    (batch, metrics)
}

fn run(plan: &PhysicalPlan, catalog: &Catalog, m: &mut Metrics) -> Batch {
    match plan {
        PhysicalPlan::TableScan { table } => {
            let t = catalog
                .table(table)
                .unwrap_or_else(|| panic!("unknown table {table}"));
            m.rows_scanned += t.row_count() as u64;
            Batch {
                schema: t.schema().clone(),
                rows: t.relation.tuples().to_vec(),
            }
        }
        PhysicalPlan::IndexOrderedScan { table, index } => {
            let t = catalog
                .table(table)
                .unwrap_or_else(|| panic!("unknown table {table}"));
            let ix = t
                .indexes
                .iter()
                .find(|ix| ix.name == *index)
                .unwrap_or_else(|| panic!("unknown index {index}"));
            m.rows_scanned += t.row_count() as u64;
            let rows = ix
                .ordered_row_ids()
                .map(|i| t.relation.tuple(i).clone())
                .collect();
            Batch {
                schema: t.schema().clone(),
                rows,
            }
        }
        PhysicalPlan::IndexRangeScan {
            table,
            index,
            lo,
            hi,
        } => {
            let t = catalog
                .table(table)
                .unwrap_or_else(|| panic!("unknown table {table}"));
            let ix = t
                .indexes
                .iter()
                .find(|ix| ix.name == *index)
                .unwrap_or_else(|| panic!("unknown index {index}"));
            let ids = ix.range_row_ids(Bound::Included(lo), Bound::Included(hi));
            m.rows_scanned += ids.len() as u64;
            m.index_probes += 2;
            let rows = ids
                .into_iter()
                .map(|i| t.relation.tuple(i).clone())
                .collect();
            Batch {
                schema: t.schema().clone(),
                rows,
            }
        }
        PhysicalPlan::PrunedPartitionScan { table, lo, hi } => {
            let t = catalog
                .table(table)
                .unwrap_or_else(|| panic!("unknown table {table}"));
            let part = t
                .partitioning
                .as_ref()
                .unwrap_or_else(|| panic!("table {table} is not partitioned"));
            m.partitions_total += part.partitions.len() as u64;
            let live = part.prune(lo, hi);
            m.partitions_scanned += live.len() as u64;
            let mut rows = Vec::new();
            for p in live {
                for &r in &p.rows {
                    rows.push(t.relation.tuple(r).clone());
                }
            }
            m.rows_scanned += rows.len() as u64;
            Batch {
                schema: t.schema().clone(),
                rows,
            }
        }
        PhysicalPlan::Filter { input, predicate } => {
            let mut b = run(input, catalog, m);
            b.rows.retain(|r| predicate.eval_bool(r));
            b
        }
        PhysicalPlan::Project {
            input,
            columns,
            names,
        } => {
            let b = run(input, catalog, m);
            let mut schema = Schema::new(b.schema.name().to_string());
            for (c, n) in columns.iter().zip(names) {
                let dt = b.schema.attr(*c).map(|a| a.data_type).unwrap_or_default();
                schema.add_typed_attr(n.clone(), dt);
            }
            let rows = b
                .rows
                .iter()
                .map(|r| columns.iter().map(|c| r[c.index()].clone()).collect())
                .collect();
            Batch { schema, rows }
        }
        PhysicalPlan::Sort { input, by } => {
            let mut b = run(input, catalog, m);
            m.sorts_performed += 1;
            m.sort_rows += b.rows.len() as u64;
            b.rows.sort_by(|x, y| lex_cmp(x, y, by));
            b
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let l = run(left, catalog, m);
            let r = run(right, catalog, m);
            m.join_input_rows += (l.len() + r.len()) as u64;
            // Build on the right.
            let mut build: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, row) in r.rows.iter().enumerate() {
                build
                    .entry(row[right_key.index()].clone())
                    .or_default()
                    .push(i);
            }
            let mut schema = Schema::new(format!("{}_join_{}", l.schema.name(), r.schema.name()));
            for a in l.schema.attributes() {
                schema.add_typed_attr(a.name.clone(), a.data_type);
            }
            for a in r.schema.attributes() {
                schema.add_typed_attr(format!("{}.{}", r.schema.name(), a.name), a.data_type);
            }
            let mut rows = Vec::new();
            for lrow in &l.rows {
                if let Some(matches) = build.get(&lrow[left_key.index()]) {
                    for &ri in matches {
                        let mut out = lrow.clone();
                        out.extend(r.rows[ri].iter().cloned());
                        rows.push(out);
                    }
                }
            }
            Batch { schema, rows }
        }
        PhysicalPlan::StreamAggregate {
            input,
            group_by,
            aggregates,
        } => {
            let b = run(input, catalog, m);
            let mut schema = aggregate_schema(&b.schema, group_by.as_slice(), aggregates);
            schema = rename_schema(schema, "stream_agg");
            let mut rows: Vec<Tuple> = Vec::new();
            let mut group_start = 0usize;
            for i in 0..=b.rows.len() {
                let boundary = i == b.rows.len()
                    || (i > 0
                        && lex_cmp(&b.rows[i], &b.rows[group_start], group_by)
                            != std::cmp::Ordering::Equal);
                if i == b.rows.len() && b.rows.is_empty() {
                    break;
                }
                if boundary {
                    rows.push(finish_group(
                        &b.rows[group_start..i],
                        group_by.as_slice(),
                        aggregates,
                    ));
                    group_start = i;
                }
            }
            Batch { schema, rows }
        }
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggregates,
        } => {
            let b = run(input, catalog, m);
            let key_list: AttrList = group_by.iter().copied().collect();
            let mut schema = aggregate_schema(&b.schema, key_list.as_slice(), aggregates);
            schema = rename_schema(schema, "hash_agg");
            let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (i, row) in b.rows.iter().enumerate() {
                let key: Vec<Value> = group_by.iter().map(|a| row[a.index()].clone()).collect();
                groups.entry(key).or_default().push(i);
            }
            let mut rows: Vec<Tuple> = groups
                .values()
                .map(|ids| {
                    let members: Vec<Tuple> = ids.iter().map(|&i| b.rows[i].clone()).collect();
                    finish_group(&members, key_list.as_slice(), aggregates)
                })
                .collect();
            // Deterministic output order for testability.
            rows.sort();
            Batch { schema, rows }
        }
        PhysicalPlan::Limit { input, n } => {
            let mut b = run(input, catalog, m);
            b.rows.truncate(*n);
            b
        }
    }
}

fn rename_schema(schema: Schema, name: &str) -> Schema {
    let mut out = Schema::new(name);
    for a in schema.attributes() {
        out.add_typed_attr(a.name.clone(), a.data_type);
    }
    out
}

fn aggregate_schema(input: &Schema, group_by: &[AttrId], aggs: &[Aggregate]) -> Schema {
    let mut schema = Schema::new("agg");
    for a in group_by {
        let attr = input.attr(*a).expect("group-by column exists");
        schema.add_typed_attr(attr.name.clone(), attr.data_type);
    }
    for (i, agg) in aggs.iter().enumerate() {
        let name = match agg {
            Aggregate::CountStar => format!("count_{i}"),
            Aggregate::Sum(c) => format!("sum_{}", input.attr_name(*c)),
            Aggregate::Min(c) => format!("min_{}", input.attr_name(*c)),
            Aggregate::Max(c) => format!("max_{}", input.attr_name(*c)),
        };
        schema.add_attr(name);
    }
    schema
}

fn finish_group(rows: &[Tuple], group_by: &[AttrId], aggs: &[Aggregate]) -> Tuple {
    let mut out: Tuple = group_by
        .iter()
        .map(|a| rows[0][a.index()].clone())
        .collect();
    for agg in aggs {
        let v = match agg {
            Aggregate::CountStar => Value::Int(rows.len() as i64),
            Aggregate::Sum(c) => Value::Int(
                rows.iter()
                    .filter_map(|r| r[c.index()].as_int())
                    .sum::<i64>(),
            ),
            Aggregate::Min(c) => rows
                .iter()
                .map(|r| r[c.index()].clone())
                .min()
                .unwrap_or(Value::Null),
            Aggregate::Max(c) => rows
                .iter()
                .map(|r| r[c.index()].clone())
                .max()
                .unwrap_or(Value::Null),
        };
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::table::Table;
    use od_core::Relation;

    fn catalog() -> Catalog {
        // orders(day, item, qty) with an index on (day, item).
        let mut schema = Schema::new("orders");
        let day = schema.add_attr("day");
        let item = schema.add_attr("item");
        let _qty = schema.add_attr("qty");
        let rows: Vec<Tuple> = (0..20)
            .map(|i| vec![Value::Int(i % 5), Value::Int(i % 3), Value::Int(i)])
            .collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let mut t = Table::new(rel);
        t.add_index("ix_day_item", AttrList::new([day, item]));
        t.partition_by(day, 5);
        let mut c = Catalog::new();
        c.add_table(t);
        c
    }

    #[test]
    fn table_scan_and_filter() {
        let c = catalog();
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::TableScan {
                table: "orders".into(),
            }),
            predicate: Expr::col(AttrId(0)).cmp(CmpOp::Eq, Expr::lit(2i64)),
        };
        let (batch, metrics) = execute(&plan, &c);
        assert_eq!(batch.len(), 4);
        assert_eq!(metrics.rows_scanned, 20);
        assert_eq!(metrics.rows_output, 4);
    }

    #[test]
    fn sort_and_index_scan_agree_and_sorts_are_counted() {
        let c = catalog();
        let by = AttrList::new([AttrId(0), AttrId(1)]);
        let sorted = PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::TableScan {
                table: "orders".into(),
            }),
            by: by.clone(),
        };
        let via_index = PhysicalPlan::IndexOrderedScan {
            table: "orders".into(),
            index: "ix_day_item".into(),
        };
        let (b1, m1) = execute(&sorted, &c);
        let (b2, m2) = execute(&via_index, &c);
        assert_eq!(m1.sorts_performed, 1);
        assert_eq!(m2.sorts_performed, 0);
        assert_eq!(sorted.sort_count(), 1);
        assert_eq!(via_index.sort_count(), 0);
        // Same multiset of rows, both ordered by (day, item).
        let key = |r: &Tuple| (r[0].clone(), r[1].clone());
        let k1: Vec<_> = b1.rows.iter().map(key).collect();
        let k2: Vec<_> = b2.rows.iter().map(key).collect();
        assert_eq!(k1, k2);
    }

    #[test]
    fn range_scan_and_partition_pruning() {
        let c = catalog();
        let range = PhysicalPlan::IndexRangeScan {
            table: "orders".into(),
            index: "ix_day_item".into(),
            lo: Value::Int(1),
            hi: Value::Int(2),
        };
        let (b, m) = execute(&range, &c);
        assert_eq!(b.len(), 8);
        assert_eq!(m.index_probes, 2);

        let pruned = PhysicalPlan::PrunedPartitionScan {
            table: "orders".into(),
            lo: Value::Int(1),
            hi: Value::Int(2),
        };
        let (b2, m2) = execute(&pruned, &c);
        assert_eq!(b2.len(), 8);
        assert_eq!(m2.partitions_total, 5);
        assert_eq!(m2.partitions_scanned, 2);
    }

    #[test]
    fn hash_and_stream_aggregation_agree() {
        let c = catalog();
        let aggs = vec![Aggregate::CountStar, Aggregate::Sum(AttrId(2))];
        let hash = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::TableScan {
                table: "orders".into(),
            }),
            group_by: vec![AttrId(0)],
            aggregates: aggs.clone(),
        };
        let stream = PhysicalPlan::StreamAggregate {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::TableScan {
                    table: "orders".into(),
                }),
                by: AttrList::new([AttrId(0)]),
            }),
            group_by: AttrList::new([AttrId(0)]),
            aggregates: aggs,
        };
        let (hb, _) = execute(&hash, &c);
        let (mut sb, _) = execute(&stream, &c);
        sb.rows.sort();
        assert_eq!(hb.rows, sb.rows);
        assert_eq!(hb.len(), 5);
    }

    #[test]
    fn join_produces_combined_schema() {
        let mut c = catalog();
        let mut dim_schema = Schema::new("days");
        let dday = dim_schema.add_attr("day");
        let _name = dim_schema.add_attr("label");
        let rel = Relation::from_rows(
            dim_schema,
            (0..5)
                .map(|i| vec![Value::Int(i), Value::Str(format!("d{i}"))])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        c.add_table(Table::new(rel));
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::TableScan {
                table: "orders".into(),
            }),
            right: Box::new(PhysicalPlan::TableScan {
                table: "days".into(),
            }),
            left_key: AttrId(0),
            right_key: dday,
        };
        let (b, m) = execute(&plan, &c);
        assert_eq!(b.len(), 20);
        assert_eq!(b.schema.arity(), 5);
        assert!(b.schema.attr_by_name("days.label").is_ok());
        assert_eq!(m.join_input_rows, 25);
    }

    #[test]
    fn project_and_limit() {
        let c = catalog();
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::TableScan {
                    table: "orders".into(),
                }),
                columns: vec![AttrId(2), AttrId(0)],
                names: vec!["qty".into(), "day".into()],
            }),
            n: 3,
        };
        let (b, _) = execute(&plan, &c);
        assert_eq!(b.len(), 3);
        assert_eq!(b.schema.arity(), 2);
        assert_eq!(b.schema.attr_name(AttrId(0)), "qty");
        assert_eq!(b.rows[0], vec![Value::Int(0), Value::Int(0)]);
    }

    #[test]
    fn stream_aggregate_on_empty_input() {
        let c = catalog();
        let plan = PhysicalPlan::StreamAggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::TableScan {
                    table: "orders".into(),
                }),
                predicate: Expr::lit(false),
            }),
            group_by: AttrList::new([AttrId(0)]),
            aggregates: vec![Aggregate::CountStar],
        };
        let (b, _) = execute(&plan, &c);
        assert!(b.is_empty());
    }

    #[test]
    fn explain_renders_tree() {
        let plan = PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::TableScan {
                table: "orders".into(),
            }),
            by: AttrList::new([AttrId(0)]),
        };
        let text = plan.explain();
        assert!(text.contains("Sort"));
        assert!(text.contains("TableScan orders"));
    }

    #[test]
    fn min_max_aggregates() {
        let c = catalog();
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::TableScan {
                table: "orders".into(),
            }),
            group_by: vec![],
            aggregates: vec![Aggregate::Min(AttrId(2)), Aggregate::Max(AttrId(2))],
        };
        let (b, _) = execute(&plan, &c);
        assert_eq!(b.rows, vec![vec![Value::Int(0), Value::Int(19)]]);
    }
}
