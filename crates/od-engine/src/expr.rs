//! Scalar expressions and predicates evaluated over tuples.
//!
//! The engine only needs the expression forms exercised by the paper's examples
//! and the TPC-DS-style date workload: column references, literals, comparisons,
//! `BETWEEN`, boolean connectives, and basic arithmetic (the latter also feeds
//! the monotone derived-column analysis in `od-discovery`).

use od_core::{AttrId, Tuple, Value};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn eval(self, a: &Value, b: &Value) -> bool {
        use std::cmp::Ordering::*;
        let ord = a.cmp(b);
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A scalar expression over the columns of a single tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference (by dense attribute id / column position).
    Column(AttrId),
    /// A literal value.
    Literal(Value),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `lo <= e AND e <= hi`.
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Arithmetic addition (numeric).
    Add(Box<Expr>, Box<Expr>),
    /// Arithmetic subtraction (numeric).
    Sub(Box<Expr>, Box<Expr>),
    /// Arithmetic multiplication (numeric).
    Mul(Box<Expr>, Box<Expr>),
    /// Arithmetic division (numeric; division by zero yields NULL).
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Column reference helper.
    pub fn col(a: AttrId) -> Expr {
        Expr::Column(a)
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self op other` comparison helper.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(other))
    }

    /// `lo <= self <= hi` helper.
    pub fn between(self, lo: Expr, hi: Expr) -> Expr {
        Expr::Between(Box::new(self), Box::new(lo), Box::new(hi))
    }

    /// Conjunction helper.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Evaluate to a value.
    pub fn eval(&self, tuple: &Tuple) -> Value {
        match self {
            Expr::Column(a) => tuple[a.index()].clone(),
            Expr::Literal(v) => v.clone(),
            Expr::Cmp(op, a, b) => Value::Bool(op.eval(&a.eval(tuple), &b.eval(tuple))),
            Expr::Between(e, lo, hi) => {
                let v = e.eval(tuple);
                Value::Bool(
                    CmpOp::Le.eval(&lo.eval(tuple), &v) && CmpOp::Le.eval(&v, &hi.eval(tuple)),
                )
            }
            Expr::And(a, b) => Value::Bool(a.eval_bool(tuple) && b.eval_bool(tuple)),
            Expr::Or(a, b) => Value::Bool(a.eval_bool(tuple) || b.eval_bool(tuple)),
            Expr::Not(a) => Value::Bool(!a.eval_bool(tuple)),
            Expr::Add(a, b) => numeric(&a.eval(tuple), &b.eval(tuple), |x, y| x + y),
            Expr::Sub(a, b) => numeric(&a.eval(tuple), &b.eval(tuple), |x, y| x - y),
            Expr::Mul(a, b) => numeric(&a.eval(tuple), &b.eval(tuple), |x, y| x * y),
            Expr::Div(a, b) => {
                let denom = b.eval(tuple);
                if denom.as_float() == Some(0.0) {
                    Value::Null
                } else {
                    numeric(&a.eval(tuple), &denom, |x, y| x / y)
                }
            }
        }
    }

    /// Evaluate as a boolean predicate (NULL and non-boolean count as false).
    pub fn eval_bool(&self, tuple: &Tuple) -> bool {
        matches!(self.eval(tuple), Value::Bool(true))
    }

    /// The columns referenced by the expression.
    pub fn columns(&self) -> Vec<AttrId> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<AttrId>) {
        match self {
            Expr::Column(a) => out.push(*a),
            Expr::Literal(_) => {}
            Expr::Cmp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Between(e, lo, hi) => {
                e.collect_columns(out);
                lo.collect_columns(out);
                hi.collect_columns(out);
            }
            Expr::Not(a) => a.collect_columns(out),
        }
    }
}

fn numeric(a: &Value, b: &Value, f: impl Fn(f64, f64) -> f64) -> Value {
    match (a.as_int(), b.as_int(), a.as_float(), b.as_float()) {
        (Some(x), Some(y), _, _) => {
            let r = f(x as f64, y as f64);
            if r.fract() == 0.0 && r.abs() < 9e15 {
                Value::Int(r as i64)
            } else {
                Value::Float(r)
            }
        }
        (_, _, Some(x), Some(y)) => Value::Float(f(x, y)),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let t = row(&[5, 10]);
        let a = AttrId(0);
        let b = AttrId(1);
        assert!(Expr::col(a).cmp(CmpOp::Lt, Expr::col(b)).eval_bool(&t));
        assert!(!Expr::col(a).cmp(CmpOp::Eq, Expr::col(b)).eval_bool(&t));
        assert!(Expr::col(a).cmp(CmpOp::Ge, Expr::lit(5i64)).eval_bool(&t));
        let p = Expr::col(a)
            .cmp(CmpOp::Gt, Expr::lit(0i64))
            .and(Expr::col(b).cmp(CmpOp::Le, Expr::lit(10i64)));
        assert!(p.eval_bool(&t));
        assert!(Expr::Not(Box::new(Expr::col(a).cmp(CmpOp::Gt, Expr::lit(9i64)))).eval_bool(&t));
        let either = Expr::Or(
            Box::new(Expr::col(a).cmp(CmpOp::Gt, Expr::lit(9i64))),
            Box::new(Expr::col(b).cmp(CmpOp::Eq, Expr::lit(10i64))),
        );
        assert!(either.eval_bool(&t));
    }

    #[test]
    fn between_is_inclusive() {
        let t = row(&[5]);
        let e = Expr::col(AttrId(0)).between(Expr::lit(5i64), Expr::lit(7i64));
        assert!(e.eval_bool(&t));
        let e = Expr::col(AttrId(0)).between(Expr::lit(6i64), Expr::lit(7i64));
        assert!(!e.eval_bool(&t));
    }

    #[test]
    fn arithmetic_and_nulls() {
        let t = row(&[6, 3]);
        let add = Expr::Add(
            Box::new(Expr::col(AttrId(0))),
            Box::new(Expr::col(AttrId(1))),
        );
        assert_eq!(add.eval(&t), Value::Int(9));
        let div = Expr::Div(
            Box::new(Expr::col(AttrId(0))),
            Box::new(Expr::col(AttrId(1))),
        );
        assert_eq!(div.eval(&t), Value::Int(2));
        let div0 = Expr::Div(Box::new(Expr::col(AttrId(0))), Box::new(Expr::lit(0i64)));
        assert_eq!(div0.eval(&t), Value::Null);
        let half = Expr::Div(Box::new(Expr::col(AttrId(1))), Box::new(Expr::lit(2i64)));
        assert_eq!(half.eval(&t), Value::Float(1.5));
    }

    #[test]
    fn column_collection() {
        let e = Expr::col(AttrId(2))
            .between(Expr::lit(1i64), Expr::col(AttrId(0)))
            .and(Expr::col(AttrId(2)).cmp(CmpOp::Ne, Expr::lit(9i64)));
        assert_eq!(e.columns(), vec![AttrId(0), AttrId(2)]);
    }

    #[test]
    fn display_of_ops() {
        assert_eq!(CmpOp::Le.to_string(), "<=");
        assert_eq!(CmpOp::Ne.to_string(), "<>");
    }
}
