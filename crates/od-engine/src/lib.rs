//! # od-engine — a small relational execution engine
//!
//! The substrate for the query-optimization experiments of *Fundamentals of
//! Order Dependencies*: stored [`Table`]s with ordered composite [`Index`]es and
//! optional range [`Partitioning`], scalar [`Expr`]essions, and a materializing
//! executor over [`PhysicalPlan`]s that reports [`Metrics`] (rows scanned, sorts
//! performed, partitions pruned, index probes).
//!
//! The engine deliberately mirrors the plan features the paper's rewrites
//! exploit:
//!
//! * an **ordered index scan** substitutes for a sort when the optimizer can
//!   show (via ODs) that the index order satisfies the required order;
//! * **stream aggregation** exploits an already-ordered input for `GROUP BY`;
//! * a **range-partitioned** fact table can only be pruned once a natural-date
//!   predicate has been rewritten into a surrogate-key range (the IBM DB2 /
//!   TPC-DS scenario of Section 2.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod expr;
pub mod table;

pub use exec::{execute, Aggregate, Batch, Metrics, PhysicalPlan};
pub use expr::{CmpOp, Expr};
pub use table::{Catalog, Index, Partition, Partitioning, Table};
