//! Worker-count invariance of the distributed lattice traversal.
//!
//! The distributed engine reruns the exact control-plane loop of the
//! threaded engine, so everything it returns — minimal statements, verdicts
//! (witness pairs included), `LatticeStats`, per-level stats — must be
//! bit-identical to `discover_statements` at every worker count, exact and
//! under a `g3` budget.  Workers here are in-process protocol threads
//! ([`WorkerLauncher::in_process`]): every frame codec, shard merge, and
//! ledger path runs, without per-case process startup.  (Real self-exec'd
//! processes are exercised by `od-bench/tests/dist_speed.rs` and the E17 CI
//! run; process *crash* coverage lives at the bottom of this file.)

use od_core::{Relation, Schema, Value};
use od_setbased::{discover_statements, discover_statements_dist, LatticeConfig, WorkerLauncher};
use proptest::prelude::*;

/// Duplicate-heavy mixed-type values so partitions have real classes at a
/// few dozen rows and some statements hold while others fail.
fn value_strategy() -> impl Strategy<Value = Value> {
    (0u8..8).prop_map(|k| match k {
        0..=3 => Value::Int(i64::from(k) % 3),
        4 | 5 => Value::Null,
        6 => Value::Str("x".into()),
        _ => Value::Int(9),
    })
}

fn relation_strategy(cols: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(value_strategy(), cols), 0..max_rows).prop_map(
        move |rows| {
            let mut schema = Schema::new("distdiff");
            for i in 0..cols {
                schema.add_attr(format!("c{i}"));
            }
            Relation::from_rows(schema, rows).expect("arity fixed by construction")
        },
    )
}

/// Assert the full result surface matches between the threaded engine and
/// the distributed one at `workers`, for one `(relation, epsilon)` pair.
fn assert_worker_invariant(rel: &Relation, epsilon: f64, workers: usize) {
    let base_config = LatticeConfig {
        epsilon,
        ..Default::default()
    };
    let local = discover_statements(rel, &base_config);
    let config = LatticeConfig {
        workers,
        ..base_config
    };
    let (dist, stats) = discover_statements_dist(rel, &config, &WorkerLauncher::in_process())
        .expect("in-process distributed discovery");
    assert_eq!(
        local.minimal_statements(),
        dist.minimal_statements(),
        "minimal statements drifted (workers={workers}, ε={epsilon})"
    );
    assert_eq!(
        local.verdicts(),
        dist.verdicts(),
        "verdicts drifted (workers={workers}, ε={epsilon})"
    );
    assert_eq!(
        local.stats, dist.stats,
        "lattice stats drifted (workers={workers}, ε={epsilon})"
    );
    assert_eq!(
        local.level_stats(),
        dist.level_stats(),
        "per-level stats drifted (workers={workers}, ε={epsilon})"
    );
    assert_eq!(stats.workers, workers);
}

#[test]
fn taxes_fixture_is_worker_invariant_exact_and_budgeted() {
    let rel = od_core::fixtures::example_5_taxes();
    for workers in [1, 2, 4] {
        assert_worker_invariant(&rel, 0.0, workers);
        assert_worker_invariant(&rel, 0.02, workers);
    }
}

#[test]
fn empty_relation_is_worker_invariant() {
    let mut schema = Schema::new("empty");
    schema.add_attr("a");
    schema.add_attr("b");
    let rel = Relation::from_rows(schema, Vec::<Vec<Value>>::new()).unwrap();
    for workers in [1, 2, 4] {
        assert_worker_invariant(&rel, 0.0, workers);
    }
}

#[test]
fn single_attribute_relation_is_worker_invariant() {
    let mut schema = Schema::new("one");
    schema.add_attr("a");
    let rows: Vec<Vec<Value>> = vec![
        vec![Value::Int(1)],
        vec![Value::Int(1)],
        vec![Value::Int(2)],
    ];
    let rel = Relation::from_rows(schema, rows).unwrap();
    // More workers than attributes: the extra shards stay idle but the
    // protocol (snapshot, prewarm, empty refine groups) must still converge.
    for workers in [1, 4] {
        assert_worker_invariant(&rel, 0.0, workers);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random duplicate-heavy relations: the threaded engine and the
    /// distributed engine agree bit-for-bit at 1, 2, and 4 workers, at ε=0
    /// (decider active) and ε=0.02 (budgeted scans, decider gated off).
    #[test]
    fn random_relations_are_worker_invariant(rel in relation_strategy(4, 28)) {
        for workers in [1, 2, 4] {
            assert_worker_invariant(&rel, 0.0, workers);
            assert_worker_invariant(&rel, 0.02, workers);
        }
    }
}

// ---------------------------------------------------------------------------
// Process crash coverage: killed children must surface as clean `DistError`s
// — never a hang — and the coordinator must reap every child it spawned.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod crash {
    use od_setbased::{discover_statements_dist, DistError, LatticeConfig, WorkerLauncher};
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    /// Zombie children of this process (reaped children disappear entirely;
    /// an unreaped dead child shows as state `Z`).
    fn zombie_children() -> usize {
        let me = std::process::id().to_string();
        let mut zombies = 0;
        for entry in std::fs::read_dir("/proc").into_iter().flatten().flatten() {
            if !entry.file_name().to_string_lossy().bytes().all(|b| b.is_ascii_digit()) {
                continue;
            }
            let Ok(stat) = std::fs::read_to_string(entry.path().join("stat")) else {
                continue;
            };
            // /proc/<pid>/stat: pid (comm) state ppid ...  comm may hold
            // spaces, so parse from after the last ')'.
            let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) else {
                continue;
            };
            let mut fields = rest.split_whitespace();
            let state = fields.next().unwrap_or("");
            let ppid = fields.next().unwrap_or("");
            if state == "Z" && ppid == me {
                zombies += 1;
            }
        }
        zombies
    }

    #[test]
    fn killed_children_error_cleanly_and_are_reaped() {
        let rel = od_core::fixtures::example_5_taxes();
        // Each "worker" SIGKILLs itself on startup — the hard-crash shape: no
        // clean exit code, pipes torn down by the kernel.
        let launcher =
            WorkerLauncher::command("sh", ["-c".to_string(), "kill -9 $$".to_string()]);
        let config = LatticeConfig {
            workers: 3,
            ..Default::default()
        };
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(discover_statements_dist(&rel, &config, &launcher));
        });
        // The watchdog is the "no hang" assertion.
        let result = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("coordinator hung on killed workers");
        let err = result.expect_err("killed workers cannot produce a discovery");
        assert!(
            matches!(err, DistError::Worker { .. } | DistError::Protocol { .. }),
            "unexpected error: {err}"
        );
        let rendered = err.to_string();
        assert!(!rendered.is_empty());
        // Every child was force-reaped when the pool dropped.  Other tests in
        // this binary may be mid-spawn, so poll briefly instead of asserting
        // a single instantaneous snapshot.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let z = zombie_children();
            if z == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{z} zombie children remain after DistError"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    #[test]
    fn worker_that_closes_stdout_immediately_errors_cleanly() {
        let rel = od_core::fixtures::example_5_taxes();
        // Exits 0 after reading nothing: the coordinator sees EOF where Ready
        // was expected.
        let launcher = WorkerLauncher::command("true", Vec::<String>::new());
        let config = LatticeConfig {
            workers: 2,
            ..Default::default()
        };
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(discover_statements_dist(&rel, &config, &launcher));
        });
        let result = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("coordinator hung on an exiting worker");
        assert!(result.is_err());
    }
}
