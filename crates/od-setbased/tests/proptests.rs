//! Property-based differential tests: the partition-backed validators must
//! agree with `od-core`'s sort-based split/swap checker on arbitrary inputs,
//! and the canonical translation must be exact.

use od_core::check::od_holds;
use od_core::{AttrId, AttrList, OrderDependency, Relation, Schema, Value};
use od_setbased::{
    discover_statements, od_holds_with_partitions, translate_od, LatticeConfig, PartitionCache,
    SetBasedEngine,
};
use proptest::prelude::*;

/// Strategy: a relation with `cols` integer columns and up to `max_rows` rows
/// of small values (small domains make splits and swaps likely).
fn relation_strategy(cols: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0i64..4, cols), 0..max_rows).prop_map(move |rows| {
        let mut schema = Schema::new("prop");
        for i in 0..cols {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect()),
        )
        .expect("arity is fixed by construction")
    })
}

/// Strategy: an attribute list over `cols` columns with length up to `max_len`
/// (duplicates allowed — normalization is part of what is under test).
fn list_strategy(cols: usize, max_len: usize) -> impl Strategy<Value = AttrList> {
    prop::collection::vec(0u32..cols as u32, 0..=max_len)
        .prop_map(|ids| ids.into_iter().map(AttrId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The memoizing engine answers exactly like the sort-based checker.
    #[test]
    fn engine_agrees_with_sort_based_checker(
        rel in relation_strategy(4, 9),
        lhs in list_strategy(4, 3),
        rhs in list_strategy(4, 3),
    ) {
        let od = OrderDependency::new(lhs, rhs);
        let mut engine = SetBasedEngine::new(&rel);
        prop_assert_eq!(engine.od_holds(&od), od_holds(&rel, &od));
    }

    /// Statement memoization never changes verdicts: asking many ODs through
    /// one engine gives the same answers as fresh engines per OD.
    #[test]
    fn memoization_is_transparent(
        rel in relation_strategy(3, 8),
        lists in prop::collection::vec(prop::collection::vec(0u32..3, 0..=2), 0..8),
    ) {
        let lists: Vec<AttrList> =
            lists.into_iter().map(|ids| ids.into_iter().map(AttrId).collect()).collect();
        let mut shared = SetBasedEngine::new(&rel);
        for lhs in &lists {
            for rhs in &lists {
                let od = OrderDependency::new(lhs.clone(), rhs.clone());
                let mut fresh = SetBasedEngine::new(&rel);
                prop_assert_eq!(shared.od_holds(&od), fresh.od_holds(&od));
            }
        }
    }

    /// The sorted-partition whole-OD validator agrees with the checker.
    #[test]
    fn sorted_partition_validation_agrees(
        rel in relation_strategy(4, 9),
        lhs in list_strategy(4, 3),
        rhs in list_strategy(4, 3),
    ) {
        let od = OrderDependency::new(lhs, rhs);
        let mut cache = PartitionCache::new(&rel);
        prop_assert_eq!(od_holds_with_partitions(&mut cache, &od), od_holds(&rel, &od));
    }

    /// The canonical translation is exact: an OD holds iff every translated
    /// statement holds (checked through the statements' own list-OD forms).
    #[test]
    fn translation_round_trips_through_instances(
        rel in relation_strategy(4, 9),
        lhs in list_strategy(4, 3),
        rhs in list_strategy(4, 3),
    ) {
        let od = OrderDependency::new(lhs, rhs);
        let all_statements_hold = translate_od(&od)
            .iter()
            .all(|stmt| stmt.as_list_ods().iter().all(|od| od_holds(&rel, od)));
        prop_assert_eq!(od_holds(&rel, &od), all_statements_hold);
    }

    /// Everything the lattice reports holds on the instance, and its `holds`
    /// query is complete for statements within the context bound.
    #[test]
    fn lattice_is_sound_and_complete_within_bound(
        rel in relation_strategy(3, 8),
        lhs in list_strategy(3, 2),
        rhs in list_strategy(3, 2),
    ) {
        let profile = discover_statements(&rel, &LatticeConfig::default());
        for stmt in profile.minimal_statements() {
            for od in stmt.as_list_ods() {
                prop_assert!(od_holds(&rel, &od), "{} does not hold", stmt);
            }
        }
        // Completeness via the translation: for any OD whose statements all sit
        // within the bound, lattice verdicts must reproduce the checker.
        let od = OrderDependency::new(lhs, rhs);
        let stmts = translate_od(&od);
        if stmts.iter().all(|s| s.context().len() <= profile.max_context()) {
            let lattice_verdict = stmts.iter().all(|s| profile.holds(s));
            prop_assert_eq!(lattice_verdict, od_holds(&rel, &od), "on {}", od);
        }
    }
}
