//! Property-based differential tests: the partition-backed validators must
//! agree with `od-core`'s sort-based split/swap checker on arbitrary inputs,
//! and the canonical translation must be exact.

use od_core::check::{od_holds, od_removal_count};
use od_core::{AttrId, AttrList, AttrSet, OrderDependency, Relation, Schema, Value};
use od_setbased::{
    discover_statements, od_holds_with_partitions, translate_od, LatticeConfig, PartitionCache,
    SetBasedEngine, SetOd,
};
use proptest::prelude::*;

/// Strategy: a relation with `cols` integer columns and up to `max_rows` rows
/// of small values (small domains make splits and swaps likely).
fn relation_strategy(cols: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0i64..4, cols), 0..max_rows).prop_map(move |rows| {
        let mut schema = Schema::new("prop");
        for i in 0..cols {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect()),
        )
        .expect("arity is fixed by construction")
    })
}

/// Strategy: an attribute list over `cols` columns with length up to `max_len`
/// (duplicates allowed — normalization is part of what is under test).
fn list_strategy(cols: usize, max_len: usize) -> impl Strategy<Value = AttrList> {
    prop::collection::vec(0u32..cols as u32, 0..=max_len)
        .prop_map(|ids| ids.into_iter().map(AttrId).collect())
}

/// Brute-force `g3` numerator of a canonical statement: the smallest number of
/// rows whose removal makes every list-OD form of the statement hold, found by
/// trying all keep-subsets (exponential — callers keep relations at ≤ 8 rows).
fn brute_force_statement_removal(rel: &Relation, stmt: &SetOd) -> usize {
    let n = rel.len();
    assert!(n <= 8, "oracle is exponential");
    let ods = stmt.as_list_ods();
    let mut best = 0usize;
    for mask in 0..(1u32 << n) {
        let keep: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        if keep.len() <= best {
            continue;
        }
        let sub = Relation::from_rows(
            rel.schema().clone(),
            keep.iter().map(|&i| rel.tuple(i).clone()),
        )
        .expect("same schema");
        if ods.iter().all(|od| od_holds(&sub, od)) {
            best = keep.len();
        }
    }
    n - best
}

/// Every non-trivial canonical statement over `cols` attributes with a context
/// of at most `max_context` attributes.
fn all_statements(cols: u32, max_context: usize) -> Vec<SetOd> {
    let universe: Vec<AttrId> = (0..cols).map(AttrId).collect();
    let mut contexts: Vec<AttrSet> = vec![AttrSet::new()];
    for _ in 0..max_context {
        let mut next = Vec::new();
        for ctx in &contexts {
            for &a in &universe {
                if !ctx.contains(a) {
                    let mut bigger = *ctx;
                    bigger.insert(a);
                    next.push(bigger);
                }
            }
        }
        contexts.extend(next.clone());
        contexts.sort();
        contexts.dedup();
    }
    let mut out = Vec::new();
    for ctx in &contexts {
        for &a in &universe {
            let c = SetOd::constancy(*ctx, a);
            if !c.is_trivial() {
                out.push(c);
            }
            for &b in &universe {
                if b > a {
                    let k = SetOd::compatibility(*ctx, a, b);
                    if !k.is_trivial() {
                        out.push(k);
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The memoizing engine answers exactly like the sort-based checker.
    #[test]
    fn engine_agrees_with_sort_based_checker(
        rel in relation_strategy(4, 9),
        lhs in list_strategy(4, 3),
        rhs in list_strategy(4, 3),
    ) {
        let od = OrderDependency::new(lhs, rhs);
        let mut engine = SetBasedEngine::new(&rel);
        prop_assert_eq!(engine.od_holds(&od), od_holds(&rel, &od));
    }

    /// Statement memoization never changes verdicts: asking many ODs through
    /// one engine gives the same answers as fresh engines per OD.
    #[test]
    fn memoization_is_transparent(
        rel in relation_strategy(3, 8),
        lists in prop::collection::vec(prop::collection::vec(0u32..3, 0..=2), 0..8),
    ) {
        let lists: Vec<AttrList> =
            lists.into_iter().map(|ids| ids.into_iter().map(AttrId).collect()).collect();
        let mut shared = SetBasedEngine::new(&rel);
        for lhs in &lists {
            for rhs in &lists {
                let od = OrderDependency::new(lhs.clone(), rhs.clone());
                let mut fresh = SetBasedEngine::new(&rel);
                prop_assert_eq!(shared.od_holds(&od), fresh.od_holds(&od));
            }
        }
    }

    /// The sorted-partition whole-OD validator agrees with the checker.
    #[test]
    fn sorted_partition_validation_agrees(
        rel in relation_strategy(4, 9),
        lhs in list_strategy(4, 3),
        rhs in list_strategy(4, 3),
    ) {
        let od = OrderDependency::new(lhs, rhs);
        let mut cache = PartitionCache::new(&rel);
        prop_assert_eq!(od_holds_with_partitions(&mut cache, &od), od_holds(&rel, &od));
    }

    /// The canonical translation is exact: an OD holds iff every translated
    /// statement holds (checked through the statements' own list-OD forms).
    #[test]
    fn translation_round_trips_through_instances(
        rel in relation_strategy(4, 9),
        lhs in list_strategy(4, 3),
        rhs in list_strategy(4, 3),
    ) {
        let od = OrderDependency::new(lhs, rhs);
        let all_statements_hold = translate_od(&od)
            .iter()
            .all(|stmt| stmt.as_list_ods().iter().all(|od| od_holds(&rel, od)));
        prop_assert_eq!(od_holds(&rel, &od), all_statements_hold);
    }

    /// The `g3` removal count of every canonical statement matches the
    /// brute-force tuple-removal oracle, and accept/reject under any budget
    /// follows from it.
    #[test]
    fn statement_removal_matches_brute_force_oracle(
        rel in relation_strategy(3, 8),
    ) {
        let mut cache = PartitionCache::new(&rel);
        for stmt in all_statements(3, 2) {
            let verdict = od_setbased::validate::statement_verdict(
                &mut cache, &stmt, 1, usize::MAX);
            let oracle = brute_force_statement_removal(&rel, &stmt);
            prop_assert_eq!(
                verdict.removal_count, oracle,
                "removal of {} on {} rows", stmt, rel.len()
            );
            prop_assert!(!verdict.exceeded);
            // Every sampled witness names two distinct rows of the relation.
            for &(s, t) in &verdict.violating_pairs {
                prop_assert!(s != t);
                prop_assert!((s as usize) < rel.len() && (t as usize) < rel.len());
            }
        }
    }

    /// The statement-level removal count equals the whole-OD removal count of
    /// the statement's defining list OD (the sort-based evidence oracle of
    /// `od-core::check`), on relations of any shape.
    #[test]
    fn statement_removal_matches_sort_based_evidence(
        rel in relation_strategy(4, 12),
    ) {
        let mut cache = PartitionCache::new(&rel);
        for stmt in all_statements(4, 1) {
            let verdict = od_setbased::validate::statement_verdict(
                &mut cache, &stmt, 1, usize::MAX);
            // Both list-OD directions of a compatibility have the same
            // violation structure; one representative suffices.
            let od = &stmt.as_list_ods()[0];
            prop_assert_eq!(
                verdict.removal_count,
                od_removal_count(&rel, od),
                "statement {} vs list OD {}", stmt, od
            );
        }
    }

    /// Approximate engine decisions agree with the oracle removal count under
    /// every budget, and ε = 0 reproduces the exact checker bit for bit.
    #[test]
    fn budgeted_engine_matches_oracle_thresholds(
        rel in relation_strategy(3, 8),
        lhs in list_strategy(3, 2),
        rhs in list_strategy(3, 2),
    ) {
        let od = OrderDependency::new(lhs, rhs);
        let worst = translate_od(&od)
            .iter()
            .map(|stmt| brute_force_statement_removal(&rel, stmt))
            .max()
            .unwrap_or(0);
        for budget in [0usize, 1, 2, rel.len()] {
            let mut engine = SetBasedEngine::with_budget(&rel, 1, budget);
            prop_assert_eq!(
                engine.od_holds(&od),
                worst <= budget,
                "budget {} on {}", budget, od
            );
        }
        // Exactness of the ε = 0 special case.
        let mut exact = SetBasedEngine::new(&rel);
        prop_assert_eq!(exact.od_holds(&od), od_holds(&rel, &od));
    }

    /// The node-based width-3 traversal answers every in-bound statement
    /// exactly like the seed's sort-based oracle, at ε = 0 and ε > 0: a
    /// statement holds iff its list-OD removal count fits the budget.
    /// Propagated-away candidates must answer as reliably as validated ones.
    #[test]
    fn width3_node_traversal_matches_naive_oracle(
        rel in relation_strategy(4, 10),
    ) {
        for epsilon in [0.0, 0.25] {
            let profile = discover_statements(
                &rel,
                &LatticeConfig { max_context: 3, epsilon, ..Default::default() },
            );
            for stmt in all_statements(4, 3) {
                // Both list-OD directions of a compatibility share one removal
                // count; the representative is the oracle.
                let removal = od_removal_count(&rel, &stmt.as_list_ods()[0]);
                prop_assert_eq!(
                    profile.holds(&stmt),
                    removal <= profile.budget(),
                    "ε = {}: {} (oracle removal {}, budget {})",
                    epsilon, stmt, removal, profile.budget()
                );
                // Reported bounds are sound: at least the oracle's exact
                // count, never past the budget.
                if let Some(bound) = profile.removal_upper_bound(&stmt) {
                    prop_assert!(bound >= removal, "{}: bound {} under oracle {}", stmt, bound, removal);
                    prop_assert!(bound <= profile.budget(), "{}", stmt);
                }
            }
        }
    }

    /// Everything the lattice reports holds on the instance, and its `holds`
    /// query is complete for statements within the context bound.
    #[test]
    fn lattice_is_sound_and_complete_within_bound(
        rel in relation_strategy(3, 8),
        lhs in list_strategy(3, 2),
        rhs in list_strategy(3, 2),
    ) {
        let profile = discover_statements(&rel, &LatticeConfig::default());
        for stmt in profile.minimal_statements() {
            for od in stmt.as_list_ods() {
                prop_assert!(od_holds(&rel, &od), "{} does not hold", stmt);
            }
        }
        // Completeness via the translation: for any OD whose statements all sit
        // within the bound, lattice verdicts must reproduce the checker.
        let od = OrderDependency::new(lhs, rhs);
        let stmts = translate_od(&od);
        if stmts.iter().all(|s| s.context().len() <= profile.max_context()) {
            let lattice_verdict = stmts.iter().all(|s| profile.holds(s));
            prop_assert_eq!(lattice_verdict, od_holds(&rel, &od), "on {}", od);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The width-4 bitset traversal (the new default) answers every in-bound
    /// statement exactly like the seed's sort-based oracle, at ε = 0 and
    /// ε > 0: a statement holds iff its list-OD removal count fits the
    /// budget.  Level-4 contexts over a 5-attribute universe exercise the
    /// deepest mask-propagation paths.
    #[test]
    fn width4_bitset_traversal_matches_naive_oracle(
        rel in relation_strategy(5, 9),
    ) {
        for epsilon in [0.0, 0.25] {
            let profile = discover_statements(
                &rel,
                &LatticeConfig { max_context: 4, epsilon, ..Default::default() },
            );
            for stmt in all_statements(5, 4) {
                let removal = od_removal_count(&rel, &stmt.as_list_ods()[0]);
                prop_assert_eq!(
                    profile.holds(&stmt),
                    removal <= profile.budget(),
                    "ε = {}: {} (oracle removal {}, budget {})",
                    epsilon, stmt, removal, profile.budget()
                );
                if let Some(bound) = profile.removal_upper_bound(&stmt) {
                    prop_assert!(bound >= removal, "{}: bound {} under oracle {}", stmt, bound, removal);
                    prop_assert!(bound <= profile.budget(), "{}", stmt);
                }
            }
        }
    }

    /// Context-sharded expansion and batched validation stay bit-identical to
    /// the serial traversal on arbitrary relations at width 4.
    #[test]
    fn width4_sharded_traversal_is_deterministic(
        rel in relation_strategy(5, 12),
    ) {
        let config = LatticeConfig { max_context: 4, ..Default::default() };
        let serial = discover_statements(&rel, &config);
        let par = discover_statements(
            &rel,
            &LatticeConfig { threads: 4, ..config },
        );
        prop_assert_eq!(serial.minimal_statements(), par.minimal_statements());
        prop_assert_eq!(serial.verdicts(), par.verdicts());
        prop_assert_eq!(serial.stats, par.stats);
    }
}

/// The bitset attribute-set domain cap: schemas past 64 attributes are
/// reported gracefully, never silently mis-profiled.
mod attr_set_domain_edge_cases {
    use super::*;
    use od_core::CoreError;
    use od_setbased::try_discover_statements;

    #[test]
    fn oversized_schemas_are_rejected_not_mangled() {
        let mut schema = Schema::new("wide");
        for i in 0..70 {
            schema.add_attr(format!("c{i}"));
        }
        let rel = Relation::from_rows(
            schema,
            (0..3i64).map(|i| (0..70).map(|c| Value::Int(i * c)).collect::<Vec<_>>()),
        )
        .unwrap();
        let err = try_discover_statements(&rel, &Default::default()).unwrap_err();
        assert!(matches!(err, CoreError::AttrSetOverflow(_)), "{err}");
        // The set type itself reports the first offending id.
        assert_eq!(
            AttrSet::try_from_iter((0..70).map(AttrId)),
            Err(CoreError::AttrSetOverflow(64))
        );
        let mut s = AttrSet::new();
        assert!(s.try_insert(AttrId(63)).is_ok());
        assert_eq!(
            s.try_insert(AttrId(64)),
            Err(CoreError::AttrSetOverflow(64))
        );
        assert_eq!(s.len(), 1, "failed inserts must not corrupt the set");
    }
}

/// Edge cases the approximate path must get right without the proptest RNG
/// having to stumble on them.
mod approximate_edge_cases {
    use super::*;
    use od_setbased::validate::statement_verdict;

    fn verdict_for(rel: &Relation, stmt: &SetOd) -> od_setbased::Verdict {
        let mut cache = PartitionCache::new(rel);
        statement_verdict(&mut cache, stmt, 1, usize::MAX)
    }

    #[test]
    fn all_null_column_is_constant_at_zero_cost() {
        let mut schema = Schema::new("nulls");
        let a = schema.add_attr("a");
        let n = schema.add_attr("n");
        let rel = Relation::from_rows(
            schema,
            (0..6i64).map(|i| vec![Value::Int(i % 3), Value::Null]),
        )
        .unwrap();
        // NULLs compare equal to each other: the all-NULL column is constant
        // in every context, so both statements are violation-free.
        let v = verdict_for(&rel, &SetOd::constancy(AttrSet::new(), n));
        assert_eq!(v.removal_count, 0);
        assert!(v.violating_pairs.is_empty());
        let ctx: AttrSet = [a].into_iter().collect();
        assert_eq!(
            verdict_for(&rel, &SetOd::constancy(ctx, n)).removal_count,
            0
        );
        // And it matches the brute-force oracle like any other column.
        for stmt in all_statements(2, 1) {
            assert_eq!(
                verdict_for(&rel, &stmt).removal_count,
                brute_force_statement_removal(&rel, &stmt),
                "on {stmt}"
            );
        }
    }

    #[test]
    fn duplicate_rows_violate_and_repair_in_blocks() {
        // Four copies of a violating row: the removal count scales with the
        // multiplicity (all four copies agree on everything, so they stand or
        // fall together against the rest of the class).
        let mut schema = Schema::new("dups");
        let a = schema.add_attr("a");
        let b = schema.add_attr("b");
        let mut rows: Vec<Vec<Value>> = (0..4i64)
            .map(|i| vec![Value::Int(i), Value::Int(i)])
            .collect();
        for _ in 0..4 {
            rows.push(vec![Value::Int(5), Value::Int(-1)]); // swaps against all of 0..4
        }
        let rel = Relation::from_rows(schema, rows).unwrap();
        let stmt = SetOd::compatibility(AttrSet::new(), a, b);
        let v = verdict_for(&rel, &stmt);
        assert_eq!(
            v.removal_count, 4,
            "all duplicates must go (keeping them costs the other four rows)"
        );
        assert_eq!(v.removal_count, brute_force_statement_removal(&rel, &stmt));
    }

    #[test]
    fn epsilon_one_accepts_every_statement() {
        // Adversarial data: two columns in exact opposition.  ε = 1 allows
        // removing every tuple, so no statement can be rejected and every
        // candidate the lattice enumerates is confirmed.
        let mut schema = Schema::new("worst");
        schema.add_attr("a");
        schema.add_attr("b");
        let rel = Relation::from_rows(
            schema,
            (0..8i64).map(|i| vec![Value::Int(i), Value::Int(-i)]),
        )
        .unwrap();
        let profile = discover_statements(
            &rel,
            &LatticeConfig {
                epsilon: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(profile.budget(), rel.len());
        for stmt in all_statements(2, 2) {
            assert!(profile.holds(&stmt), "{stmt} must pass at ε = 1");
        }
        // Verdicts stay honest: removal counts are real, not clamped.
        assert_eq!(profile.minimal_statements().len(), profile.verdicts().len());
        for (stmt, v) in profile
            .minimal_statements()
            .iter()
            .zip(profile.verdicts().iter())
        {
            assert!(v.removal_count <= rel.len());
            assert_eq!(
                v.removal_count,
                brute_force_statement_removal(&rel, stmt),
                "on {stmt}"
            );
        }
    }

    #[test]
    fn empty_and_single_row_relations_have_no_error() {
        for rows in [0i64, 1] {
            let mut schema = Schema::new("tiny");
            schema.add_attr("a");
            schema.add_attr("b");
            let rel = Relation::from_rows(
                schema,
                (0..rows).map(|i| vec![Value::Int(i), Value::Int(-i)]),
            )
            .unwrap();
            for stmt in all_statements(2, 1) {
                assert_eq!(verdict_for(&rel, &stmt).removal_count, 0);
            }
        }
    }
}
