//! Differential property tests for the streaming subsystem: under random
//! insert/delete interleavings, every monitored statement's
//! [`VerdictLedger`](od_setbased::VerdictLedger) removal count must equal the
//! from-scratch verdict of a fresh partition scan over the surviving rows —
//! bit for bit, after every batch — and the ε-thresholded accept/reject
//! decision derived from the ledger must match the budgeted snapshot scan at
//! ε = 0 and ε > 0.

use od_core::{AttrId, AttrSet, Relation, Schema, Value};
use od_setbased::stream::{DeltaBatch, StreamMonitor};
use od_setbased::{error_budget, validate, PartitionCache, SetOd};
use proptest::prelude::*;

const COLS: usize = 3;

/// Every non-trivial canonical statement over `COLS` attributes with a context
/// of at most `max_context` attributes — the full monitoring surface the
/// width-2 lattice would profile.
fn all_statements(max_context: usize) -> Vec<SetOd> {
    let universe: Vec<AttrId> = (0..COLS as u32).map(AttrId).collect();
    let mut contexts: Vec<AttrSet> = vec![AttrSet::new()];
    for _ in 0..max_context {
        let mut next = Vec::new();
        for ctx in &contexts {
            for &a in &universe {
                if !ctx.contains(a) {
                    let mut bigger = *ctx;
                    bigger.insert(a);
                    next.push(bigger);
                }
            }
        }
        contexts.extend(next);
        contexts.sort();
        contexts.dedup();
    }
    let mut out = Vec::new();
    for ctx in &contexts {
        for &a in &universe {
            let c = SetOd::constancy(*ctx, a);
            if !c.is_trivial() {
                out.push(c);
            }
            for &b in &universe {
                if b > a {
                    let k = SetOd::compatibility(*ctx, a, b);
                    if !k.is_trivial() {
                        out.push(k);
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn schema() -> Schema {
    let mut s = Schema::new("stream");
    for i in 0..COLS {
        s.add_attr(format!("c{i}"));
    }
    s
}

fn to_row(vals: Vec<i64>) -> Vec<Value> {
    vals.into_iter()
        .map(|v| if v < 0 { Value::Null } else { Value::Int(v) })
        .collect()
}

/// Strategy: initial rows plus a sequence of batches.  Each batch carries rows
/// to insert and "delete picks" — indices resolved against the alive-id list
/// at apply time, so every delete hits a live tuple regardless of history.
/// Values in `-1..4` (small domains force splits/swaps; `-1` becomes NULL).
#[allow(clippy::type_complexity)]
fn workload_strategy() -> impl Strategy<Value = (Vec<Vec<i64>>, Vec<(Vec<Vec<i64>>, Vec<u64>)>)> {
    let row = || prop::collection::vec(-1i64..4, COLS);
    let batch = (
        prop::collection::vec(row(), 0..4),
        prop::collection::vec(0u64..1_000, 0..4),
    );
    (
        prop::collection::vec(row(), 0..10),
        prop::collection::vec(batch, 1..6),
    )
}

/// From-scratch oracle: exact removal count of one statement over a snapshot.
fn oracle_removal(rel: &Relation, stmt: &SetOd) -> usize {
    let mut cache = PartitionCache::new(rel);
    validate::statement_verdict(&mut cache, stmt, 1, usize::MAX).removal_count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ledger invariant: delta-maintained removal counts equal full
    /// recomputation for every monitored statement after every batch, and the
    /// accept/reject decision agrees with the budgeted snapshot scan at ε = 0
    /// and ε > 0.
    #[test]
    fn ledgers_match_full_recompute_under_interleavings(
        workload in workload_strategy()
    ) {
        let (initial, batches) = workload;
        let rel = Relation::from_rows(schema(), initial.into_iter().map(to_row))
            .expect("fixed arity");
        let stmts = all_statements(2);
        let mut monitor = StreamMonitor::new(&rel, 1);
        for stmt in &stmts {
            monitor.monitor_statement(stmt);
        }
        // Mirror of the alive ids, used to resolve delete picks.
        let mut alive: Vec<u32> = (0..rel.len() as u32).collect();

        for (inserts, delete_picks) in batches {
            let mut batch = DeltaBatch::new();
            for pick in delete_picks {
                if alive.is_empty() {
                    break;
                }
                let idx = (pick % alive.len() as u64) as usize;
                batch = batch.delete(alive.swap_remove(idx));
            }
            for row in inserts {
                batch = batch.insert(to_row(row));
            }
            let summary = monitor.apply_delta(&batch).expect("batch is valid");
            alive.extend(summary.inserted);

            let snapshot = monitor.to_relation();
            prop_assert_eq!(snapshot.len(), alive.len());
            let n = snapshot.len();
            for stmt in &stmts {
                let ledger = monitor.statement_removal(stmt).expect("monitored");
                // Exact counts agree with the unbudgeted snapshot scan.
                prop_assert_eq!(
                    ledger,
                    oracle_removal(&snapshot, stmt),
                    "ledger drift on {} with {} rows", stmt, n
                );
                // ε decisions agree with the budgeted snapshot scan (which may
                // short-circuit — its `within` answer is still exact).
                for epsilon in [0.0, 0.1, 0.5] {
                    let budget = error_budget(n, epsilon);
                    let mut cache = PartitionCache::new(&snapshot);
                    let scanned =
                        validate::statement_verdict(&mut cache, stmt, 1, budget);
                    prop_assert_eq!(
                        ledger <= budget,
                        scanned.within(budget),
                        "ε = {} decision drift on {}", epsilon, stmt
                    );
                }
            }
        }
    }

    /// Ledger maintenance is insertion-order independent: applying the same
    /// rows as one batch or as singleton batches lands on identical counts.
    #[test]
    fn batch_granularity_does_not_change_counts(
        rows in prop::collection::vec(prop::collection::vec(-1i64..4, COLS), 1..12)
    ) {
        let empty = Relation::from_rows(schema(), std::iter::empty()).expect("empty");
        let stmts = all_statements(2);

        let mut bulk = StreamMonitor::new(&empty, 1);
        let mut one_by_one = StreamMonitor::new(&empty, 1);
        for stmt in &stmts {
            bulk.monitor_statement(stmt);
            one_by_one.monitor_statement(stmt);
        }

        let mut batch = DeltaBatch::new();
        for row in &rows {
            batch = batch.insert(to_row(row.clone()));
            one_by_one
                .apply_delta(&DeltaBatch::new().insert(to_row(row.clone())))
                .expect("singleton insert");
        }
        bulk.apply_delta(&batch).expect("bulk insert");

        for stmt in &stmts {
            prop_assert_eq!(
                bulk.statement_removal(stmt),
                one_by_one.statement_removal(stmt),
                "granularity drift on {}", stmt
            );
        }
    }
}
