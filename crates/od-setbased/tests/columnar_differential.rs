//! Differential proptests for the columnar code path.  The dictionary codes
//! built at relation construction, the radix-bucketed partition refinement,
//! and the code-based statement verdicts must be bit-for-bit interchangeable
//! with their Value-comparison oracles — on relations with NULLs, heavy
//! duplicates, mixed value types, and single-value columns, both below and
//! above the radix thresholds (`RADIX_MIN_PAIRS` and `CLASS_RADIX_MIN` are
//! both 256, so the "large" cases genuinely take the counting-sort paths).

use od_core::check::od_removal_count;
use od_core::{AttrId, AttrSet, Relation, Schema, Value};
use od_setbased::validate::statement_verdict;
use od_setbased::{
    discover_statements, error_budget, ClassCodes, LatticeConfig, PartitionCache, RefineScratch,
    SetOd, StrippedPartition,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Small value pool: NULLs, duplicate-heavy small integers, and a couple of
/// strings so the per-attribute dictionaries span value types (`Value`'s
/// total order puts Null first, then Int, then Str).
fn value_strategy() -> impl Strategy<Value = Value> {
    (0u8..8).prop_map(|k| match k {
        0..=3 => Value::Int(i64::from(k) % 3),
        4 | 5 => Value::Null,
        6 => Value::Str("x".into()),
        _ => Value::Str("y".into()),
    })
}

/// A relation with `cols` generated columns plus two appended degenerate
/// columns: a single-value column (every row `Int(42)` — one full class,
/// zero radix passes) and a unique column (`Int(row)` — every class a
/// singleton, so its stripped partition is empty and its class codes are all
/// sentinel).  Together they pin both extremes of the product kernel.
fn relation_strategy(cols: usize, rows: std::ops::Range<usize>) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(value_strategy(), cols), rows).prop_map(
        move |rows| {
            let mut schema = Schema::new("coldiff");
            for i in 0..=cols + 1 {
                schema.add_attr(format!("c{i}"));
            }
            Relation::from_rows(
                schema,
                rows.into_iter().enumerate().map(|(i, mut r)| {
                    r.push(Value::Int(42));
                    r.push(Value::Int(i as i64));
                    r
                }),
            )
            .expect("arity fixed by construction")
        },
    )
}

/// Value-path oracle for stripped bucketing: sort `(&Value, row)` pairs with
/// `Value::cmp`, emit runs of ≥ 2 equal values, classes in first-member
/// order, members ascending — the output contract of [`StrippedPartition`].
fn bucket_by_value(rel: &Relation, attr: AttrId, rows: &[u32]) -> Vec<Vec<u32>> {
    let mut pairs: Vec<(&Value, u32)> = rows
        .iter()
        .map(|&r| (rel.value(r as usize, attr), r))
        .collect();
    pairs.sort_by(|x, y| x.0.cmp(y.0).then(x.1.cmp(&y.1)));
    let mut classes = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        if j - i >= 2 {
            classes.push(pairs[i..j].iter().map(|p| p.1).collect::<Vec<u32>>());
        }
        i = j;
    }
    classes.sort_by_key(|c| c[0]);
    classes
}

/// Every non-trivial canonical statement over the relation's attributes with
/// a context of at most `max_context` attributes.
fn all_statements(cols: u32, max_context: usize) -> Vec<SetOd> {
    let universe: Vec<AttrId> = (0..cols).map(AttrId).collect();
    let mut contexts: Vec<AttrSet> = vec![AttrSet::new()];
    for _ in 0..max_context {
        let mut next = Vec::new();
        for ctx in &contexts {
            for &a in &universe {
                if !ctx.contains(a) {
                    let mut bigger = *ctx;
                    bigger.insert(a);
                    next.push(bigger);
                }
            }
        }
        contexts.extend(next);
        contexts.sort();
        contexts.dedup();
    }
    let mut out = Vec::new();
    for ctx in &contexts {
        for &a in &universe {
            let c = SetOd::constancy(*ctx, a);
            if !c.is_trivial() {
                out.push(c);
            }
            for &b in &universe {
                if b > a {
                    let k = SetOd::compatibility(*ctx, a, b);
                    if !k.is_trivial() {
                        out.push(k);
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Shared body: dictionary codes, stripped partitions and all width-2
/// refinements against the Value-comparison oracles, bit for bit.
fn assert_partitions_match_value_oracle(rel: &Relation) -> Result<u64, TestCaseError> {
    let all_rows: Vec<u32> = (0..rel.len() as u32).collect();
    let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
    let enc = rel.encoding();
    let mut scratch = RefineScratch::default();
    for (i, &a) in attrs.iter().enumerate() {
        // The encoding's code column is the same dense ranking the
        // comparison-sort reference produces.
        prop_assert_eq!(
            rel.rank_column(a),
            rel.rank_column_by_sort(a),
            "codes of {:?}",
            a
        );
        let p = StrippedPartition::by_codes_with(enc.codes(i), &mut scratch);
        let single = bucket_by_value(rel, a, &all_rows);
        prop_assert_eq!(p.class_vecs(), single.clone(), "Π_{{{:?}}}", a);
        for (j, &b) in attrs.iter().enumerate() {
            if i == j {
                continue;
            }
            let refined = p.refine_by_with(enc.codes(j), &mut scratch);
            let mut oracle = Vec::new();
            for class in &single {
                oracle.extend(bucket_by_value(rel, b, class));
            }
            oracle.sort_by_key(|c| c[0]);
            prop_assert_eq!(refined.class_vecs(), oracle, "Π_{{{:?},{:?}}}", a, b);
        }
    }
    Ok(scratch.radix_passes())
}

/// Shared body: exact (`ε = 0`, unbounded budget) removal counts and budgeted
/// (`ε > 0`) accept/reject decisions against the sort-based list-OD oracle.
fn assert_verdicts_match_value_oracle(rel: &Relation) -> Result<(), TestCaseError> {
    let cols = rel.schema().arity() as u32;
    let mut cache = PartitionCache::new(rel);
    for stmt in all_statements(cols, 2) {
        let exact = statement_verdict(&mut cache, &stmt, 1, usize::MAX);
        // Both list-OD directions of a compatibility share one removal count;
        // one representative suffices as the Value-path oracle.
        let oracle = od_removal_count(rel, &stmt.as_list_ods()[0]);
        prop_assert_eq!(
            exact.removal_count,
            oracle,
            "exact removal of {} on {} rows",
            &stmt,
            rel.len()
        );
        prop_assert_eq!(exact.holds(), oracle == 0);
        for epsilon in [0.1, 0.25] {
            let budget = error_budget(rel.len(), epsilon);
            let approx = statement_verdict(&mut cache, &stmt, 1, budget);
            // A budgeted scan may short-circuit, so only the decision is
            // pinned — the overshoot of a rejected verdict is not exact.
            prop_assert_eq!(
                approx.within(budget),
                oracle <= budget,
                "ε = {}: {} (oracle {}, budget {})",
                epsilon,
                &stmt,
                oracle,
                budget
            );
        }
    }
    Ok(())
}

/// Shared body: every ordered-pair product Π_A · Π_B on the radix,
/// comparison-sort, and hash paths, bit for bit against the raw-code
/// refinement oracle (`Π_A` refined by B's dictionary codes — the level-1
/// path, which never sees the packed keys).  The three product paths drop
/// rows singleton in either operand; refinement strips them afterwards, so
/// all four land on the identical CSR partition.  Also pins self-product
/// idempotence (Π · Π = Π).
fn assert_products_match_oracles(rel: &Relation) -> Result<u64, TestCaseError> {
    let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
    let enc = rel.encoding();
    let mut scratch = RefineScratch::default();
    let parts: Vec<StrippedPartition> = (0..attrs.len())
        .map(|i| StrippedPartition::by_codes_with(enc.codes(i), &mut scratch))
        .collect();
    let codes: Vec<ClassCodes> = parts.iter().map(StrippedPartition::class_codes).collect();
    for (i, p) in parts.iter().enumerate() {
        for (j, c) in codes.iter().enumerate() {
            if i == j {
                continue;
            }
            let radix = p.product_with(c, &mut scratch);
            let oracle = p.refine_by_with(enc.codes(j), &mut scratch);
            prop_assert_eq!(&radix, &oracle, "product vs refinement {:?}x{:?}", i, j);
            let comparison = p.product_comparison(c, &mut scratch);
            prop_assert_eq!(&radix, &comparison, "product vs comparison {:?}x{:?}", i, j);
            let hash = p.product_hash(c);
            prop_assert_eq!(&radix, &hash, "product vs hash oracle {:?}x{:?}", i, j);
        }
        let self_product = p.product_with(&codes[i], &mut scratch);
        prop_assert_eq!(
            &self_product,
            p,
            "self-product of {:?} must be idempotent",
            i
        );
    }
    Ok(scratch.product_radix_passes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Small relations: exhaustive shape coverage (empty, all-NULL columns,
    /// every class below the radix thresholds → comparison fallback paths).
    #[test]
    fn small_relations_partition_and_verdict_parity(
        rel in relation_strategy(2, 0usize..14),
    ) {
        assert_partitions_match_value_oracle(&rel)?;
        assert_products_match_oracles(&rel)?;
        assert_verdicts_match_value_oracle(&rel)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Large relations: few distinct values over hundreds of rows, so
    /// partition classes and refinement pair sets clear `RADIX_MIN_PAIRS` /
    /// `CLASS_RADIX_MIN` — this is the differential pin on the radix and
    /// counting-sort code paths (plus the single-value column, whose
    /// constant key must cost zero radix passes yet one full class).
    #[test]
    fn large_relations_take_radix_paths_and_agree(
        rel in relation_strategy(2, 400usize..520),
    ) {
        let passes = assert_partitions_match_value_oracle(&rel)?;
        prop_assert!(passes > 0, "expected radix passes above the threshold");
        let product_passes = assert_products_match_oracles(&rel)?;
        prop_assert!(
            product_passes > 0,
            "expected product radix passes above the threshold"
        );
        assert_verdicts_match_value_oracle(&rel)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `LatticeStats::product_radix_passes` (the counter behind
    /// `discovery.product_radix_passes`) is a pure function of the input:
    /// sharding the lattice's product jobs across worker threads must not
    /// change it, nor the discovered statements.
    #[test]
    fn product_pass_counts_are_thread_invariant(
        rel in relation_strategy(3, 0usize..40),
    ) {
        let config = |threads| LatticeConfig {
            max_context: 3,
            threads,
            ..Default::default()
        };
        let reference = discover_statements(&rel, &config(1));
        for threads in [4usize, 8] {
            let d = discover_statements(&rel, &config(threads));
            prop_assert_eq!(
                d.stats.product_radix_passes,
                reference.stats.product_radix_passes,
                "product pass count drifted at {} threads",
                threads
            );
            prop_assert_eq!(d.minimal_statements(), reference.minimal_statements());
        }
    }
}
