//! Incremental OD monitoring over a changing table: **delta-maintained
//! partitions** and per-statement **verdict ledgers**.
//!
//! The snapshot stack ([`crate::partition`] / [`crate::validate`] /
//! [`crate::engine`]) rebuilds stripped partitions per relation instance; the
//! paper, however, frames ODs as integrity constraints a DBMS should enforce
//! *continuously*.  This module closes that gap.  The key observation (already
//! load-bearing in [`crate::parallel`]) is that per-class `g3` removal counts
//! are **additive and independent across classes**: a tuple insert or delete
//! perturbs exactly one equivalence class per context, so a monitored
//! statement's removal count can be patched by re-deriving only the touched
//! classes instead of rebuilding partitions and re-scanning them.
//!
//! Four pieces cooperate:
//!
//! * [`StreamCodes`] — a per-column, order-preserving **gapped code**
//!   assignment (`u64` codes spaced [`CODE_GAP`] apart).  New distinct values
//!   take the midpoint of their neighbours' codes; when a gap is exhausted the
//!   column renumbers (amortized, counted in [`StreamStats::renumbers`]).
//!   Renumbering is order-isomorphic, so cached per-class removal counts stay
//!   valid — the per-class formulas depend only on the relative order of
//!   codes, never on their magnitudes.
//! * [`StreamMonitor`] — owns the live table (rows plus an alive bitmap; tuple
//!   ids are stable and never reused) and one live partition per monitored
//!   context, keyed by the context's **projected values** (stable under code
//!   renumbering, unlike code tuples).  Class member lists stay sorted by id
//!   for free: fresh ids only ever grow, and deletes use a filtering pass.
//! * [`VerdictLedger`] — per monitored statement, a per-class incremental
//!   state plus the statement's running removal total.  Constancy classes
//!   keep a value-count multiset with an `O(1)`-amortized max-group tracker,
//!   so a touched row costs `O(1)`.  Compatibility classes keep the class
//!   **pre-sorted** by `(code_A, code_B, id)` and patch it with a single
//!   filter-merge pass — never a re-sort; a swap-free class is then verified
//!   with one linear non-decreasing-`B` scan, and the `O(k log k)` LIS pass
//!   runs only on classes that actually violate.
//! * [`crate::parallel::for_each_ledger`] — ledgers are mutually independent,
//!   so large deltas shard the patch phase across threads, one ledger per
//!   task.
//!
//! The ledger invariant — checked bit-for-bit against from-scratch
//! recomputation by `tests/stream_differential.rs` — is:
//!
//! ```text
//! ledger.removal_count()  ==  Σ_classes per-class g3 removal of the statement
//!                         ==  validate::statement_verdict(fresh cache, stmt, ∞).removal_count
//! ```
//!
//! Accept/reject against an ε budget needs no re-scan at all: the budget
//! `⌊ε·n⌋` is recomputed from the current alive-row count and compared with
//! the ledger total.

use crate::canonical::{translate_od, SetOd};
use crate::obs;
use crate::parallel;
use crate::validate::{
    class_compatibility_removal, class_constancy_removal, error_budget, Verdict, WITNESS_SAMPLE_CAP,
};
use od_core::{radix, AttrId, AttrSet, OrderDependency, Relation, Schema, Tuple, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::ops::Bound;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Stable identifier of a tuple in a [`StreamMonitor`]'s live table.
///
/// Ids are assigned densely in insertion order and **never reused**: a deleted
/// tuple's id stays dead forever, and re-inserting an identical row yields a
/// fresh id.  This is what lets ledgers and partitions refer to tuples without
/// any re-indexing on delete.  The flip side: dead rows and their codes are
/// retained, so a monitor's memory tracks **lifetime inserts**, not alive
/// rows — long-lived monitors under churn should call
/// [`StreamMonitor::compact`] periodically, and a batch that would overflow
/// the id space is rejected with [`StreamError::IdSpaceExhausted`].
pub type TupleId = u32;

/// Spacing between consecutive codes after a (re)numbering: a fresh gap admits
/// 32 midpoint insertions between any two neighbours before the column has to
/// renumber.
pub const CODE_GAP: u64 = 1 << 32;

/// Touched-row threshold above which a delta's ledger-patch phase is sharded
/// across threads (one ledger per task; mirrors
/// [`crate::validate::PARALLEL_ROW_THRESHOLD`] but measured over the rows of
/// the touched classes only).
pub const PARALLEL_TOUCHED_ROW_THRESHOLD: usize = 8_192;

/// Pair count from which a live-partition rebuild range switches from
/// `sort_unstable` to the radix sort (the same crossover the snapshot
/// partitions use).
const REBUILD_RADIX_MIN_PAIRS: usize = 256;

/// A batch of tuple-level changes to apply atomically to a live table.
///
/// Deletes are applied before inserts, so a batch may delete a tuple and
/// insert its replacement in one step.  All-or-nothing: the batch is validated
/// up front and a [`StreamError`] leaves the monitor untouched.
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    /// Rows to append (each is assigned a fresh [`TupleId`]).
    pub inserts: Vec<Tuple>,
    /// Ids of live tuples to delete.
    pub deletes: Vec<TupleId>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Add a row to insert (builder style).
    pub fn insert(mut self, row: Tuple) -> Self {
        self.inserts.push(row);
        self
    }

    /// Add a tuple id to delete (builder style).
    pub fn delete(mut self, id: TupleId) -> Self {
        self.deletes.push(id);
        self
    }

    /// Total number of changes in the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True if the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// Why a [`DeltaBatch`] was rejected (the monitor is left unchanged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// An inserted row's arity does not match the schema.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Offending row's arity.
        actual: usize,
    },
    /// A delete names an id that was never assigned.
    UnknownTuple(TupleId),
    /// A delete names an id that is already dead (including a duplicate delete
    /// within the same batch).
    DeadTuple(TupleId),
    /// The batch would push lifetime inserts past the [`TupleId`] space
    /// (ids are never reused); [`StreamMonitor::compact`] reclaims it.
    IdSpaceExhausted,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "insert arity {actual} does not match schema arity {expected}"
                )
            }
            StreamError::UnknownTuple(id) => write!(f, "tuple id {id} was never assigned"),
            StreamError::DeadTuple(id) => write!(f, "tuple id {id} is already deleted"),
            StreamError::IdSpaceExhausted => {
                write!(
                    f,
                    "tuple id space exhausted; compact() the monitor to reclaim dead ids"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// What one [`StreamMonitor::apply_delta`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Ids assigned to the batch's inserted rows, in batch order.
    pub inserted: Vec<TupleId>,
    /// Number of tuples deleted.
    pub deleted: usize,
    /// Distinct (context, class) pairs the delta perturbed across all live
    /// partitions — the unit the maintenance cost is measured in.
    pub touched_classes: usize,
    /// Per-class ledger patches performed (a class touched under one context
    /// is patched once per statement monitored at that context).
    pub recomputed_classes: usize,
}

/// Counters describing a monitor's lifetime maintenance work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Delta batches applied.
    pub deltas_applied: usize,
    /// Rows inserted across all batches.
    pub rows_inserted: usize,
    /// Rows deleted across all batches.
    pub rows_deleted: usize,
    /// Cumulative [`DeltaSummary::touched_classes`].
    pub classes_touched: usize,
    /// Cumulative [`DeltaSummary::recomputed_classes`].
    pub classes_recomputed: usize,
    /// Column renumberings triggered by gap exhaustion in [`StreamCodes`].
    pub renumbers: usize,
    /// Rows moved through ledger class patches (delta rows advanced in place,
    /// plus full memberships on rebuild paths).
    pub rows_patched: usize,
    /// Point events filter-merged into pre-sorted compatibility classes.
    pub splice_events: usize,
    /// `O(k log k)` LIS tails passes actually run — only classes whose linear
    /// non-decreasing check failed pay for one.
    pub lis_invocations: usize,
    /// [`StreamMonitor::compact`] calls performed.
    pub compactions: usize,
}

/// What one [`StreamMonitor::compact`] call reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Dead tuple ids dropped from the id space.
    pub dead_ids_reclaimed: usize,
    /// Approximate bytes released (per [`StreamMonitor::approx_heap_bytes`];
    /// deterministic — lengths, never capacities).
    pub bytes_freed: usize,
    /// Bytes released from the stores the columnar rebuild reconstructs —
    /// per-column gapped code tables (dead ids' code slots, values no longer
    /// present) plus live-partition class keys and memberships.  A subset of
    /// `bytes_freed` (deterministic, like it); the row store's share is the
    /// difference.
    pub rebuild_bytes_freed: usize,
    /// Wall-clock time of the rebuild (non-deterministic; kept out of
    /// canonical metrics output).
    pub rebuild: Duration,
}

/// Per-delta ledger patch work, accumulated across classes (and, for large
/// deltas, across patch worker threads via atomics — the totals are
/// deterministic because the per-class work is).
#[derive(Debug, Clone, Copy, Default)]
struct PatchEffort {
    /// Rows moved through class patches.
    rows: usize,
    /// Point events merged into sorted compatibility classes.
    splices: usize,
    /// LIS tails passes run.
    lis: usize,
}

impl PatchEffort {
    fn absorb(&mut self, other: PatchEffort) {
        self.rows += other.rows;
        self.splices += other.splices;
        self.lis += other.lis;
    }
}

/// Order-preserving, insert-friendly `u64` codes for one column of the live
/// table (see the module docs for the gapped-code scheme).
#[derive(Debug, Default)]
pub struct StreamCodes {
    /// Distinct value → code, in value order.
    map: BTreeMap<Value, u64>,
    /// Per-tuple-id code (dead ids keep their last code; it still resolves
    /// through `map` after renumbering because values are never evicted).
    codes: Vec<u64>,
    /// Renumberings performed on this column.
    renumbers: usize,
}

impl StreamCodes {
    /// Codes for an existing column: distinct values spaced [`CODE_GAP`] apart.
    fn backfill(rows: &[Tuple], col: usize) -> Self {
        let mut map: BTreeMap<Value, u64> = BTreeMap::new();
        for row in rows {
            map.entry(row[col].clone()).or_insert(0);
        }
        for (i, code) in map.values_mut().enumerate() {
            *code = (i as u64 + 1) * CODE_GAP;
        }
        let codes = rows.iter().map(|row| map[&row[col]]).collect();
        StreamCodes {
            map,
            codes,
            renumbers: 0,
        }
    }

    /// Append the code of one more tuple's value (assigning a fresh code if
    /// the value is new to the column).
    fn push(&mut self, value: &Value) {
        let code = self.code_for(value);
        self.codes.push(code);
    }

    /// The code of `value`, minting one in the gap between its neighbours if
    /// the value is unseen; renumbers the column when the gap is exhausted.
    fn code_for(&mut self, value: &Value) -> u64 {
        if let Some(&code) = self.map.get(value) {
            return code;
        }
        let below = self
            .map
            .range::<Value, _>((Bound::Unbounded, Bound::Excluded(value)))
            .next_back()
            .map(|(_, &c)| c);
        let above = self
            .map
            .range::<Value, _>((Bound::Excluded(value), Bound::Unbounded))
            .next()
            .map(|(_, &c)| c);
        let minted = match (below, above) {
            (None, None) => Some(CODE_GAP),
            (Some(lo), None) => lo.checked_add(CODE_GAP),
            (None, Some(hi)) => (hi >= 2).then_some(hi / 2),
            (Some(lo), Some(hi)) => {
                let mid = lo + (hi - lo) / 2;
                (mid > lo).then_some(mid)
            }
        };
        match minted {
            Some(code) => {
                self.map.insert(value.clone(), code);
                code
            }
            None => {
                self.renumber();
                self.code_for(value)
            }
        }
    }

    /// Re-space every code [`CODE_GAP`] apart.  Order-isomorphic, so per-class
    /// removal *counts* computed from the old codes remain exact — but code
    /// magnitudes cached inside ledger class states go stale, which the
    /// version stamps in `ClassState` detect: a stale state is rebuilt, not
    /// advanced, the next time its class is touched.
    fn renumber(&mut self) {
        self.renumbers += 1;
        let mut translation: HashMap<u64, u64> = HashMap::with_capacity(self.map.len());
        for (i, code) in self.map.values_mut().enumerate() {
            let fresh = (i as u64 + 1) * CODE_GAP;
            translation.insert(*code, fresh);
            *code = fresh;
        }
        for code in &mut self.codes {
            *code = translation[code];
        }
    }

    /// Per-tuple-id codes (indexable by any assigned [`TupleId`]).
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }

    /// Number of distinct values ever seen by the column.
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }
}

/// The live partition of one monitored context: equivalence classes of alive
/// tuple ids (ascending), keyed by the context's projected values.
///
/// Unlike [`crate::partition::StrippedPartition`], singleton classes are kept
/// — an insert may grow them — and classes mutate in place instead of being
/// rebuilt by refinement.
#[derive(Debug)]
struct LivePartition {
    /// Context attributes in ascending id order (the projection key order).
    attrs: Vec<AttrId>,
    /// Projected key → alive member ids, ascending (initial build emits id
    /// order and fresh ids only ever grow).
    classes: HashMap<Vec<Value>, Vec<TupleId>>,
}

impl LivePartition {
    /// Build from the per-column gapped code tables instead of per-row value
    /// projection: alive ids start as one range, and each context attribute
    /// splits every range by sorting its `(code, id)` pairs — the same stable
    /// radix kernel partition refinement uses ([`od_core::radix`]), with
    /// `sort_unstable` below [`REBUILD_RADIX_MIN_PAIRS`]; both orders
    /// coincide because ids are distinct and enter ascending.  Unlike a
    /// stripped partition, singleton runs are kept — an insert may grow them.
    /// Only one `Value` projection remains per final class: its key, read off
    /// the first member (equal gapped codes are equal values by
    /// construction).
    ///
    /// The second return value is the number of radix counting passes spent,
    /// surfaced by callers as the `stream.rebuild.radix_passes` counter.
    fn build(
        context: &AttrSet,
        rows: &[Tuple],
        alive: &[bool],
        columns: &HashMap<AttrId, StreamCodes>,
    ) -> (Self, u64) {
        let attrs: Vec<AttrId> = context.iter().collect();
        let seed: Vec<TupleId> = (0..rows.len() as TupleId)
            .filter(|&id| alive[id as usize])
            .collect();
        let mut cur: Vec<Vec<TupleId>> = vec![seed];
        let mut passes = 0u64;
        let mut pairs: Vec<(u64, u32)> = Vec::new();
        let mut radix_buf: Vec<(u64, u32)> = Vec::new();
        for attr in &attrs {
            let codes = columns[attr].codes();
            let mut next: Vec<Vec<TupleId>> = Vec::with_capacity(cur.len());
            for class in &mut cur {
                if class.len() <= 1 {
                    next.push(std::mem::take(class));
                    continue;
                }
                pairs.clear();
                pairs.extend(class.iter().map(|&id| (codes[id as usize], id)));
                if pairs.len() >= REBUILD_RADIX_MIN_PAIRS {
                    passes += u64::from(radix::sort_pairs(&mut pairs, &mut radix_buf));
                } else {
                    pairs.sort_unstable();
                }
                let mut start = 0usize;
                for i in 1..=pairs.len() {
                    if i == pairs.len() || pairs[i].0 != pairs[start].0 {
                        next.push(pairs[start..i].iter().map(|&(_, id)| id).collect());
                        start = i;
                    }
                }
            }
            cur = next;
        }
        let mut classes: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::with_capacity(cur.len());
        for class in cur {
            let Some(&first) = class.first() else {
                continue; // no alive rows at all
            };
            let row = &rows[first as usize];
            let key: Vec<Value> = attrs.iter().map(|a| row[a.index()].clone()).collect();
            classes.insert(key, class);
        }
        (LivePartition { attrs, classes }, passes)
    }

    fn key(&self, row: &Tuple) -> Vec<Value> {
        self.attrs.iter().map(|a| row[a.index()].clone()).collect()
    }
}

/// The ids a delta added to / removed from one class of one partition, plus
/// the class's size before and after the splice — ledgers skip classes that
/// were and stay below two members (nothing to track) without a hash lookup.
#[derive(Debug, Default)]
struct ClassDelta {
    added: Vec<TupleId>,
    removed: Vec<TupleId>,
    was_len: usize,
    now_len: usize,
}

/// Per-partition map of touched classes for one delta.
type TouchedClasses = HashMap<Vec<Value>, ClassDelta>;

/// Incrementally maintained per-class evidence for one ledger.
///
/// Both variants carry a `version` — the relevant columns' renumber counters
/// at build time.  Cached code **magnitudes** go stale when a column
/// renumbers (the cached *counts* stay exact, renumbering being
/// order-isomorphic), so a stale state is rebuilt instead of advanced the
/// next time its class is touched.
#[derive(Debug)]
enum ClassState {
    /// Constancy `𝒞 : [] ↦ A`: a multiset of the class's `A`-codes with an
    /// `O(1)`-amortized max-group tracker.  `removal = size − max_count`.
    Constancy {
        /// code → multiplicity.
        counts: HashMap<u64, usize>,
        /// multiplicity → number of codes at that multiplicity.
        freq: HashMap<usize, usize>,
        max_count: usize,
        size: usize,
        version: usize,
    },
    /// Compatibility `𝒞 : A ~ B`: the class pre-sorted by
    /// `(code_A, code_B, id)`, patched by filter-merge (never re-sorted).
    Compatibility {
        sorted: Vec<(u64, u64, TupleId)>,
        removal: usize,
        version: usize,
    },
}

impl ClassState {
    fn removal(&self) -> usize {
        match self {
            ClassState::Constancy {
                max_count, size, ..
            } => size - max_count,
            ClassState::Compatibility { removal, .. } => *removal,
        }
    }

    fn version(&self) -> usize {
        match self {
            ClassState::Constancy { version, .. } | ClassState::Compatibility { version, .. } => {
                *version
            }
        }
    }

    fn constancy_add(
        counts: &mut HashMap<u64, usize>,
        freq: &mut HashMap<usize, usize>,
        max_count: &mut usize,
        code: u64,
    ) {
        let entry = counts.entry(code).or_insert(0);
        if *entry > 0 {
            dec_freq(freq, *entry);
        }
        *entry += 1;
        *freq.entry(*entry).or_insert(0) += 1;
        *max_count = (*max_count).max(*entry);
    }

    fn constancy_remove(
        counts: &mut HashMap<u64, usize>,
        freq: &mut HashMap<usize, usize>,
        max_count: &mut usize,
        code: u64,
    ) {
        let entry = counts.get_mut(&code).expect("removing a tracked code");
        let old = *entry;
        dec_freq(freq, old);
        if old > 1 {
            *entry = old - 1;
            *freq.entry(old - 1).or_insert(0) += 1;
        } else {
            counts.remove(&code);
        }
        // One multiplicity dropped by exactly one: the max can fall by at most
        // one, and does so iff no other code still sits at the old max.
        if old == *max_count && freq.get(&old).copied().unwrap_or(0) == 0 {
            *max_count = old - 1;
        }
    }

    /// Exact removal count of a compatibility class from its pre-sorted
    /// triples: the linear swap-free check first (a `(A, B)`-sorted class is
    /// swap-free iff its `B`-sequence is globally non-decreasing), the
    /// `O(k log k)` LIS tails pass only when it actually violates.  The
    /// boolean reports whether the LIS pass actually ran (the cost metric
    /// behind [`StreamStats::lis_invocations`]).
    fn compat_removal(sorted: &[(u64, u64, TupleId)]) -> (usize, bool) {
        if sorted.windows(2).all(|w| w[0].1 <= w[1].1) {
            return (0, false);
        }
        let mut tails: Vec<u64> = Vec::new();
        for &(_, b, _) in sorted {
            let pos = tails.partition_point(|&t| t <= b);
            if pos == tails.len() {
                tails.push(b);
            } else {
                tails[pos] = b;
            }
        }
        (sorted.len() - tails.len(), true)
    }

    /// Advance this state by one delta, in place, reporting the work done.
    fn advance(
        &mut self,
        stmt: &SetOd,
        delta: &ClassDelta,
        columns: &HashMap<AttrId, StreamCodes>,
    ) -> PatchEffort {
        match (self, stmt) {
            (
                ClassState::Constancy {
                    counts,
                    freq,
                    max_count,
                    size,
                    ..
                },
                SetOd::Constancy { attr, .. },
            ) => {
                let codes = columns[attr].codes();
                for &row in &delta.removed {
                    ClassState::constancy_remove(counts, freq, max_count, codes[row as usize]);
                    *size -= 1;
                }
                for &row in &delta.added {
                    ClassState::constancy_add(counts, freq, max_count, codes[row as usize]);
                    *size += 1;
                }
                PatchEffort {
                    rows: delta.removed.len() + delta.added.len(),
                    splices: 0,
                    lis: 0,
                }
            }
            (
                ClassState::Compatibility {
                    sorted, removal, ..
                },
                SetOd::Compatibility { a, b, .. },
            ) => {
                let ca = columns[a].codes();
                let cb = columns[b].codes();
                // Every changed row's triple is exactly reconstructible from
                // the codes, so inserts and deletes are both point *events* in
                // the sorted order: binary-search each event's position and
                // bulk-copy (memcpy) the untouched runs between them, instead
                // of walking all k elements.
                let mut events: Vec<(u64, u64, TupleId, bool)> = delta
                    .added
                    .iter()
                    .map(|&row| (ca[row as usize], cb[row as usize], row, true))
                    .chain(
                        delta
                            .removed
                            .iter()
                            .map(|&row| (ca[row as usize], cb[row as usize], row, false)),
                    )
                    .collect();
                events.sort_unstable();
                let mut merged =
                    Vec::with_capacity(sorted.len() + delta.added.len() - delta.removed.len());
                let mut src = 0usize;
                for (a, b, row, is_insert) in events {
                    let pos = src + sorted[src..].partition_point(|&t| t < (a, b, row));
                    merged.extend_from_slice(&sorted[src..pos]);
                    if is_insert {
                        merged.push((a, b, row));
                        src = pos;
                    } else {
                        debug_assert_eq!(sorted.get(pos), Some(&(a, b, row)));
                        src = pos + 1;
                    }
                }
                merged.extend_from_slice(&sorted[src..]);
                *sorted = merged;
                let splices = delta.added.len() + delta.removed.len();
                let (new_removal, lis_ran) = ClassState::compat_removal(sorted);
                *removal = new_removal;
                PatchEffort {
                    rows: splices,
                    splices,
                    lis: lis_ran as usize,
                }
            }
            _ => unreachable!("a ledger's states always match its statement kind"),
        }
    }
}

fn dec_freq(freq: &mut HashMap<usize, usize>, multiplicity: usize) {
    if let Some(f) = freq.get_mut(&multiplicity) {
        *f -= 1;
        if *f == 0 {
            freq.remove(&multiplicity);
        }
    }
}

/// The delta-maintained verdict of one monitored canonical statement:
/// incremental per-class states plus the statement's exact running removal
/// total.
#[derive(Debug)]
pub struct VerdictLedger {
    stmt: SetOd,
    /// Index of the statement's context partition in the monitor
    /// (`None` for trivially-true statements, which track nothing).
    partition: Option<usize>,
    /// Per-class incremental evidence (only classes of size ≥ 2 are tracked —
    /// smaller ones cannot violate anything).
    classes: HashMap<Vec<Value>, ClassState>,
    total: usize,
}

impl VerdictLedger {
    /// The monitored statement.
    pub fn statement(&self) -> &SetOd {
        &self.stmt
    }

    /// The statement's exact `g3` removal count on the current live table.
    pub fn removal_count(&self) -> usize {
        self.total
    }

    /// Number of classes currently violating the statement.
    pub fn violating_classes(&self) -> usize {
        self.classes.values().filter(|s| s.removal() > 0).count()
    }

    /// The `g3` error against a row count (0 on empty tables).
    pub fn g3(&self, n_rows: usize) -> f64 {
        if n_rows == 0 {
            0.0
        } else {
            self.total as f64 / n_rows as f64
        }
    }

    /// Does the statement hold after removing at most `budget` tuples?
    /// Ledger totals are always exact, so the decision needs no re-scan.
    pub fn within(&self, budget: usize) -> bool {
        self.total <= budget
    }

    /// The relevant columns' combined renumber counter — the freshness stamp
    /// cached class states are compared against.
    fn code_version(&self, columns: &HashMap<AttrId, StreamCodes>) -> usize {
        match &self.stmt {
            SetOd::Constancy { attr, .. } => columns[attr].renumbers,
            SetOd::Compatibility { a, b, .. } => columns[a].renumbers + columns[b].renumbers,
        }
    }

    /// Patch one touched class.  `class` is the class's current membership
    /// (`None`/short when it shrank away); `delta` lists the ids the batch
    /// moved in or out.  Returns the patch work performed.
    fn patch_class(
        &mut self,
        key: &[Value],
        class: Option<&[TupleId]>,
        delta: &ClassDelta,
        columns: &HashMap<AttrId, StreamCodes>,
    ) -> PatchEffort {
        let size = class.map_or(0, |c| c.len());
        if size < 2 {
            // Singletons and emptied classes cannot violate; drop any state.
            if let Some(old) = self.classes.remove(key) {
                self.total -= old.removal();
            }
            return PatchEffort::default();
        }
        let class = class.expect("size ≥ 2 implies membership");
        let current = self.code_version(columns);
        // Common case: the state exists and is fresh — advance it in place,
        // with no key clone and no map churn.
        let stmt = &self.stmt;
        if let Some(state) = self.classes.get_mut(key) {
            if state.version() == current {
                let old_removal = state.removal();
                let effort = state.advance(stmt, delta, columns);
                let new_removal = state.removal();
                self.total = self.total - old_removal + new_removal;
                return effort;
            }
        }
        // First touch of this class, or cached magnitudes went stale after a
        // renumbering: build from the full membership.
        let (fresh, effort) = self.build_state(class, columns);
        let new_removal = fresh.removal();
        let old_removal = self
            .classes
            .insert(key.to_vec(), fresh)
            .map_or(0, |s| s.removal());
        self.total = self.total - old_removal + new_removal;
        effort
    }

    /// Build a class's state from scratch (the one place a compatibility
    /// class is sorted), reporting the full-membership work it cost.
    fn build_state(
        &self,
        class: &[TupleId],
        columns: &HashMap<AttrId, StreamCodes>,
    ) -> (ClassState, PatchEffort) {
        let version = self.code_version(columns);
        match &self.stmt {
            SetOd::Constancy { attr, .. } => {
                let codes = columns[attr].codes();
                let mut counts = HashMap::new();
                let mut freq = HashMap::new();
                let mut max_count = 0;
                for &row in class {
                    ClassState::constancy_add(
                        &mut counts,
                        &mut freq,
                        &mut max_count,
                        codes[row as usize],
                    );
                }
                (
                    ClassState::Constancy {
                        counts,
                        freq,
                        max_count,
                        size: class.len(),
                        version,
                    },
                    PatchEffort {
                        rows: class.len(),
                        splices: 0,
                        lis: 0,
                    },
                )
            }
            SetOd::Compatibility { a, b, .. } => {
                let ca = columns[a].codes();
                let cb = columns[b].codes();
                let mut sorted: Vec<(u64, u64, TupleId)> = class
                    .iter()
                    .map(|&row| (ca[row as usize], cb[row as usize], row))
                    .collect();
                sorted.sort_unstable();
                let (removal, lis_ran) = ClassState::compat_removal(&sorted);
                (
                    ClassState::Compatibility {
                        sorted,
                        removal,
                        version,
                    },
                    PatchEffort {
                        rows: class.len(),
                        splices: 0,
                        lis: lis_ran as usize,
                    },
                )
            }
        }
    }

    /// Apply every touched class of this ledger's partition.  Returns the
    /// number of class patches performed and the work they cost.
    fn patch(
        &mut self,
        touched: &TouchedClasses,
        partition: &LivePartition,
        columns: &HashMap<AttrId, StreamCodes>,
    ) -> (usize, PatchEffort) {
        let mut patches = 0;
        let mut effort = PatchEffort::default();
        for (key, delta) in touched {
            if delta.was_len < 2 && delta.now_len < 2 {
                continue; // never tracked, still nothing to track
            }
            patches += 1;
            effort.absorb(self.patch_class(
                key,
                partition.classes.get(key).map(|c| c.as_slice()),
                delta,
                columns,
            ));
        }
        (patches, effort)
    }
}

/// Owns a live table and keeps monitored statements' verdicts current under
/// [`DeltaBatch`]es — the streaming counterpart of
/// [`SetBasedEngine`](crate::engine::SetBasedEngine).
///
/// See the module docs for the data-structure walkthrough.  Typical use:
///
/// ```
/// use od_core::{fixtures, OrderDependency, Value};
/// use od_setbased::stream::{DeltaBatch, StreamMonitor};
///
/// let rel = fixtures::example_5_taxes();
/// let s = rel.schema();
/// let income = s.attr_by_name("income").unwrap();
/// let bracket = s.attr_by_name("bracket").unwrap();
///
/// let mut monitor = StreamMonitor::new(&rel, 1);
/// let od = OrderDependency::new(vec![income], vec![bracket]);
/// monitor.monitor_od(&od);
/// assert_eq!(monitor.od_removal(&od), Some(0));
///
/// // A row with a wildly wrong bracket: the OD now needs one removal.
/// let mut bad = rel.tuple(0).clone();
/// bad[bracket.index()] = Value::Int(99);
/// let summary = monitor
///     .apply_delta(&DeltaBatch::new().insert(bad))
///     .unwrap();
/// assert_eq!(monitor.od_removal(&od), Some(1));
///
/// // Deleting the offender restores the OD — O(touched classes) each time.
/// let fix = DeltaBatch::new().delete(summary.inserted[0]);
/// monitor.apply_delta(&fix).unwrap();
/// assert_eq!(monitor.od_removal(&od), Some(0));
/// ```
pub struct StreamMonitor {
    schema: Schema,
    rows: Vec<Tuple>,
    alive: Vec<bool>,
    alive_count: usize,
    columns: HashMap<AttrId, StreamCodes>,
    partitions: Vec<LivePartition>,
    partition_index: HashMap<AttrSet, usize>,
    ledgers: Vec<VerdictLedger>,
    ledger_index: HashMap<SetOd, usize>,
    /// Reusable per-batch "deleted by this batch" bitmap, indexed by tuple
    /// id.  Grown (never shrunk) to the id space once, with only the bits a
    /// batch sets cleared afterwards — so each delta pays O(batch), not
    /// O(lifetime ids), for its membership tests.
    deleted_scratch: Vec<bool>,
    threads: usize,
    /// Lifetime maintenance counters.
    pub stats: StreamStats,
}

impl StreamMonitor {
    /// A monitor seeded with a snapshot of `rel` (rows are copied; the monitor
    /// owns its state and evolves independently of the source relation).
    /// `threads > 1` shards large ledger-patch phases, one ledger per task.
    pub fn new(rel: &Relation, threads: usize) -> Self {
        StreamMonitor {
            schema: rel.schema().clone(),
            rows: rel.tuples().to_vec(),
            alive: vec![true; rel.len()],
            alive_count: rel.len(),
            columns: HashMap::new(),
            partitions: Vec::new(),
            partition_index: HashMap::new(),
            ledgers: Vec::new(),
            ledger_index: HashMap::new(),
            deleted_scratch: Vec::new(),
            threads: threads.max(1),
            stats: StreamStats::default(),
        }
    }

    /// The live table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of alive rows.
    pub fn alive_rows(&self) -> usize {
        self.alive_count
    }

    /// Total ids ever assigned (alive + dead).
    pub fn total_rows(&self) -> usize {
        self.rows.len()
    }

    /// Is the id assigned and alive?
    pub fn is_alive(&self, id: TupleId) -> bool {
        self.alive.get(id as usize).copied().unwrap_or(false)
    }

    /// The tuple-removal budget `⌊ε·n⌋` for the **current** alive-row count —
    /// unlike the snapshot engine's fixed budget, this moves as the table
    /// grows and shrinks.
    pub fn error_budget(&self, epsilon: f64) -> usize {
        error_budget(self.alive_count, epsilon)
    }

    /// Snapshot the alive rows as a fresh [`Relation`] (id order).  Used by
    /// the differential tests as the from-scratch oracle input, and by
    /// callers that want to hand the live state back to the snapshot stack.
    pub fn to_relation(&self) -> Relation {
        Relation::from_rows(
            self.schema.clone(),
            self.rows
                .iter()
                .zip(&self.alive)
                .filter(|(_, &alive)| alive)
                .map(|(row, _)| row.clone()),
        )
        .expect("live rows match the schema by construction")
    }

    /// The monitored statements' ledgers, in monitoring order.
    pub fn ledgers(&self) -> &[VerdictLedger] {
        &self.ledgers
    }

    /// Start monitoring one canonical statement (idempotent).  Builds the
    /// context's live partition and the statement's initial ledger with one
    /// full scan; every later [`Self::apply_delta`] keeps it current
    /// incrementally.  Returns the ledger index.
    pub fn monitor_statement(&mut self, stmt: &SetOd) -> usize {
        let stmt = stmt.normalized().unwrap_or(*stmt);
        if let Some(&idx) = self.ledger_index.get(&stmt) {
            return idx;
        }
        let mut ledger = VerdictLedger {
            stmt,
            partition: None,
            classes: HashMap::new(),
            total: 0,
        };
        if !stmt.is_trivial() {
            for attr in statement_attrs(&stmt) {
                self.ensure_column(attr);
            }
            let pidx = self.ensure_partition(stmt.context());
            ledger.partition = Some(pidx);
            // Initial scan: build incremental state per class of size ≥ 2.
            for (key, class) in &self.partitions[pidx].classes {
                if class.len() >= 2 {
                    let (state, _) = ledger.build_state(class, &self.columns);
                    ledger.total += state.removal();
                    ledger.classes.insert(key.clone(), state);
                }
            }
        }
        let idx = self.ledgers.len();
        self.ledgers.push(ledger);
        self.ledger_index.insert(stmt, idx);
        idx
    }

    /// Monitor every canonical statement of a list OD (see
    /// [`translate_od`]); returns the statements, which together determine the
    /// OD's verdict via [`Self::od_removal`].
    pub fn monitor_od(&mut self, od: &OrderDependency) -> Vec<SetOd> {
        let stmts = translate_od(od);
        for stmt in &stmts {
            self.monitor_statement(stmt);
        }
        stmts
    }

    /// The exact removal count of a monitored statement (`None` if the
    /// statement is not monitored).
    pub fn statement_removal(&self, stmt: &SetOd) -> Option<usize> {
        let normalized = stmt.normalized();
        let key = normalized.as_ref().unwrap_or(stmt);
        self.ledger_index
            .get(key)
            .map(|&idx| self.ledgers[idx].total)
    }

    /// A [`Verdict`] view of a monitored statement's ledger, with violating
    /// row pairs re-sampled on demand from the currently violating classes
    /// (the sample is bounded by [`WITNESS_SAMPLE_CAP`] and its order is not
    /// deterministic).  `exceeded` is always false — ledger totals are exact.
    /// Nothing is scanned to produce this view, so `classes_scanned` reports
    /// the number of currently **violating** classes backing the count
    /// (`0` for a clean statement), not a scan cost as in the snapshot path.
    pub fn statement_verdict(&self, stmt: &SetOd) -> Option<Verdict> {
        let normalized = stmt.normalized();
        let key = normalized.as_ref().unwrap_or(stmt);
        let &idx = self.ledger_index.get(key)?;
        let ledger = &self.ledgers[idx];
        let mut verdict = Verdict {
            removal_count: ledger.total,
            exceeded: false,
            violating_pairs: Vec::new(),
            classes_scanned: ledger.violating_classes(),
        };
        if let Some(pidx) = ledger.partition {
            for (key, state) in &ledger.classes {
                if state.removal() == 0 || verdict.violating_pairs.len() >= WITNESS_SAMPLE_CAP {
                    continue;
                }
                if let Some(class) = self.partitions[pidx].classes.get(key) {
                    self.witnesses_for(&ledger.stmt, class, &mut verdict.violating_pairs);
                }
            }
        }
        Some(verdict)
    }

    /// The OD-level removal count: the worst canonical statement's ledger
    /// total (the same acceptance measure as
    /// [`SetBasedEngine::od_verdict`](crate::engine::SetBasedEngine::od_verdict)).
    /// `None` if any of the OD's statements is not monitored.
    pub fn od_removal(&self, od: &OrderDependency) -> Option<usize> {
        translate_od(od)
            .iter()
            .map(|stmt| self.statement_removal(stmt))
            .try_fold(0usize, |worst, removal| Some(worst.max(removal?)))
    }

    /// Does a monitored OD hold within the ε budget on the current table?
    pub fn od_within(&self, od: &OrderDependency, epsilon: f64) -> Option<bool> {
        let budget = self.error_budget(epsilon);
        self.od_removal(od).map(|removal| removal <= budget)
    }

    /// Apply one batch: deletes, then inserts, then a ledger patch per
    /// (statement, touched class), sharded across threads for large deltas.
    /// All-or-nothing — a [`StreamError`] leaves every structure unchanged.
    /// See the module docs for the cost model.
    pub fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<DeltaSummary, StreamError> {
        // Validate up front so failures cannot leave partial state behind.
        if self.rows.len() + batch.inserts.len() > TupleId::MAX as usize {
            return Err(StreamError::IdSpaceExhausted);
        }
        for row in &batch.inserts {
            if row.len() != self.schema.arity() {
                return Err(StreamError::ArityMismatch {
                    expected: self.schema.arity(),
                    actual: row.len(),
                });
            }
        }
        let mut doomed: HashSet<TupleId> = HashSet::with_capacity(batch.deletes.len());
        for &id in &batch.deletes {
            if (id as usize) >= self.rows.len() {
                return Err(StreamError::UnknownTuple(id));
            }
            if !self.alive[id as usize] || !doomed.insert(id) {
                return Err(StreamError::DeadTuple(id));
            }
        }

        // All mutation happens under stream/batch spans; the batch is valid by
        // now, so the spans never cover a rejected (no-op) delta.
        let _span_stream = obs::span("stream");
        let _span_batch = obs::span("batch");

        // Phase 1: the table and the column codes.  (If a column renumbers
        // here, cached class-state magnitudes go stale; the version stamps in
        // `ClassState` make every later patch rebuild instead of advance.)
        for &id in &batch.deletes {
            self.alive[id as usize] = false;
            self.alive_count -= 1;
        }
        let mut inserted = Vec::with_capacity(batch.inserts.len());
        for row in &batch.inserts {
            let id = self.rows.len() as TupleId;
            for (attr, codes) in &mut self.columns {
                codes.push(&row[attr.index()]);
            }
            self.rows.push(row.clone());
            self.alive.push(true);
            self.alive_count += 1;
            inserted.push(id);
        }
        // O(1) membership test for "deleted by this batch", shared by every
        // filtering pass below (a per-class `HashSet` would pay a hash per
        // surviving member — this is the hot loop of large touched classes).
        self.deleted_scratch.resize(self.rows.len(), false);
        for &id in &batch.deletes {
            self.deleted_scratch[id as usize] = true;
        }

        // Phase 2: group the delta per partition per class and splice the
        // class member lists with one filtering/extending pass each.
        let splice_span = obs::span("splice");
        let mut touched: Vec<TouchedClasses> = Vec::with_capacity(self.partitions.len());
        let mut touched_rows = 0usize;
        let rows = &self.rows;
        let deleted_mark = &self.deleted_scratch;
        for partition in &mut self.partitions {
            let mut changes = TouchedClasses::new();
            for &id in &batch.deletes {
                changes
                    .entry(partition.key(&rows[id as usize]))
                    .or_default()
                    .removed
                    .push(id);
            }
            for &id in &inserted {
                changes
                    .entry(partition.key(&rows[id as usize]))
                    .or_default()
                    .added
                    .push(id);
            }
            for (key, delta) in &mut changes {
                let class = partition.classes.entry(key.clone()).or_default();
                delta.was_len = class.len();
                if !delta.removed.is_empty() {
                    class.retain(|id| !deleted_mark[*id as usize]);
                }
                class.extend(&delta.added); // fresh ids grow: order is kept
                delta.now_len = class.len();
                obs::record("stream.touched_class_size", delta.now_len as u64);
                if class.is_empty() {
                    partition.classes.remove(key);
                } else {
                    touched_rows += class.len();
                }
            }
            touched.push(changes);
        }
        drop(splice_span);

        // Phase 3: patch every ledger's touched classes.  Ledgers are
        // independent, so large deltas shard across threads.
        let patch_threads = if self.threads > 1 && touched_rows >= PARALLEL_TOUCHED_ROW_THRESHOLD {
            self.threads
        } else {
            1
        };
        let patch_span = obs::span("patch");
        let recomputed = AtomicUsize::new(0);
        // Worker threads only bump these atomics; the effort totals are
        // deterministic regardless of thread count because the per-class work
        // is, and the orchestrating thread alone flushes them to metrics.
        let rows_patched = AtomicUsize::new(0);
        let splice_events = AtomicUsize::new(0);
        let lis_invocations = AtomicUsize::new(0);
        {
            let partitions = &self.partitions;
            let columns = &self.columns;
            let touched = &touched;
            let recomputed = &recomputed;
            let rows_patched = &rows_patched;
            let splice_events = &splice_events;
            let lis_invocations = &lis_invocations;
            parallel::for_each_ledger(&mut self.ledgers, patch_threads, move |ledger| {
                let Some(pidx) = ledger.partition else {
                    return; // trivial statement: nothing can perturb it
                };
                if touched[pidx].is_empty() {
                    return;
                }
                let (patches, effort) = ledger.patch(&touched[pidx], &partitions[pidx], columns);
                recomputed.fetch_add(patches, Ordering::Relaxed);
                rows_patched.fetch_add(effort.rows, Ordering::Relaxed);
                splice_events.fetch_add(effort.splices, Ordering::Relaxed);
                lis_invocations.fetch_add(effort.lis, Ordering::Relaxed);
            });
        }
        drop(patch_span);
        let rows_patched = rows_patched.into_inner();
        let splice_events = splice_events.into_inner();
        let lis_invocations = lis_invocations.into_inner();

        let summary = DeltaSummary {
            inserted,
            deleted: batch.deletes.len(),
            touched_classes: touched.iter().map(|t| t.len()).sum(),
            recomputed_classes: recomputed.into_inner(),
        };
        // Clear only the bits this batch set (see `deleted_scratch`).
        for &id in &batch.deletes {
            self.deleted_scratch[id as usize] = false;
        }
        self.stats.deltas_applied += 1;
        self.stats.rows_inserted += summary.inserted.len();
        self.stats.rows_deleted += summary.deleted;
        self.stats.classes_touched += summary.touched_classes;
        self.stats.classes_recomputed += summary.recomputed_classes;
        self.stats.renumbers = self.columns.values().map(|c| c.renumbers).sum();
        self.stats.rows_patched += rows_patched;
        self.stats.splice_events += splice_events;
        self.stats.lis_invocations += lis_invocations;
        obs::add("stream.deltas_applied", 1);
        obs::add("stream.rows_inserted", summary.inserted.len() as u64);
        obs::add("stream.rows_deleted", summary.deleted as u64);
        obs::add("stream.classes_touched", summary.touched_classes as u64);
        obs::add(
            "stream.classes_recomputed",
            summary.recomputed_classes as u64,
        );
        obs::add("stream.rows_patched", rows_patched as u64);
        obs::add("stream.splice_events", splice_events as u64);
        obs::add("stream.lis_invocations", lis_invocations as u64);
        Ok(summary)
    }

    /// Rebuild the monitor from its alive rows, dropping every dead tuple,
    /// its retained codes, and distinct values only dead rows carried.
    ///
    /// Ids are never reused, so a long-lived monitor under steady churn
    /// retains memory proportional to **lifetime inserts**, not alive rows;
    /// compaction trades one re-scan per monitored statement (the same cost
    /// as initial monitoring) for a reset id space and working set.  All
    /// previously returned [`TupleId`]s are invalidated — alive tuples are
    /// renumbered densely in id order.  Lifetime [`StreamStats`] are kept.
    ///
    /// Returns what the call reclaimed; only its `rebuild` duration is
    /// wall-clock (and hence non-deterministic) — the id and byte counts diff
    /// clean across runs.
    pub fn compact(&mut self) -> CompactStats {
        let _span = obs::span("stream/compact");
        let start = Instant::now();
        let bytes_before = self.approx_heap_bytes();
        let rebuild_bytes_before = self.rebuilt_store_bytes();
        let dead_ids_reclaimed = self.rows.len() - self.alive_count;
        let rel = self.to_relation();
        let stmts: Vec<SetOd> = self.ledgers.iter().map(|l| l.stmt).collect();
        let stats = self.stats;
        *self = StreamMonitor::new(&rel, self.threads);
        self.stats = stats;
        for stmt in &stmts {
            self.monitor_statement(stmt);
        }
        self.stats.compactions += 1;
        let compact = CompactStats {
            dead_ids_reclaimed,
            bytes_freed: bytes_before.saturating_sub(self.approx_heap_bytes()),
            rebuild_bytes_freed: rebuild_bytes_before.saturating_sub(self.rebuilt_store_bytes()),
            rebuild: start.elapsed(),
        };
        obs::add("stream.compact.runs", 1);
        obs::add(
            "stream.compact.dead_ids_reclaimed",
            compact.dead_ids_reclaimed as u64,
        );
        obs::add("stream.compact.bytes_freed", compact.bytes_freed as u64);
        obs::add(
            "stream.compact.rebuild_bytes_freed",
            compact.rebuild_bytes_freed as u64,
        );
        compact
    }

    /// Approximate bytes held by the monitor's core stores: the row store
    /// (dead rows included — they are what compaction reclaims), per-column
    /// code tables, the alive bitmap, and live-partition memberships.
    /// Deterministic for logically equal monitors — lengths, never
    /// capacities — so compaction metrics built on it diff clean across runs.
    /// Ledger class states are excluded: their size depends on touch history,
    /// not on logical content.
    pub fn approx_heap_bytes(&self) -> usize {
        let rows: usize = self
            .rows
            .iter()
            .map(|t| t.iter().map(Value::approx_bytes).sum::<usize>())
            .sum();
        rows + self.alive.len() + self.rebuilt_store_bytes()
    }

    /// Approximate bytes held by the stores [`Self::compact`]'s columnar
    /// rebuild reconstructs: per-column gapped code tables plus live-partition
    /// class keys and memberships — the component [`CompactStats`] reports as
    /// `rebuild_bytes_freed`.  Deterministic: lengths, never capacities.
    pub fn rebuilt_store_bytes(&self) -> usize {
        let codes: usize = self
            .columns
            .values()
            .map(|c| {
                c.codes.len() * std::mem::size_of::<u64>()
                    + c.map
                        .keys()
                        .map(|v| v.approx_bytes() + std::mem::size_of::<u64>())
                        .sum::<usize>()
            })
            .sum();
        let partitions: usize = self
            .partitions
            .iter()
            .map(|p| {
                p.classes
                    .iter()
                    .map(|(key, members)| {
                        key.iter().map(Value::approx_bytes).sum::<usize>()
                            + members.len() * std::mem::size_of::<TupleId>()
                    })
                    .sum::<usize>()
            })
            .sum();
        codes + partitions
    }

    /// The live code table of one column, if any monitored statement uses it.
    pub fn column_codes(&self, attr: AttrId) -> Option<&StreamCodes> {
        self.columns.get(&attr)
    }

    /// Append witness pairs for one violating class (up to the shared cap).
    fn witnesses_for(&self, stmt: &SetOd, class: &[u32], witnesses: &mut Vec<(u32, u32)>) {
        match stmt {
            SetOd::Constancy { attr, .. } => {
                class_constancy_removal(class, self.columns[attr].codes(), witnesses);
            }
            SetOd::Compatibility { a, b, .. } => {
                class_compatibility_removal(
                    class,
                    self.columns[a].codes(),
                    self.columns[b].codes(),
                    witnesses,
                );
            }
        }
    }

    fn ensure_column(&mut self, attr: AttrId) {
        if !self.columns.contains_key(&attr) {
            self.columns
                .insert(attr, StreamCodes::backfill(&self.rows, attr.index()));
        }
    }

    fn ensure_partition(&mut self, context: &AttrSet) -> usize {
        if let Some(&idx) = self.partition_index.get(context) {
            return idx;
        }
        // The columnar build reads the context attributes' gapped code
        // tables, so materialize them first (idempotent; statement attrs are
        // ensured separately by `monitor_statement`).
        for attr in context.iter() {
            self.ensure_column(attr);
        }
        let idx = self.partitions.len();
        let (part, passes) = LivePartition::build(context, &self.rows, &self.alive, &self.columns);
        obs::add("stream.rebuild.radix_passes", passes);
        self.partitions.push(part);
        self.partition_index.insert(*context, idx);
        idx
    }
}

/// The non-context attributes a statement's validators need codes for.
fn statement_attrs(stmt: &SetOd) -> Vec<AttrId> {
    match stmt {
        SetOd::Constancy { attr, .. } => vec![*attr],
        SetOd::Compatibility { a, b, .. } => vec![*a, *b],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionCache;
    use crate::validate;
    use od_core::fixtures;

    fn rel_from(rows: &[&[i64]]) -> Relation {
        let mut schema = Schema::new("t");
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        for i in 0..arity {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    }

    /// Oracle: the statement's exact removal count recomputed from scratch on
    /// the monitor's alive rows.
    fn oracle_removal(monitor: &StreamMonitor, stmt: &SetOd) -> usize {
        let rel = monitor.to_relation();
        let mut cache = PartitionCache::new(&rel);
        validate::statement_verdict(&mut cache, stmt, 1, usize::MAX).removal_count
    }

    fn assert_ledgers_match_oracle(monitor: &StreamMonitor, stmts: &[SetOd]) {
        for stmt in stmts {
            assert_eq!(
                monitor.statement_removal(stmt),
                Some(oracle_removal(monitor, stmt)),
                "ledger drifted from from-scratch recomputation on {stmt}"
            );
        }
    }

    #[test]
    fn ledger_tracks_inserts_and_deletes() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema().clone();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let od = OrderDependency::new(vec![income], vec![bracket]);
        let mut monitor = StreamMonitor::new(&rel, 1);
        let stmts = monitor.monitor_od(&od);
        assert_eq!(monitor.od_removal(&od), Some(0));

        // Insert a swap: high income, absurdly low bracket.
        let mut bad = rel.tuple(0).clone();
        bad[income.index()] = Value::Int(9_999_999);
        bad[bracket.index()] = Value::Int(-5);
        let summary = monitor.apply_delta(&DeltaBatch::new().insert(bad)).unwrap();
        assert!(monitor.od_removal(&od).unwrap() > 0);
        assert_ledgers_match_oracle(&monitor, &stmts);

        // Deleting the offender heals the OD.
        monitor
            .apply_delta(&DeltaBatch::new().delete(summary.inserted[0]))
            .unwrap();
        assert_eq!(monitor.od_removal(&od), Some(0));
        assert_ledgers_match_oracle(&monitor, &stmts);
        assert_eq!(monitor.alive_rows(), rel.len());
        assert_eq!(monitor.stats.deltas_applied, 2);
    }

    #[test]
    fn delete_then_reinsert_same_tuple_round_trips() {
        let rel = rel_from(&[&[1, 10], &[1, 10], &[2, 20], &[3, 30]]);
        let mut monitor = StreamMonitor::new(&rel, 1);
        let od = OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)]);
        let stmts = monitor.monitor_od(&od);

        // Delete row 0 and re-insert an identical row in ONE batch: the class
        // {0, 1} shrinks to a singleton and regrows with the fresh id.
        let summary = monitor
            .apply_delta(&DeltaBatch::new().delete(0).insert(rel.tuple(0).clone()))
            .unwrap();
        assert!(!monitor.is_alive(0), "old id stays dead");
        assert!(monitor.is_alive(summary.inserted[0]));
        assert_eq!(monitor.alive_rows(), rel.len());
        assert_ledgers_match_oracle(&monitor, &stmts);

        // The same round trip across two batches.
        monitor
            .apply_delta(&DeltaBatch::new().delete(summary.inserted[0]))
            .unwrap();
        assert_ledgers_match_oracle(&monitor, &stmts);
        monitor
            .apply_delta(&DeltaBatch::new().insert(rel.tuple(0).clone()))
            .unwrap();
        assert_eq!(monitor.od_removal(&od), Some(0));
        assert_ledgers_match_oracle(&monitor, &stmts);
    }

    #[test]
    fn delta_that_empties_a_class_retires_its_contribution() {
        // One context class {0, 1} violating constancy; deleting both members
        // must drop the class and its ledger entry entirely.
        let rel = rel_from(&[&[7, 1], &[7, 2], &[8, 3]]);
        let mut monitor = StreamMonitor::new(&rel, 1);
        let context: AttrSet = [AttrId(0)].into_iter().collect();
        let stmt = SetOd::constancy(context, AttrId(1));
        monitor.monitor_statement(&stmt);
        assert_eq!(monitor.statement_removal(&stmt), Some(1));
        assert_eq!(monitor.ledgers()[0].violating_classes(), 1);

        monitor
            .apply_delta(&DeltaBatch::new().delete(0).delete(1))
            .unwrap();
        assert_eq!(monitor.statement_removal(&stmt), Some(0));
        assert_eq!(monitor.ledgers()[0].violating_classes(), 0);
        assert_eq!(monitor.alive_rows(), 1);
        assert_eq!(oracle_removal(&monitor, &stmt), 0);
    }

    #[test]
    fn all_null_insert_batch_is_handled() {
        let rel = rel_from(&[&[1, 1], &[2, 2]]);
        let mut monitor = StreamMonitor::new(&rel, 1);
        let od = OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)]);
        let stmts = monitor.monitor_od(&od);

        // NULLs sort first and form their own value group; three all-NULL rows
        // agree on everything, so the OD keeps holding...
        let nulls = vec![Value::Null, Value::Null];
        let batch = DeltaBatch {
            inserts: vec![nulls.clone(), nulls.clone(), nulls.clone()],
            deletes: vec![],
        };
        monitor.apply_delta(&batch).unwrap();
        assert_eq!(monitor.od_removal(&od), Some(0));
        assert_ledgers_match_oracle(&monitor, &stmts);

        // ...until a row agrees with them on the LHS but not the RHS.
        monitor
            .apply_delta(&DeltaBatch::new().insert(vec![Value::Null, Value::Int(5)]))
            .unwrap();
        assert!(monitor.od_removal(&od).unwrap() > 0);
        assert_ledgers_match_oracle(&monitor, &stmts);
    }

    #[test]
    fn bad_batches_are_rejected_atomically() {
        let rel = rel_from(&[&[1, 1], &[2, 2]]);
        let mut monitor = StreamMonitor::new(&rel, 1);
        monitor.monitor_od(&OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)]));

        let wrong_arity = DeltaBatch::new().insert(vec![Value::Int(1)]);
        assert_eq!(
            monitor.apply_delta(&wrong_arity),
            Err(StreamError::ArityMismatch {
                expected: 2,
                actual: 1
            })
        );
        assert_eq!(
            monitor.apply_delta(&DeltaBatch::new().delete(99)),
            Err(StreamError::UnknownTuple(99))
        );
        assert_eq!(
            monitor.apply_delta(&DeltaBatch::new().delete(0).delete(0)),
            Err(StreamError::DeadTuple(0))
        );
        // A rejected batch leaves no trace.
        assert_eq!(monitor.alive_rows(), 2);
        assert_eq!(monitor.stats.deltas_applied, 0);
        assert!(monitor.is_alive(0));
    }

    #[test]
    fn stream_codes_mint_midpoints_and_renumber_on_exhaustion() {
        let rows: Vec<Tuple> = vec![vec![Value::Float(0.0)], vec![Value::Float(1.0)]];
        let mut codes = StreamCodes::backfill(&rows, 0);
        assert_eq!(codes.distinct_values(), 2);
        let c0 = codes.code_for(&Value::Float(0.0));
        let c1 = codes.code_for(&Value::Float(1.0));
        assert!(c0 < c1);

        // Repeated bisection between two neighbours exhausts the gap after
        // ~log2(CODE_GAP) inserts, forcing at least one renumbering; order
        // must be preserved throughout.
        let mut lo = 0.0f64;
        let hi = 1.0f64;
        for _ in 0..80 {
            lo = lo + (hi - lo) / 2.0;
            codes.push(&Value::Float(lo));
        }
        assert!(codes.renumbers >= 1, "bisection must trigger renumbering");
        let mut values: Vec<(Value, u64)> =
            codes.map.iter().map(|(v, &c)| (v.clone(), c)).collect();
        values.sort_by(|a, b| a.0.cmp(&b.0));
        for pair in values.windows(2) {
            assert!(pair[0].1 < pair[1].1, "codes must stay order-preserving");
        }
    }

    #[test]
    fn renumbering_mid_stream_keeps_ledgers_exact() {
        // Float bisection on a monitored column forces renumbering while a
        // compatibility ledger holds cached magnitudes; the rebuild path must
        // keep the counts exact.
        let mut schema = Schema::new("t");
        schema.add_attr("a");
        schema.add_attr("b");
        let rel = Relation::from_rows(
            schema,
            vec![
                vec![Value::Float(0.0), Value::Float(0.0)],
                vec![Value::Float(1.0), Value::Float(1.0)],
            ],
        )
        .unwrap();
        let mut monitor = StreamMonitor::new(&rel, 1);
        let od = OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)]);
        let stmts = monitor.monitor_od(&od);

        let mut lo = 0.0f64;
        for _ in 0..80 {
            lo = lo + (1.0 - lo) / 2.0;
            monitor
                .apply_delta(
                    &DeltaBatch::new().insert(vec![Value::Float(lo), Value::Float(1.0 - lo)]),
                )
                .unwrap();
            assert_ledgers_match_oracle(&monitor, &stmts);
        }
        assert!(
            monitor.stats.renumbers >= 1,
            "the workload must exercise renumbering"
        );
    }

    #[test]
    fn statement_verdict_resamples_witnesses() {
        let rel = rel_from(&[&[0, 0], &[0, 1], &[0, 2]]);
        let mut monitor = StreamMonitor::new(&rel, 1);
        let stmt = SetOd::constancy(AttrSet::new(), AttrId(1));
        monitor.monitor_statement(&stmt);
        let verdict = monitor.statement_verdict(&stmt).unwrap();
        assert_eq!(verdict.removal_count, 2);
        assert!(!verdict.exceeded);
        assert!(!verdict.violating_pairs.is_empty());
        // Unmonitored statements have no ledger.
        assert_eq!(
            monitor.statement_verdict(&SetOd::constancy(AttrSet::new(), AttrId(0))),
            None
        );
        // Trivial statements are monitored at zero cost and never violated.
        let ctx: AttrSet = [AttrId(1)].into_iter().collect();
        let trivial = SetOd::constancy(ctx, AttrId(1));
        monitor.monitor_statement(&trivial);
        assert_eq!(monitor.statement_removal(&trivial), Some(0));
    }

    #[test]
    fn monitoring_is_idempotent_and_normalizing() {
        let rel = rel_from(&[&[0, 1], &[1, 0]]);
        let mut monitor = StreamMonitor::new(&rel, 1);
        let canonical = SetOd::compatibility(AttrSet::new(), AttrId(0), AttrId(1));
        let misordered = SetOd::Compatibility {
            context: AttrSet::new(),
            a: AttrId(1),
            b: AttrId(0),
        };
        let first = monitor.monitor_statement(&canonical);
        let second = monitor.monitor_statement(&misordered);
        assert_eq!(first, second, "misordered pair shares the ledger");
        assert_eq!(monitor.ledgers().len(), 1);
        assert_eq!(monitor.statement_removal(&misordered), Some(1));
    }

    #[test]
    fn compaction_drops_dead_state_and_keeps_verdicts() {
        let rel = rel_from(&[&[1, 10], &[1, 11], &[2, 20], &[3, 30]]);
        let mut monitor = StreamMonitor::new(&rel, 1);
        let od = OrderDependency::new(vec![AttrId(0)], vec![AttrId(1)]);
        let stmts = monitor.monitor_od(&od);
        let before = monitor.od_removal(&od).unwrap();
        assert_eq!(before, 1, "rows 0 and 1 split on c1");

        // Churn: delete two rows, insert replacements, then compact.
        monitor
            .apply_delta(
                &DeltaBatch::new()
                    .delete(2)
                    .delete(3)
                    .insert(rel.tuple(2).clone()),
            )
            .unwrap();
        assert_eq!(
            monitor.total_rows(),
            5,
            "dead ids retained before compaction"
        );
        let deltas_before = monitor.stats.deltas_applied;
        let compacted = monitor.compact();
        assert_eq!(compacted.dead_ids_reclaimed, 2);
        assert!(compacted.bytes_freed > 0, "dead rows must free bytes");
        assert!(
            compacted.rebuild_bytes_freed > 0,
            "dropping dead ids' code slots must shrink the rebuilt stores"
        );
        assert!(compacted.rebuild_bytes_freed <= compacted.bytes_freed);
        assert_eq!(monitor.total_rows(), monitor.alive_rows());
        assert_eq!(monitor.alive_rows(), 3);
        assert_eq!(monitor.stats.deltas_applied, deltas_before, "stats survive");
        assert_eq!(monitor.stats.compactions, 1);
        // Verdicts are unchanged and maintenance keeps working on fresh ids.
        assert_eq!(monitor.od_removal(&od), Some(before));
        assert_ledgers_match_oracle(&monitor, &stmts);
        monitor
            .apply_delta(&DeltaBatch::new().delete(0).insert(rel.tuple(3).clone()))
            .unwrap();
        assert_ledgers_match_oracle(&monitor, &stmts);
    }

    #[test]
    fn threaded_patching_matches_serial() {
        // Enough rows in one class to cross the parallel threshold, split
        // across several ledgers.
        let rows: Vec<Vec<i64>> = (0..9_000i64).map(|i| vec![0, i, (i * 7) % 100]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let rel = rel_from(&refs);
        let stmts = vec![
            SetOd::compatibility(AttrSet::new(), AttrId(1), AttrId(2)),
            SetOd::constancy(AttrSet::new(), AttrId(2)),
            SetOd::constancy([AttrId(0)].into_iter().collect(), AttrId(1)),
        ];
        let mut serial = StreamMonitor::new(&rel, 1);
        let mut threaded = StreamMonitor::new(&rel, 4);
        for stmt in &stmts {
            serial.monitor_statement(stmt);
            threaded.monitor_statement(stmt);
        }
        let batch = DeltaBatch {
            inserts: (0..50i64)
                .map(|i| vec![Value::Int(0), Value::Int(10_000 + i), Value::Int(i)])
                .collect(),
            deletes: (0..50).collect(),
        };
        serial.apply_delta(&batch).unwrap();
        threaded.apply_delta(&batch).unwrap();
        for stmt in &stmts {
            assert_eq!(
                serial.statement_removal(stmt),
                threaded.statement_removal(stmt),
                "thread count must not change counts on {stmt}"
            );
        }
    }
}
