//! Crate-internal observability shim over [`od_obs`].
//!
//! With the `obs` feature (default) every hook forwards to the ambient
//! recorder; without it the hooks are inlined empty functions and a unit span
//! guard, so the instrumented hot paths compile down to exactly the
//! uninstrumented code — the zero-cost disable CI proves by building
//! `--no-default-features --features decider`.
//!
//! All recording happens on the orchestrating thread: worker threads hand
//! their results back (batched verdicts, atomic effort counters) and the
//! caller flushes aggregate counts, so scoped registries capture a traversal
//! completely and thread count never changes what is recorded.

#[cfg(feature = "obs")]
mod hooks {
    /// RAII phase-span guard (records its duration on drop).
    pub type Span = od_obs::SpanGuard;

    #[inline]
    pub fn span(name: &str) -> Span {
        od_obs::span(name)
    }

    /// Span named `level<k>` (allocates only when metrics are compiled in).
    #[inline]
    pub fn level_span(level: usize) -> Span {
        od_obs::span(format!("level{level}"))
    }

    #[inline]
    pub fn add(name: &str, delta: u64) {
        od_obs::add(name, delta);
    }

    #[inline]
    pub fn gauge_max(name: &str, value: u64) {
        od_obs::gauge_max(name, value);
    }

    #[inline]
    pub fn record(name: &str, value: u64) {
        od_obs::record(name, value);
    }
}

#[cfg(not(feature = "obs"))]
mod hooks {
    /// Unit span guard: no state, no `Drop`.
    pub struct Span;

    #[inline(always)]
    pub fn span(_name: &str) -> Span {
        Span
    }

    #[inline(always)]
    pub fn level_span(_level: usize) -> Span {
        Span
    }

    #[inline(always)]
    pub fn add(_name: &str, _delta: u64) {}

    #[inline(always)]
    pub fn gauge_max(_name: &str, _value: u64) {}

    #[inline(always)]
    pub fn record(_name: &str, _value: u64) {}
}

pub(crate) use hooks::*;
