//! The demand-driven validation engine behind `od-discovery`'s set-based path.
//!
//! Where the [`crate::lattice`] traversal profiles the whole canonical space up
//! front, [`SetBasedEngine`] answers individual `X ↦ Y` questions: the OD is
//! translated to its canonical statements ([`crate::canonical::translate_od`]),
//! each statement is resolved through a memo table, the set-based axioms
//! (context monotonicity, constancy-subsumes-compatibility), and finally — only
//! when nothing cheaper answers — a partition scan.  Statements are shared
//! across candidate ODs, so a discovery run validates each distinct statement
//! against the data at most once, instead of re-sorting the relation per
//! candidate as the naive engine does.
//!
//! Every resolution produces a [`Verdict`] — the statement's minimal
//! tuple-removal count plus sampled violating pairs — so the same engine
//! serves exact validation (`budget == 0`) and approximate `g3`-thresholded
//! validation (`budget == ⌊ε·n⌋`).  The axiom shortcuts stay sound under a
//! budget because statement satisfaction is **monotone under both context
//! growth and tuple removal**: a removal set that repairs a statement at a
//! context repairs it at every superset context, so an inherited verdict
//! carries its premise's removal count as an upper bound.

use crate::canonical::{translate_od, SetOd};
use crate::lattice::SetBasedDiscovery;
use crate::partition::PartitionCache;
use crate::stream::StreamMonitor;
use crate::validate::{self, Verdict};
use od_core::{OrderDependency, Relation};
use std::collections::HashMap;

/// Counters describing how an engine resolved its statement checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// ODs translated and checked.
    pub ods_checked: usize,
    /// Canonical statements examined (before dedup/memo).
    pub statement_checks: usize,
    /// Statements answered from the memo table.
    pub memo_hits: usize,
    /// Statements answered by the set-based axioms.
    pub axiom_hits: usize,
    /// Statements true on every instance (no data, no memo needed).
    pub trivial_hits: usize,
    /// Statements validated against the data (partition scans).
    pub data_validations: usize,
}

/// Memoizing, partition-backed OD validator over one relation instance.
pub struct SetBasedEngine<'r> {
    cache: PartitionCache<'r>,
    verdicts: HashMap<SetOd, Verdict>,
    threads: usize,
    budget: usize,
    /// Resolution counters.
    pub stats: EngineStats,
}

impl<'r> SetBasedEngine<'r> {
    /// A serial, exact engine over the relation.
    pub fn new(rel: &'r Relation) -> Self {
        Self::with_threads(rel, 1)
    }

    /// An exact engine that shards large partition scans over `threads`
    /// threads.
    pub fn with_threads(rel: &'r Relation, threads: usize) -> Self {
        Self::with_budget(rel, threads, 0)
    }

    /// An engine accepting statements whose `g3` removal count stays within
    /// `budget` tuples (`⌊ε·n⌋`; see [`validate::error_budget`]).  Budget 0 is
    /// exact validation.
    pub fn with_budget(rel: &'r Relation, threads: usize, budget: usize) -> Self {
        SetBasedEngine {
            cache: PartitionCache::new(rel),
            verdicts: HashMap::new(),
            threads: threads.max(1),
            budget,
            stats: EngineStats::default(),
        }
    }

    /// The relation being profiled.
    pub fn relation(&self) -> &'r Relation {
        self.cache.relation()
    }

    /// The tuple-removal budget statements are accepted under.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Statements validated against the data so far.
    pub fn data_validations(&self) -> usize {
        self.stats.data_validations
    }

    /// Does `X ↦ Y` hold on the instance within the error budget?  With budget
    /// 0 this is semantically identical to [`od_core::check::od_holds`];
    /// resolved through canonical statements.
    pub fn od_holds(&mut self, od: &OrderDependency) -> bool {
        self.od_verdict(od).within(self.budget)
    }

    /// The evidence-carrying form of [`Self::od_holds`]: statement verdicts
    /// joined with [`Verdict::join_max`], so `removal_count` is the worst
    /// statement's `g3` numerator (the approximate-discovery acceptance
    /// measure and a lower bound on the OD-level `g3`).  Short-circuits on the
    /// first statement exceeding the budget.
    pub fn od_verdict(&mut self, od: &OrderDependency) -> Verdict {
        self.stats.ods_checked += 1;
        let mut combined = Verdict::clean();
        for stmt in translate_od(od) {
            let verdict = self.statement_verdict(&stmt);
            let rejected = !verdict.within(self.budget);
            combined.join_max(&verdict);
            if rejected {
                break;
            }
        }
        combined
    }

    /// Does a single canonical statement hold within the error budget?
    pub fn statement_holds(&mut self, stmt: &SetOd) -> bool {
        let budget = self.budget;
        self.statement_verdict(stmt).within(budget)
    }

    /// Resolve one canonical statement to its violation evidence.
    ///
    /// The returned removal count is exact for scanned statements that pass
    /// the budget, a lower bound for rejected ones (`exceeded`), and an upper
    /// bound for statements answered by the axioms (monotonicity can only
    /// shrink the removal set).
    pub fn statement_verdict(&mut self, stmt: &SetOd) -> Verdict {
        if let Some(normalized) = stmt.normalized() {
            return self.statement_verdict(&normalized);
        }
        self.stats.statement_checks += 1;
        if stmt.is_trivial() {
            self.stats.trivial_hits += 1;
            return Verdict::clean();
        }
        if let Some(v) = self.verdicts.get(stmt) {
            self.stats.memo_hits += 1;
            return v.clone();
        }
        if let Some(premise) = self.inherited(stmt) {
            self.stats.axiom_hits += 1;
            self.verdicts.insert(*stmt, premise.clone());
            return premise;
        }
        self.stats.data_validations += 1;
        let v = validate::statement_verdict(&mut self.cache, stmt, self.threads, self.budget);
        self.verdicts.insert(*stmt, v.clone());
        v
    }

    /// Set-based axioms over the memo table: a statement holds (within budget)
    /// if it is known to hold at an immediate sub-context (context
    /// monotonicity), or — for a compatibility — if either attribute is known
    /// constant in this context.  Returns a verdict carrying the premise's
    /// removal count (an upper bound on the statement's own) and **no**
    /// witnesses or class counts — the premise's violating pairs witness the
    /// premise, not necessarily this statement, so they must not be attached
    /// to it.
    fn inherited(&self, stmt: &SetOd) -> Option<Verdict> {
        let upper_bound = |v: &Verdict| Verdict {
            removal_count: v.removal_count,
            exceeded: false,
            violating_pairs: Vec::new(),
            classes_scanned: 0,
        };
        let context = stmt.context();
        for drop in context.iter() {
            let sub = context.without(drop);
            let sub_stmt = match stmt {
                SetOd::Constancy { attr, .. } => SetOd::constancy(sub, *attr),
                SetOd::Compatibility { a, b, .. } => SetOd::compatibility(sub, *a, *b),
            };
            if let Some(v) = self.verdicts.get(&sub_stmt) {
                if v.within(self.budget) {
                    return Some(upper_bound(v));
                }
            }
        }
        if let SetOd::Compatibility { context, a, b } = stmt {
            for attr in [*a, *b] {
                if let Some(v) = self.verdicts.get(&SetOd::constancy(*context, attr)) {
                    if v.within(self.budget) {
                        return Some(upper_bound(v));
                    }
                }
            }
        }
        None
    }

    /// Seed the memo table from a lattice profile over the **same relation**:
    /// every minimal statement's exact verdict becomes a memo entry, so
    /// demand-driven queries outside the profile's context bound inherit from
    /// the profiled statements instead of re-scanning them.  Returns the
    /// number of entries adopted.
    ///
    /// Profiles are only adopted when their tuple-removal budget matches the
    /// engine's — a verdict accepted under a different ε would poison the memo
    /// (its `within` decision is budget-relative).  Already-memoized
    /// statements keep their existing verdicts.
    pub fn adopt_profile(&mut self, profile: &SetBasedDiscovery) -> usize {
        if profile.budget() != self.budget {
            return 0;
        }
        let mut adopted = 0;
        for (stmt, verdict) in profile
            .minimal_statements()
            .iter()
            .zip(profile.verdicts().iter())
        {
            self.verdicts.entry(*stmt).or_insert_with(|| {
                adopted += 1;
                verdict.clone()
            });
        }
        adopted
    }

    /// Promote this snapshot engine into a streaming [`StreamMonitor`] over
    /// the same data: every canonical statement the engine has memoized
    /// becomes a monitored ledger, after which tuple-level
    /// [`DeltaBatch`](crate::stream::DeltaBatch)es keep the verdicts current
    /// in `O(touched classes)` per delta.
    ///
    /// The engine itself cannot apply deltas in place — it borrows an
    /// immutable relation *snapshot*, and its memoized verdicts may be
    /// budget-clipped lower bounds or axiom-inherited upper bounds, neither of
    /// which can seed an exact ledger.  The monitor therefore copies the rows
    /// and performs one exact scan per monitored statement's context; that
    /// one-time cost buys re-scan-free maintenance from then on.
    pub fn into_monitor(self) -> StreamMonitor {
        let mut monitor = StreamMonitor::new(self.cache.relation(), self.threads);
        let mut stmts: Vec<SetOd> = self.verdicts.into_keys().collect();
        stmts.sort();
        for stmt in &stmts {
            monitor.monitor_statement(stmt);
        }
        monitor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::check::od_holds;
    use od_core::{fixtures, AttrId, AttrList};

    #[test]
    fn engine_agrees_with_the_sort_based_checker_on_the_fixtures() {
        for rel in [fixtures::example_5_taxes(), fixtures::figure_1_relation()] {
            let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
            let mut engine = SetBasedEngine::new(&rel);
            let lists = od_infer::witness::enumerate_lists(&universe, 2);
            for lhs in &lists {
                for rhs in &lists {
                    let od = OrderDependency::new(lhs.clone(), rhs.clone());
                    assert_eq!(
                        engine.od_holds(&od),
                        od_holds(&rel, &od),
                        "engine disagreement on {od}"
                    );
                }
            }
        }
    }

    #[test]
    fn statements_are_validated_against_data_at_most_once() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let payable = s.attr_by_name("payable").unwrap();
        let mut engine = SetBasedEngine::new(&rel);
        assert!(engine.od_holds(&OrderDependency::new(vec![income], vec![bracket])));
        let after_first = engine.data_validations();
        assert!(after_first > 0);
        // Re-checking the same OD touches no data.
        assert!(engine.od_holds(&OrderDependency::new(vec![income], vec![bracket])));
        assert_eq!(engine.data_validations(), after_first);
        // A wider OD sharing a side reuses the shared statements.
        let before = engine.data_validations();
        assert!(engine.od_holds(&OrderDependency::new(vec![income], vec![bracket, payable])));
        let fresh = engine.data_validations() - before;
        assert!(
            fresh <= 2,
            "only the new statements may touch data, got {fresh}"
        );
        assert!(engine.stats.memo_hits > 0);
    }

    #[test]
    fn axiom_inheritance_answers_without_scanning() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let payable = s.attr_by_name("payable").unwrap();
        let mut engine = SetBasedEngine::new(&rel);
        // Establish {}: income ~ bracket.
        let empty: od_core::AttrSet = Default::default();
        assert!(engine.statement_holds(&SetOd::compatibility(empty, income, bracket)));
        let before = engine.data_validations();
        // The same pair in a larger context follows by monotonicity.
        let wider: od_core::AttrSet = [payable].into_iter().collect();
        assert!(engine.statement_holds(&SetOd::compatibility(wider, income, bracket)));
        assert_eq!(engine.data_validations(), before);
        assert!(engine.stats.axiom_hits >= 1);
    }

    #[test]
    fn misordered_pairs_share_one_memo_entry() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let mut engine = SetBasedEngine::new(&rel);
        let empty: od_core::AttrSet = Default::default();
        let canonical = SetOd::compatibility(empty, income, bracket);
        let misordered = SetOd::Compatibility {
            context: empty,
            a: income.max(bracket),
            b: income.min(bracket),
        };
        assert!(engine.statement_holds(&canonical));
        let scans = engine.data_validations();
        assert!(engine.statement_holds(&misordered));
        assert_eq!(
            engine.data_validations(),
            scans,
            "misordered form must hit the memo"
        );
    }

    #[test]
    fn trivial_ods_cost_nothing() {
        let rel = fixtures::example_5_taxes();
        let mut engine = SetBasedEngine::new(&rel);
        let a = AttrId(0);
        let b = AttrId(1);
        assert!(engine.od_holds(&OrderDependency::new(vec![a, b], vec![a])));
        assert!(engine.od_holds(&OrderDependency::new(vec![a], AttrList::empty())));
        assert_eq!(engine.data_validations(), 0);
    }

    #[test]
    fn threaded_engine_matches_serial_verdicts() {
        let rel = fixtures::figure_1_relation();
        let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
        let mut serial = SetBasedEngine::new(&rel);
        let mut threaded = SetBasedEngine::with_threads(&rel, 4);
        for od in od_infer::witness::enumerate_ods(&universe[..4], 2) {
            assert_eq!(serial.od_holds(&od), threaded.od_holds(&od));
        }
    }

    #[test]
    fn inherited_verdicts_carry_no_witnesses() {
        // Two rows disagreeing on A: {}: [] ↦ A fails with removal 1 and a
        // witness pair.  Under a budget of 1 it is accepted, so {B}: [] ↦ A is
        // answered by monotonicity — its verdict must carry the premise's
        // removal bound but NOT the premise's violating pairs (rows 0 and 1
        // land in different B-classes, so the pair does not violate the
        // inherited statement).
        let mut schema = od_core::Schema::new("t");
        let a = schema.add_attr("A");
        let b = schema.add_attr("B");
        let rel = od_core::Relation::from_rows(
            schema,
            vec![
                vec![od_core::Value::Int(0), od_core::Value::Int(0)],
                vec![od_core::Value::Int(1), od_core::Value::Int(1)],
            ],
        )
        .unwrap();
        let mut engine = SetBasedEngine::with_budget(&rel, 1, 1);
        let empty: od_core::AttrSet = Default::default();
        let premise = engine.statement_verdict(&SetOd::constancy(empty, a));
        assert_eq!(premise.removal_count, 1);
        assert!(!premise.violating_pairs.is_empty());
        let wider: od_core::AttrSet = [b].into_iter().collect();
        let inherited = engine.statement_verdict(&SetOd::constancy(wider, a));
        assert!(engine.stats.axiom_hits >= 1, "must resolve by inheritance");
        assert_eq!(inherited.removal_count, 1, "premise bound is kept");
        assert!(
            inherited.violating_pairs.is_empty(),
            "premise witnesses must not be attached to the inherited statement"
        );
        assert_eq!(inherited.classes_scanned, 0);
    }

    #[test]
    fn adopted_profiles_answer_without_scanning() {
        let rel = fixtures::example_5_taxes();
        let profile = crate::lattice::discover_statements(&rel, &Default::default());
        let mut engine = SetBasedEngine::new(&rel);
        let adopted = engine.adopt_profile(&profile);
        assert!(adopted > 0);
        // Every profiled minimal statement is now a memo hit.
        for stmt in profile.minimal_statements() {
            assert!(engine.statement_holds(stmt));
        }
        assert_eq!(
            engine.data_validations(),
            0,
            "memo entries answer scan-free"
        );
        assert!(engine.stats.memo_hits >= adopted);
        // A budget-mismatched profile is refused — its `within` decisions are
        // relative to a different ε.
        let mut budgeted = SetBasedEngine::with_budget(&rel, 1, 3);
        assert_eq!(budgeted.adopt_profile(&profile), 0);
    }

    #[test]
    fn engine_promotes_into_a_live_monitor() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema().clone();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let od = OrderDependency::new(vec![income], vec![bracket]);
        let mut engine = SetBasedEngine::new(&rel);
        assert!(engine.od_holds(&od));
        let mut monitor = engine.into_monitor();
        // Everything the engine memoized is now a live ledger.
        assert_eq!(monitor.od_removal(&od), Some(0));
        // A swap insert flips the live verdict without any engine rebuild.
        let mut bad = rel.tuple(0).clone();
        bad[income.index()] = od_core::Value::Int(9_999_999);
        bad[bracket.index()] = od_core::Value::Int(-1);
        monitor
            .apply_delta(&crate::stream::DeltaBatch::new().insert(bad))
            .unwrap();
        assert!(monitor.od_removal(&od).unwrap() > 0);
    }

    #[test]
    fn budgeted_engine_accepts_near_misses() {
        // bracket ↦ income fails on the taxes fixture, but only a few tuples
        // stand in the way; a full budget accepts everything.
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let od = OrderDependency::new(vec![bracket], vec![income]);
        let mut exact = SetBasedEngine::new(&rel);
        assert!(!exact.od_holds(&od));
        let exact_removal = {
            let mut unbounded = SetBasedEngine::with_budget(&rel, 1, rel.len());
            unbounded.od_verdict(&od).removal_count
        };
        assert!(exact_removal > 0 && exact_removal < rel.len());
        // Budget exactly at the removal count accepts; one less rejects.
        let mut at = SetBasedEngine::with_budget(&rel, 1, exact_removal);
        assert!(at.od_holds(&od));
        let mut under = SetBasedEngine::with_budget(&rel, 1, exact_removal - 1);
        assert!(!under.od_holds(&od));
        // Evidence carries witnesses for the rejected OD.
        let mut again = SetBasedEngine::new(&rel);
        let v = again.od_verdict(&od);
        assert!(!v.violating_pairs.is_empty());
    }
}
