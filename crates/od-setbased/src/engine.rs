//! The demand-driven validation engine behind `od-discovery`'s set-based path.
//!
//! Where the [`crate::lattice`] traversal profiles the whole canonical space up
//! front, [`SetBasedEngine`] answers individual `X ↦ Y` questions: the OD is
//! translated to its canonical statements ([`crate::canonical::translate_od`]),
//! each statement is resolved through a memo table, the set-based axioms
//! (context monotonicity, constancy-subsumes-compatibility), and finally — only
//! when nothing cheaper answers — a partition scan.  Statements are shared
//! across candidate ODs, so a discovery run validates each distinct statement
//! against the data at most once, instead of re-sorting the relation per
//! candidate as the naive engine does.

use crate::canonical::{translate_od, SetOd};
use crate::partition::PartitionCache;
use crate::validate;
use od_core::{OrderDependency, Relation};
use std::collections::HashMap;

/// Counters describing how an engine resolved its statement checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// ODs translated and checked.
    pub ods_checked: usize,
    /// Canonical statements examined (before dedup/memo).
    pub statement_checks: usize,
    /// Statements answered from the memo table.
    pub memo_hits: usize,
    /// Statements answered by the set-based axioms.
    pub axiom_hits: usize,
    /// Statements true on every instance (no data, no memo needed).
    pub trivial_hits: usize,
    /// Statements validated against the data (partition scans).
    pub data_validations: usize,
}

/// Memoizing, partition-backed OD validator over one relation instance.
pub struct SetBasedEngine<'r> {
    cache: PartitionCache<'r>,
    verdicts: HashMap<SetOd, bool>,
    threads: usize,
    /// Resolution counters.
    pub stats: EngineStats,
}

impl<'r> SetBasedEngine<'r> {
    /// A serial engine over the relation.
    pub fn new(rel: &'r Relation) -> Self {
        Self::with_threads(rel, 1)
    }

    /// An engine that shards large partition scans over `threads` threads.
    pub fn with_threads(rel: &'r Relation, threads: usize) -> Self {
        SetBasedEngine {
            cache: PartitionCache::new(rel),
            verdicts: HashMap::new(),
            threads: threads.max(1),
            stats: EngineStats::default(),
        }
    }

    /// The relation being profiled.
    pub fn relation(&self) -> &'r Relation {
        self.cache.relation()
    }

    /// Statements validated against the data so far.
    pub fn data_validations(&self) -> usize {
        self.stats.data_validations
    }

    /// Does `X ↦ Y` hold on the instance?  Semantically identical to
    /// [`od_core::check::od_holds`]; resolved through canonical statements.
    pub fn od_holds(&mut self, od: &OrderDependency) -> bool {
        self.stats.ods_checked += 1;
        translate_od(od)
            .iter()
            .all(|stmt| self.statement_holds(stmt))
    }

    /// Does a single canonical statement hold on the instance?
    pub fn statement_holds(&mut self, stmt: &SetOd) -> bool {
        if let Some(normalized) = stmt.normalized() {
            return self.statement_holds(&normalized);
        }
        self.stats.statement_checks += 1;
        if stmt.is_trivial() {
            self.stats.trivial_hits += 1;
            return true;
        }
        if let Some(&v) = self.verdicts.get(stmt) {
            self.stats.memo_hits += 1;
            return v;
        }
        if self.inherited(stmt) {
            self.stats.axiom_hits += 1;
            self.verdicts.insert(stmt.clone(), true);
            return true;
        }
        let v = self.validate(stmt);
        self.verdicts.insert(stmt.clone(), v);
        v
    }

    /// Set-based axioms over the memo table: a statement holds if it is known
    /// to hold at an immediate sub-context (context monotonicity), or — for a
    /// compatibility — if either attribute is known constant in this context.
    fn inherited(&self, stmt: &SetOd) -> bool {
        let context = stmt.context();
        for drop in context.iter() {
            let mut sub = context.clone();
            sub.remove(drop);
            let sub_stmt = match stmt {
                SetOd::Constancy { attr, .. } => SetOd::constancy(sub, *attr),
                SetOd::Compatibility { a, b, .. } => SetOd::compatibility(sub, *a, *b),
            };
            if self.verdicts.get(&sub_stmt) == Some(&true) {
                return true;
            }
        }
        if let SetOd::Compatibility { context, a, b } = stmt {
            for attr in [*a, *b] {
                if self.verdicts.get(&SetOd::constancy(context.clone(), attr)) == Some(&true) {
                    return true;
                }
            }
        }
        false
    }

    /// Partition-scan a statement.
    fn validate(&mut self, stmt: &SetOd) -> bool {
        self.stats.data_validations += 1;
        validate::statement_scan(&mut self.cache, stmt, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::check::od_holds;
    use od_core::{fixtures, AttrId, AttrList};

    #[test]
    fn engine_agrees_with_the_sort_based_checker_on_the_fixtures() {
        for rel in [fixtures::example_5_taxes(), fixtures::figure_1_relation()] {
            let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
            let mut engine = SetBasedEngine::new(&rel);
            let lists = od_infer::witness::enumerate_lists(&universe, 2);
            for lhs in &lists {
                for rhs in &lists {
                    let od = OrderDependency::new(lhs.clone(), rhs.clone());
                    assert_eq!(
                        engine.od_holds(&od),
                        od_holds(&rel, &od),
                        "engine disagreement on {od}"
                    );
                }
            }
        }
    }

    #[test]
    fn statements_are_validated_against_data_at_most_once() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let payable = s.attr_by_name("payable").unwrap();
        let mut engine = SetBasedEngine::new(&rel);
        assert!(engine.od_holds(&OrderDependency::new(vec![income], vec![bracket])));
        let after_first = engine.data_validations();
        assert!(after_first > 0);
        // Re-checking the same OD touches no data.
        assert!(engine.od_holds(&OrderDependency::new(vec![income], vec![bracket])));
        assert_eq!(engine.data_validations(), after_first);
        // A wider OD sharing a side reuses the shared statements.
        let before = engine.data_validations();
        assert!(engine.od_holds(&OrderDependency::new(vec![income], vec![bracket, payable])));
        let fresh = engine.data_validations() - before;
        assert!(
            fresh <= 2,
            "only the new statements may touch data, got {fresh}"
        );
        assert!(engine.stats.memo_hits > 0);
    }

    #[test]
    fn axiom_inheritance_answers_without_scanning() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let payable = s.attr_by_name("payable").unwrap();
        let mut engine = SetBasedEngine::new(&rel);
        // Establish {}: income ~ bracket.
        let empty: od_core::AttrSet = Default::default();
        assert!(engine.statement_holds(&SetOd::compatibility(empty, income, bracket)));
        let before = engine.data_validations();
        // The same pair in a larger context follows by monotonicity.
        let wider: od_core::AttrSet = [payable].into_iter().collect();
        assert!(engine.statement_holds(&SetOd::compatibility(wider, income, bracket)));
        assert_eq!(engine.data_validations(), before);
        assert!(engine.stats.axiom_hits >= 1);
    }

    #[test]
    fn misordered_pairs_share_one_memo_entry() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let mut engine = SetBasedEngine::new(&rel);
        let empty: od_core::AttrSet = Default::default();
        let canonical = SetOd::compatibility(empty.clone(), income, bracket);
        let misordered = SetOd::Compatibility {
            context: empty,
            a: income.max(bracket),
            b: income.min(bracket),
        };
        assert!(engine.statement_holds(&canonical));
        let scans = engine.data_validations();
        assert!(engine.statement_holds(&misordered));
        assert_eq!(
            engine.data_validations(),
            scans,
            "misordered form must hit the memo"
        );
    }

    #[test]
    fn trivial_ods_cost_nothing() {
        let rel = fixtures::example_5_taxes();
        let mut engine = SetBasedEngine::new(&rel);
        let a = AttrId(0);
        let b = AttrId(1);
        assert!(engine.od_holds(&OrderDependency::new(vec![a, b], vec![a])));
        assert!(engine.od_holds(&OrderDependency::new(vec![a], AttrList::empty())));
        assert_eq!(engine.data_validations(), 0);
    }

    #[test]
    fn threaded_engine_matches_serial_verdicts() {
        let rel = fixtures::figure_1_relation();
        let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
        let mut serial = SetBasedEngine::new(&rel);
        let mut threaded = SetBasedEngine::with_threads(&rel, 4);
        for od in od_infer::witness::enumerate_ods(&universe[..4], 2) {
            assert_eq!(serial.od_holds(&od), threaded.od_holds(&od));
        }
    }
}
