//! # od-setbased — partition-powered set-based OD discovery
//!
//! The paper closes by naming OD discovery as the key open problem; the
//! follow-up FASTOD line (*Effective and Complete Discovery of Order
//! Dependencies via Set-based Axiomatization*; see PAPERS.md) showed how to
//! make it tractable.  This crate implements that design over the workspace's
//! core types:
//!
//! | Module | Contents |
//! |---|---|
//! | [`partition`] | CSR stripped partitions `Π_X` over tuple ids, memoized radix products over packed class-id keys, sorted partitions |
//! | [`canonical`] | the set-based canonical statements and the exact list ↔ set translation |
//! | [`validate`]  | evidence-returning ([`Verdict`]) statement validation over rank codes, exact per-class `g3` removal counts |
//! | [`lattice`]   | node-based level-wise traversal on bitset candidate sets: mask propagation, key-based node deletion, batched per-level validation and decider rounds, partition eviction, `g3` thresholds |
//! | [`engine`]    | the memoizing demand-driven validator `od-discovery` uses as its default engine |
//! | [`parallel`]  | sharding across threads: partition classes (atomic error budget), statements per level, and contexts per level expansion |
//! | [`stream`]    | incremental monitoring: delta-maintained live partitions and per-statement [`VerdictLedger`]s |
//! | [`wire`]      | canonical byte codecs for [`SetOd`]s and [`Verdict`]s, shared by od-server and the dist workers |
//! | [`dist`]      | multi-process traversal: a coordinator shards contexts over `--workers N` pipe-connected worker processes, bit-identical to the threaded engine |
//!
//! ## The stripped-partition model, in one paragraph
//!
//! For an attribute set `X`, the partition `Π_X` groups tuple ids into classes
//! agreeing on every attribute of `X`; **stripping** drops singleton classes,
//! which can never witness a split or a swap.  Every validator works on
//! order-preserving integer **codes** per column, so equality is integer
//! equality and order is integer order.  A statement's `g3` removal count —
//! the minimal number of tuples to delete so it holds — decomposes as a sum of
//! independent per-class minima (`|class| − max value-group` for constancy,
//! `|class| − longest non-decreasing B-subsequence` for compatibility).  That
//! additivity powers three layers: budget short-circuiting scans
//! ([`validate`]), thread-sharded scans with one shared atomic counter
//! ([`parallel`]), and delta maintenance that re-derives only the classes a
//! tuple insert/delete touched ([`stream`]).
//!
//! The load-bearing fact (spelled out in [`canonical`]'s docs and exercised by
//! the differential proptests in `od-discovery`): a list OD `X ↦ Y` holds iff
//! all of its canonical **constancy** statements (`set(X) : [] ↦ B_j` — no
//! splits) and **compatibility** statements (`prefix context : A_i ~ B_j` — no
//! swaps) hold.  Canonical statements are shared across candidate ODs and
//! validated with partition scans, so a discovery run touches the data once
//! per distinct statement instead of once per candidate re-sort.
//!
//! ## Quick example
//!
//! ```
//! use od_core::fixtures;
//! use od_core::OrderDependency;
//! use od_setbased::{LatticeConfig, SetBasedEngine};
//!
//! let rel = fixtures::example_5_taxes();
//! let s = rel.schema();
//! let income = s.attr_by_name("income").unwrap();
//! let bracket = s.attr_by_name("bracket").unwrap();
//!
//! // Demand-driven: ask about one OD.
//! let mut engine = SetBasedEngine::new(&rel);
//! assert!(engine.od_holds(&OrderDependency::new(vec![income], vec![bracket])));
//!
//! // Bulk: profile every canonical statement up to the default context
//! // bound (width 4 on bitset attribute sets).
//! let profile = od_setbased::discover_statements(&rel, &LatticeConfig::default());
//! assert!(!profile.minimal_statements().is_empty());
//! ```
//!
//! ## Feature flags
//!
//! * `decider` *(default)* — pulls in `od-infer` for rule-3 implication
//!   pruning (one batched [`od_infer::DeciderBatch`] round-trip per lattice
//!   level).  Without it the bitset core — partitions, canonical statements,
//!   lattice, engine, streaming — builds standalone on `od-core` alone.
//! * `obs` *(default)* — pulls in `od-obs` and records phase spans
//!   (`discovery/level<k>/{expand,refine,validate,decider}`,
//!   `stream/batch/{splice,patch}`), deterministic counters (nodes, cache
//!   hits/misses/evictions, rows patched, LIS invocations, …) and histograms
//!   on the ambient recorder.  Without it every hook compiles to a no-op, so
//!   the hot paths are exactly the uninstrumented code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod dist;
pub mod engine;
pub mod lattice;
mod obs;
pub mod parallel;
pub mod partition;
pub mod stream;
pub mod validate;
pub mod wire;

pub use canonical::{compatibility_as_ods, constancy_as_od, translate_od, SetOd};
pub use dist::{
    discover_statements_dist, maybe_run_worker, DistError, DistStats, WorkerLauncher,
};
pub use engine::{EngineStats, SetBasedEngine};
pub use lattice::{
    discover_statements, try_discover_statements, LatticeConfig, LatticeStats, LevelStats,
    SetBasedDiscovery,
};
pub use partition::{
    ClassCodes, ColCodes, PartitionCache, RefineScratch, SortedPartition, StrippedPartition,
    CLASS_SENTINEL,
};
pub use stream::{
    CompactStats, DeltaBatch, DeltaSummary, StreamError, StreamMonitor, StreamStats, TupleId,
    VerdictLedger,
};
pub use validate::{error_budget, od_holds_with_partitions, Verdict, WITNESS_SAMPLE_CAP};
