//! Multi-process lattice traversal: context-sharded discovery over pipes.
//!
//! A coordinator spawns `N` worker processes (by default the current binary
//! re-executed with a hidden `--od-worker` flag; see [`WorkerLauncher`]) and
//! drives the same level-wise traversal as [`crate::lattice`], but with the
//! *data plane* — partition refinement and statement scans — sharded across
//! the workers.  Everything crossing a process boundary is a `u64` mask, a
//! `Copy` statement, or a fixed-width counter, serialized with the canonical
//! [`od_core::wire`] codecs ([`crate::wire`] for statements and verdicts) in
//! length-prefixed frames.
//!
//! ## Shard assignment
//!
//! Contexts are sharded **statically by their minimum attribute**: removing
//! a context's *last* attribute never changes its minimum, so a context's
//! refinement base always lives on the same worker — every level-`k`
//! partition is one incremental product of a level-`k−1` partition that
//! worker already holds, exactly like the single-process cache.  Which
//! *worker* owns each minimum is a deterministic longest-processing-time
//! assignment: attribute `j` (as a minimum) carries weight
//! `Σ_{k=1..max_context} C(arity−1−j, k−1)` — the number of lattice
//! contexts whose minimum is `j` — and the heaviest minima go to the least
//! loaded workers first.  (A plain `min mod N` would hand worker 0 nearly
//! half the lattice: contexts with minimum 0 are the largest group by far.)
//! The empty context is special: its partition is the pass-free full class,
//! which every worker holds, so level-0 scans round-robin across workers
//! instead of serializing on one.  Each worker loads the serialized
//! columnar snapshot ([`Relation::to_bytes`]) once at startup and decodes
//! it **tuple-free** ([`od_core::wire::get_relation_snapshot_columns`] +
//! [`PartitionCache::from_encoding`]): refinement and scans read dense
//! codes only, so no worker ever materializes a row store.
//!
//! ## Frame taxonomy
//!
//! | frame (op) | direction | payload |
//! |---|---|---|
//! | `SnapshotChunk` | C→W | one slice of the columnar relation snapshot |
//! | `SnapshotDone`  | C→W | `g3` error budget; worker decodes + prewarms, replies `Ready` |
//! | `Refine`        | C→W | level + owned context masks → `RefineDone` (per-context class count + heap bytes, radix-pass deltas) |
//! | `ScanConsts`    | C→W | `(context, attr)` constancy scans → `Verdicts` |
//! | `ScanPairs`     | C→W | `(context, a, b)` compatibility scans → `Verdicts` |
//! | `ScanOne`       | C→W | one replay-fallback statement → `Verdicts` (length 1) |
//! | `Evict`         | C→W | drop cached partitions of one size (no reply) |
//! | `Shutdown`      | C→W | clean exit (no reply) |
//!
//! Requests for a phase are written to **all** workers before any reply is
//! read, so the shards compute concurrently; replies are then merged in
//! worker order and scattered back into canonical slot order.
//!
//! ## Merge determinism
//!
//! The coordinator runs the *control plane* — candidate propagation, rule-2
//! subsumption, the per-level decider round, and the sequential replay —
//! unchanged, so verdicts, minimal statements, and every deterministic
//! counter are **bit-identical to the threaded engine on any worker count**:
//!
//! * Scans are sharded whole (each verdict is produced by one serial scan),
//!   exactly like the thread pool, and scattered back to their canonical
//!   slots before the replay consumes them.
//! * Refinements are pure functions of (base partition, attribute codes);
//!   each is performed exactly once by exactly one worker, so summed
//!   radix-pass deltas equal the single-process totals.  Workers prewarm
//!   every attribute's class-code column at startup (reported deltas start
//!   *after* the prewarm) because the single-process cache always builds
//!   those columns for free from cached singleton partitions.
//! * Cache accounting (hits/misses/products/evictions, cached-set counts,
//!   `csr_bytes`) is kept by a coordinator-side **ledger** that mirrors the
//!   single-process cache key-set: partition heap bytes are reported by the
//!   owning worker (bit-identical because refinement buffers are sized
//!   exactly), eviction retains by set size, and the per-attribute
//!   class-code memo grows by each level-≥2 context's last attribute.
//!
//! Frame and byte counts *do* vary with the worker count, so they are
//! returned in [`DistStats`] rather than recorded as deterministic metrics.

use crate::canonical::SetOd;
use crate::lattice::{self, LatticeConfig, SetBasedDiscovery};
use crate::obs;
use crate::parallel::{self, StatementJob};
use crate::partition::{ColCodes, PartitionCache, StrippedPartition};
use crate::validate::{self, Verdict};
use od_core::wire::{self, read_frame, read_frame_opt, write_frame, Reader, MAX_FRAME_LEN};
use od_core::{AttrId, AttrSet, Relation};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::process::{Child, Command, Stdio};
use std::rc::Rc;
use std::sync::mpsc;

// Coordinator→worker request opcodes.
const REQ_SNAPSHOT_CHUNK: u8 = 0;
const REQ_SNAPSHOT_DONE: u8 = 1;
const REQ_REFINE: u8 = 2;
const REQ_SCAN_CONSTS: u8 = 3;
const REQ_SCAN_PAIRS: u8 = 4;
const REQ_SCAN_ONE: u8 = 5;
const REQ_EVICT: u8 = 6;
const REQ_SHUTDOWN: u8 = 7;

// Worker→coordinator response opcodes.
const RESP_READY: u8 = 128;
const RESP_REFINE_DONE: u8 = 129;
const RESP_VERDICTS: u8 = 130;

/// Snapshot frames stay well under [`MAX_FRAME_LEN`] so a 1M-row relation
/// streams in a handful of bounded chunks.
const SNAPSHOT_CHUNK_LEN: usize = 8 << 20;

/// The hidden CLI flag that switches a binary into worker mode (see
/// [`maybe_run_worker`]).
pub const WORKER_FLAG: &str = "--od-worker";

/// A failure of the distributed traversal.  Any path that returns one drops
/// the worker pool, which closes every pipe and force-kills and reaps every
/// child — no zombies, no hangs.
#[derive(Debug)]
pub enum DistError {
    /// A worker process could not be spawned.
    Spawn(io::Error),
    /// A worker pipe failed mid-conversation — the child crashed, was
    /// killed, or closed its pipes early.  `status` carries the exit status
    /// when the child had already terminated.
    Worker {
        /// Index of the failing worker (0-based).
        worker: usize,
        /// The pipe-level failure.
        source: io::Error,
        /// The child's exit status, when it had already exited.
        status: Option<std::process::ExitStatus>,
    },
    /// A worker replied with a frame the protocol does not allow here.
    Protocol {
        /// Index of the offending worker (0-based).
        worker: usize,
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Spawn(e) => write!(f, "failed to spawn worker process: {e}"),
            DistError::Worker {
                worker,
                source,
                status,
            } => {
                write!(f, "worker {worker} pipe failed: {source}")?;
                if let Some(status) = status {
                    write!(f, " (child {status})")?;
                }
                Ok(())
            }
            DistError::Protocol { worker, detail } => {
                write!(f, "worker {worker} protocol violation: {detail}")
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Spawn(e) | DistError::Worker { source: e, .. } => Some(e),
            DistError::Protocol { .. } => None,
        }
    }
}

/// Transport-level telemetry of one distributed run.  Frame and byte counts
/// vary with the worker count, so they are surfaced here (and, by the bench
/// harness, as *non-deterministic* metrics) instead of the deterministic
/// counter section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Worker processes the traversal ran with.
    pub workers: usize,
    /// Frames sent and received across all workers.
    pub frames: u64,
    /// Payload + length-prefix bytes sent and received across all workers.
    pub bytes: u64,
}

/// How the coordinator obtains its worker transports.
enum LaunchMode {
    SelfExec,
    Command { program: String, args: Vec<String> },
    InProcess,
    /// Test-only: hand-built transports, for workers that misbehave at
    /// chosen protocol points (see the crash-coverage tests).
    #[cfg(test)]
    Custom(Box<dyn Fn() -> WorkerHandle + Send + Sync>),
}

/// Factory for worker transports: self-exec processes, explicit commands, or
/// in-process threads over channel pipes.
pub struct WorkerLauncher {
    mode: LaunchMode,
}

impl WorkerLauncher {
    /// Workers are the current executable re-run with [`WORKER_FLAG`].
    ///
    /// The hosting binary **must** call [`maybe_run_worker`] first thing in
    /// `main` — a binary without the hook would run its normal `main` against
    /// a pipe full of frames.
    pub fn self_exec() -> Self {
        WorkerLauncher {
            mode: LaunchMode::SelfExec,
        }
    }

    /// Workers are `program args...`, spawned verbatim — append
    /// [`WORKER_FLAG`] yourself when the target expects it.  This is how the
    /// test suite drives `reproduce`-binary workers, and misbehaving
    /// stand-ins for crash coverage.
    pub fn command(program: impl Into<String>, args: impl IntoIterator<Item = String>) -> Self {
        WorkerLauncher {
            mode: LaunchMode::Command {
                program: program.into(),
                args: args.into_iter().collect(),
            },
        }
    }

    /// Workers are in-process threads speaking the full frame protocol over
    /// in-memory pipes — every codec and merge path exercised, no process
    /// startup cost.  The backbone of the differential test suite.
    pub fn in_process() -> Self {
        WorkerLauncher {
            mode: LaunchMode::InProcess,
        }
    }

    fn launch(&self) -> Result<WorkerHandle, DistError> {
        match &self.mode {
            LaunchMode::SelfExec => {
                let exe = std::env::current_exe().map_err(DistError::Spawn)?;
                spawn_child(Command::new(exe).arg(WORKER_FLAG))
            }
            LaunchMode::Command { program, args } => spawn_child(Command::new(program).args(args)),
            LaunchMode::InProcess => {
                let (to_worker, from_coord) = channel_pipe();
                let (to_coord, from_worker) = channel_pipe();
                let thread = std::thread::spawn(move || {
                    let mut r = from_coord;
                    let mut w = to_coord;
                    if let Err(e) = run_worker(&mut r, &mut w) {
                        // The coordinator sees the dropped pipe; the message
                        // is only for debugging hung tests.
                        eprintln!("in-process od-worker failed: {e}");
                    }
                });
                Ok(WorkerHandle {
                    writer: Some(Box::new(to_worker)),
                    reader: Box::new(from_worker),
                    child: None,
                    thread: Some(thread),
                })
            }
            #[cfg(test)]
            LaunchMode::Custom(f) => Ok(f()),
        }
    }
}

fn spawn_child(cmd: &mut Command) -> Result<WorkerHandle, DistError> {
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(DistError::Spawn)?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    Ok(WorkerHandle {
        writer: Some(Box::new(BufWriter::new(stdin))),
        reader: Box::new(BufReader::new(stdout)),
        child: Some(child),
        thread: None,
    })
}

/// One connected worker: its framed transport plus whatever must be reaped.
///
/// Dropping the handle closes the write side (workers exit cleanly on EOF),
/// then force-kills and reaps a child process or joins a worker thread — so
/// an early coordinator error (including a panic) leaves no zombies behind.
struct WorkerHandle {
    writer: Option<Box<dyn Write + Send>>,
    reader: Box<dyn Read + Send>,
    child: Option<Child>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        drop(self.writer.take());
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory pipes: `Read`/`Write` over an unbounded mpsc channel, so worker
// threads and crash tests can speak the exact frame protocol.
// ---------------------------------------------------------------------------

struct PipeWriter {
    tx: mpsc::Sender<Vec<u8>>,
}

struct PipeReader {
    rx: mpsc::Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

fn channel_pipe() -> (PipeWriter, PipeReader) {
    let (tx, rx) = mpsc::channel();
    (
        PipeWriter { tx },
        PipeReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        },
    )
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "pipe receiver dropped"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // sender dropped: EOF
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Coordinator data plane.
// ---------------------------------------------------------------------------

/// Aggregate cache counters mirrored by the coordinator ledger (the same
/// numbers [`PartitionCache`] exposes at the end of a local run).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PlaneCounters {
    pub hits: usize,
    pub misses: usize,
    pub products: usize,
    pub radix_passes: u64,
    pub product_radix_passes: u64,
}

/// The distributed data plane the lattice loop drives instead of a local
/// [`PartitionCache`]: context-sharded requests out, merged verdicts and
/// mirrored cache accounting back.
pub struct DistPlane {
    workers: Vec<WorkerHandle>,
    budget: usize,
    owner_of_attr: Vec<usize>,
    /// The current level's contexts, aligned with the lattice's node order
    /// (scan slots index into this).
    contexts: Vec<AttrSet>,
    /// Mirror of the single-process cache key-set: cached context → its
    /// partition's heap bytes as reported by the owning worker.
    ledger: HashMap<AttrSet, u64>,
    /// Attributes whose class-code column the single-process cache would
    /// have memoized (each level-≥2 context's last attribute).
    class_code_attrs: AttrSet,
    /// Heap bytes of one memoized class-code column (`n_rows * 4`).
    class_code_bytes: u64,
    counters: PlaneCounters,
    stats: DistStats,
}

/// Deterministic LPT assignment of minimum-attributes to workers.
///
/// Attribute `j`'s weight is the number of lattice contexts whose minimum is
/// `j` — `Σ_{k=1..max_context} C(arity−1−j, k−1)` (saturating; every weight
/// at least 1) — and minima are handed out heaviest-first to the currently
/// least-loaded worker (ties broken toward the lower worker index), so the
/// shard loads balance far better than `min mod N` on the left-heavy
/// lattice.  Pure function of `(arity, workers, max_context)`: every run of
/// every coordinator computes the same map.
fn owners_by_min_attr(arity: usize, workers: usize, max_context: usize) -> Vec<usize> {
    let mut weighted: Vec<(u64, usize)> = (0..arity)
        .map(|j| {
            let m = (arity - 1 - j) as u64;
            let mut weight: u64 = 0;
            let mut binom: u64 = 1; // C(m, k), starting at k = 0
            for k in 0..max_context.min(m as usize + 1) as u64 {
                weight = weight.saturating_add(binom);
                binom = binom.saturating_mul(m - k) / (k + 1);
            }
            (weight.max(1), j)
        })
        .collect();
    weighted.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut load = vec![0u64; workers];
    let mut owner = vec![0usize; arity];
    for (weight, j) in weighted {
        let target = (0..workers)
            .min_by_key(|&w| (load[w], w))
            .expect("at least one worker");
        owner[j] = target;
        load[target] += weight;
    }
    owner
}

impl DistPlane {
    /// Launch `workers` workers, stream them the relation snapshot, and wait
    /// until every one has prewarmed its partition cache.
    pub(crate) fn spawn(
        rel: &Relation,
        workers: usize,
        budget: usize,
        max_context: usize,
        launcher: &WorkerLauncher,
    ) -> Result<Self, DistError> {
        let workers = workers.max(1);
        let mut plane = DistPlane {
            workers: Vec::with_capacity(workers),
            budget,
            owner_of_attr: owners_by_min_attr(rel.schema().arity(), workers, max_context),
            contexts: Vec::new(),
            ledger: HashMap::new(),
            class_code_attrs: AttrSet::new(),
            class_code_bytes: rel.len() as u64 * 4,
            counters: PlaneCounters::default(),
            stats: DistStats {
                workers,
                ..Default::default()
            },
        };
        let _ = plane.budget; // carried for symmetry with the worker side
        for _ in 0..workers {
            let handle = launcher.launch()?;
            plane.workers.push(handle);
        }
        let snapshot = rel.to_bytes();
        for w in 0..workers {
            for chunk in snapshot.chunks(SNAPSHOT_CHUNK_LEN) {
                let mut payload = Vec::with_capacity(chunk.len() + 8);
                wire::put_u8(&mut payload, REQ_SNAPSHOT_CHUNK);
                wire::put_bytes(&mut payload, chunk);
                plane.send(w, &payload)?;
            }
            let mut payload = Vec::new();
            wire::put_u8(&mut payload, REQ_SNAPSHOT_DONE);
            wire::put_u64(&mut payload, budget as u64);
            plane.send(w, &payload)?;
            plane.flush(w)?;
        }
        for w in 0..workers {
            let _s = obs::span(&format!("dist/worker{w}/load"));
            let payload = plane.recv(w)?;
            let mut r = Reader::new(&payload);
            if r.u8().ok() != Some(RESP_READY) {
                return Err(DistError::Protocol {
                    worker: w,
                    detail: "expected Ready after snapshot".into(),
                });
            }
        }
        Ok(plane)
    }

    fn owner_of(&self, ctx: AttrSet) -> usize {
        ctx.first()
            .and_then(|a| self.owner_of_attr.get(a.index()).copied())
            .unwrap_or(0)
    }

    fn send(&mut self, w: usize, payload: &[u8]) -> Result<(), DistError> {
        self.stats.frames += 1;
        self.stats.bytes += payload.len() as u64 + 4;
        let res = {
            let writer = self.workers[w].writer.as_mut().expect("writer open");
            write_frame(writer, payload)
        };
        res.map_err(|e| self.worker_err(w, e))
    }

    fn flush(&mut self, w: usize) -> Result<(), DistError> {
        let res = {
            let writer = self.workers[w].writer.as_mut().expect("writer open");
            writer.flush()
        };
        res.map_err(|e| self.worker_err(w, e))
    }

    fn recv(&mut self, w: usize) -> Result<Vec<u8>, DistError> {
        let res = read_frame(&mut self.workers[w].reader, MAX_FRAME_LEN);
        match res {
            Ok(payload) => {
                self.stats.frames += 1;
                self.stats.bytes += payload.len() as u64 + 4;
                Ok(payload)
            }
            Err(e) => Err(self.worker_err(w, e)),
        }
    }

    /// Attach the child's exit status (when it has already died) to a pipe
    /// error — the difference between "worker crashed" and "pipe hiccup".
    fn worker_err(&mut self, w: usize, source: io::Error) -> DistError {
        let status = self.workers[w]
            .child
            .as_mut()
            .and_then(|c| c.try_wait().ok().flatten());
        DistError::Worker {
            worker: w,
            source,
            status,
        }
    }

    /// Refine one level's partitions across the shards; returns each
    /// context's class count (0 ⇔ superkey), in context order.
    pub(crate) fn refine_level(
        &mut self,
        contexts: &[AttrSet],
        level: usize,
    ) -> Result<Vec<u64>, DistError> {
        self.contexts = contexts.to_vec();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.workers.len()];
        for (i, ctx) in contexts.iter().enumerate() {
            groups[self.owner_of(*ctx)].push(i);
        }
        for (w, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut payload = Vec::with_capacity(9 + group.len() * 8);
            wire::put_u8(&mut payload, REQ_REFINE);
            wire::put_u32(&mut payload, level as u32);
            wire::put_u32(&mut payload, group.len() as u32);
            for &i in group {
                wire::put_u64(&mut payload, contexts[i].mask());
            }
            self.send(w, &payload)?;
            self.flush(w)?;
        }
        let mut classes = vec![0u64; contexts.len()];
        for (w, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let payload = {
                let _s = obs::span(&format!("dist/worker{w}/refine"));
                self.recv(w)?
            };
            let mut r = Reader::new(&payload);
            let mut parse = || -> Result<(u64, u64), String> {
                if r.u8().map_err(|e| e.to_string())? != RESP_REFINE_DONE {
                    return Err("expected RefineDone".into());
                }
                let n = r.seq_len(16).map_err(|e| e.to_string())?;
                if n != group.len() {
                    return Err(format!("RefineDone carries {n} metas, expected {}", group.len()));
                }
                for &i in group {
                    classes[i] = r.u64().map_err(|e| e.to_string())?;
                    let bytes = r.u64().map_err(|e| e.to_string())?;
                    self.ledger.insert(contexts[i], bytes);
                }
                let rp = r.u64().map_err(|e| e.to_string())?;
                let pp = r.u64().map_err(|e| e.to_string())?;
                Ok((rp, pp))
            };
            let (rp, pp) = parse().map_err(|detail| DistError::Protocol { worker: w, detail })?;
            self.counters.radix_passes += rp;
            self.counters.product_radix_passes += pp;
        }
        // Mirror the single-process cache accounting: every context at this
        // level is a fresh miss, and every level-≥1 context is one product
        // (level 0 materializes `Π_∅` without a product step).
        self.counters.misses += contexts.len();
        if level >= 1 {
            self.counters.products += contexts.len();
        }
        if level >= 2 {
            for ctx in contexts {
                if let Some(last) = ctx.last() {
                    self.class_code_attrs.insert(last);
                }
            }
        }
        Ok(classes)
    }

    /// Run one phase of scans sharded by item owner; `encode_item` writes
    /// item `i`'s request body.  Verdicts come back in canonical slot order.
    fn scan_batch(
        &mut self,
        op: u8,
        owners: &[usize],
        encode_item: impl Fn(&mut Vec<u8>, usize),
    ) -> Result<Vec<Verdict>, DistError> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.workers.len()];
        for (i, &w) in owners.iter().enumerate() {
            groups[w].push(i);
        }
        for (w, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut payload = Vec::new();
            wire::put_u8(&mut payload, op);
            wire::put_u32(&mut payload, group.len() as u32);
            for &i in group {
                encode_item(&mut payload, i);
            }
            self.send(w, &payload)?;
            self.flush(w)?;
        }
        let mut verdicts: Vec<Option<Verdict>> = owners.iter().map(|_| None).collect();
        for (w, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let payload = {
                let _s = obs::span(&format!("dist/worker{w}/scan"));
                self.recv(w)?
            };
            let mut r = Reader::new(&payload);
            let mut parse = || -> Result<(), String> {
                if r.u8().map_err(|e| e.to_string())? != RESP_VERDICTS {
                    return Err("expected Verdicts".into());
                }
                let n = r.seq_len(21).map_err(|e| e.to_string())?;
                if n != group.len() {
                    return Err(format!("{n} verdicts for {} requests", group.len()));
                }
                for &i in group {
                    verdicts[i] = Some(crate::wire::get_verdict(&mut r).map_err(|e| e.to_string())?);
                }
                Ok(())
            };
            parse().map_err(|detail| DistError::Protocol { worker: w, detail })?;
        }
        Ok(verdicts
            .into_iter()
            .map(|v| v.expect("every slot has an owner"))
            .collect())
    }

    /// Scan owner for slot `slot` of a phase: the context's partition owner,
    /// except that the empty context — whose partition is the pass-free full
    /// class every worker can materialize for free — round-robins its scans
    /// so level 0 doesn't serialize on a single worker.  Verdicts are
    /// produced by one serial scan wherever they run, so the choice never
    /// shows in the results.
    fn scan_owner(&self, slot: usize, ctx: AttrSet) -> usize {
        if ctx.is_empty() {
            slot % self.workers.len()
        } else {
            self.owner_of(ctx)
        }
    }

    /// Constancy scans for `(node index, attr)` slots of the current level.
    pub(crate) fn scan_consts(
        &mut self,
        slots: &[(usize, AttrId)],
    ) -> Result<Vec<Verdict>, DistError> {
        let items: Vec<(AttrSet, AttrId)> = slots
            .iter()
            .map(|&(i, attr)| (self.contexts[i], attr))
            .collect();
        let owners: Vec<usize> = items
            .iter()
            .enumerate()
            .map(|(slot, &(ctx, _))| self.scan_owner(slot, ctx))
            .collect();
        self.scan_batch(REQ_SCAN_CONSTS, &owners, |buf, i| {
            let (ctx, attr) = items[i];
            wire::put_u64(buf, ctx.mask());
            wire::put_u32(buf, attr.0);
        })
    }

    /// Compatibility scans for `(node index, (a, b))` slots of the current
    /// level.
    pub(crate) fn scan_pairs(
        &mut self,
        slots: &[(usize, (AttrId, AttrId))],
    ) -> Result<Vec<Verdict>, DistError> {
        let items: Vec<(AttrSet, AttrId, AttrId)> = slots
            .iter()
            .map(|&(i, (a, b))| (self.contexts[i], a, b))
            .collect();
        let owners: Vec<usize> = items
            .iter()
            .enumerate()
            .map(|(slot, &(ctx, ..))| self.scan_owner(slot, ctx))
            .collect();
        self.scan_batch(REQ_SCAN_PAIRS, &owners, |buf, i| {
            let (ctx, a, b) = items[i];
            wire::put_u64(buf, ctx.mask());
            wire::put_u32(buf, a.0);
            wire::put_u32(buf, b.0);
        })
    }

    /// Replay-fallback scan of a single statement on its owning worker (a
    /// cache *hit* in the mirrored accounting, exactly like the local
    /// `statement_verdict` path).
    pub(crate) fn scan_one(&mut self, stmt: &SetOd) -> Result<Verdict, DistError> {
        let w = self.owner_of(*stmt.context());
        let mut payload = Vec::new();
        wire::put_u8(&mut payload, REQ_SCAN_ONE);
        crate::wire::put_statement(&mut payload, stmt);
        self.send(w, &payload)?;
        self.flush(w)?;
        let payload = self.recv(w)?;
        let parse = || -> Result<Verdict, String> {
            let mut r = Reader::new(&payload);
            if r.u8().map_err(|e| e.to_string())? != RESP_VERDICTS {
                return Err("expected Verdicts".into());
            }
            if r.seq_len(21).map_err(|e| e.to_string())? != 1 {
                return Err("ScanOne expects exactly one verdict".into());
            }
            crate::wire::get_verdict(&mut r).map_err(|e| e.to_string())
        };
        let v = parse().map_err(|detail| DistError::Protocol { worker: w, detail })?;
        self.counters.hits += 1;
        Ok(v)
    }

    /// Broadcast the per-level eviction and mirror it in the ledger,
    /// returning how many partitions the single-process cache would drop.
    pub(crate) fn evict(&mut self, size: usize) -> Result<usize, DistError> {
        let mut payload = Vec::new();
        wire::put_u8(&mut payload, REQ_EVICT);
        wire::put_u64(&mut payload, size as u64);
        for w in 0..self.workers.len() {
            self.send(w, &payload)?;
            self.flush(w)?;
        }
        let before = self.ledger.len();
        self.ledger.retain(|set, _| set.len() != size);
        Ok(before - self.ledger.len())
    }

    pub(crate) fn csr_bytes(&self) -> u64 {
        self.ledger.values().sum::<u64>()
            + self.class_code_attrs.len() as u64 * self.class_code_bytes
    }

    pub(crate) fn cached_sets(&self) -> usize {
        self.ledger.len()
    }

    pub(crate) fn counters(&self) -> PlaneCounters {
        self.counters
    }

    /// Clean shutdown: ask every worker to exit, close the pipes, reap the
    /// children, and hand back the transport stats.
    pub(crate) fn shutdown(mut self) -> Result<DistStats, DistError> {
        let mut payload = Vec::new();
        wire::put_u8(&mut payload, REQ_SHUTDOWN);
        for w in 0..self.workers.len() {
            self.send(w, &payload)?;
            self.flush(w)?;
        }
        let stats = self.stats;
        // Dropping the handles closes stdin (EOF backstop), kills whatever
        // ignored Shutdown, and reaps every child.
        self.workers.clear();
        Ok(stats)
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Run the level-wise traversal with the data plane sharded across
/// `config.workers` worker processes (at least 1), returning the discovery
/// (bit-identical to [`lattice::discover_statements`] with `workers = 0`)
/// plus the transport stats.
pub fn discover_statements_dist(
    rel: &Relation,
    config: &LatticeConfig,
    launcher: &WorkerLauncher,
) -> Result<(SetBasedDiscovery, DistStats), DistError> {
    let budget = validate::error_budget(rel.len(), config.epsilon);
    let plane = DistPlane::spawn(
        rel,
        config.workers.max(1),
        budget,
        config.max_context,
        launcher,
    )?;
    let mut plane = lattice::Plane::Dist(Box::new(plane));
    let discovery = lattice::discover_with_plane(rel, config, &mut plane)?;
    let lattice::Plane::Dist(plane) = plane else {
        unreachable!("plane variant is stable across the traversal")
    };
    let stats = plane.shutdown()?;
    Ok((discovery, stats))
}

/// Enter worker mode when [`WORKER_FLAG`] is among the process arguments:
/// serve frames on stdin/stdout until shutdown or EOF, then exit the
/// process.  Binaries that spawn workers via [`WorkerLauncher::self_exec`]
/// must call this first thing in `main`; for all other processes it is a
/// no-op.
pub fn maybe_run_worker() {
    if !std::env::args().any(|a| a == WORKER_FLAG) {
        return;
    }
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut reader = stdin.lock();
    let mut writer = BufWriter::new(stdout.lock());
    let code = match run_worker(&mut reader, &mut writer) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("od-worker: {e}");
            1
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------

fn invalid(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Serve one worker conversation over any framed transport: receive the
/// relation snapshot, prewarm the partition cache (singleton partitions
/// discarded, class-code memo and `Π_∅` retained — so later pass-count
/// deltas match the single-process traversal), then answer refine/scan/evict
/// requests until `Shutdown` or EOF.
pub fn run_worker(r: &mut impl Read, w: &mut impl Write) -> io::Result<()> {
    // -- Phase 1: snapshot assembly --------------------------------------
    let mut snapshot: Vec<u8> = Vec::new();
    let budget: usize;
    loop {
        let payload = read_frame(r, MAX_FRAME_LEN)?;
        let mut rd = Reader::new(&payload);
        match rd.u8().map_err(invalid)? {
            REQ_SNAPSHOT_CHUNK => {
                snapshot.extend_from_slice(rd.bytes().map_err(invalid)?);
                rd.finish().map_err(invalid)?;
            }
            REQ_SNAPSHOT_DONE => {
                budget = rd.u64().map_err(invalid)? as usize;
                rd.finish().map_err(invalid)?;
                break;
            }
            op => return Err(invalid(format!("unexpected opcode {op} before snapshot"))),
        }
    }
    // Tuple-free load: refinement and scans read dense codes only, so the
    // worker decodes `(schema, encoding)` and never materializes a row
    // store — at a million rows that skips the dominant share of startup.
    let (schema, enc) = {
        let mut rd = Reader::new(&snapshot);
        let parts = wire::get_relation_snapshot_columns(&mut rd).map_err(invalid)?;
        rd.finish().map_err(invalid)?;
        parts
    };
    drop(snapshot);
    let mut cache = PartitionCache::from_encoding(std::sync::Arc::new(enc));
    // -- Phase 2: prewarm -------------------------------------------------
    // The single-process traversal always builds per-attribute class-code
    // columns for free from cached singleton partitions; a worker only owns
    // a context shard, so it prewarms *all* attributes up front (and keeps
    // `Π_∅`, every shard's refinement root).  Singleton partitions are
    // evicted again so the level-1 refinements run — and count radix passes
    // — exactly like the single-process batch.
    let attrs: Vec<AttrId> = schema.attr_ids().collect();
    for &a in &attrs {
        cache.partition(&AttrSet::singleton(a));
        cache.attr_class_codes(a);
    }
    cache.evict_sets_of_size(1);
    let mut last_radix = cache.radix_passes();
    let mut last_product = cache.product_radix_passes();
    let mut ready = Vec::new();
    wire::put_u8(&mut ready, RESP_READY);
    write_frame(w, &ready)?;
    w.flush()?;
    // -- Phase 3: serve ---------------------------------------------------
    while let Some(payload) = read_frame_opt(r, MAX_FRAME_LEN)? {
        let mut rd = Reader::new(&payload);
        match rd.u8().map_err(invalid)? {
            REQ_REFINE => {
                let _level = rd.u32().map_err(invalid)?;
                let n = rd.seq_len(8).map_err(invalid)?;
                let mut sets = Vec::with_capacity(n);
                for _ in 0..n {
                    sets.push(AttrSet::from_mask(rd.u64().map_err(invalid)?));
                }
                rd.finish().map_err(invalid)?;
                let parts = cache.partitions_batch(&sets, 1);
                let radix = cache.radix_passes();
                let product = cache.product_radix_passes();
                let mut reply = Vec::with_capacity(25 + parts.len() * 16);
                wire::put_u8(&mut reply, RESP_REFINE_DONE);
                wire::put_u32(&mut reply, parts.len() as u32);
                for part in &parts {
                    wire::put_u64(&mut reply, part.num_classes() as u64);
                    wire::put_u64(&mut reply, part.approx_heap_bytes() as u64);
                }
                wire::put_u64(&mut reply, radix - last_radix);
                wire::put_u64(&mut reply, product - last_product);
                last_radix = radix;
                last_product = product;
                write_frame(w, &reply)?;
                w.flush()?;
            }
            REQ_SCAN_CONSTS => {
                let n = rd.seq_len(12).map_err(invalid)?;
                let mut items: Vec<(AttrSet, AttrId)> = Vec::with_capacity(n);
                for _ in 0..n {
                    let ctx = AttrSet::from_mask(rd.u64().map_err(invalid)?);
                    let attr = AttrId(rd.u32().map_err(invalid)?);
                    items.push((ctx, attr));
                }
                rd.finish().map_err(invalid)?;
                let parts: Vec<Rc<StrippedPartition>> =
                    items.iter().map(|(ctx, _)| cache.partition(ctx)).collect();
                let codes: Vec<ColCodes> = items.iter().map(|&(_, a)| cache.codes(a)).collect();
                let jobs: Vec<StatementJob<'_>> = parts
                    .iter()
                    .zip(&codes)
                    .map(|(part, codes)| StatementJob::Constancy { part, codes })
                    .collect();
                let verdicts = parallel::validate_statement_batch(&jobs, 1, budget);
                write_verdicts(w, &verdicts)?;
            }
            REQ_SCAN_PAIRS => {
                let n = rd.seq_len(16).map_err(invalid)?;
                let mut items: Vec<(AttrSet, AttrId, AttrId)> = Vec::with_capacity(n);
                for _ in 0..n {
                    let ctx = AttrSet::from_mask(rd.u64().map_err(invalid)?);
                    let a = AttrId(rd.u32().map_err(invalid)?);
                    let b = AttrId(rd.u32().map_err(invalid)?);
                    items.push((ctx, a, b));
                }
                rd.finish().map_err(invalid)?;
                let parts: Vec<Rc<StrippedPartition>> =
                    items.iter().map(|(ctx, ..)| cache.partition(ctx)).collect();
                let code_pairs: Vec<(ColCodes, ColCodes)> = items
                    .iter()
                    .map(|&(_, a, b)| (cache.codes(a), cache.codes(b)))
                    .collect();
                let jobs: Vec<StatementJob<'_>> = parts
                    .iter()
                    .zip(&code_pairs)
                    .map(|(part, (ca, cb))| StatementJob::Compatibility {
                        part,
                        codes_a: ca,
                        codes_b: cb,
                    })
                    .collect();
                let verdicts = parallel::validate_statement_batch(&jobs, 1, budget);
                write_verdicts(w, &verdicts)?;
            }
            REQ_SCAN_ONE => {
                let stmt = crate::wire::get_statement(&mut rd).map_err(invalid)?;
                rd.finish().map_err(invalid)?;
                let verdict = validate::statement_verdict(&mut cache, &stmt, 1, budget);
                write_verdicts(w, std::slice::from_ref(&verdict))?;
            }
            REQ_EVICT => {
                let size = rd.u64().map_err(invalid)? as usize;
                rd.finish().map_err(invalid)?;
                cache.evict_sets_of_size(size);
            }
            REQ_SHUTDOWN => return Ok(()),
            op => return Err(invalid(format!("unknown request opcode {op}"))),
        }
    }
    Ok(())
}

fn write_verdicts(w: &mut impl Write, verdicts: &[Verdict]) -> io::Result<()> {
    let mut reply = Vec::with_capacity(5 + verdicts.len() * 24);
    wire::put_u8(&mut reply, RESP_VERDICTS);
    wire::put_u32(&mut reply, verdicts.len() as u32);
    for v in verdicts {
        crate::wire::put_verdict(&mut reply, v);
    }
    write_frame(w, &reply)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::fixtures;

    #[test]
    fn sharding_is_static_and_min_attr_stable() {
        let rel = fixtures::example_5_taxes();
        let plane =
            DistPlane::spawn(&rel, 3, 0, 4, &WorkerLauncher::in_process()).expect("spawn");
        for mask in 0u64..16 {
            let ctx = AttrSet::from_mask(mask);
            let owner = plane.owner_of(ctx);
            match ctx.first() {
                None => assert_eq!(owner, 0),
                Some(min) => {
                    // The owner is a function of the minimum attribute alone.
                    assert_eq!(owner, plane.owner_of(AttrSet::singleton(min)));
                    // Dropping the last attribute keeps the owner: the
                    // refinement base always lives on the same shard.
                    if let Some(last) = ctx.last() {
                        if last != min {
                            assert_eq!(plane.owner_of(ctx.without(last)), owner);
                        }
                    }
                }
            }
        }
        plane.shutdown().expect("shutdown");
    }

    #[test]
    fn lpt_owner_assignment_balances_the_left_heavy_lattice() {
        // Arity 6, width 4 (the E17 shape): weights per minimum attribute
        // are 26, 15, 8, 4, 2, 1.  LPT over two workers splits them 28/28 —
        // `min mod 2` would split 36/20.
        let owners = owners_by_min_attr(6, 2, 4);
        let weights = [26u64, 15, 8, 4, 2, 1];
        let mut load = [0u64; 2];
        for (j, &w) in owners.iter().enumerate() {
            load[w] += weights[j];
        }
        assert_eq!(load, [28, 28], "owners: {owners:?}");
        // Deterministic: same inputs, same map.
        assert_eq!(owners, owners_by_min_attr(6, 2, 4));
        // Degenerate shapes stay in range.
        for (arity, workers, width) in [(1, 1, 1), (1, 8, 4), (64, 3, 6), (6, 16, 4)] {
            for &o in &owners_by_min_attr(arity, workers, width) {
                assert!(o < workers);
            }
        }
    }

    #[test]
    fn in_process_workers_match_the_threaded_engine() {
        let rel = fixtures::example_5_taxes();
        let local = lattice::discover_statements(&rel, &LatticeConfig::default());
        for workers in [1, 2, 4] {
            let config = LatticeConfig {
                workers,
                ..Default::default()
            };
            let (dist, stats) =
                discover_statements_dist(&rel, &config, &WorkerLauncher::in_process())
                    .expect("dist discovery");
            assert_eq!(local.minimal_statements(), dist.minimal_statements());
            assert_eq!(local.verdicts(), dist.verdicts());
            assert_eq!(local.stats, dist.stats, "workers={workers}");
            assert_eq!(local.level_stats(), dist.level_stats());
            assert_eq!(stats.workers, workers);
            assert!(stats.frames > 0 && stats.bytes > 0);
        }
    }

    #[test]
    fn channel_pipes_frame_roundtrip() {
        let (mut w, mut r) = channel_pipe();
        write_frame(&mut w, b"hello").unwrap();
        write_frame(&mut w, b"").unwrap();
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), b"");
        drop(w);
        assert!(read_frame_opt(&mut r, MAX_FRAME_LEN).unwrap().is_none());
    }

    #[test]
    fn dropped_pipe_reader_reports_broken_pipe() {
        let (mut w, r) = channel_pipe();
        drop(r);
        assert!(write_frame(&mut w, b"x").is_err());
    }

    /// Run a distributed discovery that is expected to fail, under a
    /// watchdog: a hang (the bug class these tests exist for) fails the test
    /// in `secs` seconds instead of wedging the suite.
    fn expect_dist_error_within(launcher: WorkerLauncher, secs: u64) -> DistError {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let rel = fixtures::example_5_taxes();
            let config = LatticeConfig {
                workers: 2,
                ..Default::default()
            };
            let _ = tx.send(discover_statements_dist(&rel, &config, &launcher));
        });
        match rx.recv_timeout(std::time::Duration::from_secs(secs)) {
            Ok(Err(e)) => e,
            Ok(Ok(_)) => panic!("a crashing worker pool unexpectedly succeeded"),
            Err(_) => panic!("distributed traversal hung on a crashed worker"),
        }
    }

    #[test]
    fn mid_traversal_crash_is_a_clean_error_without_hangs() {
        // A worker that speaks the handshake honestly — consumes the
        // snapshot, reports Ready — and then dies before answering its first
        // real request, like a child killed mid-traversal.  The coordinator
        // must surface a DistError (the EOF on the reply pipe), not hang.
        let launcher = WorkerLauncher {
            mode: LaunchMode::Custom(Box::new(|| {
                let (to_worker, from_coord) = channel_pipe();
                let (to_coord, from_worker) = channel_pipe();
                let thread = std::thread::spawn(move || {
                    let mut r = from_coord;
                    let mut w = to_coord;
                    loop {
                        let payload = match read_frame(&mut r, MAX_FRAME_LEN) {
                            Ok(p) => p,
                            Err(_) => return,
                        };
                        if payload.first() == Some(&REQ_SNAPSHOT_DONE) {
                            break;
                        }
                    }
                    let mut ready = Vec::new();
                    wire::put_u8(&mut ready, RESP_READY);
                    let _ = write_frame(&mut w, &ready);
                    // Die on the first post-Ready frame: both pipes drop.
                    let _ = read_frame(&mut r, MAX_FRAME_LEN);
                });
                WorkerHandle {
                    writer: Some(Box::new(to_worker)),
                    reader: Box::new(from_worker),
                    child: None,
                    thread: Some(thread),
                }
            })),
        };
        let err = expect_dist_error_within(launcher, 30);
        assert!(
            matches!(err, DistError::Worker { .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn garbage_speaking_worker_is_a_protocol_error() {
        // A worker that answers the snapshot with a frame the protocol does
        // not allow: the coordinator must reject it as Protocol, not
        // misinterpret it.
        let launcher = WorkerLauncher {
            mode: LaunchMode::Custom(Box::new(|| {
                let (to_worker, from_coord) = channel_pipe();
                let (to_coord, from_worker) = channel_pipe();
                let thread = std::thread::spawn(move || {
                    let mut r = from_coord;
                    let mut w = to_coord;
                    let _ = write_frame(&mut w, &[0xEE, 1, 2, 3]);
                    while read_frame(&mut r, MAX_FRAME_LEN).is_ok() {}
                });
                WorkerHandle {
                    writer: Some(Box::new(to_worker)),
                    reader: Box::new(from_worker),
                    child: None,
                    thread: Some(thread),
                }
            })),
        };
        let err = expect_dist_error_within(launcher, 30);
        assert!(
            matches!(err, DistError::Protocol { .. }),
            "unexpected error: {err}"
        );
    }

    #[cfg(unix)]
    #[test]
    fn instantly_exiting_worker_is_a_clean_error() {
        let rel = fixtures::example_5_taxes();
        let launcher = WorkerLauncher::command("sh", ["-c".to_string(), "exit 1".to_string()]);
        let config = LatticeConfig {
            workers: 2,
            ..Default::default()
        };
        let err =
            discover_statements_dist(&rel, &config, &launcher).expect_err("dead workers must fail");
        assert!(
            matches!(err, DistError::Worker { .. } | DistError::Protocol { .. }),
            "unexpected error: {err}"
        );
        // Display renders without panicking and is non-empty.
        assert!(!err.to_string().is_empty());
    }
}
