//! Stripped and sorted partitions over tuple ids.
//!
//! The workhorse data structure of set-based OD discovery (following TANE and
//! FASTOD): for an attribute set `X`, the partition `Π_X` groups tuple ids into
//! equivalence classes of tuples agreeing on every attribute of `X`.  A
//! **stripped** partition drops singleton classes — they can never contribute a
//! split or a swap, and on real data most classes become singletons quickly, so
//! stripping is what makes level-wise traversal near-linear per candidate.
//!
//! Partitions are stored in a flat **CSR layout**: one `Vec<u32>` of row ids
//! plus one `Vec<u32>` of class offsets, classes in first-row order and
//! members ascending — two cache-friendly arrays instead of a `Vec` of `Vec`s,
//! with class `i` a plain slice `rows[offsets[i]..offsets[i + 1]]`.
//!
//! Partitions compose two ways, both through the same run-emission machinery:
//!
//! * **Refinement** builds `Π_{{A}}` (or `Π_X · Π_{{A}}` restricted to `Π_X`'s
//!   tuples) by bucketing rows on `A`'s order-preserving code column (see
//!   [`od_core::ColumnarEncoding`]) — a linear pass, *not* an `O(n log n)`
//!   re-sort.
//! * **Products** (`Π_X · Π_Y` for non-trivial `Y`) go through dense
//!   [`ClassCodes`] columns (`row → class id`, singletons =
//!   [`CLASS_SENTINEL`]): each surviving row contributes one packed
//!   `(class_of_X, class_of_Y)` `u64` key and one global sort of the
//!   `(key, row)` pairs emits the product's classes.  No hashing, no
//!   [`od_core::Value`] comparisons.
//!
//! Both paths sort pairs with the stable LSB [radix sort](od_core::radix) when
//! large (dense codes over `n` rows need at most `⌈log₂ n / 8⌉` counting
//! passes) and `sort_unstable` when small — row payloads are distinct and
//! enter in ascending order, so both produce the identical lexicographic
//! order and the resulting classes are bit-identical either way.
//! [`PartitionCache`] memoizes partitions per attribute set so the lattice
//! visits each set once, hands out code columns as cheap [`ColCodes`] views
//! into the relation's shared columnar encoding, and keeps per-attribute
//! [`ClassCodes`] alive across level evictions so deep-lattice products never
//! rebuild them.
//!
//! [`SortedPartition`] orders the classes (plus the stripped-out singletons) of
//! `Π_set(X)` by the list `X`'s value order, which turns whole-OD validation
//! into two linear scans over groups (`Y` constant inside each group; `Y`
//! non-decreasing across consecutive groups) — the partition-powered
//! replacement for the sort-based `od-core` checker.

use od_core::{radix, AttrId, AttrList, AttrSet, ColumnarEncoding, Relation};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Pair count from which class bucketing switches from `sort_unstable` to the
/// radix sort (below it, the radix histogram pre-pass dominates).
const RADIX_MIN_PAIRS: usize = 256;

/// Class id marking a row not covered by any (non-singleton) class in a
/// [`ClassCodes`] column.  Products drop sentinel rows up front: a row that is
/// a singleton in either operand is a singleton in the product.
pub const CLASS_SENTINEL: u32 = u32::MAX;

/// One attribute's code column, borrowed from the relation's shared
/// [`ColumnarEncoding`] — a cheap `Arc` + column-index handle that derefs to
/// the `&[u32]` slice every validator and refinement works on.
#[derive(Clone)]
pub struct ColCodes {
    enc: Arc<ColumnarEncoding>,
    col: usize,
}

impl ColCodes {
    /// A view of column `col` of `enc`.
    pub fn new(enc: Arc<ColumnarEncoding>, col: usize) -> Self {
        ColCodes { enc, col }
    }
}

impl std::ops::Deref for ColCodes {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        self.enc.codes(self.col)
    }
}

impl std::fmt::Debug for ColCodes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColCodes")
            .field("col", &self.col)
            .field("len", &self.enc.n_rows())
            .finish()
    }
}

/// A dense class-id code column of one partition: `codes[row]` is the index
/// (in first-row class order) of the class containing `row`, or
/// [`CLASS_SENTINEL`] for stripped-out singletons.
///
/// This is the right-hand operand of a partition product: packing a base
/// partition's class index with `codes[row]` into one `u64` key turns the
/// product into a single radix sort over the base's surviving rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassCodes {
    codes: Vec<u32>,
    classes: u32,
}

impl ClassCodes {
    /// The `row → class id` column (length = relation rows).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of (non-singleton) classes the column indexes.
    pub fn num_classes(&self) -> u32 {
        self.classes
    }

    /// Bits needed to hold any valid class id of this column (`0` when at
    /// most one class exists) — the shift a product packs the other operand's
    /// class index above.
    pub fn id_bits(&self) -> u32 {
        if self.classes <= 1 {
            0
        } else {
            radix::bits_for(self.classes - 1)
        }
    }

    /// Heap bytes held by the code column.
    pub fn approx_heap_bytes(&self) -> usize {
        self.codes.capacity() * std::mem::size_of::<u32>()
    }
}

/// Reusable scratch buffers for partition construction, held per
/// [`PartitionCache`] so the thousands of refinement and product calls of a
/// lattice traversal stop re-allocating their working set (the only
/// allocations left are the surviving CSR arrays themselves).  Also
/// accumulates radix counting passes, surfaced as the
/// `discovery.radix_passes` (refinement) and `discovery.product_radix_passes`
/// (u64 product keys) counters.
#[derive(Debug, Default)]
pub struct RefineScratch {
    /// `(code, row)` pairs of the class currently being bucketed.
    pairs: Vec<(u32, u32)>,
    /// Radix ping-pong buffer for `pairs`.
    radix: Vec<(u32, u32)>,
    /// Packed `(class_a, class_b)` product keys with their rows.
    pairs64: Vec<(u64, u32)>,
    /// Radix ping-pong buffer for `pairs64`.
    radix64: Vec<(u64, u32)>,
    /// Emitted run descriptors: (first row, start in `rows_acc`, length).
    runs: Vec<(u32, u32, u32)>,
    /// Row ids of emitted runs, in run order.
    rows_acc: Vec<u32>,
    /// Radix counting passes performed on u32 refinement keys.
    passes: u64,
    /// Radix counting passes performed on u64 product keys.
    product_passes: u64,
}

impl RefineScratch {
    /// Total radix counting passes performed on refinement (u32 code) keys
    /// through this scratch so far.
    pub fn radix_passes(&self) -> u64 {
        self.passes
    }

    /// Total radix counting passes performed on packed u64 product keys
    /// through this scratch so far.
    pub fn product_radix_passes(&self) -> u64 {
        self.product_passes
    }

    /// Fold another scratch's refinement pass count into this one (used when
    /// sharded workers refine with their own scratches).
    pub fn absorb_passes(&mut self, passes: u64) {
        self.passes += passes;
    }

    /// Fold another scratch's product pass count into this one.
    pub fn absorb_product_passes(&mut self, passes: u64) {
        self.product_passes += passes;
    }

    /// Sort `pairs` by `(code, row)` and append every run of ≥ 2 equal codes
    /// as a run descriptor (rows come out ascending because the pairs enter
    /// in ascending row order: the radix path is stable and the comparison
    /// path tie-breaks on `row`, so both yield the same lexicographic order).
    fn emit_u32_runs(&mut self) {
        if self.pairs.len() >= RADIX_MIN_PAIRS {
            self.passes += u64::from(radix::sort_pairs(&mut self.pairs, &mut self.radix));
        } else {
            self.pairs.sort_unstable();
        }
        let pairs = &self.pairs;
        let mut start = 0usize;
        for i in 1..=pairs.len() {
            if i == pairs.len() || pairs[i].0 != pairs[start].0 {
                if i - start >= 2 {
                    let at = self.rows_acc.len() as u32;
                    self.rows_acc
                        .extend(pairs[start..i].iter().map(|&(_, row)| row));
                    self.runs.push((pairs[start].1, at, (i - start) as u32));
                }
                start = i;
            }
        }
    }

    /// [`Self::emit_u32_runs`] over the packed u64 product keys.  `radix`
    /// selects the production radix path; `false` forces the comparison sort
    /// (the in-run baseline E16 compares against).
    fn emit_u64_runs(&mut self, radix_path: bool) {
        if radix_path && self.pairs64.len() >= RADIX_MIN_PAIRS {
            self.product_passes +=
                u64::from(radix::sort_pairs(&mut self.pairs64, &mut self.radix64));
        } else {
            self.pairs64.sort_unstable();
        }
        let pairs = &self.pairs64;
        let mut start = 0usize;
        for i in 1..=pairs.len() {
            if i == pairs.len() || pairs[i].0 != pairs[start].0 {
                if i - start >= 2 {
                    let at = self.rows_acc.len() as u32;
                    self.rows_acc
                        .extend(pairs[start..i].iter().map(|&(_, row)| row));
                    self.runs.push((pairs[start].1, at, (i - start) as u32));
                }
                start = i;
            }
        }
    }

    /// Materialize the accumulated run descriptors into a CSR partition:
    /// runs sorted by first row (first rows are distinct across runs, so the
    /// order is total and deterministic), rows copied out in that order.
    fn finish(&mut self, n_rows: usize) -> StrippedPartition {
        self.runs.sort_unstable_by_key(|&(first, _, _)| first);
        let mut rows = Vec::with_capacity(self.rows_acc.len());
        let mut offsets = Vec::with_capacity(self.runs.len() + 1);
        offsets.push(0u32);
        for &(_, at, len) in &self.runs {
            rows.extend_from_slice(&self.rows_acc[at as usize..(at + len) as usize]);
            offsets.push(rows.len() as u32);
        }
        self.runs.clear();
        self.rows_acc.clear();
        StrippedPartition {
            rows,
            offsets,
            n_rows,
        }
    }
}

/// A stripped partition: equivalence classes (of size ≥ 2) of tuple ids, in a
/// flat CSR layout — class `i` is `rows[offsets[i]..offsets[i + 1]]`, classes
/// ordered by first member, members ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    rows: Vec<u32>,
    offsets: Vec<u32>,
    n_rows: usize,
}

impl StrippedPartition {
    /// The partition of the empty attribute set: one class holding every tuple
    /// (stripped away entirely when the relation has fewer than two rows).
    pub fn full(n_rows: usize) -> Self {
        if n_rows >= 2 {
            StrippedPartition {
                rows: (0..n_rows as u32).collect(),
                offsets: vec![0, n_rows as u32],
                n_rows,
            }
        } else {
            StrippedPartition {
                rows: Vec::new(),
                offsets: vec![0],
                n_rows,
            }
        }
    }

    /// Build a partition from explicit class lists (classes need not arrive
    /// sorted; they are put into canonical first-row order).  Test and oracle
    /// constructor — the discovery paths build CSR directly.
    pub fn from_classes(mut classes: Vec<Vec<u32>>, n_rows: usize) -> Self {
        classes.sort_by_key(|c| c[0]);
        let total: usize = classes.iter().map(|c| c.len()).sum();
        let mut rows = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(classes.len() + 1);
        offsets.push(0u32);
        for class in &classes {
            rows.extend_from_slice(class);
            offsets.push(rows.len() as u32);
        }
        StrippedPartition {
            rows,
            offsets,
            n_rows,
        }
    }

    /// Build `Π_{{A}}` from an attribute's code column.
    pub fn by_codes(codes: &[u32]) -> Self {
        Self::by_codes_with(codes, &mut RefineScratch::default())
    }

    /// [`Self::by_codes`] with caller-provided scratch buffers.
    pub fn by_codes_with(codes: &[u32], scratch: &mut RefineScratch) -> Self {
        scratch.pairs.clear();
        scratch
            .pairs
            .extend(codes.iter().enumerate().map(|(row, &c)| (c, row as u32)));
        scratch.emit_u32_runs();
        scratch.finish(codes.len())
    }

    /// Refine by one more attribute's code column: `Π_X · Π_{{A}}` restricted
    /// to the tuples `Π_X` still tracks.  Linear in [`Self::covered_rows`] up
    /// to the per-class sort on `(code, row)` pairs.
    pub fn refine_by(&self, codes: &[u32]) -> Self {
        self.refine_by_with(codes, &mut RefineScratch::default())
    }

    /// [`Self::refine_by`] with caller-provided scratch buffers: each class is
    /// bucketed by sorting its `(code, row)` pairs in a reused buffer —
    /// radix passes for large classes, `sort_unstable` for small ones — and
    /// emitting the runs of equal codes, instead of hashing into freshly
    /// allocated per-bucket vectors.  Output is identical on either sort path
    /// (classes in first-member order, members in ascending row order).
    pub fn refine_by_with(&self, codes: &[u32], scratch: &mut RefineScratch) -> Self {
        for class in self.classes() {
            scratch.pairs.clear();
            scratch
                .pairs
                .extend(class.iter().map(|&row| (codes[row as usize], row)));
            scratch.emit_u32_runs();
        }
        scratch.finish(self.n_rows)
    }

    /// The dense class-id column of this partition: `row → class index` in
    /// first-row class order, [`CLASS_SENTINEL`] for stripped singletons.
    pub fn class_codes(&self) -> ClassCodes {
        let mut codes = vec![CLASS_SENTINEL; self.n_rows];
        for (ci, class) in self.classes().enumerate() {
            for &row in class {
                codes[row as usize] = ci as u32;
            }
        }
        ClassCodes {
            codes,
            classes: self.num_classes() as u32,
        }
    }

    /// The partition product `self · other` over packed `(class_a, class_b)`
    /// u64 keys: one pass over `self`'s surviving rows collects
    /// `(key, row)` pairs (rows that are singletons in `other` are dropped up
    /// front — they are singletons in the product too), one global stable
    /// radix sort groups them, and runs of ≥ 2 become the product's classes.
    /// No hashing, no `Value` comparisons; radix passes land in
    /// `scratch.product_radix_passes()`.
    pub fn product_with(&self, other: &ClassCodes, scratch: &mut RefineScratch) -> Self {
        self.product_keys(other, scratch);
        scratch.emit_u64_runs(true);
        scratch.finish(self.n_rows)
    }

    /// [`Self::product_with`] with the comparison sort forced — the
    /// sorted-pairs baseline E16 measures the radix kernel against.  Output
    /// is bit-identical to the radix path.
    pub fn product_comparison(&self, other: &ClassCodes, scratch: &mut RefineScratch) -> Self {
        self.product_keys(other, scratch);
        scratch.emit_u64_runs(false);
        scratch.finish(self.n_rows)
    }

    /// Hash-based product oracle: buckets `(class_a, class_b)` keys into a
    /// `HashMap`, the pre-CSR strategy.  Kept as the differential baseline
    /// for proptests and the E16 in-run comparison.
    pub fn product_hash(&self, other: &ClassCodes) -> Self {
        let shift = other.id_bits();
        let ocodes = other.codes();
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for (ci, class) in self.classes().enumerate() {
            let hi = (ci as u64) << shift;
            for &row in class {
                let oc = ocodes[row as usize];
                if oc == CLASS_SENTINEL {
                    continue;
                }
                buckets.entry(hi | u64::from(oc)).or_default().push(row);
            }
        }
        let classes: Vec<Vec<u32>> = buckets.into_values().filter(|c| c.len() >= 2).collect();
        Self::from_classes(classes, self.n_rows)
    }

    /// Collect the packed product keys of `self · other` into
    /// `scratch.pairs64`.
    fn product_keys(&self, other: &ClassCodes, scratch: &mut RefineScratch) {
        let shift = other.id_bits();
        let ocodes = other.codes();
        scratch.pairs64.clear();
        for (ci, class) in self.classes().enumerate() {
            let hi = (ci as u64) << shift;
            for &row in class {
                let oc = ocodes[row as usize];
                if oc == CLASS_SENTINEL {
                    continue;
                }
                scratch.pairs64.push((hi | u64::from(oc), row));
            }
        }
    }

    /// The equivalence classes (each of size ≥ 2), as CSR slices in first-row
    /// order.
    pub fn classes(&self) -> impl ExactSizeIterator<Item = &[u32]> + Clone {
        self.offsets
            .windows(2)
            .map(|w| &self.rows[w[0] as usize..w[1] as usize])
    }

    /// Class `i` as a CSR slice.
    pub fn class(&self, i: usize) -> &[u32] {
        &self.rows[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The classes copied out as owned row lists (test/oracle convenience —
    /// hot paths stay on the CSR slices).
    pub fn class_vecs(&self) -> Vec<Vec<u32>> {
        self.classes().map(|c| c.to_vec()).collect()
    }

    /// Number of (non-singleton) classes.
    pub fn num_classes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of tuple ids still tracked (`‖Π‖` in TANE's notation).
    pub fn covered_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of rows of the underlying relation.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// True if every class is a singleton — the attribute set is a (super)key,
    /// so no two tuples agree on it and neither splits nor in-class swaps exist.
    pub fn is_key(&self) -> bool {
        self.offsets.len() == 1
    }

    /// True if a single class covers the whole relation (the attribute set is
    /// constant on the instance, or empty).
    pub fn is_single_class(&self) -> bool {
        self.offsets.len() == 2 && self.rows.len() == self.n_rows
    }

    /// Heap bytes held by the CSR arrays.
    pub fn approx_heap_bytes(&self) -> usize {
        (self.rows.capacity() + self.offsets.capacity()) * std::mem::size_of::<u32>()
    }
}

/// Memoizing builder of stripped partitions per attribute set, plus the
/// per-attribute code columns all validators work on (served as [`ColCodes`]
/// views into the relation's eagerly built [`ColumnarEncoding`]).
///
/// `Π_X` is computed once per distinct `X`, by composing the partition of a
/// maximal cached subset (in practice `X` minus its last attribute, which the
/// level-wise lattice has always already visited) — the *incremental partition
/// product* of FASTOD.  Level-1 partitions bucket directly on the attribute's
/// raw code column; deeper levels run the packed-u64 product against the last
/// attribute's [`ClassCodes`], which are memoized per attribute and survive
/// [`Self::evict_sets_of_size`] — eviction drops whole-partition CSR arrays,
/// not the dense columns products keep re-reading.
pub struct PartitionCache<'r> {
    /// The backing row store, absent for caches built straight from a
    /// columnar encoding ([`Self::from_encoding`]) — every partition and
    /// scan path reads dense codes only, so distributed workers never pay
    /// for tuple materialization.
    rel: Option<&'r Relation>,
    n_rows: usize,
    enc: Arc<ColumnarEncoding>,
    /// Memoized partitions, keyed directly by the attribute-set bit mask —
    /// hashing a context costs one `u64` hash, not a `Vec<AttrId>` walk.
    partitions: HashMap<AttrSet, Rc<StrippedPartition>>,
    /// Per-attribute class-id columns for the product path.  Never evicted:
    /// one dense `u32` column per attribute is cheap and every level ≥ 2
    /// product reuses them.
    attr_codes: HashMap<AttrId, Rc<ClassCodes>>,
    scratch: RefineScratch,
    /// Number of partition products (refinements) performed.
    pub products: usize,
    /// Memo hits: partition requests answered from the cache.
    pub hits: usize,
    /// Memo misses: partition requests that had to materialize (each recursive
    /// subset build counts as its own miss).
    pub misses: usize,
}

impl<'r> PartitionCache<'r> {
    /// A cache over one relation instance (grabs the shared columnar
    /// encoding, building it if the relation was mutated since construction).
    pub fn new(rel: &'r Relation) -> Self {
        PartitionCache {
            rel: Some(rel),
            n_rows: rel.len(),
            enc: rel.encoding(),
            partitions: HashMap::new(),
            attr_codes: HashMap::new(),
            scratch: RefineScratch::default(),
            products: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// A cache over a columnar encoding alone, with no backing row store.
    /// Partition products, class codes, and statement scans all read dense
    /// codes, so this cache serves the full refinement/validation surface;
    /// only [`Self::relation`] is off-limits.  Distributed workers use this
    /// to skip rebuilding `n_rows` tuples from a snapshot they would never
    /// row-access.
    pub fn from_encoding(enc: Arc<ColumnarEncoding>) -> PartitionCache<'static> {
        PartitionCache {
            rel: None,
            n_rows: enc.n_rows(),
            enc,
            partitions: HashMap::new(),
            attr_codes: HashMap::new(),
            scratch: RefineScratch::default(),
            products: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The relation the cache serves.
    ///
    /// # Panics
    ///
    /// If the cache was built by [`Self::from_encoding`], which carries no
    /// row store.
    pub fn relation(&self) -> &'r Relation {
        self.rel
            .expect("PartitionCache::from_encoding carries no row store")
    }

    /// Order-preserving dense codes of one column — an O(1) view into the
    /// shared encoding (historically this memoized per-attribute sorts).
    pub fn codes(&self, attr: AttrId) -> ColCodes {
        ColCodes::new(self.enc.clone(), attr.index())
    }

    /// Radix counting passes spent bucketing u32 refinement keys so far
    /// (serial and sharded refinements both accumulate here).
    pub fn radix_passes(&self) -> u64 {
        self.scratch.radix_passes()
    }

    /// Radix counting passes spent sorting packed u64 product keys so far.
    pub fn product_radix_passes(&self) -> u64 {
        self.scratch.product_radix_passes()
    }

    /// Heap bytes held by the cached CSR partitions plus the per-attribute
    /// class-code columns — the `partition.csr_bytes` gauge.
    pub fn approx_csr_bytes(&self) -> usize {
        let parts: usize = self
            .partitions
            .values()
            .map(|p| p.approx_heap_bytes())
            .sum();
        let codes: usize = self
            .attr_codes
            .values()
            .map(|c| c.approx_heap_bytes())
            .sum();
        parts + codes
    }

    /// The class-id column of `Π_{{attr}}`, memoized per attribute and immune
    /// to [`Self::evict_sets_of_size`].  Served from the cached singleton
    /// partition when present; otherwise built from the attribute's raw code
    /// column without polluting the partition memo (temporary partitions are
    /// not inserted, keeping the lattice's cached-set accounting exact).
    pub fn attr_class_codes(&mut self, attr: AttrId) -> Rc<ClassCodes> {
        if let Some(cc) = self.attr_codes.get(&attr) {
            return cc.clone();
        }
        let single: AttrSet = std::iter::once(attr).collect();
        let cc = match self.partitions.get(&single) {
            Some(p) => p.class_codes(),
            None => {
                let codes = self.codes(attr);
                StrippedPartition::by_codes_with(&codes, &mut self.scratch).class_codes()
            }
        };
        let rc = Rc::new(cc);
        self.attr_codes.insert(attr, rc.clone());
        rc
    }

    /// The stripped partition `Π_X` (memoized).
    pub fn partition(&mut self, set: &AttrSet) -> Rc<StrippedPartition> {
        if let Some(p) = self.partitions.get(set) {
            self.hits += 1;
            return p.clone();
        }
        self.misses += 1;
        let part = match set.last() {
            None => StrippedPartition::full(self.n_rows),
            Some(last) => {
                // Compose from the partition of X minus its last attribute —
                // under level-wise traversal that subset is already cached,
                // making every product incremental.
                let base = set.without(last);
                let base_part = self.partition(&base);
                self.products += 1;
                if base.is_empty() {
                    // Level 1: bucket the full relation on the raw codes.
                    let codes = self.codes(last);
                    base_part.refine_by_with(&codes, &mut self.scratch)
                } else {
                    // Level ≥ 2: packed-u64 product against the attribute's
                    // class-code column.
                    let other = self.attr_class_codes(last);
                    base_part.product_with(&other, &mut self.scratch)
                }
            }
        };
        let rc = Rc::new(part);
        self.partitions.insert(*set, rc.clone());
        rc
    }

    /// Materialize a whole level's partitions in one pass, sharding the
    /// product work **by context** across up to `threads` threads.
    ///
    /// Each set's base (the set minus its last attribute) is resolved serially
    /// — under level-wise traversal it is already cached, and the `Rc`-handing
    /// cache cannot be touched from workers — then the per-context products
    /// run sharded ([`crate::parallel::refine_batch`]): a product is a pure
    /// function of the base partition and the last attribute's code (or
    /// class-code) column, so the results are bit-identical on every thread
    /// count (and so are the total radix pass counts the workers hand back).
    /// Sets whose base is not cached (possible only outside the lattice's
    /// level discipline) fall back to the serial recursive path.
    pub fn partitions_batch(
        &mut self,
        sets: &[AttrSet],
        threads: usize,
    ) -> Vec<Rc<StrippedPartition>> {
        use crate::parallel::RefineJob;
        // Keep the base `Rc`s alive on this thread; workers see plain `&`s.
        enum Aux {
            Codes(ColCodes),
            Product(Rc<ClassCodes>),
        }
        let mut bases: Vec<Option<(Rc<StrippedPartition>, Aux)>> = Vec::with_capacity(sets.len());
        for set in sets {
            if self.partitions.contains_key(set) {
                self.hits += 1;
                bases.push(None);
                continue;
            }
            let base = match set.last() {
                Some(last) if self.partitions.contains_key(&set.without(last)) => {
                    let base_set = set.without(last);
                    let base_part = self.partitions[&base_set].clone();
                    self.misses += 1;
                    let aux = if base_set.is_empty() {
                        Aux::Codes(self.codes(last))
                    } else {
                        Aux::Product(self.attr_class_codes(last))
                    };
                    Some((base_part, aux))
                }
                _ => None, // cached already handled; uncached base → serial fallback
            };
            if base.is_none() {
                // Serial fallback (also materializes the base for siblings;
                // counts its own misses).
                self.partition(set);
            }
            bases.push(base);
        }
        let jobs: Vec<Option<RefineJob<'_>>> = bases
            .iter()
            .map(|o| {
                o.as_ref().map(|(b, aux)| match aux {
                    Aux::Codes(c) => RefineJob::Codes {
                        base: b,
                        codes: &c[..],
                    },
                    Aux::Product(cc) => RefineJob::Product {
                        base: b,
                        other: cc,
                    },
                })
            })
            .collect();
        let (fresh, refine_passes, product_passes) = crate::parallel::refine_batch(&jobs, threads);
        self.scratch.absorb_passes(refine_passes);
        self.scratch.absorb_product_passes(product_passes);
        for (set, part) in sets.iter().zip(fresh) {
            if let Some(part) = part {
                self.products += 1;
                self.partitions.insert(*set, Rc::new(part));
            }
        }
        sets.iter()
            .map(|set| self.partitions[set].clone())
            .collect()
    }

    /// Number of distinct attribute sets whose partition has been materialized.
    pub fn cached_sets(&self) -> usize {
        self.partitions.len()
    }

    /// Evict every cached partition whose attribute set has exactly `len`
    /// attributes, returning how many were dropped.
    ///
    /// The level-wise lattice calls this to cap resident memory: partitions of
    /// level `k` are only ever refined into level `k + 1` partitions, so once
    /// level `k + 1` is fully materialized the level-`k` products are dead
    /// weight.  Eviction is safe, not merely sound: a later request for an
    /// evicted set transparently rebuilds it (recursively, from whatever
    /// subsets remain cached).  The per-attribute [`ClassCodes`] memo is
    /// deliberately untouched — products at every later level keep reading it.
    pub fn evict_sets_of_size(&mut self, len: usize) -> usize {
        let before = self.partitions.len();
        self.partitions.retain(|key, _| key.len() != len);
        before - self.partitions.len()
    }
}

/// The classes of `Π_set(X)` — including the stripped-out singletons — ordered
/// by the list `X`'s lexicographic value order, with one representative row per
/// class.
///
/// Because every member of a class agrees on all of `set(X)`, ordering class
/// representatives by `X` orders the whole relation by `X`; an OD `X ↦ Y` then
/// reduces to (a) `Y` constant within each class and (b) `Y` non-decreasing
/// across consecutive classes.
#[derive(Debug)]
pub struct SortedPartition {
    /// Classes in `X` order: (representative row, all rows of the class).
    groups: Vec<(u32, Vec<u32>)>,
}

impl SortedPartition {
    /// Build the sorted partition for a list from the cache.
    pub fn for_list(cache: &mut PartitionCache<'_>, list: &AttrList) -> Self {
        let set = list.to_set();
        let part = cache.partition(&set);
        let n = part.n_rows();
        let mut in_class = vec![false; n];
        let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
        for class in part.classes() {
            for &row in class {
                in_class[row as usize] = true;
            }
            groups.push((class[0], class.to_vec()));
        }
        for row in 0..n as u32 {
            if !in_class[row as usize] {
                groups.push((row, vec![row]));
            }
        }
        // Sort representatives by the list's per-attribute codes: integer
        // comparisons, and only one row per class.
        let key_codes: Vec<ColCodes> = list.iter().map(|a| cache.codes(a)).collect();
        groups.sort_by(|a, b| {
            for codes in &key_codes {
                let ord = codes[a.0 as usize].cmp(&codes[b.0 as usize]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        SortedPartition { groups }
    }

    /// The groups in list order: (representative, class members).
    pub fn groups(&self) -> &[(u32, Vec<u32>)] {
        &self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::{Schema, Value};

    fn rel_from(rows: &[&[i64]]) -> Relation {
        let mut schema = Schema::new("t");
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        for i in 0..arity {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    }

    fn set(ids: &[u32]) -> AttrSet {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn full_partition_is_one_class_unless_tiny() {
        assert_eq!(StrippedPartition::full(5).num_classes(), 1);
        assert!(StrippedPartition::full(5).is_single_class());
        assert!(StrippedPartition::full(1).is_key());
        assert!(StrippedPartition::full(0).is_key());
    }

    #[test]
    fn by_codes_groups_equal_values_and_strips_singletons() {
        // Column: [5, 3, 5, 9, 3] → classes {0,2} and {1,4}; row 3 is stripped.
        let rel = rel_from(&[&[5], &[3], &[5], &[9], &[3]]);
        let codes = rel.rank_column(AttrId(0));
        let p = StrippedPartition::by_codes(&codes);
        assert_eq!(p.class_vecs(), vec![vec![0, 2], vec![1, 4]]);
        assert_eq!(p.class(0), &[0, 2]);
        assert_eq!(p.class(1), &[1, 4]);
        assert_eq!(p.covered_rows(), 4);
        assert!(!p.is_key());
    }

    #[test]
    fn refinement_matches_direct_construction() {
        let rel = rel_from(&[&[1, 1], &[1, 2], &[1, 1], &[2, 1], &[2, 1], &[1, 2]]);
        let mut cache = PartitionCache::new(&rel);
        let pa = cache.partition(&set(&[0]));
        let pab = cache.partition(&set(&[0, 1]));
        // Direct: group rows by both columns.
        assert_eq!(pa.num_classes(), 2);
        assert_eq!(pab.class_vecs(), vec![vec![0, 2], vec![1, 5], vec![3, 4]]);
        // Refinement never increases covered rows.
        assert!(pab.covered_rows() <= pa.covered_rows());
    }

    #[test]
    fn radix_and_comparison_bucketing_agree() {
        // Enough rows to clear RADIX_MIN_PAIRS, few enough distinct values
        // that classes stay large: the full-relation bucketing takes the
        // radix path while tiny per-class refinements take sort_unstable,
        // and both must produce identical partitions.
        let rows: Vec<Vec<i64>> = (0..600i64).map(|i| vec![i % 7, i % 3]).collect();
        let rows: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let rel = rel_from(&rows);
        let codes = rel.rank_column(AttrId(0));
        let mut scratch = RefineScratch::default();
        let via_radix = StrippedPartition::by_codes_with(&codes, &mut scratch);
        assert!(
            scratch.radix_passes() > 0,
            "600 pairs must take the radix path"
        );
        // Reference: comparison-sorted bucketing of the same pairs.
        let mut pairs: Vec<(u32, u32)> = codes
            .iter()
            .enumerate()
            .map(|(row, &c)| (c, row as u32))
            .collect();
        pairs.sort_unstable();
        let mut expected: Vec<Vec<u32>> = Vec::new();
        let mut start = 0;
        for i in 1..=pairs.len() {
            if i == pairs.len() || pairs[i].0 != pairs[start].0 {
                if i - start >= 2 {
                    expected.push(pairs[start..i].iter().map(|&(_, r)| r).collect());
                }
                start = i;
            }
        }
        expected.sort_by_key(|c| c[0]);
        assert_eq!(via_radix.class_vecs(), expected);
        // And refining by the second column matches the cache-built product.
        let mut cache = PartitionCache::new(&rel);
        let pab = cache.partition(&set(&[0, 1]));
        let manual = via_radix.refine_by(&rel.rank_column(AttrId(1)));
        assert_eq!(*pab, manual);
    }

    #[test]
    fn key_sets_strip_to_nothing() {
        let rel = rel_from(&[&[1, 7], &[2, 7], &[3, 7]]);
        let mut cache = PartitionCache::new(&rel);
        assert!(cache.partition(&set(&[0])).is_key());
        // And refining a key by anything stays a key.
        assert!(cache.partition(&set(&[0, 1])).is_key());
        // A constant column is a single class.
        assert!(cache.partition(&set(&[1])).is_single_class());
    }

    #[test]
    fn class_codes_mark_members_and_sentinel_singletons() {
        // Column: [5, 3, 5, 9, 3] → class 0 = {0,2}, class 1 = {1,4}, row 3
        // is a singleton.
        let rel = rel_from(&[&[5], &[3], &[5], &[9], &[3]]);
        let p = StrippedPartition::by_codes(&rel.rank_column(AttrId(0)));
        let cc = p.class_codes();
        assert_eq!(cc.num_classes(), 2);
        assert_eq!(cc.codes(), &[0, 1, 0, CLASS_SENTINEL, 1]);
        assert_eq!(cc.id_bits(), 1);
        // Degenerate columns: one class → zero bits, key → zero classes.
        let full = StrippedPartition::full(4).class_codes();
        assert_eq!((full.num_classes(), full.id_bits()), (1, 0));
        let key = StrippedPartition::full(1).class_codes();
        assert_eq!((key.num_classes(), key.id_bits()), (0, 0));
    }

    #[test]
    fn product_paths_agree_with_refinement_and_each_other() {
        let rows: Vec<Vec<i64>> = (0..700i64).map(|i| vec![i % 6, i % 4, i % 35]).collect();
        let rows: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let rel = rel_from(&rows);
        let pa = StrippedPartition::by_codes(&rel.rank_column(AttrId(0)));
        let pb = StrippedPartition::by_codes(&rel.rank_column(AttrId(1)));
        let pc = StrippedPartition::by_codes(&rel.rank_column(AttrId(2)));
        let mut scratch = RefineScratch::default();
        for (base, other) in [(&pa, &pb), (&pb, &pa), (&pa, &pc), (&pc, &pb)] {
            let cc = other.class_codes();
            let radix = base.product_with(&cc, &mut scratch);
            let comparison = base.product_comparison(&cc, &mut scratch);
            let hash = base.product_hash(&cc);
            // Refinement by the other partition's class ids equals the product
            // when `other` has no sentinel rows (true here: every column is
            // duplicate-heavy).
            let refined = base.refine_by(cc.codes());
            assert_eq!(radix, comparison);
            assert_eq!(radix, hash);
            // All columns here are duplicate-heavy (no singletons), so the
            // class-code column is total and plain refinement agrees too.
            assert!(cc.codes().iter().all(|&c| c != CLASS_SENTINEL));
            assert_eq!(radix, refined);
        }
        assert!(
            scratch.product_radix_passes() > 0,
            "700-row products must take the radix path"
        );
    }

    #[test]
    fn product_drops_rows_singleton_in_either_operand() {
        // a: [1,1,2,2,3] → classes {0,1},{2,3}; b: [7,8,8,9,9] → {1,2},{3,4}.
        // Product: rows 0 (singleton in b via class id) and 4 (singleton in a)
        // drop; {1},{2},{3} all become singletons → empty (key) product.
        let rel = rel_from(&[&[1, 7], &[1, 8], &[2, 8], &[2, 9], &[3, 9]]);
        let pa = StrippedPartition::by_codes(&rel.rank_column(AttrId(0)));
        let pb = StrippedPartition::by_codes(&rel.rank_column(AttrId(1)));
        let mut scratch = RefineScratch::default();
        let prod = pa.product_with(&pb.class_codes(), &mut scratch);
        assert!(prod.is_key());
        assert_eq!(prod, pa.product_hash(&pb.class_codes()));
        // A product with itself is idempotent.
        let same = pa.product_with(&pa.class_codes(), &mut scratch);
        assert_eq!(same, pa);
    }

    #[test]
    fn cache_deep_products_match_serial_refinement_chain() {
        let rows: Vec<Vec<i64>> = (0..300i64)
            .map(|i| vec![i % 4, i % 3, i % 5, i % 2])
            .collect();
        let rows: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let rel = rel_from(&rows);
        let mut cache = PartitionCache::new(&rel);
        let deep = cache.partition(&set(&[0, 1, 2, 3]));
        // Oracle: chain of raw-code refinements, no products involved.
        let mut oracle = StrippedPartition::full(rel.len());
        for a in 0..4 {
            oracle = oracle.refine_by(&rel.rank_column(AttrId(a)));
        }
        assert_eq!(*deep, oracle);
        assert!(
            cache.product_radix_passes() > 0 || cache.radix_passes() > 0,
            "large partitions must exercise a radix path"
        );
    }

    #[test]
    fn attr_class_codes_survive_eviction_and_skip_the_partition_memo() {
        let rel = rel_from(&[&[1, 1], &[1, 2], &[2, 1], &[2, 2], &[1, 1]]);
        let mut cache = PartitionCache::new(&rel);
        // No partitions cached yet: codes build from the raw column without
        // inserting a partition.
        let cc = cache.attr_class_codes(AttrId(1));
        assert_eq!(cache.cached_sets(), 0);
        cache.partition(&set(&[0, 1]));
        // Cached: Π_∅, Π_{0}, Π_{0,1} — evicting level 1 drops exactly Π_{0}.
        assert_eq!(cache.cached_sets(), 3);
        assert_eq!(cache.evict_sets_of_size(1), 1);
        // The memoized codes are still served (same allocation).
        let cc2 = cache.attr_class_codes(AttrId(1));
        assert!(Rc::ptr_eq(&cc, &cc2));
        assert!(cache.approx_csr_bytes() > 0);
    }

    #[test]
    fn cache_memoizes_and_counts_products() {
        let rel = rel_from(&[&[1, 1, 1], &[1, 2, 1], &[2, 1, 1], &[2, 2, 2]]);
        let mut cache = PartitionCache::new(&rel);
        cache.partition(&set(&[0, 1]));
        let products_after_first = cache.products;
        let hits_after_first = cache.hits;
        cache.partition(&set(&[0, 1]));
        assert_eq!(
            cache.products, products_after_first,
            "second lookup must hit the cache"
        );
        assert_eq!(cache.hits, hits_after_first + 1);
        assert!(
            cache.misses >= 2,
            "the set and its subset base are distinct materializations"
        );
        assert!(
            cache.cached_sets() >= 2,
            "subset partitions are cached on the way"
        );
    }

    #[test]
    fn cache_codes_view_matches_rank_column() {
        let rel = rel_from(&[&[5, 1], &[3, 1], &[5, 2]]);
        let cache = PartitionCache::new(&rel);
        for attr in [AttrId(0), AttrId(1)] {
            let view = cache.codes(attr);
            assert_eq!(&view[..], rel.rank_column(attr).as_slice());
        }
    }

    #[test]
    fn nulls_and_ties_partition_together() {
        let mut schema = Schema::new("t");
        schema.add_attr("a");
        let rel = Relation::from_rows(
            schema,
            vec![
                vec![Value::Null],
                vec![Value::Int(1)],
                vec![Value::Null],
                vec![Value::Int(1)],
            ],
        )
        .unwrap();
        let mut cache = PartitionCache::new(&rel);
        let p = cache.partition(&set(&[0]));
        assert_eq!(
            p.class_vecs(),
            vec![vec![0, 2], vec![1, 3]],
            "NULLs form their own class"
        );
    }

    #[test]
    fn from_classes_builds_canonical_csr() {
        let p = StrippedPartition::from_classes(vec![vec![4, 7], vec![0, 2, 9]], 10);
        assert_eq!(p.class_vecs(), vec![vec![0, 2, 9], vec![4, 7]]);
        assert_eq!(p.num_classes(), 2);
        assert_eq!(p.covered_rows(), 5);
        assert!(p.approx_heap_bytes() >= (5 + 3) * 4);
        let empty = StrippedPartition::from_classes(Vec::new(), 3);
        assert!(empty.is_key());
        assert_eq!(empty.n_rows(), 3);
        assert_eq!(empty.num_classes(), 0);
    }

    #[test]
    fn sorted_partition_orders_groups_by_list_value() {
        // Rows: (2,9) (1,8) (2,7) (1,8) — Π_{a} classes {0,2} {1,3}.
        let rel = rel_from(&[&[2, 9], &[1, 8], &[2, 7], &[1, 8]]);
        let mut cache = PartitionCache::new(&rel);
        let sp = SortedPartition::for_list(&mut cache, &AttrList::new([AttrId(0)]));
        let reps: Vec<u32> = sp.groups().iter().map(|(rep, _)| *rep).collect();
        // a=1 group first (rep 1), then a=2 group (rep 0).
        assert_eq!(reps, vec![1, 0]);
        // Descending list puts a=2 first; singleton groups appear for the pair list.
        let sp2 = SortedPartition::for_list(&mut cache, &AttrList::new([AttrId(1), AttrId(0)]));
        assert_eq!(sp2.groups().len(), 3, "b distinguishes rows 0 and 2");
    }

    #[test]
    fn sorted_partition_of_empty_list_is_one_group() {
        let rel = rel_from(&[&[1], &[2]]);
        let mut cache = PartitionCache::new(&rel);
        let sp = SortedPartition::for_list(&mut cache, &AttrList::empty());
        assert_eq!(sp.groups().len(), 1);
        assert_eq!(sp.groups()[0].1.len(), 2);
    }
}
