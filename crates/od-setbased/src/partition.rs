//! Stripped and sorted partitions over tuple ids.
//!
//! The workhorse data structure of set-based OD discovery (following TANE and
//! FASTOD): for an attribute set `X`, the partition `Π_X` groups tuple ids into
//! equivalence classes of tuples agreeing on every attribute of `X`.  A
//! **stripped** partition drops singleton classes — they can never contribute a
//! split or a swap, and on real data most classes become singletons quickly, so
//! stripping is what makes level-wise traversal near-linear per candidate.
//!
//! Partitions compose: `Π_{X ∪ {A}}` is computed from `Π_X` by bucketing each
//! class by `A`'s order-preserving code column (see
//! [`od_core::ColumnarEncoding`]) — a linear pass over the tuples still in
//! classes, *not* an `O(n log n)` re-sort.  Bucketing sorts `(code, row)`
//! pairs; large classes go through the stable LSB
//! [radix sort](od_core::radix) (dense codes over `n` rows need at most
//! `⌈log₂ n / 8⌉` counting passes), small ones through `sort_unstable` —
//! both produce the identical `(code, row)` lexicographic order, so the
//! resulting classes are bit-identical either way.  [`PartitionCache`]
//! memoizes partitions per attribute set so the lattice visits each set once,
//! and hands out code columns as cheap [`ColCodes`] views into the relation's
//! shared columnar encoding.
//!
//! [`SortedPartition`] orders the classes (plus the stripped-out singletons) of
//! `Π_set(X)` by the list `X`'s value order, which turns whole-OD validation
//! into two linear scans over groups (`Y` constant inside each group; `Y`
//! non-decreasing across consecutive groups) — the partition-powered
//! replacement for the sort-based `od-core` checker.

use od_core::{radix, AttrId, AttrList, AttrSet, ColumnarEncoding, Relation};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Pair count from which class bucketing switches from `sort_unstable` to the
/// radix sort (below it, the radix histogram pre-pass dominates).
const RADIX_MIN_PAIRS: usize = 256;

/// One attribute's code column, borrowed from the relation's shared
/// [`ColumnarEncoding`] — a cheap `Arc` + column-index handle that derefs to
/// the `&[u32]` slice every validator and refinement works on.
#[derive(Clone)]
pub struct ColCodes {
    enc: Arc<ColumnarEncoding>,
    col: usize,
}

impl ColCodes {
    /// A view of column `col` of `enc`.
    pub fn new(enc: Arc<ColumnarEncoding>, col: usize) -> Self {
        ColCodes { enc, col }
    }
}

impl std::ops::Deref for ColCodes {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        self.enc.codes(self.col)
    }
}

impl std::fmt::Debug for ColCodes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColCodes")
            .field("col", &self.col)
            .field("len", &self.enc.n_rows())
            .finish()
    }
}

/// Reusable scratch buffers for partition construction, held per
/// [`PartitionCache`] so the thousands of `refine_by` calls of a lattice
/// traversal stop re-allocating their working set (the only allocations left
/// are the surviving classes themselves).  Also accumulates the number of
/// radix counting passes spent, surfaced as the `discovery.radix_passes`
/// counter.
#[derive(Debug, Default)]
pub struct RefineScratch {
    /// `(code, row)` pairs of the class currently being bucketed.
    pairs: Vec<(u32, u32)>,
    /// Radix ping-pong buffer.
    radix: Vec<(u32, u32)>,
    /// Radix counting passes performed through this scratch.
    passes: u64,
}

impl RefineScratch {
    /// Total radix counting passes performed through this scratch so far.
    pub fn radix_passes(&self) -> u64 {
        self.passes
    }

    /// Fold another scratch's pass count into this one (used when sharded
    /// workers refine with their own scratches).
    pub fn absorb_passes(&mut self, passes: u64) {
        self.passes += passes;
    }
}

/// A stripped partition: equivalence classes (of size ≥ 2) of tuple ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    classes: Vec<Vec<u32>>,
    n_rows: usize,
}

impl StrippedPartition {
    /// The partition of the empty attribute set: one class holding every tuple
    /// (stripped away entirely when the relation has fewer than two rows).
    pub fn full(n_rows: usize) -> Self {
        let classes = if n_rows >= 2 {
            vec![(0..n_rows as u32).collect()]
        } else {
            Vec::new()
        };
        StrippedPartition { classes, n_rows }
    }

    /// Build `Π_{{A}}` from an attribute's code column.
    pub fn by_codes(codes: &[u32]) -> Self {
        Self::by_codes_with(codes, &mut RefineScratch::default())
    }

    /// [`Self::by_codes`] with caller-provided scratch buffers.
    pub fn by_codes_with(codes: &[u32], scratch: &mut RefineScratch) -> Self {
        let mut classes = Vec::new();
        scratch.pairs.clear();
        scratch
            .pairs
            .extend(codes.iter().enumerate().map(|(row, &c)| (c, row as u32)));
        emit_runs(scratch, &mut classes);
        // Deterministic class order (by first member) keeps traversal stable.
        classes.sort_by_key(|c| c[0]);
        StrippedPartition {
            classes,
            n_rows: codes.len(),
        }
    }

    /// Refine by one more attribute's code column: `Π_X · Π_{{A}}` restricted
    /// to the tuples `Π_X` still tracks.  Linear in [`Self::covered_rows`] up
    /// to the per-class sort on `(code, row)` pairs.
    pub fn refine_by(&self, codes: &[u32]) -> Self {
        self.refine_by_with(codes, &mut RefineScratch::default())
    }

    /// [`Self::refine_by`] with caller-provided scratch buffers: each class is
    /// bucketed by sorting its `(code, row)` pairs in a reused buffer —
    /// radix passes for large classes, `sort_unstable` for small ones — and
    /// emitting the runs of equal codes, instead of hashing into freshly
    /// allocated per-bucket vectors.  Output is identical on either sort path
    /// (classes in first-member order, members in ascending row order).
    pub fn refine_by_with(&self, codes: &[u32], scratch: &mut RefineScratch) -> Self {
        let mut classes = Vec::new();
        for class in &self.classes {
            scratch.pairs.clear();
            scratch
                .pairs
                .extend(class.iter().map(|&row| (codes[row as usize], row)));
            emit_runs(scratch, &mut classes);
        }
        classes.sort_by_key(|c| c[0]);
        StrippedPartition {
            classes,
            n_rows: self.n_rows,
        }
    }

    /// The equivalence classes (each of size ≥ 2).
    pub fn classes(&self) -> &[Vec<u32>] {
        &self.classes
    }

    /// Number of (non-singleton) classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of tuple ids still tracked (`‖Π‖` in TANE's notation).
    pub fn covered_rows(&self) -> usize {
        self.classes.iter().map(|c| c.len()).sum()
    }

    /// Number of rows of the underlying relation.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// True if every class is a singleton — the attribute set is a (super)key,
    /// so no two tuples agree on it and neither splits nor in-class swaps exist.
    pub fn is_key(&self) -> bool {
        self.classes.is_empty()
    }

    /// True if a single class covers the whole relation (the attribute set is
    /// constant on the instance, or empty).
    pub fn is_single_class(&self) -> bool {
        self.classes.len() == 1 && self.classes[0].len() == self.n_rows
    }
}

/// Sort `scratch.pairs` by `(code, row)` and push every run of ≥ 2 equal codes
/// as a class (rows come out in ascending order because the pairs enter in
/// ascending row order: the radix path is stable and the comparison path
/// tie-breaks on `row`, so both yield the same lexicographic order).
fn emit_runs(scratch: &mut RefineScratch, classes: &mut Vec<Vec<u32>>) {
    let pairs = &mut scratch.pairs;
    if pairs.len() >= RADIX_MIN_PAIRS {
        scratch.passes += u64::from(radix::sort_pairs(pairs, &mut scratch.radix));
    } else {
        pairs.sort_unstable();
    }
    let mut start = 0usize;
    for i in 1..=pairs.len() {
        if i == pairs.len() || pairs[i].0 != pairs[start].0 {
            if i - start >= 2 {
                classes.push(pairs[start..i].iter().map(|&(_, row)| row).collect());
            }
            start = i;
        }
    }
}

/// Memoizing builder of stripped partitions per attribute set, plus the
/// per-attribute code columns all validators work on (served as [`ColCodes`]
/// views into the relation's eagerly built [`ColumnarEncoding`]).
///
/// `Π_X` is computed once per distinct `X`, by refining the partition of a
/// maximal cached subset (in practice `X` minus its last attribute, which the
/// level-wise lattice has always already visited) — the *incremental partition
/// product* of FASTOD.
pub struct PartitionCache<'r> {
    rel: &'r Relation,
    enc: Arc<ColumnarEncoding>,
    /// Memoized partitions, keyed directly by the attribute-set bit mask —
    /// hashing a context costs one `u64` hash, not a `Vec<AttrId>` walk.
    partitions: HashMap<AttrSet, Rc<StrippedPartition>>,
    scratch: RefineScratch,
    /// Number of partition products (refinements) performed.
    pub products: usize,
    /// Memo hits: partition requests answered from the cache.
    pub hits: usize,
    /// Memo misses: partition requests that had to materialize (each recursive
    /// subset build counts as its own miss).
    pub misses: usize,
}

impl<'r> PartitionCache<'r> {
    /// A cache over one relation instance (grabs the shared columnar
    /// encoding, building it if the relation was mutated since construction).
    pub fn new(rel: &'r Relation) -> Self {
        PartitionCache {
            rel,
            enc: rel.encoding(),
            partitions: HashMap::new(),
            scratch: RefineScratch::default(),
            products: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The relation the cache serves.
    pub fn relation(&self) -> &'r Relation {
        self.rel
    }

    /// Order-preserving dense codes of one column — an O(1) view into the
    /// shared encoding (historically this memoized per-attribute sorts).
    pub fn codes(&self, attr: AttrId) -> ColCodes {
        ColCodes::new(self.enc.clone(), attr.index())
    }

    /// Radix counting passes spent on partition construction so far
    /// (serial and sharded refinements both accumulate here).
    pub fn radix_passes(&self) -> u64 {
        self.scratch.radix_passes()
    }

    /// The stripped partition `Π_X` (memoized).
    pub fn partition(&mut self, set: &AttrSet) -> Rc<StrippedPartition> {
        if let Some(p) = self.partitions.get(set) {
            self.hits += 1;
            return p.clone();
        }
        self.misses += 1;
        let part = match set.last() {
            None => StrippedPartition::full(self.rel.len()),
            Some(last) => {
                // Refine the partition of X minus its last attribute — under
                // level-wise traversal that subset is already cached, making
                // every product incremental.
                let base = set.without(last);
                let base_part = self.partition(&base);
                let codes = self.codes(last);
                self.products += 1;
                base_part.refine_by_with(&codes, &mut self.scratch)
            }
        };
        let rc = Rc::new(part);
        self.partitions.insert(*set, rc.clone());
        rc
    }

    /// Materialize a whole level's partitions in one pass, sharding the
    /// refinement work **by context** across up to `threads` threads.
    ///
    /// Each set's base (the set minus its last attribute) is resolved serially
    /// — under level-wise traversal it is already cached, and the `Rc`-handing
    /// cache cannot be touched from workers — then the per-context
    /// `refine_by` products run sharded ([`crate::parallel::refine_batch`]):
    /// refinement is a pure function of the base partition and the attribute's
    /// code column, so the results are bit-identical on every thread count
    /// (and so is the total radix pass count the workers hand back).
    /// Sets whose base is not cached (possible only outside the lattice's
    /// level discipline) fall back to the serial recursive path.
    pub fn partitions_batch(
        &mut self,
        sets: &[AttrSet],
        threads: usize,
    ) -> Vec<Rc<StrippedPartition>> {
        // Keep the base `Rc`s alive on this thread; workers see plain `&`s.
        type Base = (Rc<StrippedPartition>, ColCodes);
        let mut bases: Vec<Option<Base>> = Vec::with_capacity(sets.len());
        for set in sets {
            if self.partitions.contains_key(set) {
                self.hits += 1;
                bases.push(None);
                continue;
            }
            let base = match set.last() {
                Some(last) if self.partitions.contains_key(&set.without(last)) => {
                    let base_part = self.partitions[&set.without(last)].clone();
                    let codes = self.codes(last);
                    self.misses += 1;
                    Some((base_part, codes))
                }
                _ => None, // cached already handled; uncached base → serial fallback
            };
            if base.is_none() {
                // Serial fallback (also materializes the base for siblings;
                // counts its own misses).
                self.partition(set);
            }
            bases.push(base);
        }
        let jobs: Vec<Option<(&StrippedPartition, &[u32])>> = bases
            .iter()
            .map(|o| o.as_ref().map(|(b, c)| (&**b, &c[..])))
            .collect();
        let (fresh, worker_passes) = crate::parallel::refine_batch(&jobs, threads);
        self.scratch.absorb_passes(worker_passes);
        for (set, part) in sets.iter().zip(fresh) {
            if let Some(part) = part {
                self.products += 1;
                self.partitions.insert(*set, Rc::new(part));
            }
        }
        sets.iter()
            .map(|set| self.partitions[set].clone())
            .collect()
    }

    /// Number of distinct attribute sets whose partition has been materialized.
    pub fn cached_sets(&self) -> usize {
        self.partitions.len()
    }

    /// Evict every cached partition whose attribute set has exactly `len`
    /// attributes, returning how many were dropped.
    ///
    /// The level-wise lattice calls this to cap resident memory: partitions of
    /// level `k` are only ever refined into level `k + 1` partitions, so once
    /// level `k + 1` is fully materialized the level-`k` products are dead
    /// weight.  Eviction is safe, not merely sound: a later request for an
    /// evicted set transparently rebuilds it (recursively, from whatever
    /// subsets remain cached).
    pub fn evict_sets_of_size(&mut self, len: usize) -> usize {
        let before = self.partitions.len();
        self.partitions.retain(|key, _| key.len() != len);
        before - self.partitions.len()
    }
}

/// The classes of `Π_set(X)` — including the stripped-out singletons — ordered
/// by the list `X`'s lexicographic value order, with one representative row per
/// class.
///
/// Because every member of a class agrees on all of `set(X)`, ordering class
/// representatives by `X` orders the whole relation by `X`; an OD `X ↦ Y` then
/// reduces to (a) `Y` constant within each class and (b) `Y` non-decreasing
/// across consecutive classes.
#[derive(Debug)]
pub struct SortedPartition {
    /// Classes in `X` order: (representative row, all rows of the class).
    groups: Vec<(u32, Vec<u32>)>,
}

impl SortedPartition {
    /// Build the sorted partition for a list from the cache.
    pub fn for_list(cache: &mut PartitionCache<'_>, list: &AttrList) -> Self {
        let set = list.to_set();
        let part = cache.partition(&set);
        let n = part.n_rows();
        let mut in_class = vec![false; n];
        let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
        for class in part.classes() {
            for &row in class {
                in_class[row as usize] = true;
            }
            groups.push((class[0], class.clone()));
        }
        for row in 0..n as u32 {
            if !in_class[row as usize] {
                groups.push((row, vec![row]));
            }
        }
        // Sort representatives by the list's per-attribute codes: integer
        // comparisons, and only one row per class.
        let key_codes: Vec<ColCodes> = list.iter().map(|a| cache.codes(a)).collect();
        groups.sort_by(|a, b| {
            for codes in &key_codes {
                let ord = codes[a.0 as usize].cmp(&codes[b.0 as usize]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        SortedPartition { groups }
    }

    /// The groups in list order: (representative, class members).
    pub fn groups(&self) -> &[(u32, Vec<u32>)] {
        &self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::{Schema, Value};

    fn rel_from(rows: &[&[i64]]) -> Relation {
        let mut schema = Schema::new("t");
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        for i in 0..arity {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    }

    fn set(ids: &[u32]) -> AttrSet {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn full_partition_is_one_class_unless_tiny() {
        assert_eq!(StrippedPartition::full(5).num_classes(), 1);
        assert!(StrippedPartition::full(5).is_single_class());
        assert!(StrippedPartition::full(1).is_key());
        assert!(StrippedPartition::full(0).is_key());
    }

    #[test]
    fn by_codes_groups_equal_values_and_strips_singletons() {
        // Column: [5, 3, 5, 9, 3] → classes {0,2} and {1,4}; row 3 is stripped.
        let rel = rel_from(&[&[5], &[3], &[5], &[9], &[3]]);
        let codes = rel.rank_column(AttrId(0));
        let p = StrippedPartition::by_codes(&codes);
        assert_eq!(p.classes(), &[vec![0, 2], vec![1, 4]]);
        assert_eq!(p.covered_rows(), 4);
        assert!(!p.is_key());
    }

    #[test]
    fn refinement_matches_direct_construction() {
        let rel = rel_from(&[&[1, 1], &[1, 2], &[1, 1], &[2, 1], &[2, 1], &[1, 2]]);
        let mut cache = PartitionCache::new(&rel);
        let pa = cache.partition(&set(&[0]));
        let pab = cache.partition(&set(&[0, 1]));
        // Direct: group rows by both columns.
        assert_eq!(pa.num_classes(), 2);
        assert_eq!(pab.classes(), &[vec![0, 2], vec![1, 5], vec![3, 4]]);
        // Refinement never increases covered rows.
        assert!(pab.covered_rows() <= pa.covered_rows());
    }

    #[test]
    fn radix_and_comparison_bucketing_agree() {
        // Enough rows to clear RADIX_MIN_PAIRS, few enough distinct values
        // that classes stay large: the full-relation bucketing takes the
        // radix path while tiny per-class refinements take sort_unstable,
        // and both must produce identical partitions.
        let rows: Vec<Vec<i64>> = (0..600i64).map(|i| vec![i % 7, i % 3]).collect();
        let rows: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let rel = rel_from(&rows);
        let codes = rel.rank_column(AttrId(0));
        let mut scratch = RefineScratch::default();
        let via_radix = StrippedPartition::by_codes_with(&codes, &mut scratch);
        assert!(
            scratch.radix_passes() > 0,
            "600 pairs must take the radix path"
        );
        // Reference: comparison-sorted bucketing of the same pairs.
        let mut pairs: Vec<(u32, u32)> = codes
            .iter()
            .enumerate()
            .map(|(row, &c)| (c, row as u32))
            .collect();
        pairs.sort_unstable();
        let mut expected: Vec<Vec<u32>> = Vec::new();
        let mut start = 0;
        for i in 1..=pairs.len() {
            if i == pairs.len() || pairs[i].0 != pairs[start].0 {
                if i - start >= 2 {
                    expected.push(pairs[start..i].iter().map(|&(_, r)| r).collect());
                }
                start = i;
            }
        }
        expected.sort_by_key(|c| c[0]);
        assert_eq!(via_radix.classes(), &expected[..]);
        // And refining by the second column matches the cache-built product.
        let mut cache = PartitionCache::new(&rel);
        let pab = cache.partition(&set(&[0, 1]));
        let manual = via_radix.refine_by(&rel.rank_column(AttrId(1)));
        assert_eq!(*pab, manual);
    }

    #[test]
    fn key_sets_strip_to_nothing() {
        let rel = rel_from(&[&[1, 7], &[2, 7], &[3, 7]]);
        let mut cache = PartitionCache::new(&rel);
        assert!(cache.partition(&set(&[0])).is_key());
        // And refining a key by anything stays a key.
        assert!(cache.partition(&set(&[0, 1])).is_key());
        // A constant column is a single class.
        assert!(cache.partition(&set(&[1])).is_single_class());
    }

    #[test]
    fn cache_memoizes_and_counts_products() {
        let rel = rel_from(&[&[1, 1, 1], &[1, 2, 1], &[2, 1, 1], &[2, 2, 2]]);
        let mut cache = PartitionCache::new(&rel);
        cache.partition(&set(&[0, 1]));
        let products_after_first = cache.products;
        let hits_after_first = cache.hits;
        cache.partition(&set(&[0, 1]));
        assert_eq!(
            cache.products, products_after_first,
            "second lookup must hit the cache"
        );
        assert_eq!(cache.hits, hits_after_first + 1);
        assert!(
            cache.misses >= 2,
            "the set and its subset base are distinct materializations"
        );
        assert!(
            cache.cached_sets() >= 2,
            "subset partitions are cached on the way"
        );
    }

    #[test]
    fn cache_codes_view_matches_rank_column() {
        let rel = rel_from(&[&[5, 1], &[3, 1], &[5, 2]]);
        let cache = PartitionCache::new(&rel);
        for attr in [AttrId(0), AttrId(1)] {
            let view = cache.codes(attr);
            assert_eq!(&view[..], rel.rank_column(attr).as_slice());
        }
    }

    #[test]
    fn nulls_and_ties_partition_together() {
        let mut schema = Schema::new("t");
        schema.add_attr("a");
        let rel = Relation::from_rows(
            schema,
            vec![
                vec![Value::Null],
                vec![Value::Int(1)],
                vec![Value::Null],
                vec![Value::Int(1)],
            ],
        )
        .unwrap();
        let mut cache = PartitionCache::new(&rel);
        let p = cache.partition(&set(&[0]));
        assert_eq!(
            p.classes(),
            &[vec![0, 2], vec![1, 3]],
            "NULLs form their own class"
        );
    }

    #[test]
    fn sorted_partition_orders_groups_by_list_value() {
        // Rows: (2,9) (1,8) (2,7) (1,8) — Π_{a} classes {0,2} {1,3}.
        let rel = rel_from(&[&[2, 9], &[1, 8], &[2, 7], &[1, 8]]);
        let mut cache = PartitionCache::new(&rel);
        let sp = SortedPartition::for_list(&mut cache, &AttrList::new([AttrId(0)]));
        let reps: Vec<u32> = sp.groups().iter().map(|(rep, _)| *rep).collect();
        // a=1 group first (rep 1), then a=2 group (rep 0).
        assert_eq!(reps, vec![1, 0]);
        // Descending list puts a=2 first; singleton groups appear for the pair list.
        let sp2 = SortedPartition::for_list(&mut cache, &AttrList::new([AttrId(1), AttrId(0)]));
        assert_eq!(sp2.groups().len(), 3, "b distinguishes rows 0 and 2");
    }

    #[test]
    fn sorted_partition_of_empty_list_is_one_group() {
        let rel = rel_from(&[&[1], &[2]]);
        let mut cache = PartitionCache::new(&rel);
        let sp = SortedPartition::for_list(&mut cache, &AttrList::empty());
        assert_eq!(sp.groups().len(), 1);
        assert_eq!(sp.groups()[0].1.len(), 2);
    }
}
