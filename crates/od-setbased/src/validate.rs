//! Data-level validation of canonical statements and whole ODs against
//! stripped / sorted partitions, returning **violation evidence** rather than
//! bare booleans.
//!
//! Every statement check produces a [`Verdict`]: the minimal number of tuples
//! that must be removed for the statement to hold (the numerator of the
//! TANE-style `g3` error), a bounded sample of violating row pairs, and the
//! number of partition classes scanned.  Exact validation is the special case
//! `removal_count == 0`; approximate validation accepts any verdict whose
//! removal count stays within an error budget `⌊ε·n⌋`.
//!
//! The per-class removal counts are exact:
//!
//! * **constancy** `𝒞 : [] ↦ A` — a class becomes constant on `A` by keeping
//!   its largest `A`-value group, so the minimal removal is
//!   `|class| − max value-group size`;
//! * **compatibility** `𝒞 : A ~ B` — a class becomes swap-free by keeping a
//!   largest subset in which `A`-order never inverts `B`-order.  Sorting the
//!   class by `(code_A, code_B)`, such subsets are exactly the subsequences
//!   with non-decreasing `code_B` (ties on `A` are unconstrained and sort
//!   adjacent), so the minimal removal is `|class| −` the longest
//!   non-decreasing `B`-subsequence (an `O(k log k)` LIS pass).
//!
//! Classes are independent — removing tuples of one class cannot create
//! violations in another — so the statement-level removal count is the sum
//! over classes, and scans short-circuit once the running sum exceeds the
//! budget.
//!
//! All validators work on order-preserving rank codes (see
//! [`od_core::Relation::rank_column`]): equality is integer equality, order is
//! integer order, and every check is a linear pass over the rows a partition
//! still tracks — never an `O(n log n)` re-sort of the relation.

use crate::canonical::SetOd;
use crate::parallel;
use crate::partition::{PartitionCache, SortedPartition, StrippedPartition};
use od_core::{radix, OrderDependency};

/// Row-coverage threshold below which threaded validation is not worth the
/// spawning overhead.
pub const PARALLEL_ROW_THRESHOLD: usize = 8_192;

/// Maximum number of violating row pairs a verdict samples as witnesses.
pub const WITNESS_SAMPLE_CAP: usize = 8;

/// Class size from which the `u32` validators switch their per-class sorts
/// from `sort_unstable` to counting-sort radix passes.
const CLASS_RADIX_MIN: usize = 256;

/// An order-preserving code type the class validators can sort on.
///
/// Implemented for `u32` (the snapshot path's dense rank codes, see
/// [`od_core::ColumnarEncoding`]) and `u64` (the streaming path's gapped live
/// codes, see [`crate::stream`]).  The provided methods are plain
/// `sort_unstable` calls; the `u32` impl overrides them with stable LSB
/// [`od_core::radix`] counting passes once a class is large enough to
/// amortize the histogram pre-pass, packing `(a, b)` code pairs into a single
/// `u64` key.  Both routes produce the same sorted order — validators are
/// bit-identical either way.
///
/// **Precondition** shared by all three sorts: callers push class rows in
/// ascending row order, which lets the stable radix path stand in for a full
/// lexicographic `sort_unstable` (equal keys keep ascending rows either way).
/// These per-class sorts run inside worker threads, so unlike partition
/// refinement they record no `radix_passes` metrics — the scoped od-obs
/// registry is thread-local to the orchestrator.
pub trait ClassCode: Copy + Ord + Send + Sync {
    /// Sort `(code, row)` pairs by code, rows ascending within equal codes.
    fn sort_group_pairs(pairs: &mut Vec<(Self, u32)>) {
        pairs.sort_unstable();
    }

    /// Sort `(code_a, code_b)` pairs lexicographically.
    fn sort_key_pairs(pairs: &mut Vec<(Self, Self)>) {
        pairs.sort_unstable();
    }

    /// Sort `(code_a, code_b, row)` triples lexicographically.
    fn sort_triples(triples: &mut Vec<(Self, Self, u32)>) {
        triples.sort_unstable();
    }
}

/// Streaming live codes: class sizes in the ledger path stay small, so the
/// comparison-sort defaults are the right tool.
impl ClassCode for u64 {}

impl ClassCode for u32 {
    fn sort_group_pairs(pairs: &mut Vec<(u32, u32)>) {
        if pairs.len() < CLASS_RADIX_MIN {
            pairs.sort_unstable();
        } else {
            radix::sort_pairs(pairs, &mut Vec::new());
        }
    }

    fn sort_key_pairs(pairs: &mut Vec<(u32, u32)>) {
        if pairs.len() < CLASS_RADIX_MIN {
            pairs.sort_unstable();
            return;
        }
        // Pack both codes into one u64 key (payload unused — equal packed
        // keys are identical pairs, so any stable order is the sorted order).
        let mut keyed: Vec<(u64, u32)> = pairs
            .iter()
            .map(|&(a, b)| ((u64::from(a) << 32) | u64::from(b), 0))
            .collect();
        radix::sort_pairs(&mut keyed, &mut Vec::new());
        for (dst, &(key, _)) in pairs.iter_mut().zip(keyed.iter()) {
            *dst = ((key >> 32) as u32, key as u32);
        }
    }

    fn sort_triples(triples: &mut Vec<(u32, u32, u32)>) {
        if triples.len() < CLASS_RADIX_MIN {
            triples.sort_unstable();
            return;
        }
        let mut keyed: Vec<(u64, u32)> = triples
            .iter()
            .map(|&(a, b, row)| ((u64::from(a) << 32) | u64::from(b), row))
            .collect();
        radix::sort_pairs(&mut keyed, &mut Vec::new());
        for (dst, &(key, row)) in triples.iter_mut().zip(keyed.iter()) {
            *dst = ((key >> 32) as u32, key as u32, row);
        }
    }
}

/// The tuple-removal budget `⌊ε·n⌋` corresponding to an error threshold ε on
/// an `n`-row relation (non-finite or negative ε clamps to 0, ε ≥ 1 to `n`).
pub fn error_budget(n_rows: usize, epsilon: f64) -> usize {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        0
    } else if epsilon >= 1.0 {
        n_rows
    } else {
        (epsilon * n_rows as f64).floor() as usize
    }
}

/// Violation evidence from one statement (or whole-OD) check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Verdict {
    /// Minimal number of tuples to remove so the checked statement holds (the
    /// `g3` numerator).  Exact when the scan ran to completion; a lower bound
    /// when [`Self::exceeded`] is set; an upper bound when the verdict was
    /// inherited from a sub-context statement instead of scanned.
    pub removal_count: usize,
    /// True when the scan stopped early because `removal_count` went past the
    /// error budget — the count is then a lower bound, which is all an
    /// accept/reject decision needs.
    pub exceeded: bool,
    /// Sampled violating row pairs (at most [`WITNESS_SAMPLE_CAP`]): rows that
    /// disagree on the constant attribute, or a swap pair for compatibility.
    pub violating_pairs: Vec<(u32, u32)>,
    /// Partition classes examined before the scan finished or short-circuited.
    pub classes_scanned: usize,
}

impl Verdict {
    /// The verdict of a statement with no violations.
    pub fn clean() -> Self {
        Verdict::default()
    }

    /// Does the statement hold exactly (no tuple needs to be removed)?
    pub fn holds(&self) -> bool {
        self.removal_count == 0
    }

    /// Does the statement hold after removing at most `budget` tuples?
    ///
    /// Sound under early exit: a scan only stops once its running removal
    /// count strictly exceeds the budget, so `removal_count <= budget` implies
    /// the count is complete.
    pub fn within(&self, budget: usize) -> bool {
        self.removal_count <= budget
    }

    /// The `g3` error: the fraction of tuples to remove (0 on empty relations).
    pub fn g3(&self, n_rows: usize) -> f64 {
        if n_rows == 0 {
            0.0
        } else {
            self.removal_count as f64 / n_rows as f64
        }
    }

    /// Combine per-statement verdicts of one OD: the removal count becomes the
    /// **maximum** over statements — the `g3` score of the OD's worst canonical
    /// statement, which is the acceptance measure for approximate discovery and
    /// a lower bound on the OD-level `g3` (the true OD removal lies between the
    /// max and the sum of its statement removals, since statement satisfaction
    /// is monotone under tuple removal).
    pub fn join_max(&mut self, other: &Verdict) {
        self.removal_count = self.removal_count.max(other.removal_count);
        self.exceeded |= other.exceeded;
        self.classes_scanned += other.classes_scanned;
        for &pair in &other.violating_pairs {
            if self.violating_pairs.len() >= WITNESS_SAMPLE_CAP {
                break;
            }
            self.violating_pairs.push(pair);
        }
    }
}

/// Is `attr` (given by its codes) constant within one equivalence class?
///
/// Generic over the code type so both the snapshot path (dense `u32` rank
/// codes) and the streaming path (gapped `u64` live codes, see
/// [`crate::stream`]) share one implementation — any order-preserving code
/// assignment yields the same answer.
pub fn class_is_constant<C: Copy + Ord>(class: &[u32], codes: &[C]) -> bool {
    let first = codes[class[0] as usize];
    class.iter().all(|&row| codes[row as usize] == first)
}

/// Minimal tuples to remove so the class becomes constant on `attr`:
/// `|class| − max value-group size`.  Appends up to the remaining witness
/// capacity pairs of rows holding different values.
pub fn class_constancy_removal<C: ClassCode>(
    class: &[u32],
    codes: &[C],
    witnesses: &mut Vec<(u32, u32)>,
) -> usize {
    // Count value groups via a sorted scratch of the class's codes.  Classes
    // reaching this path are known non-constant, so the work is proportional
    // to actual violations.
    let mut sorted: Vec<(C, u32)> = class.iter().map(|&r| (codes[r as usize], r)).collect();
    C::sort_group_pairs(&mut sorted);
    let mut max_group = 0usize;
    let mut start = 0usize;
    for i in 1..=sorted.len() {
        if i == sorted.len() || sorted[i].0 != sorted[start].0 {
            max_group = max_group.max(i - start);
            start = i;
        }
    }
    // Witnesses: the class head against rows carrying a different value.
    let head = class[0];
    let head_code = codes[head as usize];
    for &row in class.iter().skip(1) {
        if witnesses.len() >= WITNESS_SAMPLE_CAP {
            break;
        }
        if codes[row as usize] != head_code {
            witnesses.push((head, row));
        }
    }
    class.len() - max_group
}

/// Are two attributes (given by their codes) order compatible within one
/// equivalence class — i.e. is there no pair `s, t` in the class with
/// `s.A < t.A` but `s.B > t.B`?
///
/// Runs by sorting the class's `(code_a, code_b)` pairs and requiring that the
/// minimum `B` of each successive `A`-group is no smaller than the maximum `B`
/// seen in earlier groups.  Ties on `A` never produce swaps.
pub fn class_is_compatible<C: ClassCode>(class: &[u32], codes_a: &[C], codes_b: &[C]) -> bool {
    if class.len() < 2 {
        return true;
    }
    let mut pairs: Vec<(C, C)> = class
        .iter()
        .map(|&row| (codes_a[row as usize], codes_b[row as usize]))
        .collect();
    C::sort_key_pairs(&mut pairs);
    let mut prev_groups_max_b: Option<C> = None;
    let mut group_a = pairs[0].0;
    let mut group_max_b = pairs[0].1;
    for &(a, b) in &pairs[1..] {
        if a != group_a {
            // New A-group: its smallest B (this element, since pairs are sorted)
            // must not undercut any earlier group's B.
            prev_groups_max_b = Some(prev_groups_max_b.map_or(group_max_b, |m| m.max(group_max_b)));
            if b < prev_groups_max_b.expect("just set") {
                return false;
            }
            group_a = a;
            group_max_b = b;
        } else {
            group_max_b = group_max_b.max(b);
        }
    }
    true
}

/// Minimal tuples to remove so the class becomes swap-free on `(A, B)`.
///
/// A kept subset is swap-free iff, ordered by `(code_a, code_b)`, its `code_b`
/// sequence is non-decreasing (elements tied on `A` are mutually unconstrained
/// and sort adjacent, so any non-decreasing-`B` subsequence of the sorted class
/// is swap-free and vice versa).  The largest such subset is the longest
/// non-decreasing subsequence of `B`, found with the `O(k log k)` patience
/// pass.  Appends up to the remaining witness capacity swap pairs.
pub fn class_compatibility_removal<C: ClassCode>(
    class: &[u32],
    codes_a: &[C],
    codes_b: &[C],
    witnesses: &mut Vec<(u32, u32)>,
) -> usize {
    if class.len() < 2 {
        return 0;
    }
    let mut triples: Vec<(C, C, u32)> = class
        .iter()
        .map(|&row| (codes_a[row as usize], codes_b[row as usize], row))
        .collect();
    C::sort_triples(&mut triples);
    // Longest non-decreasing subsequence of B: `tails[k]` is the smallest tail
    // of any non-decreasing subsequence of length `k + 1`.
    let mut tails: Vec<C> = Vec::new();
    // Swap witnesses: the running maximum B (with its row) of *previous*
    // A-groups; any row of a later group with a smaller B is a swap partner.
    let mut prev_max: Option<(C, u32)> = None; // (code_b, row) over closed A-groups
    let mut group_a = triples[0].0;
    let mut group_max: (C, u32) = (triples[0].1, triples[0].2);
    for &(a, b, row) in &triples {
        if a != group_a {
            prev_max = Some(match prev_max {
                Some(m) if m.0 >= group_max.0 => m,
                _ => group_max,
            });
            group_a = a;
            group_max = (b, row);
        } else if b > group_max.0 {
            group_max = (b, row);
        }
        if let Some((mb, mrow)) = prev_max {
            if b < mb && witnesses.len() < WITNESS_SAMPLE_CAP {
                witnesses.push((mrow, row));
            }
        }
        let pos = tails.partition_point(|&t| t <= b);
        if pos == tails.len() {
            tails.push(b);
        } else {
            tails[pos] = b;
        }
    }
    class.len() - tails.len()
}

/// Validate `𝒞 : [] ↦ A` over a stripped partition of `𝒞`, stopping once the
/// removal count exceeds `budget` (the serial case of
/// [`parallel::constancy_verdict_parallel`] — one scan loop serves both).
pub fn constancy_verdict(part: &StrippedPartition, codes: &[u32], budget: usize) -> Verdict {
    parallel::constancy_verdict_parallel(part, codes, 1, budget)
}

/// Validate `𝒞 : A ~ B` over a stripped partition of `𝒞`, stopping once the
/// removal count exceeds `budget` (the serial case of
/// [`parallel::compatibility_verdict_parallel`]).
pub fn compatibility_verdict(
    part: &StrippedPartition,
    codes_a: &[u32],
    codes_b: &[u32],
    budget: usize,
) -> Verdict {
    parallel::compatibility_verdict_parallel(part, codes_a, codes_b, 1, budget)
}

/// Validate one canonical statement against the data: fetch (or build) the
/// context's stripped partition and scan it, sharding classes across
/// `threads` threads when the partition covers at least
/// [`PARALLEL_ROW_THRESHOLD`] rows.  The single dispatch point shared by the
/// lattice traversal and the demand-driven engine.
///
/// `budget` is the tuple-removal allowance `⌊ε·n⌋`: the scan short-circuits
/// once the statement's removal count exceeds it (0 = exact validation with
/// the classic first-violation early exit).  The accept/reject decision
/// (`verdict.within(budget)`) is deterministic across thread counts; the
/// sampled witnesses and the exact overshoot of a rejected verdict are not.
pub fn statement_verdict(
    cache: &mut PartitionCache<'_>,
    stmt: &SetOd,
    threads: usize,
    budget: usize,
) -> Verdict {
    let part = cache.partition(stmt.context());
    if part.is_key() {
        // No two tuples agree on the context: classes are all singletons, so
        // neither a split nor an in-class swap can exist.
        return Verdict::clean();
    }
    let threads = if threads > 1 && part.covered_rows() >= PARALLEL_ROW_THRESHOLD {
        threads
    } else {
        1
    };
    match stmt {
        SetOd::Constancy { attr, .. } => {
            let codes = cache.codes(*attr);
            parallel::constancy_verdict_parallel(&part, &codes, threads, budget)
        }
        SetOd::Compatibility { a, b, .. } => {
            let ca = cache.codes(*a);
            let cb = cache.codes(*b);
            parallel::compatibility_verdict_parallel(&part, &ca, &cb, threads, budget)
        }
    }
}

/// Validate a whole list OD `X ↦ Y` via a sorted partition: `Y` must be
/// constant within every `Π_set(X)` class (else a split) and non-decreasing
/// across classes in `X` order (else a swap).
///
/// Semantically identical to [`od_core::check::od_holds`]; the cost model is
/// different — class representatives are sorted instead of all rows, and all
/// comparisons are on cached integer codes.
pub fn od_holds_with_partitions(cache: &mut PartitionCache<'_>, od: &OrderDependency) -> bool {
    let n = cache.relation().len();
    if n < 2 {
        return true;
    }
    let sorted = SortedPartition::for_list(cache, &od.lhs);
    let rhs_codes: Vec<_> = od.rhs.iter().map(|a| cache.codes(a)).collect();
    let mut prev_rep: Option<u32> = None;
    for (rep, class) in sorted.groups() {
        // Split check: every class member agrees with the representative on Y.
        for codes in &rhs_codes {
            if !class_is_constant(class, codes) {
                return false;
            }
        }
        // Swap check: representatives are strictly increasing on X (distinct
        // classes differ on set(X)), so Y must be non-decreasing.
        if let Some(prev) = prev_rep {
            for codes in &rhs_codes {
                match codes[prev as usize].cmp(&codes[*rep as usize]) {
                    std::cmp::Ordering::Less => break,
                    std::cmp::Ordering::Equal => continue,
                    std::cmp::Ordering::Greater => return false,
                }
            }
        }
        prev_rep = Some(*rep);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::check::od_holds;
    use od_core::{AttrId, AttrList, Relation, Schema, Value};

    fn rel_from(rows: &[&[i64]]) -> Relation {
        let mut schema = Schema::new("t");
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        for i in 0..arity {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    }

    #[test]
    fn class_constancy_detects_variation() {
        let codes = [0u32, 1, 1, 0];
        assert!(class_is_constant(&[1, 2], &codes));
        assert!(!class_is_constant(&[0, 1], &codes));
        assert!(class_is_constant(&[3], &codes));
    }

    #[test]
    fn class_compatibility_handles_ties_and_swaps() {
        // a: 0 0 1 1, b: 5 7 7 9 — compatible (ties on a, b rises).
        let a = [0u32, 0, 1, 1];
        let b = [5u32, 7, 7, 9];
        assert!(class_is_compatible(&[0, 1, 2, 3], &a, &b));
        // b2: 5 7 6 9 — swap: row1 (a=0,b=7) vs row2 (a=1,b=6).
        let b2 = [5u32, 7, 6, 9];
        assert!(!class_is_compatible(&[0, 1, 2, 3], &a, &b2));
        // Equal a values never swap even with wild b.
        let a3 = [4u32, 4, 4, 4];
        assert!(class_is_compatible(&[0, 1, 2, 3], &a3, &b2));
        // Singleton and pair classes.
        assert!(class_is_compatible(&[2], &a, &b2));
        assert!(class_is_compatible(&[0, 1], &a, &b2));
    }

    #[test]
    fn swap_detection_needs_strictly_smaller_b_in_later_group() {
        // a: 0 1, b: 3 3 — equal b across groups is fine (non-decreasing).
        assert!(class_is_compatible(&[0, 1], &[0u32, 1], &[3, 3]));
        // a: 0 1, b: 3 2 — genuine swap.
        assert!(!class_is_compatible(&[0, 1], &[0u32, 1], &[3, 2]));
    }

    #[test]
    fn constancy_removal_is_size_minus_largest_group() {
        let codes = [0u32, 1, 1, 2, 1];
        let mut w = Vec::new();
        // Class {0,1,2,3,4}: groups {0}, {1,2,4}, {3} → keep 3, remove 2.
        assert_eq!(class_constancy_removal(&[0, 1, 2, 3, 4], &codes, &mut w), 2);
        assert!(!w.is_empty() && w.len() <= WITNESS_SAMPLE_CAP);
        for &(s, t) in &w {
            assert_ne!(codes[s as usize], codes[t as usize]);
        }
        // A constant class removes nothing.
        let mut w2 = Vec::new();
        assert_eq!(class_constancy_removal(&[1, 2, 4], &codes, &mut w2), 0);
        assert!(w2.is_empty());
    }

    #[test]
    fn compatibility_removal_is_size_minus_longest_chain() {
        // a: 0 1 2 3, b: 0 9 1 2 — drop row 1 (b=9) and the rest chains.
        let a = [0u32, 1, 2, 3];
        let b = [0u32, 9, 1, 2];
        let mut w = Vec::new();
        assert_eq!(
            class_compatibility_removal(&[0, 1, 2, 3], &a, &b, &mut w),
            1
        );
        // Each witness is a genuine swap pair.
        assert!(!w.is_empty());
        for &(s, t) in &w {
            let (si, ti) = (s as usize, t as usize);
            assert!(
                (a[si] < a[ti] && b[si] > b[ti]) || (a[ti] < a[si] && b[ti] > b[si]),
                "({s},{t}) is not a swap"
            );
        }
        // Fully reversed: keep one tuple per strictly-decreasing chain.
        let a2 = [0u32, 1, 2];
        let b2 = [2u32, 1, 0];
        let mut w2 = Vec::new();
        assert_eq!(
            class_compatibility_removal(&[0, 1, 2], &a2, &b2, &mut w2),
            2
        );
        // Ties on A are unconstrained: no removal however wild B is.
        let a3 = [5u32, 5, 5];
        let mut w3 = Vec::new();
        assert_eq!(
            class_compatibility_removal(&[0, 1, 2], &a3, &b2, &mut w3),
            0
        );
        assert!(w3.is_empty());
    }

    #[test]
    fn class_code_radix_overrides_match_comparison_defaults() {
        // A class big enough to push every u32 sort onto the radix path; the
        // u64 impl runs the provided sort_unstable defaults on the same data,
        // so removal counts AND witness pairs must agree bit-for-bit.
        let n = 2 * CLASS_RADIX_MIN as u32;
        let class: Vec<u32> = (0..n).collect();
        let codes_a: Vec<u32> = (0..n).map(|i| (i.wrapping_mul(7919)) % 13).collect();
        let codes_b: Vec<u32> = (0..n).map(|i| (i.wrapping_mul(104_729)) % 11).collect();
        let a64: Vec<u64> = codes_a.iter().map(|&c| u64::from(c)).collect();
        let b64: Vec<u64> = codes_b.iter().map(|&c| u64::from(c)).collect();
        let (mut w32, mut w64) = (Vec::new(), Vec::new());
        assert_eq!(
            class_constancy_removal(&class, &codes_a, &mut w32),
            class_constancy_removal(&class, &a64, &mut w64)
        );
        assert_eq!(w32, w64);
        let (mut w32, mut w64) = (Vec::new(), Vec::new());
        assert_eq!(
            class_compatibility_removal(&class, &codes_a, &codes_b, &mut w32),
            class_compatibility_removal(&class, &a64, &b64, &mut w64)
        );
        assert_eq!(w32, w64);
        assert_eq!(
            class_is_compatible(&class, &codes_a, &codes_b),
            class_is_compatible(&class, &a64, &b64)
        );
    }

    #[test]
    fn verdict_budget_short_circuits() {
        // Ten all-different pairs under one constant context column.
        let rows: Vec<Vec<i64>> = (0..10).map(|i| vec![0, i]).collect();
        let rows: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let rel = rel_from(&rows);
        let ctx = rel.rank_column(AttrId(0));
        let a = rel.rank_column(AttrId(1));
        let part = StrippedPartition::by_codes(&ctx);
        // Exact: removal 9 (keep one of ten values).
        let exact = constancy_verdict(&part, &a, usize::MAX);
        assert_eq!(exact.removal_count, 9);
        assert!(!exact.exceeded && !exact.holds() && exact.within(9));
        // Budget 3: the scan stops as soon as the count passes 3.
        let clipped = constancy_verdict(&part, &a, 3);
        assert!(clipped.exceeded && !clipped.within(3));
        assert!(clipped.removal_count > 3);
    }

    #[test]
    fn error_budget_clamps() {
        assert_eq!(error_budget(100, 0.0), 0);
        assert_eq!(error_budget(100, -0.5), 0);
        assert_eq!(error_budget(100, f64::NAN), 0);
        assert_eq!(error_budget(100, 0.05), 5);
        assert_eq!(error_budget(100, 1.0), 100);
        assert_eq!(error_budget(100, 7.0), 100);
        assert_eq!(error_budget(0, 0.5), 0);
    }

    #[test]
    fn verdict_join_caps_witnesses_and_takes_the_max() {
        let part = Verdict {
            removal_count: 2,
            exceeded: false,
            violating_pairs: vec![(0, 1); WITNESS_SAMPLE_CAP],
            classes_scanned: 1,
        };
        let mut m = Verdict::clean();
        m.join_max(&part);
        m.join_max(&part);
        assert_eq!(m.violating_pairs.len(), WITNESS_SAMPLE_CAP);
        m.join_max(&Verdict {
            removal_count: 7,
            ..Verdict::clean()
        });
        assert_eq!(m.removal_count, 7);
        assert_eq!(m.classes_scanned, 2);
        assert_eq!(m.g3(14), 0.5);
    }

    #[test]
    fn partition_od_check_agrees_with_sort_based_checker() {
        let rel = rel_from(&[
            &[1, 10, 100],
            &[2, 10, 200],
            &[2, 10, 200],
            &[3, 20, 300],
            &[4, 20, 100],
        ]);
        let ids: Vec<AttrId> = rel.schema().attr_ids().collect();
        let lists: Vec<AttrList> = vec![
            AttrList::empty(),
            AttrList::new([ids[0]]),
            AttrList::new([ids[1]]),
            AttrList::new([ids[2]]),
            AttrList::new([ids[0], ids[1]]),
            AttrList::new([ids[1], ids[2]]),
            AttrList::new([ids[2], ids[0]]),
        ];
        let mut cache = PartitionCache::new(&rel);
        for lhs in &lists {
            for rhs in &lists {
                let od = OrderDependency::new(lhs.clone(), rhs.clone());
                assert_eq!(
                    od_holds_with_partitions(&mut cache, &od),
                    od_holds(&rel, &od),
                    "disagreement on {od}"
                );
            }
        }
    }

    #[test]
    fn tiny_relations_satisfy_everything() {
        let rel = rel_from(&[&[1, 2]]);
        let ids: Vec<AttrId> = rel.schema().attr_ids().collect();
        let mut cache = PartitionCache::new(&rel);
        let od = OrderDependency::new(vec![ids[1]], vec![ids[0]]);
        assert!(od_holds_with_partitions(&mut cache, &od));
        let empty = rel_from(&[]);
        let mut cache2 = PartitionCache::new(&empty);
        assert!(od_holds_with_partitions(
            &mut cache2,
            &OrderDependency::new(AttrList::empty(), AttrList::empty())
        ));
    }
}
