//! Data-level validation of canonical statements and whole ODs against
//! stripped / sorted partitions.
//!
//! All validators work on order-preserving rank codes (see
//! [`od_core::Relation::rank_column`]): equality is integer equality, order is
//! integer order, and every check is a linear pass over the rows a partition
//! still tracks — never an `O(n log n)` re-sort of the relation.

use crate::canonical::SetOd;
use crate::parallel;
use crate::partition::{PartitionCache, SortedPartition, StrippedPartition};
use od_core::OrderDependency;

/// Row-coverage threshold below which threaded validation is not worth the
/// spawning overhead.
pub const PARALLEL_ROW_THRESHOLD: usize = 8_192;

/// Is `attr` (given by its codes) constant within one equivalence class?
pub fn class_is_constant(class: &[u32], codes: &[u32]) -> bool {
    let first = codes[class[0] as usize];
    class.iter().all(|&row| codes[row as usize] == first)
}

/// Are two attributes (given by their codes) order compatible within one
/// equivalence class — i.e. is there no pair `s, t` in the class with
/// `s.A < t.A` but `s.B > t.B`?
///
/// Runs by sorting the class's `(code_a, code_b)` pairs and requiring that the
/// minimum `B` of each successive `A`-group is no smaller than the maximum `B`
/// seen in earlier groups.  Ties on `A` never produce swaps.
pub fn class_is_compatible(class: &[u32], codes_a: &[u32], codes_b: &[u32]) -> bool {
    if class.len() < 2 {
        return true;
    }
    let mut pairs: Vec<(u32, u32)> = class
        .iter()
        .map(|&row| (codes_a[row as usize], codes_b[row as usize]))
        .collect();
    pairs.sort_unstable();
    let mut prev_groups_max_b: Option<u32> = None;
    let mut group_a = pairs[0].0;
    let mut group_max_b = pairs[0].1;
    for &(a, b) in &pairs[1..] {
        if a != group_a {
            // New A-group: its smallest B (this element, since pairs are sorted)
            // must not undercut any earlier group's B.
            prev_groups_max_b = Some(prev_groups_max_b.map_or(group_max_b, |m| m.max(group_max_b)));
            if b < prev_groups_max_b.expect("just set") {
                return false;
            }
            group_a = a;
            group_max_b = b;
        } else {
            group_max_b = group_max_b.max(b);
        }
    }
    true
}

/// Validate `𝒞 : [] ↦ A` over a stripped partition of `𝒞`.
pub fn constancy_holds(part: &StrippedPartition, codes: &[u32]) -> bool {
    part.classes()
        .iter()
        .all(|class| class_is_constant(class, codes))
}

/// Validate `𝒞 : A ~ B` over a stripped partition of `𝒞`.
pub fn compatibility_holds(part: &StrippedPartition, codes_a: &[u32], codes_b: &[u32]) -> bool {
    part.classes()
        .iter()
        .all(|class| class_is_compatible(class, codes_a, codes_b))
}

/// Validate one canonical statement against the data: fetch (or build) the
/// context's stripped partition and scan it, sharding classes across
/// `threads` threads when the partition covers at least
/// [`PARALLEL_ROW_THRESHOLD`] rows.  The single dispatch point shared by the
/// lattice traversal and the demand-driven engine.
pub fn statement_scan(cache: &mut PartitionCache<'_>, stmt: &SetOd, threads: usize) -> bool {
    let part = cache.partition(stmt.context());
    if part.is_key() {
        // No two tuples agree on the context: classes are all singletons, so
        // neither a split nor an in-class swap can exist.
        return true;
    }
    let threads = if threads > 1 && part.covered_rows() >= PARALLEL_ROW_THRESHOLD {
        threads
    } else {
        1
    };
    match stmt {
        SetOd::Constancy { attr, .. } => {
            let codes = cache.codes(*attr);
            if threads > 1 {
                parallel::constancy_holds_parallel(&part, &codes, threads)
            } else {
                constancy_holds(&part, &codes)
            }
        }
        SetOd::Compatibility { a, b, .. } => {
            let ca = cache.codes(*a);
            let cb = cache.codes(*b);
            if threads > 1 {
                parallel::compatibility_holds_parallel(&part, &ca, &cb, threads)
            } else {
                compatibility_holds(&part, &ca, &cb)
            }
        }
    }
}

/// Validate a whole list OD `X ↦ Y` via a sorted partition: `Y` must be
/// constant within every `Π_set(X)` class (else a split) and non-decreasing
/// across classes in `X` order (else a swap).
///
/// Semantically identical to [`od_core::check::od_holds`]; the cost model is
/// different — class representatives are sorted instead of all rows, and all
/// comparisons are on cached integer codes.
pub fn od_holds_with_partitions(cache: &mut PartitionCache<'_>, od: &OrderDependency) -> bool {
    let n = cache.relation().len();
    if n < 2 {
        return true;
    }
    let sorted = SortedPartition::for_list(cache, &od.lhs);
    let rhs_codes: Vec<_> = od.rhs.iter().map(|a| cache.codes(a)).collect();
    let mut prev_rep: Option<u32> = None;
    for (rep, class) in sorted.groups() {
        // Split check: every class member agrees with the representative on Y.
        for codes in &rhs_codes {
            if !class_is_constant(class, codes) {
                return false;
            }
        }
        // Swap check: representatives are strictly increasing on X (distinct
        // classes differ on set(X)), so Y must be non-decreasing.
        if let Some(prev) = prev_rep {
            for codes in &rhs_codes {
                match codes[prev as usize].cmp(&codes[*rep as usize]) {
                    std::cmp::Ordering::Less => break,
                    std::cmp::Ordering::Equal => continue,
                    std::cmp::Ordering::Greater => return false,
                }
            }
        }
        prev_rep = Some(*rep);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::check::od_holds;
    use od_core::{AttrId, AttrList, Relation, Schema, Value};

    fn rel_from(rows: &[&[i64]]) -> Relation {
        let mut schema = Schema::new("t");
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        for i in 0..arity {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap()
    }

    #[test]
    fn class_constancy_detects_variation() {
        let codes = [0u32, 1, 1, 0];
        assert!(class_is_constant(&[1, 2], &codes));
        assert!(!class_is_constant(&[0, 1], &codes));
        assert!(class_is_constant(&[3], &codes));
    }

    #[test]
    fn class_compatibility_handles_ties_and_swaps() {
        // a: 0 0 1 1, b: 5 7 7 9 — compatible (ties on a, b rises).
        let a = [0u32, 0, 1, 1];
        let b = [5u32, 7, 7, 9];
        assert!(class_is_compatible(&[0, 1, 2, 3], &a, &b));
        // b2: 5 7 6 9 — swap: row1 (a=0,b=7) vs row2 (a=1,b=6).
        let b2 = [5u32, 7, 6, 9];
        assert!(!class_is_compatible(&[0, 1, 2, 3], &a, &b2));
        // Equal a values never swap even with wild b.
        let a3 = [4u32, 4, 4, 4];
        assert!(class_is_compatible(&[0, 1, 2, 3], &a3, &b2));
        // Singleton and pair classes.
        assert!(class_is_compatible(&[2], &a, &b2));
        assert!(class_is_compatible(&[0, 1], &a, &b2));
    }

    #[test]
    fn swap_detection_needs_strictly_smaller_b_in_later_group() {
        // a: 0 1, b: 3 3 — equal b across groups is fine (non-decreasing).
        assert!(class_is_compatible(&[0, 1], &[0, 1], &[3, 3]));
        // a: 0 1, b: 3 2 — genuine swap.
        assert!(!class_is_compatible(&[0, 1], &[0, 1], &[3, 2]));
    }

    #[test]
    fn partition_od_check_agrees_with_sort_based_checker() {
        let rel = rel_from(&[
            &[1, 10, 100],
            &[2, 10, 200],
            &[2, 10, 200],
            &[3, 20, 300],
            &[4, 20, 100],
        ]);
        let ids: Vec<AttrId> = rel.schema().attr_ids().collect();
        let lists: Vec<AttrList> = vec![
            AttrList::empty(),
            AttrList::new([ids[0]]),
            AttrList::new([ids[1]]),
            AttrList::new([ids[2]]),
            AttrList::new([ids[0], ids[1]]),
            AttrList::new([ids[1], ids[2]]),
            AttrList::new([ids[2], ids[0]]),
        ];
        let mut cache = PartitionCache::new(&rel);
        for lhs in &lists {
            for rhs in &lists {
                let od = OrderDependency::new(lhs.clone(), rhs.clone());
                assert_eq!(
                    od_holds_with_partitions(&mut cache, &od),
                    od_holds(&rel, &od),
                    "disagreement on {od}"
                );
            }
        }
    }

    #[test]
    fn tiny_relations_satisfy_everything() {
        let rel = rel_from(&[&[1, 2]]);
        let ids: Vec<AttrId> = rel.schema().attr_ids().collect();
        let mut cache = PartitionCache::new(&rel);
        let od = OrderDependency::new(vec![ids[1]], vec![ids[0]]);
        assert!(od_holds_with_partitions(&mut cache, &od));
        let empty = rel_from(&[]);
        let mut cache2 = PartitionCache::new(&empty);
        assert!(od_holds_with_partitions(
            &mut cache2,
            &OrderDependency::new(AttrList::empty(), AttrList::empty())
        ));
    }
}
