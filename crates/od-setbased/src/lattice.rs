//! Level-wise lattice traversal discovering all valid canonical statements.
//!
//! Contexts (attribute sets) are visited by size — level `k` holds the
//! `|U| choose k` contexts of size `k` — and at each context the candidate sets
//! are the **constancy** candidates `𝒞 : [] ↦ A` (`A ∉ 𝒞`) and the
//! **compatibility** candidates `𝒞 : A ~ B` (`A, B ∉ 𝒞`).  Three pruning rules
//! keep data validation rare:
//!
//! 1. **Context monotonicity** (set-based axiom): a statement that holds at a
//!    context holds at every superset context — candidates subsumed by an
//!    already-confirmed statement are inherited, not validated.
//! 2. **Constancy subsumes compatibility**: if `𝒞 : [] ↦ A` holds then
//!    `𝒞 : A ~ B` holds for every `B` (a constant never swaps).
//! 3. **Logical implication** (optional): the exact [`od_infer::Decider`] over
//!    the statements confirmed so far — sound and complete for OD implication —
//!    catches non-subset consequences such as FD transitivity.
//!
//! What survives is validated against stripped partitions from the shared
//! [`PartitionCache`] (in parallel when configured), so each level's products
//! refine the previous level's partitions incrementally.  With a non-zero
//! error threshold `ε`, candidates are accepted when their `g3` removal count
//! stays within `⌊ε·n⌋` tuples; rules 1–2 remain sound (they rest on a single
//! premise and statement satisfaction is monotone under context growth and
//! tuple removal), but rule 3 combines *many* premises — whose removal sets
//! may differ — so the decider is only consulted in exact mode.

use crate::canonical::SetOd;
use crate::partition::PartitionCache;
use crate::validate::{self, Verdict};
use od_core::{AttrId, AttrSet, OrderDependency, Relation};
use od_infer::{Decider, OdSet};
use std::collections::HashSet;

/// Configuration for a lattice traversal.
#[derive(Debug, Clone, Copy)]
pub struct LatticeConfig {
    /// Largest context size to visit (level bound).
    pub max_context: usize,
    /// Consult the exact implication decider before validating a candidate
    /// (only sound — and only consulted — when `epsilon == 0`).
    pub use_decider: bool,
    /// Threads for partition-class validation (1 = serial).
    pub threads: usize,
    /// `g3` error threshold: accept statements that hold after removing at
    /// most `⌊ε·n⌋` tuples (0.0 = exact discovery).
    pub epsilon: f64,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        LatticeConfig {
            max_context: 2,
            use_decider: true,
            threads: 1,
            epsilon: 0.0,
        }
    }
}

/// Counters describing how a traversal resolved its candidates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatticeStats {
    /// Candidate statements enumerated.
    pub candidates: usize,
    /// Candidates checked against the data (partition scans).
    pub validated: usize,
    /// Candidates resolved by context monotonicity / constancy subsumption.
    pub inherited: usize,
    /// Candidates resolved by the implication decider.
    pub decider_pruned: usize,
}

/// The result of a traversal: all valid canonical statements up to the context
/// bound, in minimal form.
#[derive(Debug, Clone)]
pub struct SetBasedDiscovery {
    minimal: Vec<SetOd>,
    verdicts: Vec<Verdict>,
    holding: HashSet<SetOd>,
    max_context: usize,
    budget: usize,
    /// How candidates were resolved.
    pub stats: LatticeStats,
}

impl SetBasedDiscovery {
    /// The minimal valid statements: those not inherited from a smaller context
    /// and not implied by previously confirmed statements.
    pub fn minimal_statements(&self) -> &[SetOd] {
        &self.minimal
    }

    /// The violation evidence of each minimal statement, aligned with
    /// [`Self::minimal_statements`] (all-zero removals in exact mode).
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// The tuple-removal budget the traversal accepted statements under.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Does a statement hold on the profiled instance (within the traversal's
    /// error budget)?
    ///
    /// Sound always; complete for contexts up to the traversal's
    /// `max_context` (larger contexts are answered via monotonicity from
    /// confirmed statements, which can only under-approximate).
    pub fn holds(&self, stmt: &SetOd) -> bool {
        if let Some(normalized) = stmt.normalized() {
            return self.holds(&normalized);
        }
        if stmt.is_trivial() || self.holding.contains(stmt) {
            return true;
        }
        let ctx = stmt.context();
        self.minimal.iter().any(|m| match (m, stmt) {
            (SetOd::Constancy { context, attr }, SetOd::Constancy { attr: qattr, .. }) => {
                attr == qattr && context.is_subset(ctx)
            }
            (SetOd::Compatibility { context, a, b }, SetOd::Compatibility { a: qa, b: qb, .. }) => {
                a == qa && b == qb && context.is_subset(ctx)
            }
            // A minimal constancy of either pair attribute subsumes the
            // compatibility (rule 2).
            (SetOd::Constancy { context, attr }, SetOd::Compatibility { a: qa, b: qb, .. }) => {
                (attr == qa || attr == qb) && context.is_subset(ctx)
            }
            _ => false,
        })
    }

    /// The context bound the traversal ran with.
    pub fn max_context(&self) -> usize {
        self.max_context
    }

    /// The minimal statements as list-based ODs (constancies contribute one OD,
    /// compatibilities both directions of their defining equivalence).
    pub fn to_list_ods(&self) -> Vec<OrderDependency> {
        self.minimal.iter().flat_map(|s| s.as_list_ods()).collect()
    }
}

/// Enumerate all `k`-subsets of `universe` (in lexicographic index order).
fn subsets_of_size(universe: &[AttrId], k: usize) -> Vec<AttrSet> {
    fn rec(
        universe: &[AttrId],
        k: usize,
        start: usize,
        cur: &mut Vec<AttrId>,
        out: &mut Vec<AttrSet>,
    ) {
        if cur.len() == k {
            out.push(cur.iter().copied().collect());
            return;
        }
        for i in start..universe.len() {
            cur.push(universe[i]);
            rec(universe, k, i + 1, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(universe, k, 0, &mut Vec::new(), &mut out);
    out
}

/// Run a level-wise traversal over the relation's attribute lattice.
pub fn discover_statements(rel: &Relation, config: &LatticeConfig) -> SetBasedDiscovery {
    let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
    let mut cache = PartitionCache::new(rel);
    let mut result = SetBasedDiscovery {
        minimal: Vec::new(),
        verdicts: Vec::new(),
        holding: HashSet::new(),
        max_context: config.max_context,
        budget: validate::error_budget(rel.len(), config.epsilon),
        stats: LatticeStats::default(),
    };

    // The confirmed statements in list-OD form, grown as the traversal
    // confirms more — the decider (rule 3) always sees everything known.  The
    // decider itself is rebuilt lazily, only after `confirmed` has grown.
    let mut state = TraversalState {
        confirmed: OdSet::new(),
        decider: None,
    };
    for level in 0..=config.max_context.min(universe.len()) {
        for context in subsets_of_size(&universe, level) {
            let outside: Vec<AttrId> = universe
                .iter()
                .copied()
                .filter(|a| !context.contains(a))
                .collect();
            // Constancy candidates first: their results feed rule 2 below.
            for &attr in &outside {
                let stmt = SetOd::constancy(context.clone(), attr);
                resolve(&mut result, &mut cache, config, &mut state, stmt);
            }
            for (i, &a) in outside.iter().enumerate() {
                for &b in &outside[i + 1..] {
                    let stmt = SetOd::compatibility(context.clone(), a, b);
                    resolve(&mut result, &mut cache, config, &mut state, stmt);
                }
            }
        }
    }
    result
}

/// The traversal's implication state: confirmed statements and a decider over
/// them, invalidated whenever a new statement is confirmed.
struct TraversalState {
    confirmed: OdSet,
    decider: Option<Decider>,
}

/// Resolve one candidate: inherit, prune, or validate against partitions.
fn resolve(
    result: &mut SetBasedDiscovery,
    cache: &mut PartitionCache<'_>,
    config: &LatticeConfig,
    state: &mut TraversalState,
    stmt: SetOd,
) {
    result.stats.candidates += 1;
    if result.holds(&stmt) {
        result.stats.inherited += 1;
        return;
    }
    // Rule 3 is exact-only: the decider combines many confirmed premises, and
    // with a non-zero budget those premises may each lean on a *different*
    // removal set whose union busts the budget.
    if config.use_decider && result.budget == 0 {
        let d = state
            .decider
            .get_or_insert_with(|| Decider::new(&state.confirmed));
        let implied = match &stmt {
            SetOd::Constancy { context, attr } => d.implies_context_constancy(context, *attr),
            SetOd::Compatibility { context, a, b } => {
                d.implies_context_compatibility(context, *a, *b)
            }
        };
        if implied {
            result.stats.decider_pruned += 1;
            result.holding.insert(stmt);
            return;
        }
    }
    result.stats.validated += 1;
    let verdict = validate::statement_verdict(cache, &stmt, config.threads, result.budget);
    if verdict.within(result.budget) {
        for od in stmt.as_list_ods() {
            state.confirmed.add_od(od);
        }
        state.decider = None;
        result.holding.insert(stmt.clone());
        result.minimal.push(stmt);
        result.verdicts.push(verdict);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::check::od_holds;
    use od_core::{fixtures, Schema, Value};

    #[test]
    fn taxes_fixture_yields_the_expected_statements() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let payable = s.attr_by_name("payable").unwrap();
        let d = discover_statements(&rel, &LatticeConfig::default());
        // income ↦ bracket decomposes into these two statements.
        assert!(d.holds(&SetOd::constancy([income].into_iter().collect(), bracket)));
        assert!(d.holds(&SetOd::compatibility(AttrSet::new(), income, bracket)));
        assert!(d.holds(&SetOd::compatibility(AttrSet::new(), income, payable)));
        // bracket does not order income: {bracket}: [] ↦ income must fail.
        assert!(!d.holds(&SetOd::constancy([bracket].into_iter().collect(), income)));
        assert!(d.stats.validated <= d.stats.candidates);
        assert!(
            d.stats.inherited + d.stats.decider_pruned > 0,
            "pruning must fire"
        );
    }

    #[test]
    fn every_minimal_statement_holds_on_the_instance() {
        let rel = fixtures::example_5_taxes();
        let d = discover_statements(&rel, &LatticeConfig::default());
        for stmt in d.minimal_statements() {
            for od in stmt.as_list_ods() {
                assert!(od_holds(&rel, &od), "{stmt} does not hold on the instance");
            }
        }
    }

    #[test]
    fn decider_pruning_only_removes_work_not_answers() {
        let rel = fixtures::example_5_taxes();
        let with = discover_statements(&rel, &LatticeConfig::default());
        let without = discover_statements(
            &rel,
            &LatticeConfig {
                use_decider: false,
                ..Default::default()
            },
        );
        assert!(with.stats.validated <= without.stats.validated);
        // Identical truth assignment over the candidate universe.
        let all = |d: &SetBasedDiscovery| {
            let mut v: Vec<SetOd> = Vec::new();
            for s in d.minimal_statements() {
                v.push(s.clone());
            }
            v
        };
        for stmt in all(&without) {
            assert!(with.holds(&stmt), "{stmt} lost under decider pruning");
        }
        for stmt in all(&with) {
            assert!(
                without.holds(&stmt),
                "{stmt} fabricated under decider pruning"
            );
        }
    }

    #[test]
    fn parallel_traversal_matches_serial() {
        let rel = fixtures::example_5_taxes();
        let serial = discover_statements(&rel, &LatticeConfig::default());
        let par = discover_statements(
            &rel,
            &LatticeConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(serial.minimal_statements(), par.minimal_statements());
    }

    #[test]
    fn constant_column_is_found_at_the_empty_context() {
        let mut schema = Schema::new("t");
        let a = schema.add_attr("a");
        let c = schema.add_attr("c");
        let rel = Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(7)],
                vec![Value::Int(2), Value::Int(7)],
                vec![Value::Int(3), Value::Int(7)],
            ],
        )
        .unwrap();
        let d = discover_statements(&rel, &LatticeConfig::default());
        assert!(d.holds(&SetOd::constancy(AttrSet::new(), c)));
        assert!(!d.holds(&SetOd::constancy(AttrSet::new(), a)));
        // Rule 2: the constant is compatible with everything, without validation.
        assert!(d.holds(&SetOd::compatibility(AttrSet::new(), a, c)));
    }

    #[test]
    fn holds_normalizes_hand_built_misordered_pairs() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let d = discover_statements(&rel, &LatticeConfig::default());
        // The enum fields are public: a caller can build `a > b` directly.
        let misordered = SetOd::Compatibility {
            context: AttrSet::new(),
            a: bracket.max(income),
            b: bracket.min(income),
        };
        assert!(d.holds(&misordered));
        assert_eq!(
            d.holds(&misordered),
            d.holds(&SetOd::compatibility(AttrSet::new(), income, bracket))
        );
    }

    #[test]
    fn decider_pruning_fires_on_fd_chains() {
        // B determines C and A determines B (ids ordered so context {B} is
        // visited before {A}); then {A}: [] ↦ C is a pure FD-transitivity
        // consequence — not inheritable from any subset context — and must be
        // resolved by the decider, not the data.
        let mut schema = Schema::new("chain");
        schema.add_attr("B");
        schema.add_attr("C");
        schema.add_attr("A");
        let rows: Vec<Vec<Value>> = [(10, 20, 30), (10, 20, 30), (11, 21, 31), (11, 21, 31)]
            .iter()
            .map(|&(b, c, a)| vec![Value::Int(b), Value::Int(c), Value::Int(a)])
            .collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let d = discover_statements(&rel, &LatticeConfig::default());
        assert!(
            d.stats.decider_pruned > 0,
            "FD transitivity must be caught: {:?}",
            d.stats
        );
        // And without the decider the same truths are simply validated instead.
        let no_decider = discover_statements(
            &rel,
            &LatticeConfig {
                use_decider: false,
                ..Default::default()
            },
        );
        assert!(no_decider.stats.validated > d.stats.validated);
    }

    #[test]
    fn approximate_traversal_recovers_dirtied_statements() {
        // A clean ordered pair plus one corrupted row out of twenty: exact
        // discovery loses {}: a ~ b, a 5% threshold recovers it with evidence.
        let mut schema = Schema::new("dirty");
        let a = schema.add_attr("a");
        let b = schema.add_attr("b");
        let mut rows: Vec<Vec<Value>> = (0..20i64)
            .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
            .collect();
        rows[7][1] = Value::Int(-1); // one swapped cell
        let rel = Relation::from_rows(schema, rows).unwrap();
        let stmt = SetOd::compatibility(AttrSet::new(), a, b);

        let exact = discover_statements(&rel, &LatticeConfig::default());
        assert!(!exact.holds(&stmt));
        assert_eq!(exact.budget(), 0);

        let approx = discover_statements(
            &rel,
            &LatticeConfig {
                epsilon: 0.05,
                ..Default::default()
            },
        );
        assert_eq!(approx.budget(), 1);
        assert!(approx.holds(&stmt), "one bad row of twenty is within ε=5%");
        let idx = approx
            .minimal_statements()
            .iter()
            .position(|s| s == &stmt)
            .expect("recovered statement is minimal");
        let verdict = &approx.verdicts()[idx];
        assert_eq!(verdict.removal_count, 1);
        assert!(!verdict.violating_pairs.is_empty());
        assert_eq!(approx.minimal_statements().len(), approx.verdicts().len());
    }

    #[test]
    fn epsilon_zero_is_exact_discovery() {
        let rel = fixtures::example_5_taxes();
        let exact = discover_statements(&rel, &LatticeConfig::default());
        let explicit = discover_statements(
            &rel,
            &LatticeConfig {
                epsilon: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(exact.minimal_statements(), explicit.minimal_statements());
        assert!(exact.verdicts().iter().all(|v| v.holds()));
    }

    #[test]
    fn subsets_enumerate_binomially() {
        let u: Vec<AttrId> = (0..5).map(AttrId).collect();
        assert_eq!(subsets_of_size(&u, 0).len(), 1);
        assert_eq!(subsets_of_size(&u, 2).len(), 10);
        assert_eq!(subsets_of_size(&u, 5).len(), 1);
    }
}
