//! Node-based lattice engine: level-wise discovery of all valid canonical
//! statements with **bitset candidate-set propagation**.
//!
//! Earlier revisions walked the context lattice generate-then-check: every
//! `(|U| choose k)` context was materialized and every candidate statement was
//! resolved by set-membership probes against the full set of confirmed
//! statements — which is why the traversal used to be pinned at context width
//! 2.  This engine follows the TANE/FASTOD design instead: the lattice is an
//! explicit store of **nodes**, one per surviving context, and each node
//! carries the *candidate sets* that are still worth asking about:
//!
//! * the **constancy candidates** — an [`AttrSet`] bit mask of attributes `A`
//!   for which `𝒞 : [] ↦ A` did not hold at any parent context, and
//! * the **compatibility candidates** — a `PairSet` (one partner mask per
//!   attribute) of pairs `{A, B}` for which `𝒞 : A ~ B` did not hold at (and
//!   was not subsumed away at) any parent.
//!
//! A node's candidate sets are the **intersection of its parents'** surviving
//! sets: a statement confirmed at some context holds at every superset context
//! (context monotonicity), so the moment a candidate is confirmed it is
//! removed from its node and — by intersection — from every descendant.  With
//! candidate sets on bit masks, that intersection is a single `&` per word and
//! subsumption a compare-and-mask; subsumed candidates are never enumerated
//! and never allocate a [`SetOd`] at all.  Contexts themselves, the node-store
//! index and the partition-cache keys are the same `u64` masks, so moving a
//! context through the lattice never touches the heap.  Four further
//! mechanisms keep deep levels tractable:
//!
//! 1. **Key-based node deletion** — a context whose stripped partition is
//!    empty is a superkey: no two tuples agree on it, so every candidate above
//!    it holds trivially.  The node's surviving constancies are confirmed with
//!    clean verdicts, its pairs are subsumed by them (rule 2 below), and the
//!    node is deleted *before expansion*: none of its `2^(|U|−k)` ancestors is
//!    ever generated.
//! 2. **Context-sharded level expansion** — a level's partitions are
//!    materialized in one pass sharded *by context*
//!    ([`PartitionCache::partitions_batch`]): every context's refinement is a
//!    pure function of its parent partition and one attribute's rank codes,
//!    so the products are computed on worker threads and are bit-identical on
//!    every thread count.
//! 3. **Batched per-level validation** — all of a level's surviving candidates
//!    are scanned in one sharded pass
//!    ([`parallel::validate_statement_batch`]), statements claimed from an
//!    atomic cursor, each scanned serially so verdicts are bit-identical on
//!    every thread count.
//! 4. **Per-level partition eviction** — level `k` partitions are refinement
//!    bases only for level `k + 1`, so they are evicted as soon as level
//!    `k + 1` is materialized ([`PartitionCache::evict_sets_of_size`]); a
//!    width-4 run never holds every level-3 product alive.
//!    [`LatticeStats::peak_cached_partitions`] records the high-water mark.
//!
//! Two same-context rules complete the pruning: **constancy subsumes
//! compatibility** (rule 2: if `𝒞 : [] ↦ A` holds, `A` never swaps against
//! anything in `𝒞`'s classes), and the optional **implication decider**
//! (rule 3: the exact [`od_infer::DeciderBatch`] over everything confirmed so
//! far, which catches non-subset consequences such as FD transitivity).
//! Decider queries are issued in **one batched round-trip per level**, not per
//! candidate: a [`DeciderBatch`] snapshots the premises once at level start
//! (counted in [`LatticeStats::decider_rounds`]), its premise set is appended
//! to — never re-snapshotted — as the replay confirms statements, and every
//! counterexample found by a search is reused to refute later queries
//! search-free.  With a non-zero error threshold `ε`, candidates are accepted
//! when their `g3` removal count stays within `⌊ε·n⌋`; propagation and rule 2
//! remain sound (they rest on a single premise and statement satisfaction is
//! monotone under context growth and tuple removal), but rule 3 combines
//! *many* premises — whose removal sets may differ — so the decider is only
//! consulted in exact mode.
//!
//! The decider is consulted in the traversal's canonical sequential order
//! (contexts in enumeration order, constancies before pairs), so its pruning
//! decisions are identical to a statement-at-a-time traversal; the batched
//! scans merely *pre-compute* verdicts (a level-start decider pre-filter skips
//! scans for candidates already implied — sound because implication is
//! monotone in the premise set).

use crate::canonical::SetOd;
use crate::dist::{DistError, DistPlane, PlaneCounters, WorkerLauncher};
use crate::obs;
use crate::parallel::{self, StatementJob};
use crate::partition::{ColCodes, PartitionCache, StrippedPartition};
use crate::validate::{self, Verdict};
use od_core::{AttrId, AttrSet, CoreError, OrderDependency, Relation};
#[cfg(feature = "decider")]
use od_infer::{DeciderBatch, OdSet};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Configuration for a lattice traversal.
#[derive(Debug, Clone, Copy)]
pub struct LatticeConfig {
    /// Largest context size to visit (level bound).
    pub max_context: usize,
    /// Consult the exact implication decider before validating a candidate
    /// (only sound — and only consulted — when `epsilon == 0`; requires the
    /// `decider` feature, on by default, and is inert without it).
    pub use_decider: bool,
    /// Threads for the sharded level expansion and the batched per-level
    /// validation pass (1 = serial).
    pub threads: usize,
    /// `g3` error threshold: accept statements that hold after removing at
    /// most `⌊ε·n⌋` tuples (0.0 = exact discovery).
    pub epsilon: f64,
    /// Worker *processes* for the context-sharded data plane (0 = in-process).
    /// With `workers > 0` the traversal runs through [`crate::dist`]: the
    /// current binary is re-executed `workers` times in worker mode (it must
    /// call [`crate::dist::maybe_run_worker`] first thing in `main`), and
    /// results are bit-identical to the in-process engine.
    pub workers: usize,
}

impl Default for LatticeConfig {
    /// Width 4 by default: bitset candidate sets, key-based node deletion and
    /// context-sharded expansion keep the fourth level interactive (the
    /// pre-node-store traversal was pinned at 2, the `Vec`-set node store at
    /// 3).
    fn default() -> Self {
        LatticeConfig {
            max_context: 4,
            use_decider: true,
            threads: 1,
            epsilon: 0.0,
            workers: 0,
        }
    }
}

/// Counters describing how a traversal resolved its candidates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatticeStats {
    /// Candidate statements enumerated at lattice nodes (after propagation).
    pub candidates: usize,
    /// Candidates resolved by consuming a data verdict (key-context candidates
    /// count here too: their partitions answer without touching a row).
    pub validated: usize,
    /// Candidates resolved by same-context constancy subsumption (rule 2).
    pub inherited: usize,
    /// Candidates resolved by the implication decider.
    pub decider_pruned: usize,
    /// Batched decider round-trips issued: **one per level** (level-start
    /// premise snapshot, grown in place), never one per candidate.
    pub decider_rounds: usize,
    /// Decider queries answered by a cached counterexample pattern instead of
    /// a fresh backtracking search.
    pub decider_witness_hits: usize,
    /// Lattice nodes created across all levels.
    pub nodes_created: usize,
    /// Nodes deleted by the superkey rule before expansion.
    pub nodes_deleted: usize,
    /// Candidates that never became statements: removed by parent-set
    /// intersection (confirmed or subsumed below) or sitting above a deleted
    /// node.
    pub propagated_away: usize,
    /// High-water mark of simultaneously cached partitions (the eviction
    /// policy's effectiveness measure).
    pub peak_cached_partitions: usize,
    /// Partition-cache memo hits across the traversal.
    pub cache_hits: usize,
    /// Partition-cache memo misses (materializations) across the traversal.
    pub cache_misses: usize,
    /// Radix counting passes spent sorting packed u64 product keys (level ≥ 2
    /// partition products).  A per-class property of the work done, so it is
    /// bit-identical across thread counts.
    pub product_radix_passes: u64,
    /// Partitions evicted by the per-level eviction policy.
    pub cache_evictions: usize,
}

/// Per-level breakdown of a traversal (see [`SetBasedDiscovery::level_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Context size of this level.
    pub level: usize,
    /// Nodes created at this level.
    pub nodes_created: usize,
    /// Nodes deleted by the superkey rule at this level.
    pub nodes_deleted: usize,
    /// Candidates enumerated at this level's nodes.
    pub candidates: usize,
    /// Candidates resolved by consuming a data verdict.
    pub validated: usize,
    /// Candidates resolved by same-context constancy subsumption.
    pub inherited: usize,
    /// Candidates resolved by the implication decider.
    pub decider_pruned: usize,
    /// Candidate slots this level never enumerated thanks to propagation and
    /// node deletion.
    pub propagated_away: usize,
    /// Partitions resident in the cache once this level was materialized
    /// (before the previous level's eviction takes effect for the next).
    pub cached_partitions: usize,
}

impl std::fmt::Display for LevelStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>6} {:>6} {:>8} {:>10} {:>10} {:>10} {:>8} {:>7} {:>6}",
            self.level,
            self.nodes_created,
            self.nodes_deleted,
            self.candidates,
            self.validated,
            self.propagated_away,
            self.inherited,
            self.decider_pruned,
            self.cached_partitions,
        )
    }
}

impl LevelStats {
    /// The column header matching [`LevelStats`]'s `Display` row.
    pub fn header() -> String {
        format!(
            "{:>6} {:>6} {:>8} {:>10} {:>10} {:>10} {:>8} {:>7} {:>6}",
            "level",
            "nodes",
            "deleted",
            "candidates",
            "validated",
            "propagated",
            "inherit",
            "decider",
            "cached"
        )
    }
}

impl std::fmt::Display for LatticeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} candidates — {} validated, {} rule-2 inherited, {} decider-pruned \
             ({} rounds, {} witness hits), {} propagated away; {} nodes created / \
             {} key-deleted; peak {} cached partitions \
             ({} hits / {} misses / {} evicted)",
            self.candidates,
            self.validated,
            self.inherited,
            self.decider_pruned,
            self.decider_rounds,
            self.decider_witness_hits,
            self.propagated_away,
            self.nodes_created,
            self.nodes_deleted,
            self.peak_cached_partitions,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
        )
    }
}

/// The result of a traversal: all valid canonical statements up to the context
/// bound, in minimal form.
#[derive(Debug, Clone)]
pub struct SetBasedDiscovery {
    minimal: Vec<SetOd>,
    verdicts: Vec<Verdict>,
    /// Exact-match index into `minimal`, so per-statement verdict lookups
    /// (`od-discovery` makes one per candidate statement) stay `O(1)` instead
    /// of scanning the minimal list.
    minimal_index: HashMap<SetOd, usize>,
    /// Statements the decider proved implied (they hold, but are not minimal);
    /// kept so [`Self::holds`] stays complete within the bound.
    pruned: Vec<SetOd>,
    holding: HashSet<SetOd>,
    max_context: usize,
    budget: usize,
    level_stats: Vec<LevelStats>,
    /// How candidates were resolved.
    pub stats: LatticeStats,
}

/// Does `premise` subsume `query` by context monotonicity (rule 1) or
/// constancy-subsumes-compatibility (rule 2)?  Pure mask arithmetic.
fn subsumes(premise: &SetOd, query: &SetOd) -> bool {
    let ctx = query.context();
    match (premise, query) {
        (SetOd::Constancy { context, attr }, SetOd::Constancy { attr: qattr, .. }) => {
            attr == qattr && context.is_subset(ctx)
        }
        (SetOd::Compatibility { context, a, b }, SetOd::Compatibility { a: qa, b: qb, .. }) => {
            a == qa && b == qb && context.is_subset(ctx)
        }
        // A constancy of either pair attribute subsumes the compatibility
        // (rule 2).
        (SetOd::Constancy { context, attr }, SetOd::Compatibility { a: qa, b: qb, .. }) => {
            (attr == qa || attr == qb) && context.is_subset(ctx)
        }
        _ => false,
    }
}

impl SetBasedDiscovery {
    /// The minimal valid statements: those not subsumed from a smaller context
    /// and not implied by previously confirmed statements.
    pub fn minimal_statements(&self) -> &[SetOd] {
        &self.minimal
    }

    /// The violation evidence of each minimal statement, aligned with
    /// [`Self::minimal_statements`] (all-zero removals in exact mode).
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// The tuple-removal budget the traversal accepted statements under.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Per-level resolution counters, one entry per visited level.
    pub fn level_stats(&self) -> &[LevelStats] {
        &self.level_stats
    }

    /// A multi-line human-readable summary: the aggregate counters plus the
    /// per-level breakdown table (used by `examples/discovery_setbased.rs`
    /// and the `reproduce` binary).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.stats);
        let _ = writeln!(out, "{}", LevelStats::header());
        for l in &self.level_stats {
            let _ = writeln!(out, "{l}");
        }
        out
    }

    /// Does a statement hold on the profiled instance (within the traversal's
    /// error budget)?
    ///
    /// Sound always; complete for contexts up to the traversal's
    /// `max_context` (larger contexts are answered via monotonicity from
    /// confirmed statements, which can only under-approximate).
    pub fn holds(&self, stmt: &SetOd) -> bool {
        if let Some(normalized) = stmt.normalized() {
            return self.holds(&normalized);
        }
        if stmt.is_trivial() || self.holding.contains(stmt) {
            return true;
        }
        self.minimal.iter().any(|m| subsumes(m, stmt))
            || self.pruned.iter().any(|p| subsumes(p, stmt))
    }

    /// An upper bound on the statement's `g3` removal count, or `None` when
    /// the statement does not hold within the budget.
    ///
    /// Exact for minimal statements (their scan verdict); the subsuming
    /// premise's count for statements answered by monotonicity (removal can
    /// only shrink as the context grows); `0` for trivial statements and for
    /// decider-implied ones (the decider only runs in exact mode, where every
    /// accepted statement has removal 0).  Like [`Self::holds`], complete only
    /// for contexts within the traversal bound.
    pub fn removal_upper_bound(&self, stmt: &SetOd) -> Option<usize> {
        if let Some(normalized) = stmt.normalized() {
            return self.removal_upper_bound(&normalized);
        }
        if stmt.is_trivial() {
            return Some(0);
        }
        // O(1) exact hit first — the dominant case for profile-answered
        // discovery; the linear subsumption scans only run on misses.
        if let Some(&i) = self.minimal_index.get(stmt) {
            return Some(self.verdicts[i].removal_count);
        }
        if let Some(i) = self.minimal.iter().position(|m| subsumes(m, stmt)) {
            return Some(self.verdicts[i].removal_count);
        }
        if self.pruned.iter().any(|p| p == stmt || subsumes(p, stmt)) {
            return Some(0);
        }
        None
    }

    /// The context bound the traversal ran with.
    pub fn max_context(&self) -> usize {
        self.max_context
    }

    /// The minimal statements as list-based ODs (constancies contribute one OD,
    /// compatibilities both directions of their defining equivalence).
    pub fn to_list_ods(&self) -> Vec<OrderDependency> {
        self.minimal.iter().flat_map(|s| s.as_list_ods()).collect()
    }
}

/// Enumerate all `k`-subsets of the first `universe_len` attribute ids, in
/// lexicographic order of their ascending id sequences (the canonical
/// traversal order; identical to the recursive enumeration the `Vec`-based
/// store used).
fn subsets_of_size(universe: &[AttrId], k: usize) -> Vec<AttrSet> {
    fn rec(universe: &[AttrId], k: usize, start: usize, cur: AttrSet, out: &mut Vec<AttrSet>) {
        if cur.len() == k {
            out.push(cur);
            return;
        }
        for i in start..universe.len() {
            rec(universe, k, i + 1, cur.with(universe[i]), out);
        }
    }
    let mut out = Vec::new();
    rec(universe, k, 0, AttrSet::new(), &mut out);
    out
}

/// The compatibility candidate set of one node: `partners[i]` is the
/// [`AttrSet`] of partners `b > AttrId(i)` such that the pair
/// `{AttrId(i), b}` is still a candidate.  Intersection is a per-slot `&`,
/// cardinality a popcount sum, and no pair ever allocates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct PairSet {
    partners: Vec<AttrSet>,
}

impl PairSet {
    /// All pairs `a < b` over the universe.
    fn full(universe: &[AttrId]) -> PairSet {
        let above: AttrSet = universe.iter().collect();
        let partners = universe
            .iter()
            .map(|&a| {
                // Partners strictly above `a`.
                AttrSet::from_mask(
                    above.mask() & !((1u64 << a.index()) | ((1u64 << a.index()) - 1)),
                )
            })
            .collect();
        PairSet { partners }
    }

    /// The empty pair set shaped for a universe of `n` attributes.
    fn empty(n: usize) -> PairSet {
        PairSet {
            partners: vec![AttrSet::new(); n],
        }
    }

    fn len(&self) -> usize {
        self.partners.iter().map(|p| p.len()).sum()
    }

    fn is_empty(&self) -> bool {
        self.partners.iter().all(|p| p.is_empty())
    }

    fn contains(&self, a: AttrId, b: AttrId) -> bool {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.partners.get(a.index()).is_some_and(|p| p.contains(b))
    }

    fn insert(&mut self, a: AttrId, b: AttrId) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.partners[a.index()].insert(b);
    }

    /// Per-slot intersection: the single-`&` propagation step.
    fn intersect_with(&mut self, other: &PairSet) {
        for (mine, theirs) in self.partners.iter_mut().zip(&other.partners) {
            *mine = *mine & *theirs;
        }
    }

    /// Drop every pair touching an attribute of `context` (context attributes
    /// are trivial, not candidates).
    fn remove_touching(&mut self, context: AttrSet) {
        for (i, p) in self.partners.iter_mut().enumerate() {
            if context.contains(AttrId(i as u32)) {
                *p = AttrSet::new();
            } else {
                *p = *p - context;
            }
        }
    }

    /// Pairs in canonical `(a, b)` ascending order.
    fn iter(&self) -> impl Iterator<Item = (AttrId, AttrId)> + '_ {
        self.partners
            .iter()
            .enumerate()
            .flat_map(|(i, p)| p.iter().map(move |b| (AttrId(i as u32), b)))
    }
}

/// A lattice node: one surviving context with its propagated candidate sets,
/// all on bit masks (enumeration order is the canonical ascending-id order).
struct Node {
    context: AttrSet,
    consts: AttrSet,
    pairs: PairSet,
}

/// One level's node store: nodes in context-enumeration order plus a
/// mask-keyed index for parent lookups during expansion.
#[derive(Default)]
struct LevelStore {
    nodes: Vec<Node>,
    index: HashMap<AttrSet, usize>,
}

impl LevelStore {
    fn new(nodes: Vec<Node>) -> Self {
        let index = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.context, i))
            .collect();
        LevelStore { nodes, index }
    }
}

/// Candidate slots a context of size `level` offers over a `u`-attribute
/// universe: one constancy per outside attribute, one pair per outside pair.
fn full_slots(u: usize, level: usize) -> usize {
    let outside = u - level;
    outside + outside * outside.saturating_sub(1) / 2
}

/// Generate level `level`'s nodes by intersecting the surviving candidate sets
/// of their parents in `prev`.  Returns the nodes (in canonical context order)
/// and the number of candidate slots resolved without enumeration — removed by
/// propagation or sitting above a deleted/exhausted parent.
fn generate_level(universe: &[AttrId], level: usize, prev: &LevelStore) -> (Vec<Node>, usize) {
    if level == 0 {
        if universe.is_empty() {
            return (Vec::new(), 0);
        }
        return (
            vec![Node {
                context: AttrSet::new(),
                consts: universe.iter().collect(),
                pairs: PairSet::full(universe),
            }],
            0,
        );
    }
    let slots = full_slots(universe.len(), level);
    let mut nodes = Vec::new();
    let mut propagated = 0usize;
    for context in subsets_of_size(universe, level) {
        // Every (level−1)-subset must be a live parent: a deleted (superkey)
        // or candidate-exhausted ancestor prunes the whole cone above it.
        let mut parents: Vec<&Node> = Vec::with_capacity(level);
        let mut orphan = false;
        for drop in context.iter() {
            match prev.index.get(&context.without(drop)) {
                Some(&p) => parents.push(&prev.nodes[p]),
                None => {
                    orphan = true;
                    break;
                }
            }
        }
        if orphan {
            propagated += slots;
            continue;
        }
        // Intersection propagation: a candidate survives only where it
        // survived at every parent — one `&` per parent for the constancy
        // mask, one `&` per partner slot for the pairs (context attributes
        // are trivial, not candidates).
        let mut consts = parents[0].consts - context;
        for p in &parents[1..] {
            consts = consts & p.consts;
        }
        let mut pairs = parents[0].pairs.clone();
        for p in &parents[1..] {
            pairs.intersect_with(&p.pairs);
        }
        pairs.remove_touching(context);
        propagated += slots - consts.len() - pairs.len();
        if consts.is_empty() && pairs.is_empty() {
            continue;
        }
        nodes.push(Node {
            context,
            consts,
            pairs,
        });
    }
    (nodes, propagated)
}

/// The traversal's confirmed-statement state (premises for rule 3).
#[cfg(feature = "decider")]
#[derive(Default)]
struct TraversalState {
    confirmed: OdSet,
}

#[cfg(not(feature = "decider"))]
#[derive(Default)]
struct TraversalState {}

impl TraversalState {
    fn record(&mut self, stmt: &SetOd) {
        #[cfg(feature = "decider")]
        for od in stmt.as_list_ods() {
            self.confirmed.add_od(od);
        }
        #[cfg(not(feature = "decider"))]
        let _ = stmt;
    }
}

/// The traversal's swappable **data plane**: partition refinement, statement
/// scans, eviction, and cache accounting.  The control plane
/// ([`discover_with_plane`]) is identical over both variants, which is what
/// makes the distributed engine bit-identical to the in-process one.
pub(crate) enum Plane<'r> {
    /// The in-process [`PartitionCache`] (threads shard *within* the process).
    Local(Box<LocalPlane<'r>>),
    /// Context-sharded worker processes over pipes (see [`crate::dist`]).
    Dist(Box<DistPlane>),
}

/// The in-process data plane: the partition cache plus the current level's
/// materialized partitions and the per-attribute code columns scans read.
pub(crate) struct LocalPlane<'r> {
    cache: PartitionCache<'r>,
    all_codes: Vec<ColCodes>,
    parts: Vec<Rc<StrippedPartition>>,
    threads: usize,
    budget: usize,
}

impl<'r> LocalPlane<'r> {
    pub(crate) fn new(rel: &'r Relation, threads: usize, budget: usize) -> Self {
        let cache = PartitionCache::new(rel);
        // Per-attribute code-column views into the relation's shared columnar
        // encoding — cheap handles that deref to `&[u32]` for the batch
        // phase's worker threads.
        let all_codes = rel.schema().attr_ids().map(|a| cache.codes(a)).collect();
        LocalPlane {
            cache,
            all_codes,
            parts: Vec::new(),
            threads: threads.max(1),
            budget,
        }
    }
}

impl Plane<'_> {
    /// Materialize one level's partitions; returns each context's class
    /// count, in context order (`0` ⇔ the context is a superkey).
    fn refine_level(&mut self, contexts: &[AttrSet], level: usize) -> Result<Vec<u64>, DistError> {
        match self {
            Plane::Local(p) => {
                p.parts = p.cache.partitions_batch(contexts, p.threads);
                Ok(p.parts.iter().map(|pt| pt.num_classes() as u64).collect())
            }
            Plane::Dist(p) => p.refine_level(contexts, level),
        }
    }

    /// Scan all of a level's surviving constancy candidates in one batch;
    /// verdicts come back in slot order.
    fn scan_consts(&mut self, slots: &[(usize, AttrId)]) -> Result<Vec<Verdict>, DistError> {
        match self {
            Plane::Local(p) => {
                let jobs: Vec<StatementJob<'_>> = slots
                    .iter()
                    .map(|&(i, attr)| StatementJob::Constancy {
                        part: &p.parts[i],
                        codes: &p.all_codes[attr.index()],
                    })
                    .collect();
                Ok(parallel::validate_statement_batch(&jobs, p.threads, p.budget))
            }
            Plane::Dist(p) => p.scan_consts(slots),
        }
    }

    /// Scan all of a level's surviving compatibility candidates in one batch.
    fn scan_pairs(
        &mut self,
        slots: &[(usize, (AttrId, AttrId))],
    ) -> Result<Vec<Verdict>, DistError> {
        match self {
            Plane::Local(p) => {
                let jobs: Vec<StatementJob<'_>> = slots
                    .iter()
                    .map(|&(i, (a, b))| StatementJob::Compatibility {
                        part: &p.parts[i],
                        codes_a: &p.all_codes[a.index()],
                        codes_b: &p.all_codes[b.index()],
                    })
                    .collect();
                Ok(parallel::validate_statement_batch(&jobs, p.threads, p.budget))
            }
            Plane::Dist(p) => p.scan_pairs(slots),
        }
    }

    /// Replay-fallback scan of one statement (a partition-cache hit).
    fn scan_one(&mut self, stmt: &SetOd) -> Result<Verdict, DistError> {
        match self {
            Plane::Local(p) => Ok(validate::statement_verdict(&mut p.cache, stmt, 1, p.budget)),
            Plane::Dist(p) => p.scan_one(stmt),
        }
    }

    /// Evict all cached partitions of one context size; returns how many.
    fn evict(&mut self, size: usize) -> Result<usize, DistError> {
        match self {
            Plane::Local(p) => Ok(p.cache.evict_sets_of_size(size)),
            Plane::Dist(p) => p.evict(size),
        }
    }

    /// Heap bytes of the cached CSR partitions plus the class-code memo.
    fn csr_bytes(&self) -> u64 {
        match self {
            Plane::Local(p) => p.cache.approx_csr_bytes() as u64,
            Plane::Dist(p) => p.csr_bytes(),
        }
    }

    /// Distinct attribute sets whose partition is currently materialized.
    fn cached_sets(&self) -> usize {
        match self {
            Plane::Local(p) => p.cache.cached_sets(),
            Plane::Dist(p) => p.cached_sets(),
        }
    }

    /// Aggregate cache counters at the end of the traversal.
    fn counters(&self) -> PlaneCounters {
        match self {
            Plane::Local(p) => PlaneCounters {
                hits: p.cache.hits,
                misses: p.cache.misses,
                products: p.cache.products,
                radix_passes: p.cache.radix_passes(),
                product_radix_passes: p.cache.product_radix_passes(),
            },
            Plane::Dist(p) => p.counters(),
        }
    }
}

/// Run the node-based level-wise traversal over the relation's attribute
/// lattice, reporting schemas beyond the 64-attribute [`AttrSet`] domain as a
/// [`CoreError::AttrSetOverflow`] instead of panicking.
pub fn try_discover_statements(
    rel: &Relation,
    config: &LatticeConfig,
) -> Result<SetBasedDiscovery, CoreError> {
    if rel.schema().arity() > AttrSet::MAX_ATTRS {
        return Err(CoreError::AttrSetOverflow(rel.schema().arity() as u32 - 1));
    }
    Ok(discover_statements(rel, config))
}

/// Run the node-based level-wise traversal over the relation's attribute
/// lattice.
///
/// With `config.workers > 0` the data plane is sharded over that many worker
/// *processes* (see [`crate::dist`]); results are bit-identical either way.
///
/// Panics when the schema exceeds the 64-attribute [`AttrSet`] domain (use
/// [`try_discover_statements`] where such schemas are reachable) or when a
/// worker process fails (use [`crate::dist::discover_statements_dist`] to
/// handle [`DistError`]s).
pub fn discover_statements(rel: &Relation, config: &LatticeConfig) -> SetBasedDiscovery {
    if config.workers > 0 {
        return crate::dist::discover_statements_dist(rel, config, &WorkerLauncher::self_exec())
            .unwrap_or_else(|e| panic!("distributed traversal failed: {e}"))
            .0;
    }
    let budget = validate::error_budget(rel.len(), config.epsilon);
    let mut plane = Plane::Local(Box::new(LocalPlane::new(rel, config.threads, budget)));
    match discover_with_plane(rel, config, &mut plane) {
        Ok(d) => d,
        Err(e) => unreachable!("the local plane is infallible: {e}"),
    }
}

/// The traversal's **control plane**, generic over the data plane: candidate
/// propagation, superkey deletion, the per-level decider round, and the
/// canonical sequential replay.  Every data access — refinement, scans,
/// eviction, cache accounting — goes through `plane`, so the distributed
/// engine runs *this exact loop* and inherits its determinism.
pub(crate) fn discover_with_plane(
    rel: &Relation,
    config: &LatticeConfig,
    plane: &mut Plane<'_>,
) -> Result<SetBasedDiscovery, DistError> {
    let universe: Vec<AttrId> = rel.schema().attr_ids().collect();
    let mut result = SetBasedDiscovery {
        minimal: Vec::new(),
        verdicts: Vec::new(),
        minimal_index: HashMap::new(),
        pruned: Vec::new(),
        holding: HashSet::new(),
        max_context: config.max_context,
        budget: validate::error_budget(rel.len(), config.epsilon),
        level_stats: Vec::new(),
        stats: LatticeStats::default(),
    };
    let budget = result.budget;
    // Rule 3 is exact-only: the decider combines many confirmed premises, and
    // with a non-zero budget those premises may each lean on a *different*
    // removal set whose union busts the budget.  Without the `decider`
    // feature the pruning hook is compiled out entirely.
    let decider_active = cfg!(feature = "decider") && config.use_decider && budget == 0;
    let mut state = TraversalState::default();
    let _discovery_span = obs::span("discovery");

    let mut prev = LevelStore::default();
    for level in 0..=config.max_context.min(universe.len()) {
        let _level_span = obs::level_span(level);
        let mut lstats = LevelStats {
            level,
            ..Default::default()
        };
        let (nodes, propagated) = {
            let _s = obs::span("expand");
            generate_level(&universe, level, &prev)
        };
        lstats.propagated_away = propagated;
        lstats.nodes_created = nodes.len();
        if nodes.is_empty() {
            roll_up(&mut result, lstats);
            break; // no live parents: every deeper level is empty too
        }
        // Materialize this level's partitions in one pass sharded by context
        // (each is one incremental refinement of a level−1 partition still in
        // the cache; see `PartitionCache::partitions_batch`).
        let contexts: Vec<AttrSet> = nodes.iter().map(|n| n.context).collect();
        let classes: Vec<u64> = {
            let _s = obs::span("refine");
            // Level ≥ 2 batches are entirely packed-u64 products; the nested
            // span separates product cost from level-1 code bucketing.
            let _p = (level >= 2).then(|| obs::span("product"));
            plane.refine_level(&contexts, level)?
        };
        for &c in &classes {
            obs::record("discovery.partition_classes", c);
        }
        obs::gauge_max("partition.csr_bytes", plane.csr_bytes());
        lstats.cached_partitions = plane.cached_sets();
        result.stats.peak_cached_partitions = result
            .stats
            .peak_cached_partitions
            .max(lstats.cached_partitions);
        // A stripped partition with no classes is a superkey (every class is
        // a singleton) — the empty relation included.
        let keyed: Vec<bool> = classes.iter().map(|&c| c == 0).collect();

        // One batched decider round-trip for the whole level: the premise
        // snapshot is taken here, queried during scheduling (the pre-filter)
        // and replay, and grown in place as statements are confirmed.
        // Implication is monotone in the premise set, so a pre-filter answer
        // stays valid at its replay position — its scan can be skipped
        // outright and the answer reused without a second query.
        #[cfg(feature = "decider")]
        let mut batch = if decider_active {
            result.stats.decider_rounds += 1;
            Some(DeciderBatch::new(&state.confirmed))
        } else {
            None
        };
        #[cfg(not(feature = "decider"))]
        let mut batch: Option<()> = None;

        // ---- Batch A: all surviving constancy scans, one sharded pass -----
        let mut const_slots: Vec<(usize, AttrId)> = Vec::new();
        // Pre-filter hits per node, as bit masks (no per-candidate hashing in
        // the level loop).
        let mut pre_pruned_consts: Vec<AttrSet> = vec![AttrSet::new(); nodes.len()];
        let mut pre_pruned_pairs: Vec<PairSet> = Vec::new();
        #[cfg(feature = "decider")]
        {
            let _s = decider_active.then(|| obs::span("decider"));
            for (i, node) in nodes.iter().enumerate() {
                if keyed[i] {
                    continue; // clean by the superkey rule, no scan needed
                }
                if let Some(batch) = batch.as_mut() {
                    for attr in node.consts.iter() {
                        if batch.implies_context_constancy(&node.context, attr) {
                            pre_pruned_consts[i].insert(attr);
                        }
                    }
                }
            }
        }
        for (i, node) in nodes.iter().enumerate() {
            if keyed[i] {
                continue;
            }
            for attr in node.consts.iter() {
                if pre_pruned_consts[i].contains(attr) {
                    continue;
                }
                const_slots.push((i, attr));
            }
        }
        let verdicts = {
            let _s = obs::span("validate");
            plane.scan_consts(&const_slots)?
        };
        let mut const_verdicts: HashMap<(usize, AttrId), Verdict> =
            const_slots.into_iter().zip(verdicts).collect();

        // Which constancies hold on the data (key contexts: all of them;
        // pre-filtered ones hold because the decider is sound and exact-mode
        // accepted statements are violation-free).
        let data_clean = |pruned: &[AttrSet],
                          verdicts: &HashMap<(usize, AttrId), Verdict>,
                          i: usize,
                          attr: AttrId|
         -> bool {
            keyed[i]
                || pruned[i].contains(attr)
                || verdicts.get(&(i, attr)).is_some_and(|v| v.within(budget))
        };

        // ---- Batch B: pair scans for pairs rule 2 cannot resolve ----------
        let mut pair_slots: Vec<(usize, (AttrId, AttrId))> = Vec::new();
        // Only the decider writes or reads the pre-pruned pair masks; with it
        // inactive, skip the per-node allocations outright.
        if decider_active {
            pre_pruned_pairs.resize_with(nodes.len(), || PairSet::empty(universe.len()));
        }
        for (i, node) in nodes.iter().enumerate() {
            if keyed[i] {
                continue;
            }
            for (a, b) in node.pairs.iter() {
                if data_clean(&pre_pruned_consts, &const_verdicts, i, a)
                    || data_clean(&pre_pruned_consts, &const_verdicts, i, b)
                {
                    continue; // rule 2 (or the decider) resolves it scan-free
                }
                #[cfg(feature = "decider")]
                if let Some(batch) = batch.as_mut() {
                    if batch.implies_context_compatibility(&node.context, a, b) {
                        pre_pruned_pairs[i].insert(a, b);
                        continue;
                    }
                }
                pair_slots.push((i, (a, b)));
            }
        }
        let verdicts = {
            let _s = obs::span("validate");
            plane.scan_pairs(&pair_slots)?
        };
        let mut pair_verdicts: HashMap<(usize, (AttrId, AttrId)), Verdict> =
            pair_slots.into_iter().zip(verdicts).collect();

        // ---- Sequential replay in canonical order -------------------------
        // Confirmation order (contexts as enumerated, constancies before
        // pairs) is what the batch's premise set grows along, so pruning
        // decisions match a statement-at-a-time traversal exactly.
        let replay_span = obs::span("validate");
        let mut next_alive: Vec<Node> = Vec::new();
        for (i, node) in nodes.into_iter().enumerate() {
            let Node {
                context: ctx,
                consts,
                pairs,
            } = node;
            let mut confirmed_here = AttrSet::new();
            let mut surviving_consts = AttrSet::new();
            for attr in consts.iter() {
                lstats.candidates += 1;
                let stmt = SetOd::constancy(ctx, attr);
                if decider_active {
                    // Pre-filter hits were answered in this level's batch
                    // round; candidates it missed may have become implied by
                    // mid-level confirmations, which only the grown premise
                    // set can see.
                    #[cfg(feature = "decider")]
                    let implied = pre_pruned_consts[i].contains(attr)
                        || batch
                            .as_mut()
                            .is_some_and(|b| b.implies_context_constancy(&ctx, attr));
                    #[cfg(not(feature = "decider"))]
                    let implied = false;
                    if implied {
                        lstats.decider_pruned += 1;
                        result.holding.insert(stmt);
                        result.pruned.push(stmt);
                        continue;
                    }
                }
                let verdict = if keyed[i] {
                    Verdict::clean()
                } else {
                    match const_verdicts.remove(&(i, attr)) {
                        Some(v) => v,
                        None => plane.scan_one(&stmt)?,
                    }
                };
                lstats.validated += 1;
                if verdict.within(budget) {
                    confirm(&mut result, &mut state, &mut batch, stmt, verdict);
                    confirmed_here.insert(attr);
                } else {
                    surviving_consts.insert(attr);
                }
            }
            let mut surviving_pairs = PairSet::empty(universe.len());
            for (a, b) in pairs.iter() {
                lstats.candidates += 1;
                // Rule 2 at this very context: a constancy confirmed above
                // makes the pair swap-free for free.
                if confirmed_here.contains(a) || confirmed_here.contains(b) {
                    lstats.inherited += 1;
                    continue;
                }
                let stmt = SetOd::compatibility(ctx, a, b);
                if decider_active {
                    #[cfg(feature = "decider")]
                    let implied = pre_pruned_pairs[i].contains(a, b)
                        || batch
                            .as_mut()
                            .is_some_and(|b2| b2.implies_context_compatibility(&ctx, a, b));
                    #[cfg(not(feature = "decider"))]
                    let implied = false;
                    if implied {
                        lstats.decider_pruned += 1;
                        result.holding.insert(stmt);
                        result.pruned.push(stmt);
                        continue;
                    }
                }
                let verdict = if keyed[i] {
                    Verdict::clean()
                } else {
                    match pair_verdicts.remove(&(i, (a, b))) {
                        Some(v) => v,
                        None => plane.scan_one(&stmt)?,
                    }
                };
                lstats.validated += 1;
                if verdict.within(budget) {
                    confirm(&mut result, &mut state, &mut batch, stmt, verdict);
                } else {
                    surviving_pairs.insert(a, b);
                }
            }
            if keyed[i] {
                // Superkey: everything above holds trivially — delete the
                // node so no superset context is ever generated.
                lstats.nodes_deleted += 1;
                continue;
            }
            if surviving_consts.is_empty() && surviving_pairs.is_empty() {
                continue; // exhausted: children would carry empty sets
            }
            next_alive.push(Node {
                context: ctx,
                consts: surviving_consts,
                pairs: surviving_pairs,
            });
        }
        drop(replay_span);
        #[cfg(feature = "decider")]
        if let Some(batch) = batch.take() {
            result.stats.decider_witness_hits += batch.stats.witness_hits;
        }
        roll_up(&mut result, lstats);
        // Partitions of level − 1 were refinement bases for this level only.
        if level >= 1 {
            result.stats.cache_evictions += plane.evict(level - 1)?;
        }
        prev = LevelStore::new(next_alive);
    }
    let counters = plane.counters();
    result.stats.cache_hits = counters.hits;
    result.stats.cache_misses = counters.misses;
    result.stats.product_radix_passes = counters.product_radix_passes;
    obs::add("discovery.partition_cache.hits", counters.hits as u64);
    obs::add("discovery.partition_cache.misses", counters.misses as u64);
    obs::add(
        "discovery.partition_cache.evictions",
        result.stats.cache_evictions as u64,
    );
    obs::add("discovery.partition_products", counters.products as u64);
    obs::add("discovery.radix_passes", counters.radix_passes);
    obs::add(
        "discovery.product_radix_passes",
        counters.product_radix_passes,
    );
    obs::gauge_max(
        "discovery.partition_cache.peak",
        result.stats.peak_cached_partitions as u64,
    );
    obs::add(
        "discovery.decider_rounds",
        result.stats.decider_rounds as u64,
    );
    obs::add(
        "discovery.decider_witness_hits",
        result.stats.decider_witness_hits as u64,
    );
    Ok(result)
}

/// Record a confirmed minimal statement: it joins the level batch's premise
/// set, the `holds` index, and the minimal output.
fn confirm(
    result: &mut SetBasedDiscovery,
    state: &mut TraversalState,
    #[cfg(feature = "decider")] batch: &mut Option<DeciderBatch>,
    #[cfg(not(feature = "decider"))] batch: &mut Option<()>,
    stmt: SetOd,
    verdict: Verdict,
) {
    state.record(&stmt);
    #[cfg(feature = "decider")]
    if let Some(batch) = batch.as_mut() {
        for od in stmt.as_list_ods() {
            batch.add_premise(od);
        }
    }
    #[cfg(not(feature = "decider"))]
    let _ = batch;
    result.holding.insert(stmt);
    result.minimal_index.insert(stmt, result.minimal.len());
    result.minimal.push(stmt);
    result.verdicts.push(verdict);
}

/// Fold one level's counters into the traversal totals (and flush them to the
/// ambient recorder — deterministic counts only, recorded on the
/// orchestrating thread).
fn roll_up(result: &mut SetBasedDiscovery, lstats: LevelStats) {
    obs::add("discovery.candidates", lstats.candidates as u64);
    obs::add("discovery.validated", lstats.validated as u64);
    obs::add("discovery.inherited", lstats.inherited as u64);
    obs::add("discovery.decider_pruned", lstats.decider_pruned as u64);
    obs::add("discovery.nodes_created", lstats.nodes_created as u64);
    obs::add("discovery.nodes_deleted", lstats.nodes_deleted as u64);
    obs::add("discovery.propagated_away", lstats.propagated_away as u64);
    result.stats.candidates += lstats.candidates;
    result.stats.validated += lstats.validated;
    result.stats.inherited += lstats.inherited;
    result.stats.decider_pruned += lstats.decider_pruned;
    result.stats.nodes_created += lstats.nodes_created;
    result.stats.nodes_deleted += lstats.nodes_deleted;
    result.stats.propagated_away += lstats.propagated_away;
    result.level_stats.push(lstats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::check::od_holds;
    use od_core::{fixtures, Schema, Value};

    #[test]
    fn taxes_fixture_yields_the_expected_statements() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let payable = s.attr_by_name("payable").unwrap();
        let d = discover_statements(&rel, &LatticeConfig::default());
        // income ↦ bracket decomposes into these two statements.
        assert!(d.holds(&SetOd::constancy([income].into_iter().collect(), bracket)));
        assert!(d.holds(&SetOd::compatibility(AttrSet::new(), income, bracket)));
        assert!(d.holds(&SetOd::compatibility(AttrSet::new(), income, payable)));
        // bracket does not order income: {bracket}: [] ↦ income must fail.
        assert!(!d.holds(&SetOd::constancy([bracket].into_iter().collect(), income)));
        assert!(d.stats.validated <= d.stats.candidates);
        assert!(
            d.stats.propagated_away > 0,
            "statements confirmed at small contexts must be propagated away \
             above them: {:?}",
            d.stats
        );
    }

    #[test]
    fn every_minimal_statement_holds_on_the_instance() {
        let rel = fixtures::example_5_taxes();
        let d = discover_statements(&rel, &LatticeConfig::default());
        for stmt in d.minimal_statements() {
            for od in stmt.as_list_ods() {
                assert!(od_holds(&rel, &od), "{stmt} does not hold on the instance");
            }
        }
    }

    #[cfg(feature = "decider")]
    #[test]
    fn decider_pruning_only_removes_work_not_answers() {
        let rel = fixtures::example_5_taxes();
        let with = discover_statements(&rel, &LatticeConfig::default());
        let without = discover_statements(
            &rel,
            &LatticeConfig {
                use_decider: false,
                ..Default::default()
            },
        );
        assert!(with.stats.validated <= without.stats.validated);
        // Identical truth assignment over the candidate universe.
        for stmt in without.minimal_statements() {
            assert!(with.holds(stmt), "{stmt} lost under decider pruning");
        }
        for stmt in with.minimal_statements() {
            assert!(
                without.holds(stmt),
                "{stmt} fabricated under decider pruning"
            );
        }
    }

    #[cfg(feature = "decider")]
    #[test]
    fn decider_rounds_are_per_level_not_per_candidate() {
        let rel = fixtures::example_5_taxes();
        let d = discover_statements(&rel, &LatticeConfig::default());
        assert!(d.stats.decider_rounds >= 1);
        assert!(
            d.stats.decider_rounds <= d.level_stats().len(),
            "at most one batched round per level: {:?}",
            d.stats
        );
        assert!(d.stats.candidates > d.stats.decider_rounds);
        // Disabled decider issues no rounds at all.
        let off = discover_statements(
            &rel,
            &LatticeConfig {
                use_decider: false,
                ..Default::default()
            },
        );
        assert_eq!(off.stats.decider_rounds, 0);
        // And ε > 0 keeps rule 3 (and its rounds) off too.
        let approx = discover_statements(
            &rel,
            &LatticeConfig {
                epsilon: 0.5,
                ..Default::default()
            },
        );
        assert_eq!(approx.stats.decider_rounds, 0);
    }

    #[test]
    fn parallel_traversal_matches_serial_bit_for_bit() {
        let rel = fixtures::example_5_taxes();
        let serial = discover_statements(&rel, &LatticeConfig::default());
        for threads in [2, 4, 8] {
            let par = discover_statements(
                &rel,
                &LatticeConfig {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(serial.minimal_statements(), par.minimal_statements());
            // Statements are sharded whole, so even the verdict evidence is
            // identical on every thread count.
            assert_eq!(serial.verdicts(), par.verdicts());
            assert_eq!(serial.stats, par.stats);
        }
    }

    #[test]
    fn constant_column_is_found_at_the_empty_context() {
        let mut schema = Schema::new("t");
        let a = schema.add_attr("a");
        let c = schema.add_attr("c");
        let rel = Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(7)],
                vec![Value::Int(2), Value::Int(7)],
                vec![Value::Int(3), Value::Int(7)],
            ],
        )
        .unwrap();
        let d = discover_statements(&rel, &LatticeConfig::default());
        assert!(d.holds(&SetOd::constancy(AttrSet::new(), c)));
        assert!(!d.holds(&SetOd::constancy(AttrSet::new(), a)));
        // Rule 2: the constant is compatible with everything, without validation.
        assert!(d.holds(&SetOd::compatibility(AttrSet::new(), a, c)));
    }

    #[test]
    fn key_contexts_delete_their_nodes_before_expansion() {
        // Column k is a key: {k} strips to nothing, so its constancies are
        // confirmed with clean verdicts, the node is deleted, and no context
        // containing k is ever created.
        let mut schema = Schema::new("keyed");
        let k = schema.add_attr("k");
        let a = schema.add_attr("a");
        let b = schema.add_attr("b");
        let rel = Relation::from_rows(
            schema,
            (0..12i64).map(|i| vec![Value::Int(i), Value::Int(i % 3), Value::Int(5 - i % 2)]),
        )
        .unwrap();
        let d = discover_statements(&rel, &LatticeConfig::default());
        assert!(d.stats.nodes_deleted >= 1, "{:?}", d.stats);
        // Everything above the key holds, answered by subsumption.
        let ka: AttrSet = [k, a].into_iter().collect();
        assert!(d.holds(&SetOd::constancy(ka, b)));
        assert!(d.holds(&SetOd::compatibility([k].into_iter().collect(), a, b)));
        // The key constancies themselves are minimal, with clean verdicts.
        let key_ctx: AttrSet = [k].into_iter().collect();
        let idx = d
            .minimal_statements()
            .iter()
            .position(|s| s == &SetOd::constancy(key_ctx, a))
            .expect("{k}: [] ↦ a is minimal");
        assert!(d.verdicts()[idx].holds());
        // No node above the key contributed: contexts {k,a}, {k,b}, {k,a,b}
        // were never created (2 nodes at most per level beyond the key).
        let created: usize = d.level_stats().iter().map(|l| l.nodes_created).sum();
        assert_eq!(created, d.stats.nodes_created);
        assert!(
            d.stats.nodes_created < 1 + 3 + 3 + 1,
            "key cone must be skipped: {:?}",
            d.stats
        );
    }

    #[test]
    fn holds_normalizes_hand_built_misordered_pairs() {
        let rel = fixtures::example_5_taxes();
        let s = rel.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let d = discover_statements(&rel, &LatticeConfig::default());
        // The enum fields are public: a caller can build `a > b` directly.
        let misordered = SetOd::Compatibility {
            context: AttrSet::new(),
            a: bracket.max(income),
            b: bracket.min(income),
        };
        assert!(d.holds(&misordered));
        assert_eq!(
            d.holds(&misordered),
            d.holds(&SetOd::compatibility(AttrSet::new(), income, bracket))
        );
    }

    #[cfg(feature = "decider")]
    #[test]
    fn decider_pruning_fires_on_fd_chains() {
        // B determines C and A determines B (ids ordered so context {B} is
        // visited before {A}); then {A}: [] ↦ C is a pure FD-transitivity
        // consequence — not propagatable from any subset context — and must be
        // resolved by the decider, not the data.
        let mut schema = Schema::new("chain");
        schema.add_attr("B");
        schema.add_attr("C");
        schema.add_attr("A");
        let rows: Vec<Vec<Value>> = [(10, 20, 30), (10, 20, 30), (11, 21, 31), (11, 21, 31)]
            .iter()
            .map(|&(b, c, a)| vec![Value::Int(b), Value::Int(c), Value::Int(a)])
            .collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let d = discover_statements(&rel, &LatticeConfig::default());
        assert!(
            d.stats.decider_pruned > 0,
            "FD transitivity must be caught: {:?}",
            d.stats
        );
        // And without the decider the same truths are simply validated instead.
        let no_decider = discover_statements(
            &rel,
            &LatticeConfig {
                use_decider: false,
                ..Default::default()
            },
        );
        assert!(no_decider.stats.validated > d.stats.validated);
        // The pruned statements still answer `holds` at superset contexts.
        for stmt in no_decider.minimal_statements() {
            assert!(d.holds(stmt));
        }
    }

    #[test]
    fn approximate_traversal_recovers_dirtied_statements() {
        // A clean ordered pair plus one corrupted row out of twenty: exact
        // discovery loses {}: a ~ b, a 5% threshold recovers it with evidence.
        let mut schema = Schema::new("dirty");
        let a = schema.add_attr("a");
        let b = schema.add_attr("b");
        let mut rows: Vec<Vec<Value>> = (0..20i64)
            .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
            .collect();
        rows[7][1] = Value::Int(-1); // one swapped cell
        let rel = Relation::from_rows(schema, rows).unwrap();
        let stmt = SetOd::compatibility(AttrSet::new(), a, b);

        let exact = discover_statements(&rel, &LatticeConfig::default());
        assert!(!exact.holds(&stmt));
        assert_eq!(exact.budget(), 0);

        let approx = discover_statements(
            &rel,
            &LatticeConfig {
                epsilon: 0.05,
                ..Default::default()
            },
        );
        assert_eq!(approx.budget(), 1);
        assert!(approx.holds(&stmt), "one bad row of twenty is within ε=5%");
        let idx = approx
            .minimal_statements()
            .iter()
            .position(|s| s == &stmt)
            .expect("recovered statement is minimal");
        let verdict = &approx.verdicts()[idx];
        assert_eq!(verdict.removal_count, 1);
        assert!(!verdict.violating_pairs.is_empty());
        assert_eq!(approx.minimal_statements().len(), approx.verdicts().len());
        assert_eq!(approx.removal_upper_bound(&stmt), Some(1));
    }

    #[test]
    fn epsilon_zero_is_exact_discovery() {
        let rel = fixtures::example_5_taxes();
        let exact = discover_statements(&rel, &LatticeConfig::default());
        let explicit = discover_statements(
            &rel,
            &LatticeConfig {
                epsilon: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(exact.minimal_statements(), explicit.minimal_statements());
        assert!(exact.verdicts().iter().all(|v| v.holds()));
    }

    #[test]
    fn level_stats_sum_to_the_totals_and_eviction_caps_the_cache() {
        let rel = fixtures::figure_1_relation();
        let d = discover_statements(&rel, &LatticeConfig::default());
        let sum = |f: fn(&LevelStats) -> usize| d.level_stats().iter().map(f).sum::<usize>();
        assert_eq!(sum(|l| l.candidates), d.stats.candidates);
        assert_eq!(sum(|l| l.validated), d.stats.validated);
        assert_eq!(sum(|l| l.decider_pruned), d.stats.decider_pruned);
        assert_eq!(sum(|l| l.propagated_away), d.stats.propagated_away);
        assert_eq!(sum(|l| l.nodes_created), d.stats.nodes_created);
        // Eviction invariant: when level L is materialized the cache holds
        // exactly this level's partitions plus the previous level's (its
        // refinement bases); everything older has been evicted.
        let levels = d.level_stats();
        for (pos, l) in levels.iter().enumerate() {
            if l.nodes_created == 0 {
                continue;
            }
            let prev_created = if pos == 0 {
                0
            } else {
                levels[pos - 1].nodes_created
            };
            assert_eq!(
                l.cached_partitions,
                l.nodes_created + prev_created,
                "level {} of {:?}",
                l.level,
                levels
            );
        }
        assert!(d.stats.peak_cached_partitions >= 1);
    }

    #[test]
    fn stats_render_for_humans() {
        let rel = fixtures::example_5_taxes();
        let d = discover_statements(&rel, &LatticeConfig::default());
        let summary = d.summary();
        assert!(summary.contains("candidates"));
        assert!(summary.contains("level"));
        // One table row per visited level, plus the aggregate and header lines.
        assert_eq!(summary.lines().count(), 2 + d.level_stats().len());
        for l in d.level_stats() {
            assert!(summary.contains(&l.to_string()));
        }
    }

    #[test]
    fn tiny_universes_and_empty_relations_terminate_cleanly() {
        // Universe smaller than the context bound: the loop stops at the
        // universe size and a single-attribute relation yields at most the
        // one constancy.
        let mut schema = Schema::new("one");
        let a = schema.add_attr("a");
        let rel = Relation::from_rows(schema, (0..4i64).map(|i| vec![Value::Int(i)])).unwrap();
        let d = discover_statements(
            &rel,
            &LatticeConfig {
                max_context: 5,
                ..Default::default()
            },
        );
        assert!(!d.holds(&SetOd::constancy(AttrSet::new(), a)));
        assert!(d.level_stats().len() <= 2);

        // Empty relation: the empty context is already a superkey, so every
        // constancy is confirmed clean at level 0 and nothing deeper exists.
        let mut schema = Schema::new("empty");
        let a = schema.add_attr("a");
        let b = schema.add_attr("b");
        let empty = Relation::from_rows(schema, Vec::<Vec<Value>>::new()).unwrap();
        let d = discover_statements(&empty, &LatticeConfig::default());
        assert!(d.holds(&SetOd::constancy(AttrSet::new(), a)));
        assert!(d.holds(&SetOd::compatibility(AttrSet::new(), a, b)));
        assert_eq!(d.stats.nodes_created, 1);
        assert_eq!(d.stats.nodes_deleted, 1);
        assert!(d
            .minimal_statements()
            .iter()
            .all(|s| matches!(s, SetOd::Constancy { .. })));
    }

    #[test]
    fn oversized_schemas_error_gracefully() {
        let mut schema = Schema::new("wide");
        for i in 0..(AttrSet::MAX_ATTRS + 1) {
            schema.add_attr(format!("c{i}"));
        }
        let rel = Relation::from_rows(schema, Vec::<Vec<Value>>::new()).unwrap();
        assert_eq!(
            try_discover_statements(&rel, &LatticeConfig::default()).unwrap_err(),
            CoreError::AttrSetOverflow(AttrSet::MAX_ATTRS as u32)
        );
        // At exactly 64 attributes the bitset domain still fits.
        let mut schema = Schema::new("exact");
        for i in 0..AttrSet::MAX_ATTRS {
            schema.add_attr(format!("c{i}"));
        }
        let rel = Relation::from_rows(schema, Vec::<Vec<Value>>::new()).unwrap();
        assert!(try_discover_statements(
            &rel,
            &LatticeConfig {
                max_context: 1,
                ..Default::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn subsets_enumerate_binomially_in_canonical_order() {
        let u: Vec<AttrId> = (0..5).map(AttrId).collect();
        assert_eq!(subsets_of_size(&u, 0).len(), 1);
        let twos = subsets_of_size(&u, 2);
        assert_eq!(twos.len(), 10);
        // Lexicographic on ascending id sequences — the canonical order.
        let mut sorted = twos.clone();
        sorted.sort();
        assert_eq!(twos, sorted);
        assert_eq!(subsets_of_size(&u, 5).len(), 1);
    }

    #[test]
    fn pair_sets_intersect_and_enumerate_canonically() {
        let u: Vec<AttrId> = (0..4).map(AttrId).collect();
        let full = PairSet::full(&u);
        assert_eq!(full.len(), 6);
        let pairs: Vec<(u32, u32)> = full.iter().map(|(a, b)| (a.0, b.0)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut pruned = full.clone();
        pruned.remove_touching([AttrId(1)].into_iter().collect());
        assert_eq!(pruned.len(), 3);
        assert!(!pruned.contains(AttrId(0), AttrId(1)));
        assert!(pruned.contains(AttrId(2), AttrId(3)));
        let mut both = full.clone();
        both.intersect_with(&pruned);
        assert_eq!(both, pruned);
        assert!(PairSet::empty(4).is_empty());
    }
}
