//! The set-based canonical form of order dependencies and the exact
//! translation between it and the paper's list-based statements.
//!
//! Following the FASTOD line of work (*Effective and Complete Discovery of
//! Order Dependencies via Set-based Axiomatization*), every list-based OD is
//! equivalent to a conjunction of two kinds of **context statements** over
//! attribute *sets*:
//!
//! * [`SetOd::Constancy`] — `𝒞 : [] ↦ A`: within every equivalence class of the
//!   context `𝒞`, attribute `A` is constant.  (`𝒞 : [] ↦ A` ⟺ the FD `𝒞 → A`.)
//! * [`SetOd::Compatibility`] — `𝒞 : A ~ B`: within every class of `𝒞`, the
//!   attributes `A` and `B` are order compatible (no swap).
//!
//! The translation implemented by [`translate_od`] is:
//!
//! ```text
//! [A1..An] ↦ [B1..Bm]   ⟺   { set(X) : [] ↦ Bj                        | j ≤ m }
//!                          ∪ { {A1..Ai-1} ∪ {B1..Bj-1} : Ai ~ Bj      | i ≤ n, j ≤ m }
//! ```
//!
//! The first family forbids **splits** (Definition 13 — it is exactly the FD
//! `set(X) → set(Y)` of the paper's Lemma 1), the second forbids **swaps**
//! (Definition 14): a swap pair agrees on some prefix of `X` and some prefix of
//! `Y` and inverts the next attribute of each, which is precisely a violation
//! of the context statement at that position pair.  [`constancy_as_od`] and
//! [`compatibility_as_ods`] translate back; the round trip is exercised against
//! the split/swap checker in this module's tests and the crate's proptests.

use od_core::{AttrId, AttrList, AttrSet, OrderDependency, Schema};
use std::fmt;

/// A canonical set-based OD statement (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SetOd {
    /// `𝒞 : [] ↦ A` — `A` is constant within every class of context `𝒞`.
    Constancy {
        /// The context set `𝒞`.
        context: AttrSet,
        /// The constant attribute.
        attr: AttrId,
    },
    /// `𝒞 : A ~ B` — `A` and `B` are order compatible within every class of
    /// `𝒞`.  Stored with `a < b` (the statement is symmetric).
    Compatibility {
        /// The context set `𝒞`.
        context: AttrSet,
        /// Smaller attribute of the (unordered) pair.
        a: AttrId,
        /// Larger attribute of the pair.
        b: AttrId,
    },
}

impl SetOd {
    /// Build a constancy statement.
    pub fn constancy(context: AttrSet, attr: AttrId) -> Self {
        SetOd::Constancy { context, attr }
    }

    /// Build a compatibility statement (normalizing the pair order).
    pub fn compatibility(context: AttrSet, a: AttrId, b: AttrId) -> Self {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        SetOd::Compatibility { context, a, b }
    }

    /// The context set of the statement.
    pub fn context(&self) -> &AttrSet {
        match self {
            SetOd::Constancy { context, .. } | SetOd::Compatibility { context, .. } => context,
        }
    }

    /// A misordered compatibility pair (the enum fields are public, so callers
    /// can construct `a > b` directly) normalized to the canonical `a ≤ b`
    /// form; `None` when the statement is already canonical.  Lookup paths
    /// call this so hand-built statements match discovered ones.
    pub fn normalized(&self) -> Option<SetOd> {
        match self {
            SetOd::Compatibility { context, a, b } if a > b => {
                Some(SetOd::compatibility(*context, *a, *b))
            }
            _ => None,
        }
    }

    /// True if the statement holds on **every** instance: the mentioned
    /// attribute(s) already appear in the context (values inside a context
    /// class are constant on context attributes), or the pair is reflexive.
    pub fn is_trivial(&self) -> bool {
        match self {
            SetOd::Constancy { context, attr } => context.contains(attr),
            SetOd::Compatibility { context, a, b } => {
                a == b || context.contains(a) || context.contains(b)
            }
        }
    }

    /// The equivalent list-based OD(s): one OD for a constancy, the two
    /// direction ODs of the defining equivalence for a compatibility.
    pub fn as_list_ods(&self) -> Vec<OrderDependency> {
        match self {
            SetOd::Constancy { context, attr } => vec![constancy_as_od(context, *attr)],
            SetOd::Compatibility { context, a, b } => {
                compatibility_as_ods(context, *a, *b).to_vec()
            }
        }
    }

    /// Render with attribute names resolved against a schema.
    pub fn display(&self, schema: &Schema) -> String {
        let ctx = |c: &AttrSet| {
            let names: Vec<&str> = c.iter().map(|a| schema.attr_name(a)).collect();
            format!("{{{}}}", names.join(", "))
        };
        match self {
            SetOd::Constancy { context, attr } => {
                format!("{} : [] ↦ {}", ctx(context), schema.attr_name(*attr))
            }
            SetOd::Compatibility { context, a, b } => format!(
                "{} : {} ~ {}",
                ctx(context),
                schema.attr_name(*a),
                schema.attr_name(*b)
            ),
        }
    }
}

impl fmt::Display for SetOd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ctx = |c: &AttrSet| {
            let parts: Vec<String> = c.iter().map(|a| a.to_string()).collect();
            format!("{{{}}}", parts.join(", "))
        };
        match self {
            SetOd::Constancy { context, attr } => write!(f, "{} : [] ↦ {attr}", ctx(context)),
            SetOd::Compatibility { context, a, b } => {
                write!(f, "{} : {a} ~ {b}", ctx(context))
            }
        }
    }
}

/// The list OD `C' ↦ C'A` stating `𝒞 : [] ↦ A` (any linearization `C'` of the
/// context is equivalent by the Permutation theorem; ascending id order is the
/// canonical representative).
pub fn constancy_as_od(context: &AttrSet, attr: AttrId) -> OrderDependency {
    let ctx: AttrList = context.iter().collect();
    OrderDependency::new(ctx.clone(), ctx.with_suffix(attr))
}

/// The two list ODs whose conjunction states `𝒞 : A ~ B`
/// (`C'AB ↔ C'BA`, Definition 5 applied under the context).
pub fn compatibility_as_ods(context: &AttrSet, a: AttrId, b: AttrId) -> [OrderDependency; 2] {
    let ctx: AttrList = context.iter().collect();
    let cab = ctx.with_suffix(a).with_suffix(b);
    let cba = ctx.with_suffix(b).with_suffix(a);
    [
        OrderDependency::new(cab.clone(), cba.clone()),
        OrderDependency::new(cba, cab),
    ]
}

/// Translate a list-based OD into the equivalent conjunction of canonical
/// set-based statements (trivial statements are omitted).
///
/// The OD is normalized first (axiom OD3 — duplicate attribute occurrences are
/// semantically redundant).  The result is empty exactly when the OD holds on
/// every instance *for syntactic reasons* covered by the mapping (e.g. `X ↦ []`).
pub fn translate_od(od: &OrderDependency) -> Vec<SetOd> {
    let od = od.normalize();
    let lhs: Vec<AttrId> = od.lhs.iter().collect();
    let rhs: Vec<AttrId> = od.rhs.iter().collect();
    let lhs_set = od.lhs.to_set();
    let mut out = Vec::new();

    // Split freedom: every RHS attribute is constant within Π_set(X).
    for &b in &rhs {
        let stmt = SetOd::constancy(lhs_set, b);
        if !stmt.is_trivial() {
            out.push(stmt);
        }
    }
    // Swap freedom: each (Ai, Bj) pair is compatible within the context of the
    // preceding prefixes.
    for (i, &a) in lhs.iter().enumerate() {
        for (j, &b) in rhs.iter().enumerate() {
            let mut context: AttrSet = lhs[..i].iter().copied().collect();
            context.extend(rhs[..j].iter().copied());
            let stmt = SetOd::compatibility(context, a, b);
            if !stmt.is_trivial() {
                out.push(stmt);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::check::od_holds;
    use od_core::{Relation, Value};

    fn l(ids: &[u32]) -> AttrList {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    fn set(ids: &[u32]) -> AttrSet {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn trivial_statements_are_recognized() {
        assert!(SetOd::constancy(set(&[1, 2]), AttrId(1)).is_trivial());
        assert!(!SetOd::constancy(set(&[1, 2]), AttrId(3)).is_trivial());
        assert!(SetOd::compatibility(set(&[]), AttrId(4), AttrId(4)).is_trivial());
        assert!(SetOd::compatibility(set(&[4]), AttrId(4), AttrId(5)).is_trivial());
        assert!(!SetOd::compatibility(set(&[0]), AttrId(4), AttrId(5)).is_trivial());
    }

    #[test]
    fn compatibility_normalizes_pair_order() {
        assert_eq!(
            SetOd::compatibility(set(&[]), AttrId(5), AttrId(2)),
            SetOd::compatibility(set(&[]), AttrId(2), AttrId(5)),
        );
    }

    #[test]
    fn translation_of_a_simple_od() {
        // [A] ↦ [B]: split part {A}: [] ↦ B, swap part {}: A ~ B.
        let stmts = translate_od(&OrderDependency::new(l(&[0]), l(&[1])));
        assert_eq!(
            stmts,
            vec![
                SetOd::constancy(set(&[0]), AttrId(1)),
                SetOd::compatibility(set(&[]), AttrId(0), AttrId(1)),
            ]
        );
    }

    #[test]
    fn translation_of_width_two_od() {
        // [A,B] ↦ [C,D] has 2 constancies and 4 contextual compatibilities.
        let stmts = translate_od(&OrderDependency::new(l(&[0, 1]), l(&[2, 3])));
        assert_eq!(stmts.len(), 6);
        assert!(stmts.contains(&SetOd::constancy(set(&[0, 1]), AttrId(2))));
        assert!(stmts.contains(&SetOd::constancy(set(&[0, 1]), AttrId(3))));
        assert!(stmts.contains(&SetOd::compatibility(set(&[]), AttrId(0), AttrId(2))));
        assert!(stmts.contains(&SetOd::compatibility(set(&[2]), AttrId(0), AttrId(3))));
        assert!(stmts.contains(&SetOd::compatibility(set(&[0]), AttrId(1), AttrId(2))));
        assert!(stmts.contains(&SetOd::compatibility(set(&[0, 2]), AttrId(1), AttrId(3))));
    }

    #[test]
    fn trivial_ods_translate_to_nothing() {
        assert!(translate_od(&OrderDependency::new(l(&[0, 1]), l(&[0]))).is_empty());
        assert!(translate_od(&OrderDependency::new(l(&[0]), l(&[]))).is_empty());
        assert!(translate_od(&OrderDependency::new(l(&[0, 1, 0]), l(&[0, 1]))).is_empty());
    }

    #[test]
    fn overlapping_sides_translate_without_trivial_noise() {
        // [A] ↦ [B, A]: {A}: [] ↦ B and {}: A ~ B survive; A-related trivia do not.
        let stmts = translate_od(&OrderDependency::new(l(&[0]), l(&[1, 0])));
        assert_eq!(
            stmts,
            vec![
                SetOd::constancy(set(&[0]), AttrId(1)),
                SetOd::compatibility(set(&[]), AttrId(0), AttrId(1)),
            ]
        );
    }

    #[test]
    fn back_translation_round_trips_on_instances() {
        // Build a relation where {}: A ~ B fails but {C}: A ~ B holds.
        let mut schema = od_core::Schema::new("t");
        let a = schema.add_attr("A");
        let b = schema.add_attr("B");
        let c = schema.add_attr("C");
        let rel = Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(0), Value::Int(1), Value::Int(0)],
                vec![Value::Int(1), Value::Int(0), Value::Int(1)],
                vec![Value::Int(2), Value::Int(2), Value::Int(1)],
            ],
        )
        .unwrap();
        // {}: A ~ B is violated by rows 0 and 1.
        let [fwd, _] = compatibility_as_ods(&set(&[]), a, b);
        assert!(!od_holds(&rel, &fwd), "swap between rows 0 and 1");
        // {C}: A ~ B holds (each C-class is internally compatible).
        for od in compatibility_as_ods(&set(&[c.0]), a, b) {
            assert!(od_holds(&rel, &od));
        }
        // Constancy: {A}: [] ↦ B holds (A is a key here).
        assert!(od_holds(&rel, &constancy_as_od(&set(&[a.0]), b)));
    }
}
