//! Parallel validation: shard partition-class work across threads.
//!
//! Canonical-statement validation is embarrassingly parallel — each equivalence
//! class contributes an independent removal count and the statement verdict is
//! their sum — so classes are split into contiguous chunks, one scoped thread
//! per chunk, with a shared **atomic error-budget counter**: every thread adds
//! its per-class removals to the counter and stops at the next class boundary
//! once the running total exceeds the budget (budget 0 reproduces the classic
//! first-violation early exit).  Everything uses `std::thread::scope`; no
//! external thread-pool dependency is needed.
//!
//! The accept/reject decision (`verdict.within(budget)`) is deterministic
//! across thread counts: threads only stop early after the shared counter has
//! strictly exceeded the budget, so an accepted verdict always carries the
//! complete, exact removal count.  For rejected verdicts the overshoot and the
//! witness sample depend on scheduling.

use crate::partition::{ClassCodes, RefineScratch, StrippedPartition};
use crate::validate::{
    class_compatibility_removal, class_constancy_removal, class_is_compatible, class_is_constant,
    ClassCode, Verdict, WITNESS_SAMPLE_CAP,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A sensible thread count for validation work on this machine.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Scan every class of `part` with `per_class` (which returns the class's
/// removal count and may append witnesses), sharded over up to `threads`
/// threads, stopping once the summed removal count exceeds `budget`.  Classes
/// are read directly as CSR slices; workers claim contiguous index ranges.
pub fn scan_classes<F>(
    part: &StrippedPartition,
    threads: usize,
    budget: usize,
    per_class: F,
) -> Verdict
where
    F: Fn(&[u32], &mut Vec<(u32, u32)>) -> usize + Sync,
{
    let n_classes = part.num_classes();
    let threads = threads.clamp(1, n_classes.max(1));
    if threads <= 1 || n_classes < 2 {
        let mut verdict = Verdict::clean();
        for class in part.classes() {
            verdict.classes_scanned += 1;
            verdict.removal_count += per_class(class, &mut verdict.violating_pairs);
            if verdict.removal_count > budget {
                verdict.exceeded = true;
                break;
            }
        }
        return verdict;
    }
    let removal = AtomicUsize::new(0);
    let scanned = AtomicUsize::new(0);
    let exceeded = AtomicBool::new(false);
    let chunk_size = n_classes.div_ceil(threads);
    let mut witnesses: Vec<(u32, u32)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut start = 0usize;
        while start < n_classes {
            let end = (start + chunk_size).min(n_classes);
            let removal = &removal;
            let scanned = &scanned;
            let exceeded = &exceeded;
            let per_class = &per_class;
            handles.push(scope.spawn(move || {
                let mut local_witnesses = Vec::new();
                let mut local_scanned = 0usize;
                for i in start..end {
                    if exceeded.load(Ordering::Relaxed) {
                        break;
                    }
                    local_scanned += 1;
                    let r = per_class(part.class(i), &mut local_witnesses);
                    if r > 0 {
                        let total = removal.fetch_add(r, Ordering::Relaxed) + r;
                        if total > budget {
                            exceeded.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                scanned.fetch_add(local_scanned, Ordering::Relaxed);
                local_witnesses
            }));
            start = end;
        }
        for handle in handles {
            let local = handle.join().expect("validation worker panicked");
            for pair in local {
                if witnesses.len() >= WITNESS_SAMPLE_CAP {
                    break;
                }
                witnesses.push(pair);
            }
        }
    });
    Verdict {
        removal_count: removal.load(Ordering::Relaxed),
        exceeded: exceeded.load(Ordering::Relaxed),
        violating_pairs: witnesses,
        classes_scanned: scanned.load(Ordering::Relaxed),
    }
}

/// Parallel variant of [`crate::validate::constancy_verdict`].
pub fn constancy_verdict_parallel<C: ClassCode>(
    part: &StrippedPartition,
    codes: &[C],
    threads: usize,
    budget: usize,
) -> Verdict {
    scan_classes(part, threads, budget, |class, witnesses| {
        if class_is_constant(class, codes) {
            0
        } else {
            class_constancy_removal(class, codes, witnesses)
        }
    })
}

/// Parallel variant of [`crate::validate::compatibility_verdict`].
pub fn compatibility_verdict_parallel<C: ClassCode>(
    part: &StrippedPartition,
    codes_a: &[C],
    codes_b: &[C],
    threads: usize,
    budget: usize,
) -> Verdict {
    scan_classes(part, threads, budget, |class, witnesses| {
        if class_is_compatible(class, codes_a, codes_b) {
            0
        } else {
            class_compatibility_removal(class, codes_a, codes_b, witnesses)
        }
    })
}

/// One statement's pre-resolved inputs for a batched validation pass: the
/// context's stripped partition plus the rank codes of the mentioned
/// attribute(s).  Building the jobs (partition products, code lookups) stays
/// serial — the caches hand out `Rc`s — while the scans themselves are
/// shared-nothing reads.
pub enum StatementJob<'a> {
    /// `𝒞 : [] ↦ A` over `part` with `A`'s codes.
    Constancy {
        /// Stripped partition of the context `𝒞`.
        part: &'a StrippedPartition,
        /// Rank codes of the constant attribute.
        codes: &'a [u32],
    },
    /// `𝒞 : A ~ B` over `part` with both attributes' codes.
    Compatibility {
        /// Stripped partition of the context `𝒞`.
        part: &'a StrippedPartition,
        /// Rank codes of the pair's smaller attribute.
        codes_a: &'a [u32],
        /// Rank codes of the pair's larger attribute.
        codes_b: &'a [u32],
    },
}

/// Validate a whole level's surviving statements in one sharded pass.
///
/// Where [`scan_classes`] parallelizes *within* one statement (sharding one
/// partition's classes), this shards *across* statements: each job is scanned
/// serially by exactly one thread, jobs are claimed from a shared atomic
/// cursor (statement costs vary wildly — a level's empty-context statement
/// covers every row while its key-adjacent ones cover almost none, so static
/// chunking would straggle), and the verdicts come back in job order.  Because
/// every scan is the serial scan, the returned verdicts — witnesses, exact
/// overshoot and all — are bit-identical on every thread count.
pub fn validate_statement_batch(
    jobs: &[StatementJob<'_>],
    threads: usize,
    budget: usize,
) -> Vec<Verdict> {
    let run = |job: &StatementJob<'_>| match job {
        StatementJob::Constancy { part, codes } => {
            constancy_verdict_parallel(part, codes, 1, budget)
        }
        StatementJob::Compatibility {
            part,
            codes_a,
            codes_b,
        } => compatibility_verdict_parallel(part, codes_a, codes_b, 1, budget),
    };
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads <= 1 || jobs.len() < 2 {
        return jobs.iter().map(run).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<Verdict>> = vec![None; jobs.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let cursor = &cursor;
            let run = &run;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    local.push((i, run(&jobs[i])));
                }
                local
            }));
        }
        for handle in handles {
            for (i, verdict) in handle.join().expect("batch validation worker panicked") {
                out[i] = Some(verdict);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("every job index is claimed exactly once"))
        .collect()
}

/// One context's partition composition for a sharded level expansion: either a
/// level-1 bucketing of the full relation on an attribute's raw code column,
/// or a level ≥ 2 packed-u64 product against the last attribute's class-code
/// column.  Both are pure functions of their inputs.
#[derive(Clone, Copy)]
pub enum RefineJob<'a> {
    /// Bucket `base` (the full-relation partition) on a raw code column.
    Codes {
        /// Partition of the context minus its last attribute.
        base: &'a StrippedPartition,
        /// The last attribute's order-preserving rank codes.
        codes: &'a [u32],
    },
    /// Product of `base` with the last attribute's class-code column.
    Product {
        /// Partition of the context minus its last attribute.
        base: &'a StrippedPartition,
        /// The last attribute's dense class ids ([`ClassCodes`]).
        other: &'a ClassCodes,
    },
}

impl RefineJob<'_> {
    fn run(&self, scratch: &mut RefineScratch) -> StrippedPartition {
        match self {
            RefineJob::Codes { base, codes } => base.refine_by_with(codes, scratch),
            RefineJob::Product { base, other } => base.product_with(other, scratch),
        }
    }
}

/// Shard a level's partition products **by context** across threads.
///
/// Each job is one context's incremental composition (see [`RefineJob`]);
/// `None` jobs (contexts already cached) pass through untouched.  Jobs are
/// claimed from contiguous chunks with one reused [`RefineScratch`] per
/// worker; every job is a pure function of its inputs, so the output vector is
/// bit-identical on every thread count.  This is the third sharding axis of
/// the crate — classes within a scan ([`scan_classes`]), statements within a
/// level ([`validate_statement_batch`]), and now contexts within a level
/// expansion.
///
/// The second and third return values are the total radix counting passes the
/// workers spent on u32 refinement keys and packed u64 product keys — each a
/// deterministic function of the jobs (a per-class property, independent of
/// how jobs were sharded), summed here so the orchestrating thread can fold
/// them into its own metrics; the workers themselves never touch od-obs.
pub fn refine_batch(
    jobs: &[Option<RefineJob<'_>>],
    threads: usize,
) -> (Vec<Option<StrippedPartition>>, u64, u64) {
    let live = jobs.iter().filter(|j| j.is_some()).count();
    let threads = threads.clamp(1, live.max(1));
    if threads <= 1 || live < 2 {
        let mut scratch = RefineScratch::default();
        let out = jobs
            .iter()
            .map(|job| job.map(|j| j.run(&mut scratch)))
            .collect();
        return (out, scratch.radix_passes(), scratch.product_radix_passes());
    }
    let chunk_size = jobs.len().div_ceil(threads);
    let mut out: Vec<Option<StrippedPartition>> = Vec::with_capacity(jobs.len());
    let mut passes = 0u64;
    let mut product_passes = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in jobs.chunks(chunk_size) {
            handles.push(scope.spawn(move || {
                let mut scratch = RefineScratch::default();
                let fresh = chunk
                    .iter()
                    .map(|job| job.map(|j| j.run(&mut scratch)))
                    .collect::<Vec<_>>();
                (
                    fresh,
                    scratch.radix_passes(),
                    scratch.product_radix_passes(),
                )
            }));
        }
        for handle in handles {
            let (fresh, worker_passes, worker_product) =
                handle.join().expect("refinement worker panicked");
            out.extend(fresh);
            passes += worker_passes;
            product_passes += worker_product;
        }
    });
    (out, passes, product_passes)
}

/// Run `patch` over every ledger, sharded over up to `threads` threads.
///
/// This is the streaming counterpart of [`scan_classes`]: where a snapshot
/// scan shards the *classes* of one partition, a delta patch shards the
/// *ledgers* — each [`crate::stream::VerdictLedger`] owns its per-class state
/// and reads only shared immutable structures (partitions, column codes), so
/// ledgers are embarrassingly parallel.  Serial when `threads ≤ 1` or there
/// is at most one ledger.
pub fn for_each_ledger<T, F>(ledgers: &mut [T], threads: usize, patch: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = threads.clamp(1, ledgers.len().max(1));
    if threads <= 1 || ledgers.len() < 2 {
        for ledger in ledgers {
            patch(ledger);
        }
        return;
    }
    let chunk_size = ledgers.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for chunk in ledgers.chunks_mut(chunk_size) {
            let patch = &patch;
            scope.spawn(move || {
                for ledger in chunk {
                    patch(ledger);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{compatibility_verdict, constancy_verdict};
    use od_core::{AttrId, Relation, Schema, Value};

    fn rel_with_groups(groups: usize, per_group: usize) -> Relation {
        let mut schema = Schema::new("t");
        schema.add_attr("g");
        schema.add_attr("a");
        schema.add_attr("b");
        let mut rows = Vec::new();
        for g in 0..groups as i64 {
            for i in 0..per_group as i64 {
                rows.push(vec![Value::Int(g), Value::Int(i), Value::Int(i * 2)]);
            }
        }
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn parallel_agrees_with_serial() {
        let rel = rel_with_groups(23, 7);
        let g = rel.rank_column(AttrId(0));
        let a = rel.rank_column(AttrId(1));
        let b = rel.rank_column(AttrId(2));
        let part = crate::partition::StrippedPartition::by_codes(&g);
        for threads in [1, 2, 4, 16] {
            // Unlimited budget: removal counts are exact on any thread count.
            let c = constancy_verdict_parallel(&part, &a, threads, usize::MAX);
            assert_eq!(
                c.removal_count,
                constancy_verdict(&part, &a, usize::MAX).removal_count
            );
            assert_eq!(c.classes_scanned, part.num_classes());
            let k = compatibility_verdict_parallel(&part, &a, &b, threads, usize::MAX);
            assert_eq!(
                k.removal_count,
                compatibility_verdict(&part, &a, &b, usize::MAX).removal_count
            );
        }
        // Constancy of g itself within g-classes holds on any thread count.
        assert!(constancy_verdict_parallel(&part, &g, 4, 0).holds());
    }

    #[test]
    fn budget_exceeded_reports_failure() {
        // b decreases while a increases inside every class: all-swap classes.
        let mut schema = Schema::new("t");
        schema.add_attr("g");
        schema.add_attr("a");
        schema.add_attr("b");
        let mut rows = Vec::new();
        for g in 0..40i64 {
            rows.push(vec![Value::Int(g), Value::Int(0), Value::Int(1)]);
            rows.push(vec![Value::Int(g), Value::Int(1), Value::Int(0)]);
        }
        let rel = Relation::from_rows(schema, rows).unwrap();
        let g = rel.rank_column(AttrId(0));
        let a = rel.rank_column(AttrId(1));
        let b = rel.rank_column(AttrId(2));
        let part = crate::partition::StrippedPartition::by_codes(&g);
        let k = compatibility_verdict_parallel(&part, &a, &b, 8, 0);
        assert!(!k.holds() && k.exceeded && !k.within(0));
        assert!(!k.violating_pairs.is_empty());
        let c = constancy_verdict_parallel(&part, &a, 8, 0);
        assert!(!c.holds());
        // With one removal per class and 40 classes, a budget of 39 is a near
        // miss and 40 accepts: the decision matches on every thread count.
        for threads in [1, 3, 8] {
            assert!(!compatibility_verdict_parallel(&part, &a, &b, threads, 39).within(39));
            assert!(compatibility_verdict_parallel(&part, &a, &b, threads, 40).within(40));
        }
    }

    #[test]
    fn degenerate_inputs() {
        let part = crate::partition::StrippedPartition::full(0);
        assert!(constancy_verdict_parallel::<u32>(&part, &[], 4, 0).holds());
        assert!(
            scan_classes(&part, 4, 0, |_, _| 1).holds(),
            "vacuous truth over no classes"
        );
        assert!(available_threads() >= 1);
    }

    #[test]
    fn statement_batch_matches_serial_scans_on_any_thread_count() {
        let rel = rel_with_groups(17, 5);
        let g = rel.rank_column(AttrId(0));
        let a = rel.rank_column(AttrId(1));
        let b = rel.rank_column(AttrId(2));
        let part = crate::partition::StrippedPartition::by_codes(&g);
        let jobs = vec![
            StatementJob::Constancy {
                part: &part,
                codes: &a,
            },
            StatementJob::Compatibility {
                part: &part,
                codes_a: &a,
                codes_b: &b,
            },
            StatementJob::Constancy {
                part: &part,
                codes: &g,
            },
        ];
        let serial = validate_statement_batch(&jobs, 1, usize::MAX);
        for threads in [2, 4, 16] {
            let batched = validate_statement_batch(&jobs, threads, usize::MAX);
            assert_eq!(serial, batched, "threads = {threads}");
        }
        assert_eq!(serial[0].removal_count, 17 * 4);
        assert!(serial[1].holds() && serial[2].holds());
        assert!(validate_statement_batch(&[], 8, 0).is_empty());
    }

    #[test]
    fn for_each_ledger_visits_every_item_on_any_thread_count() {
        for threads in [1, 2, 5, 16] {
            let mut items: Vec<usize> = (0..23).collect();
            for_each_ledger(&mut items, threads, |item| *item += 100);
            assert!(
                items.iter().enumerate().all(|(i, &v)| v == i + 100),
                "threads = {threads}"
            );
        }
        let mut empty: Vec<usize> = Vec::new();
        for_each_ledger(&mut empty, 4, |_| unreachable!());
    }
}
