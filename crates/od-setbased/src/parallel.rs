//! Parallel validation: shard partition-class work across threads.
//!
//! Canonical-statement validation is embarrassingly parallel — each equivalence
//! class is checked independently and the verdict is a conjunction — so classes
//! are split into contiguous chunks, one scoped thread per chunk, with an
//! atomic early-exit flag so a violation found in one chunk stops the others at
//! their next class boundary.  Everything uses `std::thread::scope`; no
//! external thread-pool dependency is needed.

use crate::partition::StrippedPartition;
use crate::validate::{class_is_compatible, class_is_constant};
use std::sync::atomic::{AtomicBool, Ordering};

/// A sensible thread count for validation work on this machine.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Check `predicate` on every class, sharded over up to `threads` threads.
/// Returns true iff every class passes.  Falls back to a serial scan for small
/// workloads where spawning would dominate.
pub fn all_classes<F>(classes: &[Vec<u32>], threads: usize, predicate: F) -> bool
where
    F: Fn(&[u32]) -> bool + Sync,
{
    let threads = threads.clamp(1, classes.len().max(1));
    if threads <= 1 || classes.len() < 2 {
        return classes.iter().all(|c| predicate(c));
    }
    let failed = AtomicBool::new(false);
    let chunk_size = classes.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for chunk in classes.chunks(chunk_size) {
            let failed = &failed;
            let predicate = &predicate;
            scope.spawn(move || {
                for class in chunk {
                    if failed.load(Ordering::Relaxed) {
                        return;
                    }
                    if !predicate(class) {
                        failed.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
    !failed.load(Ordering::Relaxed)
}

/// Parallel variant of [`crate::validate::constancy_holds`].
pub fn constancy_holds_parallel(part: &StrippedPartition, codes: &[u32], threads: usize) -> bool {
    all_classes(part.classes(), threads, |class| {
        class_is_constant(class, codes)
    })
}

/// Parallel variant of [`crate::validate::compatibility_holds`].
pub fn compatibility_holds_parallel(
    part: &StrippedPartition,
    codes_a: &[u32],
    codes_b: &[u32],
    threads: usize,
) -> bool {
    all_classes(part.classes(), threads, |class| {
        class_is_compatible(class, codes_a, codes_b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{compatibility_holds, constancy_holds};
    use od_core::{AttrId, Relation, Schema, Value};

    fn rel_with_groups(groups: usize, per_group: usize) -> Relation {
        let mut schema = Schema::new("t");
        schema.add_attr("g");
        schema.add_attr("a");
        schema.add_attr("b");
        let mut rows = Vec::new();
        for g in 0..groups as i64 {
            for i in 0..per_group as i64 {
                rows.push(vec![Value::Int(g), Value::Int(i), Value::Int(i * 2)]);
            }
        }
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn parallel_agrees_with_serial() {
        let rel = rel_with_groups(23, 7);
        let g = rel.rank_column(AttrId(0));
        let a = rel.rank_column(AttrId(1));
        let b = rel.rank_column(AttrId(2));
        let part = crate::partition::StrippedPartition::by_codes(&g);
        for threads in [1, 2, 4, 16] {
            assert_eq!(
                constancy_holds_parallel(&part, &a, threads),
                constancy_holds(&part, &a)
            );
            assert_eq!(
                compatibility_holds_parallel(&part, &a, &b, threads),
                compatibility_holds(&part, &a, &b)
            );
        }
        // Constancy of g itself within g-classes holds on any thread count.
        assert!(constancy_holds_parallel(&part, &g, 4));
    }

    #[test]
    fn early_exit_reports_failure() {
        // b decreases while a increases inside every class: all-swap classes.
        let mut schema = Schema::new("t");
        schema.add_attr("g");
        schema.add_attr("a");
        schema.add_attr("b");
        let mut rows = Vec::new();
        for g in 0..40i64 {
            rows.push(vec![Value::Int(g), Value::Int(0), Value::Int(1)]);
            rows.push(vec![Value::Int(g), Value::Int(1), Value::Int(0)]);
        }
        let rel = Relation::from_rows(schema, rows).unwrap();
        let g = rel.rank_column(AttrId(0));
        let a = rel.rank_column(AttrId(1));
        let b = rel.rank_column(AttrId(2));
        let part = crate::partition::StrippedPartition::by_codes(&g);
        assert!(!compatibility_holds_parallel(&part, &a, &b, 8));
        assert!(!constancy_holds_parallel(&part, &a, 8));
    }

    #[test]
    fn degenerate_inputs() {
        let part = crate::partition::StrippedPartition::full(0);
        assert!(constancy_holds_parallel(&part, &[], 4));
        assert!(
            all_classes(&[], 4, |_| false),
            "vacuous truth over no classes"
        );
        assert!(available_threads() >= 1);
    }
}
