//! Wire codecs for set-based statements and verdicts.
//!
//! Canonical byte layouts shared by every transport that ships [`SetOd`]s
//! or [`Verdict`]s across a process boundary: the od-server protocol
//! (`od-server::proto` delegates here) and the distributed lattice
//! workers ([`crate::dist`]).  Layouts build on [`od_core::wire`]
//! primitives — fixed-width little-endian integers, attribute sets as raw
//! `u64` bitmasks — and stay canonical: `encode ∘ decode ∘ encode ==
//! encode` bit-for-bit.
//!
//! | value                      | payload                                              |
//! |----------------------------|------------------------------------------------------|
//! | [`SetOd::Constancy`]       | `[0u8]` + context mask `u64` + attr `u32`            |
//! | [`SetOd::Compatibility`]   | `[1u8]` + context mask `u64` + a `u32` + b `u32`     |
//! | [`Verdict`]                | removals `u64` + exceeded `bool` + scanned `u64` + pair count `u32` + pairs `(u32, u32)*` |

use crate::canonical::SetOd;
use crate::validate::Verdict;
use od_core::wire::{self, get_attr_set, put_attr_set, Reader, WireError, WireResult};
use od_core::AttrId;

/// Statement-kind tag for [`SetOd::Constancy`].
pub const STMT_CONSTANCY: u8 = 0;
/// Statement-kind tag for [`SetOd::Compatibility`].
pub const STMT_COMPATIBILITY: u8 = 1;

/// Encode a canonical set-based statement: the statement kind, its context
/// as a raw `u64` bitmask, then the attribute ids.
pub fn put_statement(buf: &mut Vec<u8>, stmt: &SetOd) {
    match stmt {
        SetOd::Constancy { context, attr } => {
            wire::put_u8(buf, STMT_CONSTANCY);
            put_attr_set(buf, context);
            wire::put_u32(buf, attr.0);
        }
        SetOd::Compatibility { context, a, b } => {
            wire::put_u8(buf, STMT_COMPATIBILITY);
            put_attr_set(buf, context);
            wire::put_u32(buf, a.0);
            wire::put_u32(buf, b.0);
        }
    }
}

/// Decode one statement written by [`put_statement`].
pub fn get_statement(r: &mut Reader<'_>) -> WireResult<SetOd> {
    match r.u8()? {
        STMT_CONSTANCY => Ok(SetOd::constancy(get_attr_set(r)?, AttrId(r.u32()?))),
        STMT_COMPATIBILITY => Ok(SetOd::compatibility(
            get_attr_set(r)?,
            AttrId(r.u32()?),
            AttrId(r.u32()?),
        )),
        tag => Err(WireError::InvalidTag { what: "SetOd", tag }),
    }
}

/// Encode a validation verdict, including its sampled witness pairs.
pub fn put_verdict(buf: &mut Vec<u8>, v: &Verdict) {
    wire::put_u64(buf, v.removal_count as u64);
    wire::put_bool(buf, v.exceeded);
    wire::put_u64(buf, v.classes_scanned as u64);
    wire::put_u32(buf, v.violating_pairs.len() as u32);
    for &(a, b) in &v.violating_pairs {
        wire::put_u32(buf, a);
        wire::put_u32(buf, b);
    }
}

/// Decode one verdict written by [`put_verdict`].
pub fn get_verdict(r: &mut Reader<'_>) -> WireResult<Verdict> {
    let removal_count = r.u64()? as usize;
    let exceeded = r.bool()?;
    let classes_scanned = r.u64()? as usize;
    let n = r.seq_len(8)?;
    let mut violating_pairs = Vec::with_capacity(n);
    for _ in 0..n {
        violating_pairs.push((r.u32()?, r.u32()?));
    }
    Ok(Verdict {
        removal_count,
        exceeded,
        violating_pairs,
        classes_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::AttrSet;

    fn roundtrip_stmt(stmt: SetOd) {
        let mut buf = Vec::new();
        put_statement(&mut buf, &stmt);
        let mut r = Reader::new(&buf);
        let back = get_statement(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, stmt);
        let mut again = Vec::new();
        put_statement(&mut again, &back);
        assert_eq!(again, buf);
    }

    #[test]
    fn statements_roundtrip() {
        roundtrip_stmt(SetOd::constancy(AttrSet::new(), AttrId(0)));
        roundtrip_stmt(SetOd::constancy(
            AttrSet::from_mask(0x8000_0000_0000_0001),
            AttrId(63),
        ));
        roundtrip_stmt(SetOd::compatibility(
            AttrSet::singleton(AttrId(5)),
            AttrId(1),
            AttrId(7),
        ));
    }

    #[test]
    fn bad_statement_tags_are_rejected() {
        let mut r = Reader::new(&[9]);
        assert!(matches!(
            get_statement(&mut r),
            Err(WireError::InvalidTag { what: "SetOd", .. })
        ));
    }

    #[test]
    fn verdicts_roundtrip() {
        let cases = [
            Verdict::clean(),
            Verdict {
                removal_count: 17,
                exceeded: true,
                violating_pairs: vec![(0, 1), (44, 2), (u32::MAX, 0)],
                classes_scanned: 999,
            },
        ];
        for v in cases {
            let mut buf = Vec::new();
            put_verdict(&mut buf, &v);
            let mut r = Reader::new(&buf);
            let back = get_verdict(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back.removal_count, v.removal_count);
            assert_eq!(back.exceeded, v.exceeded);
            assert_eq!(back.violating_pairs, v.violating_pairs);
            assert_eq!(back.classes_scanned, v.classes_scanned);
            let mut again = Vec::new();
            put_verdict(&mut again, &back);
            assert_eq!(again, buf);
        }
    }

    #[test]
    fn truncated_verdicts_error() {
        let mut buf = Vec::new();
        put_verdict(
            &mut buf,
            &Verdict {
                removal_count: 1,
                exceeded: false,
                violating_pairs: vec![(3, 4)],
                classes_scanned: 2,
            },
        );
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(get_verdict(&mut r).and_then(|_| r.finish()).is_err());
        }
    }
}
