//! Property-based tests for the core lexicographic machinery.

use od_core::check::{check_od, check_od_naive, od_holds};
use od_core::lex::{lex_cmp, lex_le, lex_le_recursive};
use od_core::{AttrId, AttrList, OrderDependency, Relation, Schema, Value};
use proptest::prelude::*;

/// Strategy: a relation with `cols` integer columns and up to `max_rows` rows of
/// small values (small domains make splits and swaps likely).
fn relation_strategy(cols: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0i64..4, cols), 0..max_rows).prop_map(move |rows| {
        let mut schema = Schema::new("prop");
        for i in 0..cols {
            schema.add_attr(format!("c{i}"));
        }
        Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect()),
        )
        .expect("arity is fixed by construction")
    })
}

/// Strategy: an attribute list over `cols` columns with length up to `max_len`.
fn list_strategy(cols: usize, max_len: usize) -> impl Strategy<Value = AttrList> {
    prop::collection::vec(0u32..cols as u32, 0..=max_len)
        .prop_map(|ids| ids.into_iter().map(AttrId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The iterative lexicographic comparison matches the recursive Definition 1.
    #[test]
    fn lex_iterative_equals_recursive(rel in relation_strategy(4, 6), list in list_strategy(4, 5)) {
        let tuples = rel.tuples();
        for s in tuples {
            for t in tuples {
                prop_assert_eq!(lex_le(s, t, &list), lex_le_recursive(s, t, &list));
            }
        }
    }

    /// `≼_X` is a total preorder: total and transitive.
    #[test]
    fn lex_is_total_and_transitive(rel in relation_strategy(3, 6), list in list_strategy(3, 4)) {
        let tuples = rel.tuples();
        for a in tuples {
            for b in tuples {
                prop_assert!(lex_le(a, b, &list) || lex_le(b, a, &list));
                for c in tuples {
                    if lex_le(a, b, &list) && lex_le(b, c, &list) {
                        prop_assert!(lex_le(a, c, &list));
                    }
                }
            }
        }
    }

    /// The fast OD checker agrees with the naive pairwise checker on the verdict,
    /// and the violation witness it returns is genuine (the claimed pair really is
    /// a split / swap for the checked OD).  The *kind* of the first violation found
    /// may legitimately differ between the two algorithms when an instance contains
    /// both splits and swaps.
    #[test]
    fn fast_checker_agrees_with_naive(
        rel in relation_strategy(4, 8),
        lhs in list_strategy(4, 3),
        rhs in list_strategy(4, 3),
    ) {
        let od = OrderDependency::new(lhs, rhs);
        match (check_od(&rel, &od), check_od_naive(&rel, &od)) {
            (Ok(()), Ok(())) => {}
            (Err(v), Err(_)) => {
                let (s, t) = v.pair();
                let (s, t) = (rel.tuple(s), rel.tuple(t));
                match v {
                    od_core::Violation::Split { .. } => {
                        prop_assert!(lex_cmp(s, t, &od.lhs) == std::cmp::Ordering::Equal);
                        prop_assert!(lex_cmp(s, t, &od.rhs) != std::cmp::Ordering::Equal);
                    }
                    od_core::Violation::Swap { .. } => {
                        prop_assert!(lex_cmp(s, t, &od.lhs) == std::cmp::Ordering::Less);
                        prop_assert!(lex_cmp(s, t, &od.rhs) == std::cmp::Ordering::Greater);
                    }
                }
            }
            (a, b) => prop_assert!(false, "verdict mismatch: fast={a:?} naive={b:?}"),
        }
    }

    /// Normalizing either side of an OD never changes whether it holds (OD3).
    #[test]
    fn normalization_preserves_satisfaction(
        rel in relation_strategy(4, 8),
        lhs in list_strategy(4, 4),
        rhs in list_strategy(4, 4),
    ) {
        let od = OrderDependency::new(lhs, rhs);
        prop_assert_eq!(od_holds(&rel, &od), od_holds(&rel, &od.normalize()));
    }

    /// Reflexivity (OD1): `XY ↦ X` holds on every instance.
    #[test]
    fn reflexivity_is_sound(rel in relation_strategy(4, 8), x in list_strategy(4, 3), y in list_strategy(4, 3)) {
        let od = OrderDependency::new(x.concat(&y), x);
        prop_assert!(od_holds(&rel, &od));
    }

    /// Lemma 1: if `X ↦ Y` holds then the FD `set(X) → set(Y)` holds.
    #[test]
    fn od_implies_fd(rel in relation_strategy(4, 8), lhs in list_strategy(4, 3), rhs in list_strategy(4, 3)) {
        let od = OrderDependency::new(lhs, rhs);
        if od_holds(&rel, &od) {
            prop_assert!(od_core::check::fd_holds(&rel, &od.implied_fd()));
        }
    }

    /// Prefix (OD2) soundness on instances: if `X ↦ Y` then `ZX ↦ ZY`.
    #[test]
    fn prefix_rule_is_sound(
        rel in relation_strategy(4, 8),
        x in list_strategy(4, 3),
        y in list_strategy(4, 3),
        z in list_strategy(4, 3),
    ) {
        let od = OrderDependency::new(x.clone(), y.clone());
        if od_holds(&rel, &od) {
            let prefixed = OrderDependency::new(z.concat(&x), z.concat(&y));
            prop_assert!(od_holds(&rel, &prefixed));
        }
    }

    /// Transitivity (OD4) soundness on instances.
    #[test]
    fn transitivity_is_sound(
        rel in relation_strategy(3, 8),
        x in list_strategy(3, 2),
        y in list_strategy(3, 2),
        z in list_strategy(3, 2),
    ) {
        let xy = OrderDependency::new(x.clone(), y.clone());
        let yz = OrderDependency::new(y, z.clone());
        if od_holds(&rel, &xy) && od_holds(&rel, &yz) {
            prop_assert!(od_holds(&rel, &OrderDependency::new(x, z)));
        }
    }

    /// Suffix (OD5) soundness on instances: if `X ↦ Y` then `X ↔ YX`.
    #[test]
    fn suffix_rule_is_sound(
        rel in relation_strategy(4, 8),
        x in list_strategy(4, 3),
        y in list_strategy(4, 3),
    ) {
        let od = OrderDependency::new(x.clone(), y.clone());
        if od_holds(&rel, &od) {
            let yx = y.concat(&x);
            prop_assert!(od_holds(&rel, &OrderDependency::new(x.clone(), yx.clone())));
            prop_assert!(od_holds(&rel, &OrderDependency::new(yx, x)));
        }
    }

    /// Sorting a relation by X yields a stream whose Y projection is sorted too,
    /// whenever X ↦ Y holds — this is precisely why ODs justify ORDER BY rewrites.
    #[test]
    fn ordering_by_lhs_orders_rhs(
        rel in relation_strategy(4, 10),
        lhs in list_strategy(4, 3),
        rhs in list_strategy(4, 3),
    ) {
        let od = OrderDependency::new(lhs.clone(), rhs.clone());
        if od_holds(&rel, &od) {
            let mut rows = rel.tuples().to_vec();
            rows.sort_by(|a, b| lex_cmp(a, b, &lhs));
            for w in rows.windows(2) {
                prop_assert!(lex_le(&w[0], &w[1], &rhs));
            }
        }
    }
}

/// Strategy: a relation mixing every [`Value`] variant — NULLs, NaN and
/// negative-zero floats, strings, dates, booleans — so the columnar snapshot
/// round-trip is exercised over heterogeneous comparison-path columns, not
/// just radix-path integers.
fn mixed_relation_strategy(cols: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0u64..4096, cols), 0..max_rows).prop_map(
        move |rows| {
            let mut schema = Schema::new("snapshot");
            for i in 0..cols {
                schema.add_attr(format!("c{i}"));
            }
            let value = |seed: u64| match seed % 7 {
                0 => Value::Null,
                1 => Value::Int((seed >> 3) as i64 - 200),
                2 => Value::Float((seed >> 3) as f64 / 4.0 - 32.0),
                3 => Value::Float(if seed & 8 == 0 { f64::NAN } else { -0.0 }),
                4 => Value::Str(format!("s{}", (seed >> 3) % 9)),
                5 => Value::Date((seed >> 3) as i32 - 100),
                _ => Value::Bool(seed & 8 == 0),
            };
            Relation::from_rows(
                schema,
                rows.into_iter()
                    .map(|r| r.into_iter().map(value).collect()),
            )
            .expect("arity is fixed by construction")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The columnar snapshot round trip is lossless — `from_bytes(to_bytes(r))
    /// == r` — and byte-stable: re-encoding the decoded relation reproduces
    /// the exact snapshot bytes (so NaN payloads and NULL codes survive
    /// bit-for-bit), and the transported encoding matches what a fresh
    /// re-encode of the reconstructed rows would build.
    #[test]
    fn columnar_snapshot_roundtrips(rel in mixed_relation_strategy(3, 16)) {
        let bytes = rel.to_bytes();
        let back = Relation::from_bytes(&bytes).expect("snapshot decodes");
        prop_assert_eq!(&back, &rel);
        prop_assert_eq!(back.to_bytes(), bytes);
        // The attached encoding must agree with an honest re-encode of the
        // reconstructed tuples: order-preserving codes are what discovery
        // trusts, so a snapshot may never smuggle in a different ranking.
        let reencoded = Relation::from_rows(
            back.schema().clone(),
            back.tuples().iter().cloned(),
        )
        .expect("reconstructed tuples satisfy the schema");
        prop_assert_eq!(&*back.encoding(), &*reencoded.encoding());
    }
}
