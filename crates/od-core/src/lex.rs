//! The lexicographic comparison operators of Definitions 1–3.
//!
//! For an attribute list `X = [A | T]` and tuples `s`, `t`:
//!
//! * `s ≼_X t` iff `s[A] < t[A]`, or `s[A] = t[A]` and (`T = []` or `s ≼_T t`),
//! * `s ≺_X t` iff `s ≼_X t` and not `t ≼_X s`,
//! * `s =_X t` iff `s ≼_X t` and `t ≼_X s`.
//!
//! Because every attribute domain is totally ordered, `≼_X` is a total preorder
//! on tuples and the three relations collapse into a single three-valued
//! comparison, [`lex_cmp`], returning [`Ordering`].  All orders are ascending
//! (`ASC`), matching the paper's scope (no `DESC`, no mixed directions).

use crate::list::AttrList;
use crate::relation::Tuple;
use std::cmp::Ordering;

/// Three-valued lexicographic comparison of two tuples with respect to an
/// attribute list: `Less` ⇔ `s ≺_X t`, `Equal` ⇔ `s =_X t`, `Greater` ⇔ `t ≺_X s`.
///
/// The empty list compares every pair of tuples as `Equal` (every tuple ordering
/// trivially satisfies `ORDER BY []`).
#[inline]
pub fn lex_cmp(s: &Tuple, t: &Tuple, list: &AttrList) -> Ordering {
    for attr in list.iter() {
        let i = attr.index();
        match s[i].cmp(&t[i]) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// `s ≼_X t` (Definition 1).
#[inline]
pub fn lex_le(s: &Tuple, t: &Tuple, list: &AttrList) -> bool {
    lex_cmp(s, t, list) != Ordering::Greater
}

/// `s ≺_X t` (Definition 2).
#[inline]
pub fn lex_lt(s: &Tuple, t: &Tuple, list: &AttrList) -> bool {
    lex_cmp(s, t, list) == Ordering::Less
}

/// `s =_X t` (Definition 3).
#[inline]
pub fn lex_eq(s: &Tuple, t: &Tuple, list: &AttrList) -> bool {
    lex_cmp(s, t, list) == Ordering::Equal
}

/// Build a comparator closure for sorting a tuple stream by `ORDER BY list`.
pub fn lex_comparator(list: &AttrList) -> impl Fn(&Tuple, &Tuple) -> Ordering + '_ {
    move |s, t| lex_cmp(s, t, list)
}

/// Literal recursive transcription of Definition 1, used only to cross-check the
/// iterative [`lex_cmp`] in tests and property tests.
pub fn lex_le_recursive(s: &Tuple, t: &Tuple, list: &AttrList) -> bool {
    match list.head() {
        None => true,
        Some(a) => {
            let i = a.index();
            if s[i] < t[i] {
                true
            } else if s[i] == t[i] {
                let tail = list.tail();
                tail.is_empty() || lex_le_recursive(s, t, &tail)
            } else {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::value::Value;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    fn list(ids: &[u32]) -> AttrList {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn empty_list_compares_equal() {
        let a = t(&[1, 2]);
        let b = t(&[3, 4]);
        assert_eq!(lex_cmp(&a, &b, &AttrList::empty()), Ordering::Equal);
        assert!(lex_le(&a, &b, &AttrList::empty()));
        assert!(lex_le(&b, &a, &AttrList::empty()));
        assert!(lex_eq(&a, &b, &AttrList::empty()));
        assert!(!lex_lt(&a, &b, &AttrList::empty()));
    }

    #[test]
    fn first_differing_attribute_decides() {
        let a = t(&[1, 9, 9]);
        let b = t(&[2, 0, 0]);
        let l = list(&[0, 1, 2]);
        assert_eq!(lex_cmp(&a, &b, &l), Ordering::Less);
        assert!(lex_lt(&a, &b, &l));
        assert!(!lex_le(&b, &a, &l));
    }

    #[test]
    fn ties_fall_through_to_later_attributes() {
        let a = t(&[1, 2, 3]);
        let b = t(&[1, 2, 4]);
        let l = list(&[0, 1, 2]);
        assert_eq!(lex_cmp(&a, &b, &l), Ordering::Less);
        // On the shorter prefix they are equal.
        assert!(lex_eq(&a, &b, &list(&[0, 1])));
    }

    #[test]
    fn list_order_matters() {
        let a = t(&[1, 5]);
        let b = t(&[2, 4]);
        assert_eq!(lex_cmp(&a, &b, &list(&[0, 1])), Ordering::Less);
        assert_eq!(lex_cmp(&a, &b, &list(&[1, 0])), Ordering::Greater);
    }

    #[test]
    fn figure_1_relation_comparisons() {
        // Figure 1 has two tuples:
        //   A B C D E F
        //   3 2 0 4 7 9
        //   3 2 1 3 8 9
        let s = t(&[3, 2, 0, 4, 7, 9]);
        let u = t(&[3, 2, 1, 3, 8, 9]);
        // [A, B, C]: s precedes u.
        assert_eq!(lex_cmp(&s, &u, &list(&[0, 1, 2])), Ordering::Less);
        // [F, E, D]: s precedes u as well (9=9, 7<8) — consistent with the OD of Example 2.
        assert_eq!(lex_cmp(&s, &u, &list(&[5, 4, 3])), Ordering::Less);
        // [F, D, E]: u precedes s (9=9, 3<4) — the OD [A,B,C] ↦ [F,D,E] is falsified.
        assert_eq!(lex_cmp(&s, &u, &list(&[5, 3, 4])), Ordering::Greater);
    }

    #[test]
    fn iterative_matches_recursive_definition() {
        let tuples = [
            t(&[0, 1, 2]),
            t(&[1, 1, 1]),
            t(&[0, 2, 0]),
            t(&[2, 0, 0]),
            t(&[0, 1, 2]),
        ];
        let lists = [
            AttrList::empty(),
            list(&[0]),
            list(&[1, 0]),
            list(&[2, 1, 0]),
            list(&[0, 0, 2]),
            list(&[1, 2]),
        ];
        for a in &tuples {
            for b in &tuples {
                for l in &lists {
                    assert_eq!(
                        lex_le(a, b, l),
                        lex_le_recursive(a, b, l),
                        "mismatch for {a:?} vs {b:?} on {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn comparator_sorts_streams() {
        let mut rows = vec![t(&[2, 1]), t(&[1, 2]), t(&[1, 1])];
        let l = list(&[0, 1]);
        rows.sort_by(lex_comparator(&l));
        assert_eq!(rows, vec![t(&[1, 1]), t(&[1, 2]), t(&[2, 1])]);
    }

    #[test]
    fn repeated_attributes_are_harmless() {
        let a = t(&[1, 5]);
        let b = t(&[1, 6]);
        assert_eq!(lex_cmp(&a, &b, &list(&[0, 0, 1])), Ordering::Less);
        assert_eq!(lex_cmp(&a, &b, &list(&[0, 0])), Ordering::Equal);
    }
}
