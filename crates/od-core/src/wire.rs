//! Binary wire codec: length-prefixed frames and serialization of the core
//! types, for shipping relations, dependencies, and verdicts between
//! processes (the `od-server` service layer, the distributed-lattice worker
//! pipes of the ROADMAP).
//!
//! Design rules:
//!
//! * **Fixed-width little-endian integers** everywhere — no varints, so every
//!   encoding has exactly one byte representation and `encode(decode(bytes))
//!   == bytes` holds bit-for-bit (the round-trip property the protocol
//!   proptests pin).
//! * **`u64` bitmasks for attribute sets**: an [`AttrSet`] — a lattice
//!   context, a candidate set — is its raw mask, eight bytes, no
//!   per-attribute framing.
//! * **Length prefixes are validated before allocation**: a frame or
//!   byte-string length beyond the caller's cap is a [`WireError::TooLarge`],
//!   never an attempted huge allocation, so a malformed or hostile peer
//!   cannot OOM the process with five bytes.
//! * **Every decoder is total**: any byte sequence either decodes or returns
//!   a structured [`WireError`]; decoders never panic.  Trailing bytes after
//!   a complete message are an error ([`Reader::finish`]), so two distinct
//!   byte strings never decode to the same value.
//!
//! A frame on the wire is `u32 LE payload length` followed by the payload.
//! What the payload means (request, response, notification) is the protocol
//! layer's business — this module only moves validated bytes.

use crate::attr::{AttrId, DataType, Schema};
use crate::columnar::{ColumnarEncoding, EncodedColumn};
use crate::dep::OrderDependency;
use crate::list::AttrList;
use crate::relation::{Relation, Tuple};
use crate::set::AttrSet;
use crate::value::Value;
use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload, shared by both sides of the
/// protocol: 32 MiB comfortably fits the hosted-relation workloads while
/// bounding what a corrupt length prefix can demand.
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// Decoding / framing failure.  Carries enough context to distinguish a
/// truncated message from a corrupt one in tests and error responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the message did.
    UnexpectedEof {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A length prefix exceeded the permitted maximum.
    TooLarge {
        /// The declared length.
        declared: usize,
        /// The cap it violated.
        max: usize,
    },
    /// An enum tag byte had no meaning at its position.
    InvalidTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A byte string declared as text was not valid UTF-8.
    InvalidUtf8,
    /// A complete message left undecoded bytes behind.
    TrailingBytes {
        /// How many bytes were left.
        count: usize,
    },
    /// A decoded relation was internally inconsistent (e.g. a tuple's arity
    /// disagreed with its schema).
    Inconsistent(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} more bytes, had {remaining}"
            ),
            WireError::TooLarge { declared, max } => {
                write!(f, "declared length {declared} exceeds the cap {max}")
            }
            WireError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag:#04x} while decoding {what}")
            }
            WireError::InvalidUtf8 => write!(f, "byte string is not valid UTF-8"),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete message")
            }
            WireError::Inconsistent(what) => write!(f, "inconsistent message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for decoders.
pub type WireResult<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------------
// Primitive writers.  Encoders are infallible: they build into a Vec.
// ---------------------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64`, little-endian two's complement.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i32`, little-endian two's complement.
pub fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern (bit-exact round trip,
/// including NaN payloads).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Append a `bool` as one byte (`0` / `1`).
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, v as u8);
}

/// Append a length-prefixed byte string (`u32 LE` length + bytes).
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_bytes(buf, v.as_bytes());
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over a received payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> WireResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self) -> WireResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool`; any byte other than `0`/`1` is an invalid tag.
    pub fn bool(&mut self) -> WireResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag { what: "bool", tag }),
        }
    }

    /// Read a length-prefixed byte string.  The declared length is validated
    /// against the bytes actually present before anything is copied.
    pub fn bytes(&mut self) -> WireResult<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> WireResult<String> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| WireError::InvalidUtf8)
    }

    /// Read a `u32` count that prefixes a sequence, validating it against the
    /// bytes still available: each element of the sequence needs at least
    /// `min_elem_bytes` bytes, so a corrupt count cannot drive a huge
    /// pre-allocation or a long decode loop.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> WireResult<usize> {
        let declared = self.u32()? as usize;
        let cap = self.remaining() / min_elem_bytes.max(1);
        if declared > cap {
            return Err(WireError::TooLarge { declared, max: cap });
        }
        Ok(declared)
    }

    /// Assert the payload is fully consumed.
    pub fn finish(self) -> WireResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.buf.len() - self.pos,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Core-type codecs
// ---------------------------------------------------------------------------

const VALUE_NULL: u8 = 0;
const VALUE_BOOL: u8 = 1;
const VALUE_INT: u8 = 2;
const VALUE_FLOAT: u8 = 3;
const VALUE_STR: u8 = 4;
const VALUE_DATE: u8 = 5;

/// Encode a [`Value`] (tag byte + payload).
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, VALUE_NULL),
        Value::Bool(b) => {
            put_u8(buf, VALUE_BOOL);
            put_bool(buf, *b);
        }
        Value::Int(i) => {
            put_u8(buf, VALUE_INT);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            put_u8(buf, VALUE_FLOAT);
            put_f64(buf, *f);
        }
        Value::Str(s) => {
            put_u8(buf, VALUE_STR);
            put_str(buf, s);
        }
        Value::Date(d) => {
            put_u8(buf, VALUE_DATE);
            put_i32(buf, *d);
        }
    }
}

/// Decode a [`Value`].
pub fn get_value(r: &mut Reader<'_>) -> WireResult<Value> {
    match r.u8()? {
        VALUE_NULL => Ok(Value::Null),
        VALUE_BOOL => Ok(Value::Bool(r.bool()?)),
        VALUE_INT => Ok(Value::Int(r.i64()?)),
        VALUE_FLOAT => Ok(Value::Float(r.f64()?)),
        VALUE_STR => Ok(Value::Str(r.str()?)),
        VALUE_DATE => Ok(Value::Date(r.i32()?)),
        tag => Err(WireError::InvalidTag { what: "Value", tag }),
    }
}

/// Encode a tuple (`u32` arity + values).
pub fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.len() as u32);
    for v in t {
        put_value(buf, v);
    }
}

/// Decode a tuple.
pub fn get_tuple(r: &mut Reader<'_>) -> WireResult<Tuple> {
    let n = r.seq_len(1)?;
    let mut t = Vec::with_capacity(n);
    for _ in 0..n {
        t.push(get_value(r)?);
    }
    Ok(t)
}

fn data_type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Integer => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Date => 3,
        DataType::Boolean => 4,
    }
}

fn data_type_from_tag(tag: u8) -> WireResult<DataType> {
    Ok(match tag {
        0 => DataType::Integer,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Date,
        4 => DataType::Boolean,
        tag => {
            return Err(WireError::InvalidTag {
                what: "DataType",
                tag,
            })
        }
    })
}

/// Encode a [`Schema`]: relation name + ordered `(name, type)` attributes.
/// Attribute ids are positional, exactly as [`Schema::add_attr`] assigns
/// them, so they are not transmitted.
pub fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
    put_str(buf, schema.name());
    put_u32(buf, schema.arity() as u32);
    for attr in schema.attributes() {
        put_str(buf, &attr.name);
        put_u8(buf, data_type_tag(attr.data_type));
    }
}

/// Decode a [`Schema`].  Duplicate attribute names are rejected — the
/// in-memory invariant (names unique within a schema) must survive the wire.
pub fn get_schema(r: &mut Reader<'_>) -> WireResult<Schema> {
    let name = r.str()?;
    let arity = r.seq_len(5)?; // name length prefix (4) + type tag (1)
    let mut schema = Schema::new(name);
    for _ in 0..arity {
        let attr_name = r.str()?;
        let dt = data_type_from_tag(r.u8()?)?;
        schema
            .try_add_attr(attr_name, dt)
            .map_err(|_| WireError::Inconsistent("duplicate attribute name in schema"))?;
    }
    Ok(schema)
}

/// Encode a [`Relation`]: schema + row count + tuples.
pub fn put_relation(buf: &mut Vec<u8>, rel: &Relation) {
    put_schema(buf, rel.schema());
    put_u32(buf, rel.len() as u32);
    for t in rel.iter() {
        put_tuple(buf, t);
    }
}

/// Decode a [`Relation`], re-validating every tuple's arity against the
/// schema (a mismatch is [`WireError::Inconsistent`], never a panic).
pub fn get_relation(r: &mut Reader<'_>) -> WireResult<Relation> {
    let schema = get_schema(r)?;
    let rows = r.seq_len(4)?; // a row is at least its arity prefix
    let mut rel = Relation::new(schema);
    for _ in 0..rows {
        let tuple = get_tuple(r)?;
        rel.push(tuple)
            .map_err(|_| WireError::Inconsistent("tuple arity disagrees with schema"))?;
    }
    Ok(rel)
}

/// Encode a [`Relation`] as a **columnar snapshot**: schema, row count, then
/// per attribute the sorted dictionary followed by the dense code column.
///
/// This is the distributed-worker startup format: a worker reconstructs the
/// row store *and* the order-preserving encoding from one buffer, without
/// re-sorting any column.  Values ride as their [`put_value`] bit patterns,
/// so float cells (NaN payloads included) round-trip bit-identically and
/// `encode ∘ decode ∘ encode` is byte-stable.
pub fn put_relation_snapshot(buf: &mut Vec<u8>, rel: &Relation) {
    let enc = rel.encoding();
    put_schema(buf, rel.schema());
    put_u32(buf, rel.len() as u32);
    for col in 0..enc.arity() {
        let dict = enc.dict(col);
        put_u32(buf, dict.len() as u32);
        for v in dict {
            put_value(buf, v);
        }
        for &code in enc.codes(col) {
            put_u32(buf, code);
        }
    }
}

/// Decode a columnar snapshot into its `(schema, encoding)` parts without
/// rebuilding the row store, revalidating the encoding invariants the
/// discovery layers lean on: every dictionary must be strictly ascending in
/// the [`Value`] order and every code must index its dictionary.
///
/// This is the distributed-worker fast path: partition refinement and
/// statement scans consume only dense codes, so a worker that loads through
/// this function skips materializing `n_rows` tuples it would never read.
/// [`get_relation_snapshot`] layers the tuple rebuild on top for callers
/// that need a full [`Relation`].
pub fn get_relation_snapshot_columns(r: &mut Reader<'_>) -> WireResult<(Schema, ColumnarEncoding)> {
    let schema = get_schema(r)?;
    let n_rows = r.u32()? as usize;
    let arity = schema.arity();
    if arity == 0 && n_rows > MAX_FRAME_LEN {
        // Zero-arity rows occupy no payload bytes, so the usual
        // "bytes-remaining" guards cannot bound the row count; cap it
        // explicitly instead of allocating a row store from thin air.
        return Err(WireError::TooLarge {
            declared: n_rows,
            max: MAX_FRAME_LEN,
        });
    }
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        let dict_len = r.seq_len(1)?;
        let mut dict = Vec::with_capacity(dict_len);
        for _ in 0..dict_len {
            dict.push(get_value(r)?);
        }
        if !dict.windows(2).all(|w| w[0] < w[1]) {
            return Err(WireError::Inconsistent(
                "snapshot dictionary is not strictly sorted",
            ));
        }
        let needed = n_rows * std::mem::size_of::<u32>();
        if r.remaining() < needed {
            return Err(WireError::UnexpectedEof {
                needed,
                remaining: r.remaining(),
            });
        }
        let mut codes = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let code = r.u32()?;
            if code as usize >= dict.len() {
                return Err(WireError::Inconsistent(
                    "snapshot code exceeds its dictionary",
                ));
            }
            codes.push(code);
        }
        columns.push(EncodedColumn::from_parts(dict, codes));
    }
    Ok((schema, ColumnarEncoding::from_parts(columns, n_rows)))
}

/// Decode a columnar snapshot back into a [`Relation`].  The decoded
/// relation carries the snapshot's encoding directly — no column is
/// re-sorted — and its tuples are reconstructed through the dictionaries.
pub fn get_relation_snapshot(r: &mut Reader<'_>) -> WireResult<Relation> {
    let (schema, enc) = get_relation_snapshot_columns(r)?;
    let tuples: Vec<Tuple> = (0..enc.n_rows())
        .map(|row| {
            (0..enc.arity())
                .map(|col| enc.dict(col)[enc.codes(col)[row] as usize].clone())
                .collect()
        })
        .collect();
    Ok(Relation::from_encoded(schema, tuples, enc))
}

/// Encode an [`AttrList`] (`u32` length + `u32` ids).
pub fn put_attr_list(buf: &mut Vec<u8>, list: &AttrList) {
    put_u32(buf, list.len() as u32);
    for id in list.iter() {
        put_u32(buf, id.0);
    }
}

/// Decode an [`AttrList`].
pub fn get_attr_list(r: &mut Reader<'_>) -> WireResult<AttrList> {
    let n = r.seq_len(4)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(AttrId(r.u32()?));
    }
    Ok(AttrList::new(ids))
}

/// Encode an [`AttrSet`] as its raw `u64` bitmask — contexts and candidate
/// sets cross the wire in eight bytes.
pub fn put_attr_set(buf: &mut Vec<u8>, set: &AttrSet) {
    put_u64(buf, set.mask());
}

/// Decode an [`AttrSet`] from its `u64` bitmask.  Every mask is a valid set,
/// so this cannot fail on content — only on truncation.
pub fn get_attr_set(r: &mut Reader<'_>) -> WireResult<AttrSet> {
    Ok(AttrSet::from_mask(r.u64()?))
}

/// Encode an [`OrderDependency`] (`lhs` list + `rhs` list).
pub fn put_od(buf: &mut Vec<u8>, od: &OrderDependency) {
    put_attr_list(buf, &od.lhs);
    put_attr_list(buf, &od.rhs);
}

/// Decode an [`OrderDependency`].
pub fn get_od(r: &mut Reader<'_>) -> WireResult<OrderDependency> {
    let lhs = get_attr_list(r)?;
    let rhs = get_attr_list(r)?;
    Ok(OrderDependency { lhs, rhs })
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame: `u32 LE` payload length followed by the payload.
/// Payloads beyond `MAX_FRAME_LEN` are a programming error on the sending
/// side and reported as `InvalidInput` rather than truncated.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds MAX_FRAME_LEN",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload, enforcing `max_len` *before* allocating.
///
/// Errors:
/// * a clean EOF **before any length byte** is `UnexpectedEof` mapped onto an
///   `io::Error` of kind `UnexpectedEof` with zero bytes read — callers
///   distinguish "peer closed between frames" (normal) from "peer died
///   mid-frame" (protocol violation) via [`read_frame_opt`];
/// * a declared length beyond `max_len` is an `InvalidData` error carrying a
///   [`WireError::TooLarge`] description.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> io::Result<Vec<u8>> {
    match read_frame_opt(r, max_len)? {
        Some(payload) => Ok(payload),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed between frames",
        )),
    }
}

/// [`read_frame`], returning `Ok(None)` on a clean close **between** frames
/// (EOF before the first length byte).  EOF anywhere inside a frame is still
/// an `UnexpectedEof` error: the peer vanished mid-message.
pub fn read_frame_opt(r: &mut impl Read, max_len: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::TooLarge {
                declared: len,
                max: max_len,
            }
            .to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: &Value) {
        let mut buf = Vec::new();
        put_value(&mut buf, v);
        let mut r = Reader::new(&buf);
        let back = get_value(&mut r).unwrap();
        r.finish().unwrap();
        // Compare re-encodings, not values: Value::eq is numeric (Int(2) ==
        // Float(2.0)) and the wire must be strictly finer than that.
        let mut again = Vec::new();
        put_value(&mut again, &back);
        assert_eq!(buf, again, "re-encode differs for {v:?}");
    }

    #[test]
    fn values_roundtrip_bit_identically() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Float(f64::NEG_INFINITY),
            Value::Str(String::new()),
            Value::Str("héllo — wire".into()),
            Value::Date(0),
            Value::Date(i32::MIN),
        ] {
            roundtrip_value(&v);
        }
    }

    #[test]
    fn relation_roundtrips() {
        let rel = crate::fixtures::example_5_taxes();
        let mut buf = Vec::new();
        put_relation(&mut buf, &rel);
        let mut r = Reader::new(&buf);
        let back = get_relation(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(rel, back);
        // And the empty relation.
        let empty = Relation::new(rel.schema().clone());
        let mut buf = Vec::new();
        put_relation(&mut buf, &empty);
        let mut r = Reader::new(&buf);
        assert_eq!(get_relation(&mut r).unwrap(), empty);
    }

    #[test]
    fn attr_set_is_eight_bytes() {
        let set = AttrSet::from_mask(u64::MAX);
        let mut buf = Vec::new();
        put_attr_set(&mut buf, &set);
        assert_eq!(buf.len(), 8);
        let mut r = Reader::new(&buf);
        assert_eq!(get_attr_set(&mut r).unwrap(), set);
    }

    #[test]
    fn truncated_inputs_error_never_panic() {
        let rel = crate::fixtures::example_5_taxes();
        let mut buf = Vec::new();
        put_relation(&mut buf, &rel);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let result = get_relation(&mut r);
            assert!(result.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn corrupt_counts_are_rejected_before_allocation() {
        // A tuple claiming u32::MAX values in a 4-byte payload.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut r = Reader::new(&buf);
        assert!(matches!(get_tuple(&mut r), Err(WireError::TooLarge { .. })));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Int(7));
        buf.push(0xFF);
        let mut r = Reader::new(&buf);
        get_value(&mut r).unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { count: 1 }));
    }

    #[test]
    fn frames_roundtrip_and_enforce_caps() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), b"");
        assert!(read_frame_opt(&mut cursor, 1024).unwrap().is_none());

        // Oversized declared length fails without allocating.
        let mut bad = Vec::new();
        bad.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = io::Cursor::new(bad);
        let err = read_frame(&mut cursor, 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // EOF inside the length prefix is a mid-frame close.
        let mut cursor = io::Cursor::new(vec![1u8, 0]);
        let err = read_frame_opt(&mut cursor, 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn relation_snapshots_roundtrip_with_nulls_nans_and_empties() {
        let mut schema = Schema::new("snap");
        schema.add_attr("mixed");
        schema.add_attr("num");
        let rel = Relation::from_rows(
            schema.clone(),
            vec![
                vec![Value::Null, Value::Float(f64::NAN)],
                vec![Value::Str("b".into()), Value::Float(-0.0)],
                vec![Value::Str("a".into()), Value::Float(f64::NEG_INFINITY)],
                vec![Value::Str("a".into()), Value::Null],
            ],
        )
        .unwrap();
        let bytes = rel.to_bytes();
        let back = Relation::from_bytes(&bytes).unwrap();
        assert_eq!(back, rel);
        // Byte-stable re-encode: NaN bit patterns and NULL codes intact.
        assert_eq!(back.to_bytes(), bytes);
        // The NaN cell survives as the identical bit pattern.
        let nan = back.value(0, AttrId(1));
        match nan {
            Value::Float(f) => assert_eq!(f.to_bits(), f64::NAN.to_bits()),
            other => panic!("expected a float, got {other:?}"),
        }
        // Empty relation, zero-arity relation.
        for empty in [
            Relation::new(schema),
            Relation::new(Schema::new("no-cols")),
        ] {
            let bytes = empty.to_bytes();
            assert_eq!(Relation::from_bytes(&bytes).unwrap(), empty);
        }
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let mut schema = Schema::new("snap");
        schema.add_attr("c0");
        let rel = Relation::from_rows(
            schema,
            vec![vec![Value::Int(2)], vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        let good = rel.to_bytes();
        // Every truncation errors instead of panicking.
        for cut in 0..good.len() {
            assert!(Relation::from_bytes(&good[..cut]).is_err());
        }
        // Trailing bytes are an error.
        let mut padded = good.clone();
        padded.push(0);
        assert!(Relation::from_bytes(&padded).is_err());
        // A code pointing past its dictionary is Inconsistent: the final u32
        // of the payload is the last row's code.
        let mut bad_code = good.clone();
        let at = bad_code.len() - 4;
        bad_code[at..].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Relation::from_bytes(&bad_code),
            Err(WireError::Inconsistent(_))
        ));
        // An unsorted dictionary is rejected: build a snapshot by hand with
        // the two Int dict entries swapped.
        let mut swapped = Vec::new();
        let enc = rel.encoding();
        put_schema(&mut swapped, rel.schema());
        put_u32(&mut swapped, rel.len() as u32);
        put_u32(&mut swapped, 2);
        put_value(&mut swapped, &enc.dict(0)[1]);
        put_value(&mut swapped, &enc.dict(0)[0]);
        for &code in enc.codes(0) {
            put_u32(&mut swapped, code);
        }
        assert!(matches!(
            Relation::from_bytes(&swapped),
            Err(WireError::Inconsistent(_))
        ));
    }

    #[test]
    fn schema_rejects_duplicate_names() {
        let mut buf = Vec::new();
        put_str(&mut buf, "t");
        put_u32(&mut buf, 2);
        for _ in 0..2 {
            put_str(&mut buf, "same");
            put_u8(&mut buf, 0);
        }
        let mut r = Reader::new(&buf);
        assert!(matches!(
            get_schema(&mut r),
            Err(WireError::Inconsistent(_))
        ));
    }
}
