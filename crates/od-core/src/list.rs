//! Attribute **lists** and attribute **sets**.
//!
//! The defining feature of order dependencies (vs. functional dependencies) is
//! that they are stated over *lists* of attributes: `ORDER BY year, month` is not
//! the same thing as `ORDER BY month, year`.  [`AttrList`] is the list type used
//! on both sides of an [`crate::OrderDependency`]; [`AttrSet`] is the set type
//! used for the FD fragment of the theory (Lemma 1, Theorems 13 and 16).
//!
//! The module also implements the paper's *normalization* (axiom OD3): inside a
//! list, an attribute occurrence that is preceded by an earlier occurrence of the
//! same attribute is semantically redundant and can be removed, e.g.
//! `[A, B, A, C] ↔ [A, B, C]`.

use crate::attr::AttrId;
use crate::set::AttrSet;
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Index;

/// An ordered list of attributes, the `X` in `ORDER BY X` and in `X ↦ Y`.
///
/// Lists may contain repeated attributes (the axioms explicitly reason about
/// removing them); [`AttrList::normalize`] produces the duplicate-free canonical
/// form used when comparing derived statements.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrList(Vec<AttrId>);

impl AttrList {
    /// The empty list `[]`.
    pub fn empty() -> Self {
        AttrList(Vec::new())
    }

    /// Build a list from attribute ids.
    pub fn new(ids: impl IntoIterator<Item = AttrId>) -> Self {
        AttrList(ids.into_iter().collect())
    }

    /// Length of the list.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty list `[]`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The underlying slice of attribute ids.
    pub fn as_slice(&self) -> &[AttrId] {
        &self.0
    }

    /// Iterate over the attribute ids in order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.0.iter().copied()
    }

    /// First attribute (the `head` of `[A | T]` in Definition 1), if any.
    pub fn head(&self) -> Option<AttrId> {
        self.0.first().copied()
    }

    /// The list with the first attribute removed (the `tail` of `[A | T]`).
    pub fn tail(&self) -> AttrList {
        AttrList(self.0.iter().skip(1).copied().collect())
    }

    /// Concatenation `self ∘ other` (the paper writes this by juxtaposition: `XY`).
    pub fn concat(&self, other: &AttrList) -> AttrList {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        AttrList(v)
    }

    /// Append a single attribute at the end (`XA`).
    pub fn with_suffix(&self, attr: AttrId) -> AttrList {
        let mut v = self.0.clone();
        v.push(attr);
        AttrList(v)
    }

    /// Prepend a single attribute (`AX`).
    pub fn with_prefix(&self, attr: AttrId) -> AttrList {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.push(attr);
        v.extend_from_slice(&self.0);
        AttrList(v)
    }

    /// The prefix of length `n` (clamped to the list length).
    pub fn prefix(&self, n: usize) -> AttrList {
        AttrList(self.0.iter().take(n).copied().collect())
    }

    /// The suffix starting at position `n` (clamped).
    pub fn suffix_from(&self, n: usize) -> AttrList {
        AttrList(self.0.iter().skip(n).copied().collect())
    }

    /// True if `self` is a (not necessarily proper) prefix of `other`.
    pub fn is_prefix_of(&self, other: &AttrList) -> bool {
        self.0.len() <= other.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// The set of attributes occurring in the list (the paper's `set(X)`).
    pub fn to_set(&self) -> AttrSet {
        self.0.iter().copied().collect()
    }

    /// True if the attribute occurs anywhere in the list.
    pub fn contains(&self, attr: AttrId) -> bool {
        self.0.contains(&attr)
    }

    /// Position of the first occurrence of `attr`, if any.
    pub fn position(&self, attr: AttrId) -> Option<usize> {
        self.0.iter().position(|&a| a == attr)
    }

    /// **Normalization** (axiom OD3 applied exhaustively): remove every attribute
    /// occurrence that already appeared earlier in the list.
    ///
    /// `[A, B, A, C, B] ↦ [A, B, C]`.  The result orders the same way as the
    /// original list on every instance, and is the canonical form used when
    /// deduplicating derived ODs.
    pub fn normalize(&self) -> AttrList {
        let mut seen = BTreeSet::new();
        let mut out = Vec::with_capacity(self.0.len());
        for &a in &self.0 {
            if seen.insert(a) {
                out.push(a);
            }
        }
        AttrList(out)
    }

    /// True if the list has no repeated attributes (i.e. it equals its
    /// normalization).
    pub fn is_normalized(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.0.iter().all(|a| seen.insert(*a))
    }

    /// All (contiguous) prefixes of the list, from `[]` up to the full list.
    pub fn prefixes(&self) -> impl Iterator<Item = AttrList> + '_ {
        (0..=self.0.len()).map(move |n| self.prefix(n))
    }

    /// Remove all occurrences of the given attributes (the paper's *projecting
    /// out* of constant attributes in Lemma 8 / Theorem 17).
    pub fn project_out(&self, attrs: &AttrSet) -> AttrList {
        AttrList(
            self.0
                .iter()
                .copied()
                .filter(|a| !attrs.contains(a))
                .collect(),
        )
    }

    /// Keep only occurrences of the given attributes.
    pub fn retain_only(&self, attrs: &AttrSet) -> AttrList {
        AttrList(
            self.0
                .iter()
                .copied()
                .filter(|a| attrs.contains(a))
                .collect(),
        )
    }
}

impl Index<usize> for AttrList {
    type Output = AttrId;
    fn index(&self, idx: usize) -> &AttrId {
        &self.0[idx]
    }
}

impl From<Vec<AttrId>> for AttrList {
    fn from(v: Vec<AttrId>) -> Self {
        AttrList(v)
    }
}

impl From<&[AttrId]> for AttrList {
    fn from(v: &[AttrId]) -> Self {
        AttrList(v.to_vec())
    }
}

impl FromIterator<AttrId> for AttrList {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        AttrList(iter.into_iter().collect())
    }
}

impl IntoIterator for AttrList {
    type Item = AttrId;
    type IntoIter = std::vec::IntoIter<AttrId>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a AttrList {
    type Item = &'a AttrId;
    type IntoIter = std::slice::Iter<'a, AttrId>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for AttrList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> AttrList {
        v.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn head_and_tail_match_definition_1_recursion() {
        let l = ids(&[1, 2, 3]);
        assert_eq!(l.head(), Some(AttrId(1)));
        assert_eq!(l.tail(), ids(&[2, 3]));
        assert_eq!(AttrList::empty().head(), None);
        assert_eq!(AttrList::empty().tail(), AttrList::empty());
    }

    #[test]
    fn concatenation_and_affixes() {
        let x = ids(&[1, 2]);
        let y = ids(&[3]);
        assert_eq!(x.concat(&y), ids(&[1, 2, 3]));
        assert_eq!(x.with_suffix(AttrId(9)), ids(&[1, 2, 9]));
        assert_eq!(x.with_prefix(AttrId(9)), ids(&[9, 1, 2]));
        assert_eq!(AttrList::empty().concat(&x), x);
    }

    #[test]
    fn prefixes_and_suffixes() {
        let l = ids(&[1, 2, 3]);
        assert_eq!(l.prefix(0), AttrList::empty());
        assert_eq!(l.prefix(2), ids(&[1, 2]));
        assert_eq!(l.prefix(99), l);
        assert_eq!(l.suffix_from(1), ids(&[2, 3]));
        assert_eq!(l.suffix_from(99), AttrList::empty());
        assert!(ids(&[1, 2]).is_prefix_of(&l));
        assert!(!ids(&[2]).is_prefix_of(&l));
        assert!(AttrList::empty().is_prefix_of(&l));
        let ps: Vec<AttrList> = l.prefixes().collect();
        assert_eq!(ps.len(), 4);
        assert_eq!(ps[0], AttrList::empty());
        assert_eq!(ps[3], l);
    }

    #[test]
    fn normalization_removes_later_duplicates() {
        let l = ids(&[1, 2, 1, 3, 2, 1]);
        assert_eq!(l.normalize(), ids(&[1, 2, 3]));
        assert!(!l.is_normalized());
        assert!(ids(&[1, 2, 3]).is_normalized());
        assert!(AttrList::empty().is_normalized());
    }

    #[test]
    fn set_and_membership() {
        let l = ids(&[3, 1, 3]);
        let s = l.to_set();
        assert_eq!(s.len(), 2);
        assert!(l.contains(AttrId(3)));
        assert!(!l.contains(AttrId(9)));
        assert_eq!(l.position(AttrId(3)), Some(0));
        assert_eq!(l.position(AttrId(1)), Some(1));
        assert_eq!(l.position(AttrId(9)), None);
    }

    #[test]
    fn projection_and_retention() {
        let l = ids(&[1, 2, 3, 2]);
        let drop: AttrSet = [AttrId(2)].into_iter().collect();
        assert_eq!(l.project_out(&drop), ids(&[1, 3]));
        assert_eq!(l.retain_only(&drop), ids(&[2, 2]));
    }

    #[test]
    fn display_renders_ids() {
        assert_eq!(ids(&[1, 2]).to_string(), "[#1, #2]");
        assert_eq!(AttrList::empty().to_string(), "[]");
    }

    #[test]
    fn indexing_and_iteration() {
        let l = ids(&[5, 6]);
        assert_eq!(l[0], AttrId(5));
        assert_eq!(l.iter().count(), 2);
        let collected: Vec<AttrId> = (&l).into_iter().copied().collect();
        assert_eq!(collected, vec![AttrId(5), AttrId(6)]);
    }
}
