//! Dictionary-coded struct-of-arrays storage behind [`crate::Relation`].
//!
//! A [`ColumnarEncoding`] holds, per attribute, a sorted dictionary of the
//! column's distinct [`Value`]s plus a `Vec<u32>` of **order-preserving dense
//! codes**: `codes[i]` is the rank of row `i`'s value among the column's
//! distinct values, so
//!
//! * `codes[i] < codes[j] ⟺ value[i] < value[j]` (and equality likewise),
//! * `dict[codes[i]] == value[i]` — the dictionary decodes a cell without
//!   touching the row store.
//!
//! NULL sorts before every non-null value ([`Value`]'s `NULLS FIRST` order),
//! so when a column contains NULLs they receive the dedicated code `0` and
//! `dict[0] == Value::Null`.
//!
//! The encoder never compares `Value`s on its hot path when it can avoid it:
//! a column whose non-null values are all integers, all dates, or all
//! booleans is mapped to order-preserving `u64` keys and sorted with the LSB
//! [radix sort](crate::radix) (stable, so the resulting code assignment is
//! bit-identical to the comparison sort it replaces); heterogeneous, string,
//! and float columns fall back to a comparison sort on the `Value` order.
//! Either way the resulting codes are exactly what
//! [`Relation::rank_column`](crate::Relation::rank_column) historically
//! computed per call — discovery layers now share one eager encoding instead
//! of re-sorting per attribute.

use crate::attr::Schema;
use crate::obs;
use crate::radix;
use crate::relation::Tuple;
use crate::value::Value;

/// One attribute's dictionary and code column.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedColumn {
    /// Distinct values in ascending [`Value`] order; `dict[code]` decodes.
    dict: Vec<Value>,
    /// Per-row dense rank codes, aligned with the relation's tuple order.
    codes: Vec<u32>,
}

impl EncodedColumn {
    /// Reassemble a column from its parts (the wire snapshot decoder; the
    /// caller has already validated that `dict` is strictly sorted and every
    /// code indexes it).
    pub(crate) fn from_parts(dict: Vec<Value>, codes: Vec<u32>) -> Self {
        EncodedColumn { dict, codes }
    }

    /// The sorted dictionary of distinct values.
    pub fn dict(&self) -> &[Value] {
        &self.dict
    }

    /// The per-row code column.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of distinct values (the dictionary size).
    pub fn distinct_count(&self) -> usize {
        self.dict.len()
    }

    /// Approximate heap footprint: dictionary values plus the code column.
    pub fn approx_heap_bytes(&self) -> usize {
        self.dict.iter().map(Value::approx_bytes).sum::<usize>()
            + self.codes.len() * std::mem::size_of::<u32>()
    }
}

/// The struct-of-arrays encoding of a whole relation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarEncoding {
    columns: Vec<EncodedColumn>,
    n_rows: usize,
}

impl ColumnarEncoding {
    /// Encode every column of `tuples` (positionally aligned with `schema`).
    ///
    /// Emits `relation.encode` span metrics: per-column dictionary sizes into
    /// the `relation.encode.dict_entries` histogram, row/column totals, and
    /// the number of radix passes spent building code columns — all
    /// deterministic functions of the data.
    pub fn build(schema: &Schema, tuples: &[Tuple]) -> Self {
        let _span = obs::span("relation.encode");
        let arity = schema.arity();
        let mut columns = Vec::with_capacity(arity);
        let mut pairs: Vec<(u64, u32)> = Vec::new();
        let mut scratch: Vec<(u64, u32)> = Vec::new();
        let mut radix_passes = 0u64;
        for col in 0..arity {
            let encoded = encode_column(tuples, col, &mut pairs, &mut scratch, &mut radix_passes);
            obs::record("relation.encode.dict_entries", encoded.dict.len() as u64);
            columns.push(encoded);
        }
        obs::add("relation.encode.columns", arity as u64);
        obs::add("relation.encode.rows", tuples.len() as u64);
        obs::add("relation.encode.radix_passes", radix_passes);
        ColumnarEncoding {
            columns,
            n_rows: tuples.len(),
        }
    }

    /// Reassemble an encoding from decoded columns (the wire snapshot
    /// decoder's constructor; invariants validated by the caller).
    pub(crate) fn from_parts(columns: Vec<EncodedColumn>, n_rows: usize) -> Self {
        ColumnarEncoding { columns, n_rows }
    }

    /// Number of encoded rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of encoded columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// One attribute's encoding, by column index.
    pub fn column(&self, col: usize) -> &EncodedColumn {
        &self.columns[col]
    }

    /// One attribute's code column, by column index.
    pub fn codes(&self, col: usize) -> &[u32] {
        &self.columns[col].codes
    }

    /// One attribute's sorted dictionary, by column index.
    pub fn dict(&self, col: usize) -> &[Value] {
        &self.columns[col].dict
    }

    /// Approximate heap footprint of dictionaries plus code columns.
    pub fn approx_heap_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(EncodedColumn::approx_heap_bytes)
            .sum()
    }
}

/// The radix key classes a homogeneous column can map onto.
#[derive(Clone, Copy, PartialEq, Eq)]
enum KeyClass {
    Int,
    Date,
    Bool,
}

/// Order-preserving `u64` key for a non-null value of the given class
/// (`i64`/`i32` order maps onto `u64` order by flipping the sign bit).
#[inline]
fn radix_key(value: &Value, class: KeyClass) -> u64 {
    match (class, value) {
        (KeyClass::Int, Value::Int(v)) => (*v as u64) ^ (1u64 << 63),
        (KeyClass::Date, Value::Date(d)) => (*d as i64 as u64) ^ (1u64 << 63),
        (KeyClass::Bool, Value::Bool(b)) => *b as u64,
        _ => unreachable!("key class established by a full column scan"),
    }
}

/// The key class of a single non-null value, if it has one.
fn key_class(value: &Value) -> Option<KeyClass> {
    match value {
        Value::Int(_) => Some(KeyClass::Int),
        Value::Date(_) => Some(KeyClass::Date),
        Value::Bool(_) => Some(KeyClass::Bool),
        _ => None,
    }
}

fn encode_column(
    tuples: &[Tuple],
    col: usize,
    pairs: &mut Vec<(u64, u32)>,
    scratch: &mut Vec<(u64, u32)>,
    radix_passes: &mut u64,
) -> EncodedColumn {
    // A column qualifies for the radix path when every non-null value shares
    // one key class — cross-class `u64` keys cannot reproduce the mixed-type
    // `Value` order, and Float/Str stay on the comparison path.
    let mut class: Option<KeyClass> = None;
    let mut has_null = false;
    let mut radixable = true;
    for t in tuples {
        match &t[col] {
            Value::Null => has_null = true,
            v => match (key_class(v), class) {
                (Some(k), None) => class = Some(k),
                (Some(k), Some(c)) if k == c => {}
                _ => {
                    radixable = false;
                    break;
                }
            },
        }
    }
    match class {
        Some(class) if radixable => {
            encode_radix(tuples, col, class, has_null, pairs, scratch, radix_passes)
        }
        None if radixable => {
            // All-NULL (or empty) column: one dictionary entry at most.
            let dict = if has_null {
                vec![Value::Null]
            } else {
                Vec::new()
            };
            EncodedColumn {
                dict,
                codes: vec![0u32; tuples.len()],
            }
        }
        _ => encode_by_comparison(tuples, col),
    }
}

/// Radix path: NULL rows keep code 0, non-null rows are sorted as
/// `(u64 key, row)` pairs and runs of equal keys share a code.
fn encode_radix(
    tuples: &[Tuple],
    col: usize,
    class: KeyClass,
    has_null: bool,
    pairs: &mut Vec<(u64, u32)>,
    scratch: &mut Vec<(u64, u32)>,
    radix_passes: &mut u64,
) -> EncodedColumn {
    pairs.clear();
    pairs.extend(tuples.iter().enumerate().filter_map(|(row, t)| {
        let v = &t[col];
        (!v.is_null()).then(|| (radix_key(v, class), row as u32))
    }));
    *radix_passes += u64::from(radix::sort_pairs(pairs, scratch));
    let mut codes = vec![0u32; tuples.len()];
    let mut dict = Vec::new();
    if has_null {
        dict.push(Value::Null);
    }
    let mut prev_key: Option<u64> = None;
    for &(key, row) in pairs.iter() {
        if prev_key != Some(key) {
            dict.push(tuples[row as usize][col].clone());
            prev_key = Some(key);
        }
        codes[row as usize] = (dict.len() - 1) as u32;
    }
    EncodedColumn { dict, codes }
}

/// Comparison path for heterogeneous, string, and float columns: sort row
/// indices by the `Value` order (NULLs sort first on their own), then assign
/// dense ranks run by run.
fn encode_by_comparison(tuples: &[Tuple], col: usize) -> EncodedColumn {
    let mut order: Vec<u32> = (0..tuples.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| tuples[a as usize][col].cmp(&tuples[b as usize][col]));
    let mut codes = vec![0u32; tuples.len()];
    let mut dict = Vec::new();
    for (w, &row) in order.iter().enumerate() {
        let value = &tuples[row as usize][col];
        if w == 0 || *value != tuples[order[w - 1] as usize][col] {
            dict.push(value.clone());
        }
        codes[row as usize] = (dict.len() - 1) as u32;
    }
    EncodedColumn { dict, codes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Schema;

    fn schema(arity: usize) -> Schema {
        let mut s = Schema::new("t");
        for i in 0..arity {
            s.add_attr(format!("c{i}"));
        }
        s
    }

    /// The invariants every encoding must satisfy, checked cell by cell.
    fn assert_valid_encoding(tuples: &[Tuple], enc: &ColumnarEncoding) {
        for col in 0..enc.arity() {
            let dict = enc.dict(col);
            let codes = enc.codes(col);
            assert_eq!(codes.len(), tuples.len());
            assert!(dict.windows(2).all(|w| w[0] < w[1]), "dict strictly sorted");
            for (row, t) in tuples.iter().enumerate() {
                assert_eq!(&dict[codes[row] as usize], &t[col], "dict decodes");
            }
            for i in 0..tuples.len() {
                for j in 0..tuples.len() {
                    assert_eq!(
                        codes[i].cmp(&codes[j]),
                        tuples[i][col].cmp(&tuples[j][col]),
                        "codes preserve value order"
                    );
                }
            }
        }
    }

    #[test]
    fn int_column_with_nulls_uses_code_zero_for_null() {
        let tuples: Vec<Tuple> = vec![
            vec![Value::Int(30)],
            vec![Value::Int(10)],
            vec![Value::Null],
            vec![Value::Int(-5)],
            vec![Value::Int(10)],
        ];
        let enc = ColumnarEncoding::build(&schema(1), &tuples);
        assert_eq!(enc.codes(0), &[3, 2, 0, 1, 2]);
        assert_eq!(enc.dict(0)[0], Value::Null);
        assert_eq!(enc.column(0).distinct_count(), 4);
        assert_valid_encoding(&tuples, &enc);
    }

    #[test]
    fn negative_ints_dates_and_bools_take_the_radix_path() {
        let tuples: Vec<Tuple> = vec![
            vec![Value::Int(i64::MIN), Value::Date(-3), Value::Bool(true)],
            vec![Value::Int(i64::MAX), Value::Date(7), Value::Bool(false)],
            vec![Value::Int(0), Value::Null, Value::Bool(true)],
        ];
        let enc = ColumnarEncoding::build(&schema(3), &tuples);
        assert_eq!(enc.codes(0), &[0, 2, 1]);
        assert_eq!(enc.codes(1), &[1, 2, 0]);
        assert_eq!(enc.codes(2), &[1, 0, 1]);
        assert_valid_encoding(&tuples, &enc);
    }

    #[test]
    fn strings_floats_and_mixed_columns_fall_back_to_comparison() {
        let tuples: Vec<Tuple> = vec![
            vec![Value::Str("mar".into()), Value::Float(2.5), Value::Int(1)],
            vec![Value::Str("feb".into()), Value::Float(-0.5), Value::Date(0)],
            vec![Value::Null, Value::Float(f64::NAN), Value::Str("x".into())],
            vec![Value::Str("feb".into()), Value::Null, Value::Null],
        ];
        let enc = ColumnarEncoding::build(&schema(3), &tuples);
        assert_valid_encoding(&tuples, &enc);
        // NULL still smallest on the comparison path; NaN sorts last.
        assert_eq!(enc.codes(0), &[2, 1, 0, 1]);
        assert_eq!(enc.codes(1), &[2, 1, 3, 0]);
    }

    #[test]
    fn all_null_and_empty_columns() {
        let tuples: Vec<Tuple> = vec![vec![Value::Null], vec![Value::Null]];
        let enc = ColumnarEncoding::build(&schema(1), &tuples);
        assert_eq!(enc.codes(0), &[0, 0]);
        assert_eq!(enc.dict(0), &[Value::Null]);
        let empty = ColumnarEncoding::build(&schema(1), &[]);
        assert_eq!(empty.n_rows(), 0);
        assert!(empty.dict(0).is_empty());
    }

    #[test]
    fn heap_bytes_cover_dict_and_codes() {
        let tuples: Vec<Tuple> = vec![
            vec![Value::Str("abcd".into())],
            vec![Value::Str("abcd".into())],
        ];
        let enc = ColumnarEncoding::build(&schema(1), &tuples);
        // One dict entry (enum + 4 string bytes) + two u32 codes.
        assert_eq!(
            enc.approx_heap_bytes(),
            std::mem::size_of::<Value>() + 4 + 2 * std::mem::size_of::<u32>()
        );
    }
}
