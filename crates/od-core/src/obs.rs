//! Crate-internal observability shim over `od_obs` (same idiom as the
//! od-setbased shim: with the `obs` feature every hook forwards to the
//! ambient recorder; without it the hooks are inlined empty functions, so the
//! instrumented encoder compiles down to exactly the uninstrumented code).

#[cfg(feature = "obs")]
mod hooks {
    /// RAII phase-span guard (records its duration on drop).
    pub type Span = od_obs::SpanGuard;

    #[inline]
    pub fn span(name: &str) -> Span {
        od_obs::span(name)
    }

    #[inline]
    pub fn add(name: &str, delta: u64) {
        od_obs::add(name, delta);
    }

    #[inline]
    pub fn record(name: &str, value: u64) {
        od_obs::record(name, value);
    }
}

#[cfg(not(feature = "obs"))]
mod hooks {
    /// Unit span guard: no state, no `Drop`.
    pub struct Span;

    #[inline(always)]
    pub fn span(_name: &str) -> Span {
        Span
    }

    #[inline(always)]
    pub fn add(_name: &str, _delta: u64) {}

    #[inline(always)]
    pub fn record(_name: &str, _value: u64) {}
}

pub(crate) use hooks::*;
