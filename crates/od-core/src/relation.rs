//! Tuples and relation instances.
//!
//! A [`Relation`] is a concrete table instance: a [`Schema`] plus a sequence of
//! [`Tuple`]s.  The paper defines ODs over *sets* of tuples but notes that
//! nothing changes for multisets; we keep a plain `Vec` (a multiset) which also
//! matches the execution engine.
//!
//! Alongside the row store every relation carries a struct-of-arrays
//! [`ColumnarEncoding`] — per-attribute sorted dictionaries plus dense
//! order-preserving `u32` code columns — built once at construction
//! ([`Relation::from_rows`]) and rebuilt lazily after mutation.  The
//! row-oriented API ([`Relation::value`], [`Relation::tuple`], iteration) is
//! unchanged; hot paths ask for [`Relation::encoding`] or
//! [`Relation::rank_column`] and work on integer codes only.

use crate::attr::{AttrId, Schema};
use crate::columnar::ColumnarEncoding;
use crate::error::{CoreError, Result};
use crate::list::AttrList;
use crate::value::Value;
use std::fmt;
use std::sync::{Arc, RwLock};

/// A tuple: one value per schema attribute, positionally aligned with the schema.
pub type Tuple = Vec<Value>;

/// The lazily (re)built columnar encoding slot.
type EncodingSlot = RwLock<Option<Arc<ColumnarEncoding>>>;

/// A relation instance: a schema, a bag of tuples, and their columnar encoding.
#[derive(Debug)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
    /// Interior mutability lets `&self` accessors rebuild the encoding after
    /// a mutation invalidated it; mutation itself always has `&mut self`, so
    /// a cached encoding can never go stale.
    encoding: EncodingSlot,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            schema: self.schema.clone(),
            tuples: self.tuples.clone(),
            // The encoding is immutable once built — share it, don't re-encode.
            encoding: RwLock::new(self.cached_encoding()),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        // The encoding is derived state: logical equality is schema + tuples.
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Relation {
    /// Create an empty relation for a schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
            encoding: RwLock::new(None),
        }
    }

    /// Create a relation from rows, validating arity.  The columnar encoding
    /// is built eagerly, so the returned relation is immediately ready for
    /// code-path scans (and metric captures around later discovery runs see
    /// no construction-time `relation.encode` records).
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = Tuple>) -> Result<Self> {
        let mut rel = Relation::new(schema);
        for row in rows {
            rel.push(row)?;
        }
        rel.encoding();
        Ok(rel)
    }

    /// Assemble a relation whose columnar encoding is already known (the wire
    /// snapshot decoder) — tuples and encoding arrive together, so nothing is
    /// re-encoded.  The caller guarantees the encoding matches the tuples.
    pub(crate) fn from_encoded(
        schema: Schema,
        tuples: Vec<Tuple>,
        encoding: ColumnarEncoding,
    ) -> Self {
        Relation {
            schema,
            tuples,
            encoding: RwLock::new(Some(Arc::new(encoding))),
        }
    }

    /// Serialize the relation as a **columnar snapshot** — schema, then per
    /// attribute the sorted dictionary plus the dense code column (see
    /// [`crate::wire::put_relation_snapshot`]).  The format the distributed
    /// lattice workers load their relation copy from at startup.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        crate::wire::put_relation_snapshot(&mut buf, self);
        buf
    }

    /// Decode a columnar snapshot produced by [`Self::to_bytes`], rebuilding
    /// the row store through the dictionaries and attaching the transported
    /// encoding as-is.  `from_bytes(to_bytes(r)) == r` holds for every
    /// relation, including empty ones, NULL cells, and NaN floats (values
    /// travel as IEEE-754 bit patterns); trailing bytes are an error.
    pub fn from_bytes(bytes: &[u8]) -> crate::wire::WireResult<Relation> {
        let mut r = crate::wire::Reader::new(bytes);
        let rel = crate::wire::get_relation_snapshot(&mut r)?;
        r.finish()?;
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Approximate in-memory footprint in bytes: the row store (summing
    /// [`Value::approx_bytes`] over every cell) plus, when the columnar
    /// encoding is materialized, its dictionaries and code columns.
    /// Deterministic for logically equal instances on the same access history
    /// (lengths, never capacities), so memory-accounting metrics built on it
    /// diff clean across runs.
    pub fn approx_heap_bytes(&self) -> usize {
        let rows: usize = self
            .tuples
            .iter()
            .map(|t| t.iter().map(Value::approx_bytes).sum::<usize>())
            .sum();
        let encoding = self
            .cached_encoding()
            .map_or(0, |enc| enc.approx_heap_bytes());
        rows + encoding
    }

    /// Append a tuple, validating its arity against the schema.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.len() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                actual: tuple.len(),
            });
        }
        self.tuples.push(tuple);
        self.invalidate_encoding();
        Ok(())
    }

    /// The tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Mutable access to the tuples (used by the execution engine's sort
    /// operator).  Invalidates the columnar encoding — it is rebuilt on the
    /// next code access.
    pub fn tuples_mut(&mut self) -> &mut Vec<Tuple> {
        self.invalidate_encoding();
        &mut self.tuples
    }

    /// A single tuple by position.
    pub fn tuple(&self, idx: usize) -> &Tuple {
        &self.tuples[idx]
    }

    /// Value of attribute `attr` in tuple `idx`.
    pub fn value(&self, idx: usize, attr: AttrId) -> &Value {
        &self.tuples[idx][attr.index()]
    }

    /// Project a tuple onto an attribute list (the paper's `t[X]`), cloning values.
    pub fn project_tuple(&self, idx: usize, list: &AttrList) -> Vec<Value> {
        list.iter()
            .map(|a| self.tuples[idx][a.index()].clone())
            .collect()
    }

    /// Iterate over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Iterate over one attribute's column in tuple order (the column view used
    /// by the execution engine; discovery works on [`Self::encoding`] instead).
    pub fn column(&self, attr: AttrId) -> impl Iterator<Item = &Value> + '_ {
        self.tuples.iter().map(move |t| &t[attr.index()])
    }

    /// The columnar encoding: per-attribute dictionaries + dense
    /// order-preserving code columns.  Built once ([`Self::from_rows`] does it
    /// eagerly) and shared via `Arc`; mutation through [`Self::push`] /
    /// [`Self::tuples_mut`] invalidates it and the next call rebuilds.
    pub fn encoding(&self) -> Arc<ColumnarEncoding> {
        if let Some(enc) = self.cached_encoding() {
            return enc;
        }
        let mut slot = self.encoding.write().expect("encoding lock poisoned");
        if let Some(enc) = slot.as_ref() {
            return enc.clone();
        }
        let enc = Arc::new(ColumnarEncoding::build(&self.schema, &self.tuples));
        *slot = Some(enc.clone());
        enc
    }

    /// Dense, order-preserving integer codes for one column: the code of a cell
    /// is the rank of its value among the column's distinct values, so
    /// `code[i] < code[j] ⟺ value[i] < value[j]` and equal codes mean equal
    /// values.  NULLs receive the smallest code (they sort first).
    ///
    /// Partition-based discovery works on these codes instead of on [`Value`]s:
    /// equality tests and order comparisons become integer operations, and
    /// equivalence classes can be bucketed by code directly.  The codes are
    /// copied out of [`Self::encoding`]; callers that can hold the `Arc`
    /// should prefer `encoding().codes(attr.index())` and skip the copy.
    pub fn rank_column(&self, attr: AttrId) -> Vec<u32> {
        self.encoding().codes(attr.index()).to_vec()
    }

    /// Reference implementation of [`Self::rank_column`] via one comparison
    /// sort over [`Value`]s, bypassing the columnar encoding.
    ///
    /// Kept as the *`Value`-comparison baseline*: differential tests pin the
    /// radix-built encoding against it bit for bit, and the E14 experiment
    /// measures the columnar speedup against it in the same run.
    pub fn rank_column_by_sort(&self, attr: AttrId) -> Vec<u32> {
        let col = attr.index();
        let mut order: Vec<usize> = (0..self.tuples.len()).collect();
        order.sort_unstable_by(|&a, &b| self.tuples[a][col].cmp(&self.tuples[b][col]));
        let mut codes = vec![0u32; self.tuples.len()];
        let mut rank = 0u32;
        for w in 0..order.len() {
            if w > 0 && self.tuples[order[w]][col] != self.tuples[order[w - 1]][col] {
                rank += 1;
            }
            codes[order[w]] = rank;
        }
        codes
    }

    /// Render the relation as a small ASCII table (diagnostics and examples).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let names: Vec<&str> = self
            .schema
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, n)| format!("{:width$}", n, width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &header
                .iter()
                .map(|h| "-".repeat(h.len()))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &rendered {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }

    /// The cached encoding, if one is materialized (never builds).
    fn cached_encoding(&self) -> Option<Arc<ColumnarEncoding>> {
        self.encoding
            .read()
            .expect("encoding lock poisoned")
            .clone()
    }

    /// Drop the cached encoding after a mutation (`&mut self` guarantees no
    /// outstanding reader holds the lock).
    fn invalidate_encoding(&mut self) {
        *self.encoding.get_mut().expect("encoding lock poisoned") = None;
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} rows)", self.schema.name(), self.tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_abc() -> (Schema, AttrId, AttrId, AttrId) {
        let mut s = Schema::new("t");
        let a = s.add_attr("a");
        let b = s.add_attr("b");
        let c = s.add_attr("c");
        (s, a, b, c)
    }

    #[test]
    fn push_validates_arity() {
        let (s, ..) = schema_abc();
        let mut r = Relation::new(s);
        assert!(r
            .push(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
            .is_ok());
        let err = r.push(vec![Value::Int(1)]).unwrap_err();
        assert_eq!(
            err,
            CoreError::ArityMismatch {
                expected: 3,
                actual: 1
            }
        );
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn from_rows_builds_relation() {
        let (s, a, _, c) = schema_abc();
        let r = Relation::from_rows(
            s,
            vec![
                vec![Value::Int(1), Value::Int(2), Value::Int(3)],
                vec![Value::Int(4), Value::Int(5), Value::Int(6)],
            ],
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(1, a), &Value::Int(4));
        assert_eq!(r.value(0, c), &Value::Int(3));
    }

    #[test]
    fn projection_follows_list_order() {
        let (s, a, b, c) = schema_abc();
        let r = Relation::from_rows(s, vec![vec![Value::Int(1), Value::Int(2), Value::Int(3)]])
            .unwrap();
        let list = AttrList::new([c, a, b]);
        assert_eq!(
            r.project_tuple(0, &list),
            vec![Value::Int(3), Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn render_produces_table() {
        let (s, ..) = schema_abc();
        let r = Relation::from_rows(s, vec![vec![Value::Int(10), Value::Int(2), Value::Int(3)]])
            .unwrap();
        let text = r.render();
        assert!(text.contains('a'));
        assert!(text.contains("10"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn column_iterates_one_attribute() {
        let (s, _, b, _) = schema_abc();
        let r = Relation::from_rows(
            s,
            vec![
                vec![Value::Int(1), Value::Int(9), Value::Int(3)],
                vec![Value::Int(4), Value::Int(8), Value::Int(6)],
            ],
        )
        .unwrap();
        let col: Vec<&Value> = r.column(b).collect();
        assert_eq!(col, vec![&Value::Int(9), &Value::Int(8)]);
    }

    #[test]
    fn rank_column_preserves_order_and_equality() {
        let (s, a, ..) = schema_abc();
        let r = Relation::from_rows(
            s,
            vec![
                vec![Value::Int(30), Value::Int(0), Value::Int(0)],
                vec![Value::Int(10), Value::Int(0), Value::Int(0)],
                vec![Value::Int(30), Value::Int(0), Value::Int(0)],
                vec![Value::Null, Value::Int(0), Value::Int(0)],
                vec![Value::Int(20), Value::Int(0), Value::Int(0)],
            ],
        )
        .unwrap();
        let codes = r.rank_column(a);
        // NULL gets the smallest code; duplicates share a code; order is preserved.
        assert_eq!(codes, vec![3, 1, 3, 0, 2]);
        for i in 0..r.len() {
            for j in 0..r.len() {
                assert_eq!(codes[i].cmp(&codes[j]), r.value(i, a).cmp(r.value(j, a)));
            }
        }
        // The codes come straight out of the shared encoding, and the
        // comparison-sort baseline agrees bit for bit.
        assert_eq!(codes, r.encoding().codes(a.index()));
        assert_eq!(codes, r.rank_column_by_sort(a));
    }

    #[test]
    fn mutation_invalidates_and_rebuilds_the_encoding() {
        let (s, a, b, _) = schema_abc();
        let mut r = Relation::from_rows(
            s,
            vec![
                vec![Value::Int(5), Value::Int(1), Value::Int(0)],
                vec![Value::Int(3), Value::Int(2), Value::Int(0)],
            ],
        )
        .unwrap();
        assert_eq!(r.rank_column(a), vec![1, 0]);
        r.push(vec![Value::Int(4), Value::Int(0), Value::Int(0)])
            .unwrap();
        assert_eq!(r.rank_column(a), vec![2, 0, 1], "push re-ranks");
        r.tuples_mut().reverse();
        assert_eq!(r.rank_column(b), vec![0, 2, 1], "tuples_mut re-ranks");
        assert_eq!(r.rank_column(b), r.rank_column_by_sort(b));
    }

    #[test]
    fn clone_and_eq_ignore_encoding_state() {
        let (s, a, ..) = schema_abc();
        let r = Relation::from_rows(s, vec![vec![Value::Int(1), Value::Int(2), Value::Int(3)]])
            .unwrap();
        let cloned = r.clone();
        assert_eq!(r, cloned);
        // A clone shares the already-built encoding rather than re-encoding.
        assert!(Arc::ptr_eq(&r.encoding(), &cloned.encoding()));
        assert_eq!(cloned.rank_column(a), vec![0]);
    }

    #[test]
    fn approx_heap_bytes_counts_rows_dicts_and_code_columns() {
        let (s, ..) = schema_abc();
        let mut r = Relation::new(s);
        r.push(vec![Value::Str("abcd".into()), Value::Int(1), Value::Null])
            .unwrap();
        r.push(vec![Value::Str("abcd".into()), Value::Int(2), Value::Null])
            .unwrap();
        // No encoding materialized yet: row cells only.
        let value_size = std::mem::size_of::<Value>();
        let rows_only = 6 * value_size + 2 * 4;
        assert_eq!(r.approx_heap_bytes(), rows_only);
        // Force the encoding: dictionaries ("abcd" ×1, ints ×2, NULL ×1 =
        // 4 entries + 4 string bytes) plus three u32 columns of two rows.
        r.encoding();
        let dict_bytes = 4 * value_size + 4;
        let code_bytes = 3 * 2 * std::mem::size_of::<u32>();
        assert_eq!(r.approx_heap_bytes(), rows_only + dict_bytes + code_bytes);
    }

    #[test]
    fn display_shows_row_count() {
        let (s, ..) = schema_abc();
        let r = Relation::new(s);
        assert_eq!(r.to_string(), "t (0 rows)");
    }
}
