//! Least-significant-byte radix sort over `(key, payload)` pairs.
//!
//! The columnar encoder ([`crate::columnar`]) and the partition refinement in
//! `od-setbased` sort millions of small integer pairs; a stable LSB counting
//! sort turns those `O(n log n)` comparison sorts into a handful of
//! branch-predictable linear passes.  Two properties matter to callers:
//!
//! * **Stability.**  Each digit pass is a counting sort, so pairs with equal
//!   keys keep their input order.  Every caller feeds pairs in ascending
//!   payload (row) order, which makes the stable radix result bit-identical
//!   to `sort_unstable()` on the `(key, payload)` tuples — payloads are
//!   distinct row ids, so `(key, payload)` lexicographic order and
//!   stable-by-key order coincide.
//! * **Pass skipping.**  Histograms for all digit positions are computed in
//!   one pre-pass, and any digit on which every key agrees is skipped.  Dense
//!   rank codes over `n` rows fit in `⌈log₂ n / 8⌉` bytes, so a 10k-row
//!   relation pays two passes and a 1M-row relation three, regardless of the
//!   key type's width.
//!
//! The functions return the number of counting passes actually performed so
//! the discovery layer can surface a `radix_passes` counter.

/// An unsigned integer key a radix pass can decompose into bytes.
pub trait RadixKey: Copy + Ord {
    /// Number of 8-bit digits in the key type.
    const DIGITS: usize;
    /// The `i`-th byte of the key, counting from the least significant.
    fn digit(self, i: usize) -> usize;
    /// Bitwise OR, used to fold all keys into a mask of live digits.
    fn fold_or(self, other: Self) -> Self;
}

impl RadixKey for u32 {
    const DIGITS: usize = 4;
    #[inline(always)]
    fn digit(self, i: usize) -> usize {
        ((self >> (8 * i)) & 0xFF) as usize
    }
    #[inline(always)]
    fn fold_or(self, other: Self) -> Self {
        self | other
    }
}

impl RadixKey for u64 {
    const DIGITS: usize = 8;
    #[inline(always)]
    fn digit(self, i: usize) -> usize {
        ((self >> (8 * i)) & 0xFF) as usize
    }
    #[inline(always)]
    fn fold_or(self, other: Self) -> Self {
        self | other
    }
}

/// Stable sort of `pairs` by key via LSB radix passes, using `scratch` as the
/// ping-pong buffer.  Returns the number of counting passes performed; the
/// sorted data always ends up back in `pairs` (the buffers are swapped, never
/// copied).  Both vectors may be reused across calls to amortize allocation.
pub fn sort_pairs<K: RadixKey>(pairs: &mut Vec<(K, u32)>, scratch: &mut Vec<(K, u32)>) -> u32 {
    let n = pairs.len();
    if n < 2 {
        return 0;
    }
    // A cheap OR-fold finds the digits where any key has a bit set.  Keys are
    // unsigned, so an all-zero digit (the high bytes of dense codes, or the
    // padding between two packed codes) is constant and never needs a
    // histogram, let alone a counting pass.
    let mut folded = pairs[0].0;
    for &(key, _) in &pairs[1..] {
        folded = folded.fold_or(key);
    }
    let live: Vec<usize> = (0..K::DIGITS).filter(|&d| folded.digit(d) != 0).collect();
    if live.is_empty() {
        return 0; // every key is zero — already sorted
    }
    // One pre-pass builds the histogram of every live digit, so digits that
    // turn out constant-but-nonzero still cost nothing beyond this scan.
    // Counts fit u32: row payloads cap the pair count well below 2^32.
    let mut counts = vec![[0u32; 256]; live.len()];
    for &(key, _) in pairs.iter() {
        for (slot, &d) in live.iter().enumerate() {
            counts[slot][key.digit(d)] += 1;
        }
    }
    scratch.clear();
    scratch.resize(n, pairs[0]);
    let mut passes = 0u32;
    for (slot, &d) in live.iter().enumerate() {
        // A digit where one bucket holds every pair cannot reorder anything.
        let hist = &counts[slot];
        if hist.iter().any(|&c| c as usize == n) {
            continue;
        }
        let mut offsets = [0usize; 256];
        let mut running = 0usize;
        for (b, &c) in hist.iter().enumerate() {
            offsets[b] = running;
            running += c as usize;
        }
        for &pair in pairs.iter() {
            let bucket = pair.0.digit(d);
            scratch[offsets[bucket]] = pair;
            offsets[bucket] += 1;
        }
        std::mem::swap(pairs, scratch);
        passes += 1;
    }
    passes
}

/// Number of bits needed to represent every value in `0..=max` (`0` when `max`
/// is `0`).  Callers packing two dense code spaces into one radix key use this
/// to pick the shift that keeps the packing injective while leaving the high
/// bytes zero for the OR-fold to skip.
pub fn bits_for(max: u32) -> u32 {
    32 - max.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_covers_the_value_range() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u32::MAX), 32);
        for max in [0u32, 1, 5, 100, 4096] {
            let bits = bits_for(max);
            if bits < 32 {
                assert!(u64::from(max) < 1u64 << bits || max == 0);
            }
        }
    }

    fn check_against_sort_unstable(mut input: Vec<(u32, u32)>) -> u32 {
        let mut expected = input.clone();
        expected.sort_unstable();
        let mut scratch = Vec::new();
        let passes = sort_pairs(&mut input, &mut scratch);
        assert_eq!(input, expected);
        passes
    }

    #[test]
    fn sorts_like_sort_unstable_on_distinct_payloads() {
        // Ascending payloads (row ids), arbitrary keys with duplicates.
        let input: Vec<(u32, u32)> = [7u32, 3, 7, 0, 3, 9, 1_000_000, 7, 0]
            .iter()
            .enumerate()
            .map(|(row, &k)| (k, row as u32))
            .collect();
        check_against_sort_unstable(input);
    }

    #[test]
    fn skips_constant_digits() {
        // Keys all below 256: only the low byte can differ.
        let input: Vec<(u32, u32)> = (0..500u32).map(|row| (row % 250, row)).collect();
        let passes = check_against_sort_unstable(input);
        assert_eq!(passes, 1, "keys < 256 need exactly one pass");
        // Constant keys: nothing to do at all.
        let constant: Vec<(u32, u32)> = (0..100u32).map(|row| (42, row)).collect();
        assert_eq!(check_against_sort_unstable(constant), 0);
    }

    #[test]
    fn u64_keys_and_edge_sizes() {
        let mut scratch = Vec::new();
        let mut empty: Vec<(u64, u32)> = Vec::new();
        assert_eq!(sort_pairs(&mut empty, &mut scratch), 0);
        let mut one = vec![(u64::MAX, 0u32)];
        assert_eq!(sort_pairs(&mut one, &mut scratch), 0);
        let mut wide: Vec<(u64, u32)> = [u64::MAX, 0, 1 << 40, 1 << 40, 3]
            .iter()
            .enumerate()
            .map(|(row, &k)| (k, row as u32))
            .collect();
        let mut expected = wide.clone();
        expected.sort_unstable();
        sort_pairs(&mut wide, &mut scratch);
        assert_eq!(wide, expected);
    }

    #[test]
    fn stability_preserves_input_order_within_equal_keys() {
        // Payloads deliberately descending: stable radix must keep that order
        // inside each key group (this is what distinguishes it from a plain
        // lexicographic sort of the tuples).
        let mut input: Vec<(u32, u32)> = vec![(5, 9), (5, 4), (1, 7), (5, 1), (1, 2)];
        let mut scratch = Vec::new();
        sort_pairs(&mut input, &mut scratch);
        assert_eq!(input, vec![(1, 7), (1, 2), (5, 9), (5, 4), (5, 1)]);
    }
}
