//! Copy-free attribute **sets** as 64-bit masks.
//!
//! Every hot structure of set-based OD discovery — lattice contexts, candidate
//! sets, partition-cache keys, engine memo keys — is an attribute *set*, and
//! the FASTOD-style traversal spends its time intersecting, subsuming and
//! hashing them.  [`AttrSet`] therefore packs a set of [`AttrId`]s into one
//! `u64`: membership is a mask test, intersection and union are single bitwise
//! instructions, subsumption is a compare-and-mask, and the set is `Copy`, so
//! contexts move through the lattice without a heap allocation in sight.
//!
//! The price is a domain cap of [`AttrSet::MAX_ATTRS`] = 64 attributes —
//! comfortably above every schema in the paper's workloads.  Out-of-range ids
//! are reported gracefully through [`AttrSet::try_insert`] /
//! [`AttrSet::try_from_iter`] (the infallible constructors panic with the same
//! diagnostic); discovery entry points surface the condition as a
//! [`CoreError::AttrSetOverflow`] instead of producing wrong answers.
//!
//! Ordering is **lexicographic on the ascending attribute sequence** — exactly
//! the `Ord` of the `BTreeSet<AttrId>` this type replaced — so every sorted
//! statement list, canonical enumeration order and deduplication produced on
//! top of it is bit-identical to the pre-bitset representation.

use crate::attr::AttrId;
use crate::error::{CoreError, Result};
use std::borrow::Borrow;
use std::fmt;
use std::ops::{BitAnd, BitOr, Sub};

/// A set of attributes, packed as a 64-bit mask (bit `i` ⇔ [`AttrId`]`(i)`).
///
/// See the [module docs](self) for the representation contract.  The set used
/// for the functional-dependency side of the theory (Lemma 1, Theorems 13 and
/// 16) and for every context of the set-based canonical form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AttrSet {
    mask: u64,
}

impl AttrSet {
    /// Largest number of distinct attributes (ids `0..64`) a set can hold.
    pub const MAX_ATTRS: usize = 64;

    /// The empty set.
    #[inline]
    pub const fn new() -> Self {
        AttrSet { mask: 0 }
    }

    /// A set containing exactly one attribute.
    ///
    /// Panics if the id is out of range (see [`Self::try_insert`]).
    #[inline]
    pub fn singleton(attr: AttrId) -> Self {
        let mut s = AttrSet::new();
        s.insert(attr);
        s
    }

    /// Build a set directly from its bit mask.
    #[inline]
    pub const fn from_mask(mask: u64) -> Self {
        AttrSet { mask }
    }

    /// The raw bit mask (bit `i` set ⇔ `AttrId(i)` is a member).
    #[inline]
    pub const fn mask(self) -> u64 {
        self.mask
    }

    #[inline]
    fn bit(attr: AttrId) -> Result<u64> {
        if attr.index() < Self::MAX_ATTRS {
            Ok(1u64 << attr.index())
        } else {
            Err(CoreError::AttrSetOverflow(attr.0))
        }
    }

    /// Insert an attribute; returns `true` if it was not already present.
    ///
    /// Panics when the id is ≥ [`Self::MAX_ATTRS`]; use [`Self::try_insert`]
    /// where out-of-range ids are reachable from user input.
    #[inline]
    pub fn insert(&mut self, attr: AttrId) -> bool {
        self.try_insert(attr)
            .expect("attribute id exceeds the 64-attribute AttrSet domain")
    }

    /// Fallible insert: `Err(CoreError::AttrSetOverflow)` when the id does not
    /// fit the 64-attribute domain, otherwise whether the attribute was new.
    #[inline]
    pub fn try_insert(&mut self, attr: AttrId) -> Result<bool> {
        let bit = Self::bit(attr)?;
        let fresh = self.mask & bit == 0;
        self.mask |= bit;
        Ok(fresh)
    }

    /// Build a set from any id iterator, reporting the first out-of-range id
    /// instead of panicking (the graceful path for >64-attribute schemas).
    pub fn try_from_iter(ids: impl IntoIterator<Item = AttrId>) -> Result<Self> {
        let mut s = AttrSet::new();
        for id in ids {
            s.try_insert(id)?;
        }
        Ok(s)
    }

    /// Remove an attribute; returns `true` if it was present.  Accepts the id
    /// by value or by reference.  Out-of-range ids are never members.
    #[inline]
    pub fn remove(&mut self, attr: impl Borrow<AttrId>) -> bool {
        match Self::bit(*attr.borrow()) {
            Ok(bit) => {
                let had = self.mask & bit != 0;
                self.mask &= !bit;
                had
            }
            Err(_) => false,
        }
    }

    /// The set with one attribute removed (a copy — `self` is untouched).
    #[inline]
    pub fn without(self, attr: impl Borrow<AttrId>) -> Self {
        let mut s = self;
        s.remove(attr);
        s
    }

    /// The set with one attribute added.
    ///
    /// Panics when the id is out of range (see [`Self::try_insert`]).
    #[inline]
    pub fn with(self, attr: AttrId) -> Self {
        let mut s = self;
        s.insert(attr);
        s
    }

    /// Membership test.  Accepts the id by value or by reference; ids outside
    /// the 64-attribute domain are simply not members.
    #[inline]
    pub fn contains(&self, attr: impl Borrow<AttrId>) -> bool {
        matches!(Self::bit(*attr.borrow()), Ok(bit) if self.mask & bit != 0)
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// True for the empty set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }

    /// Iterate over the attributes in ascending id order.
    #[inline]
    pub fn iter(&self) -> AttrSetIter {
        AttrSetIter { mask: self.mask }
    }

    /// Smallest member, if any.
    #[inline]
    pub fn first(&self) -> Option<AttrId> {
        (self.mask != 0).then(|| AttrId(self.mask.trailing_zeros()))
    }

    /// Largest member, if any.
    #[inline]
    pub fn last(&self) -> Option<AttrId> {
        (self.mask != 0).then(|| AttrId(63 - self.mask.leading_zeros()))
    }

    /// Set union (`self ∪ other`).
    #[inline]
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet {
            mask: self.mask | other.mask,
        }
    }

    /// Set intersection (`self ∩ other`).
    #[inline]
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet {
            mask: self.mask & other.mask,
        }
    }

    /// Set difference (`self ∖ other`).
    #[inline]
    pub fn difference(self, other: AttrSet) -> AttrSet {
        AttrSet {
            mask: self.mask & !other.mask,
        }
    }

    /// Is every member of `self` a member of `other`?  (The subsumption test
    /// of the lattice: one mask-and-compare.)
    #[inline]
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        self.mask & other.mask == self.mask
    }

    /// Is every member of `other` a member of `self`?
    #[inline]
    pub fn is_superset(&self, other: &AttrSet) -> bool {
        other.is_subset(self)
    }

    /// Do the two sets share no member?
    #[inline]
    pub fn is_disjoint(&self, other: &AttrSet) -> bool {
        self.mask & other.mask == 0
    }
}

/// Ascending-id iterator over an [`AttrSet`] (yields `AttrId`s by value — the
/// set is bit-packed, so there is nothing to hand out a reference to).
#[derive(Debug, Clone)]
pub struct AttrSetIter {
    mask: u64,
}

impl Iterator for AttrSetIter {
    type Item = AttrId;

    #[inline]
    fn next(&mut self) -> Option<AttrId> {
        if self.mask == 0 {
            return None;
        }
        let low = self.mask.trailing_zeros();
        self.mask &= self.mask - 1; // clear lowest set bit
        Some(AttrId(low))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.mask.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrSetIter {}

impl DoubleEndedIterator for AttrSetIter {
    #[inline]
    fn next_back(&mut self) -> Option<AttrId> {
        if self.mask == 0 {
            return None;
        }
        let high = 63 - self.mask.leading_zeros();
        self.mask &= !(1u64 << high);
        Some(AttrId(high))
    }
}

impl IntoIterator for AttrSet {
    type Item = AttrId;
    type IntoIter = AttrSetIter;
    fn into_iter(self) -> AttrSetIter {
        self.iter()
    }
}

impl IntoIterator for &AttrSet {
    type Item = AttrId;
    type IntoIter = AttrSetIter;
    fn into_iter(self) -> AttrSetIter {
        self.iter()
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        let mut s = AttrSet::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

impl<'a> FromIterator<&'a AttrId> for AttrSet {
    fn from_iter<T: IntoIterator<Item = &'a AttrId>>(iter: T) -> Self {
        iter.into_iter().copied().collect()
    }
}

impl Extend<AttrId> for AttrSet {
    fn extend<T: IntoIterator<Item = AttrId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl<'a> Extend<&'a AttrId> for AttrSet {
    fn extend<T: IntoIterator<Item = &'a AttrId>>(&mut self, iter: T) {
        self.extend(iter.into_iter().copied());
    }
}

impl BitAnd for AttrSet {
    type Output = AttrSet;
    /// Intersection — the lattice's parent-set propagation is literally `&`.
    fn bitand(self, rhs: AttrSet) -> AttrSet {
        self.intersect(rhs)
    }
}

impl BitOr for AttrSet {
    type Output = AttrSet;
    fn bitor(self, rhs: AttrSet) -> AttrSet {
        self.union(rhs)
    }
}

impl Sub for AttrSet {
    type Output = AttrSet;
    fn sub(self, rhs: AttrSet) -> AttrSet {
        self.difference(rhs)
    }
}

impl Ord for AttrSet {
    /// Lexicographic on the ascending id sequence — identical to the ordering
    /// of the `BTreeSet<AttrId>` this type replaced, so sorted statement
    /// vectors and canonical enumeration orders survive the representation
    /// change bit for bit.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.mask == other.mask {
            return std::cmp::Ordering::Equal;
        }
        self.iter().cmp(other.iter())
    }
}

impl PartialOrd for AttrSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn set(ids: &[u32]) -> AttrSet {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AttrSet::new();
        assert!(s.is_empty());
        assert!(s.insert(AttrId(3)));
        assert!(!s.insert(AttrId(3)));
        assert!(s.insert(AttrId(63)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(AttrId(3)) && s.contains(AttrId(63)));
        assert!(!s.contains(AttrId(4)));
        assert!(s.remove(AttrId(3)));
        assert!(!s.remove(AttrId(3)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.first(), Some(AttrId(63)));
        assert_eq!(s.last(), Some(AttrId(63)));
    }

    #[test]
    fn out_of_range_ids_error_gracefully() {
        let mut s = AttrSet::new();
        assert_eq!(
            s.try_insert(AttrId(64)),
            Err(CoreError::AttrSetOverflow(64))
        );
        assert_eq!(s.try_insert(AttrId(63)), Ok(true));
        assert!(AttrSet::try_from_iter((0..65).map(AttrId)).is_err());
        assert_eq!(
            AttrSet::try_from_iter((0..64).map(AttrId)).unwrap().len(),
            64
        );
        // Out-of-range ids are never members and remove is a no-op.
        assert!(!s.contains(AttrId(1000)));
        assert!(!s.remove(AttrId(1000)));
    }

    #[test]
    #[should_panic(expected = "64-attribute")]
    fn infallible_insert_panics_out_of_range() {
        AttrSet::new().insert(AttrId(64));
    }

    #[test]
    fn set_algebra() {
        let a = set(&[0, 2, 5]);
        let b = set(&[2, 5, 9]);
        assert_eq!(a.union(b), set(&[0, 2, 5, 9]));
        assert_eq!(a.intersect(b), set(&[2, 5]));
        assert_eq!(a.difference(b), set(&[0]));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersect(b));
        assert_eq!(a - b, a.difference(b));
        assert!(set(&[2, 5]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.is_superset(&set(&[0])));
        assert!(set(&[1, 3]).is_disjoint(&a));
        assert!(!a.is_disjoint(&b));
        assert_eq!(a.without(AttrId(0)), set(&[2, 5]));
        assert_eq!(set(&[1]).with(AttrId(4)), set(&[1, 4]));
    }

    #[test]
    fn iteration_is_ascending_and_double_ended() {
        let s = set(&[9, 0, 33]);
        let fwd: Vec<u32> = s.iter().map(|a| a.0).collect();
        assert_eq!(fwd, vec![0, 9, 33]);
        let back: Vec<u32> = s.iter().rev().map(|a| a.0).collect();
        assert_eq!(back, vec![33, 9, 0]);
        assert_eq!(s.iter().len(), 3);
        let by_ref: Vec<AttrId> = (&s).into_iter().collect();
        assert_eq!(by_ref.len(), 3);
    }

    #[test]
    fn ordering_matches_the_btreeset_it_replaced() {
        // Exhaustive over small universes: lexicographic-on-sorted-sequence,
        // exactly BTreeSet<AttrId>'s derived Ord.
        let masks: Vec<u64> = (0u64..64).collect();
        for &m1 in &masks {
            for &m2 in &masks {
                let a = AttrSet::from_mask(m1);
                let b = AttrSet::from_mask(m2);
                let ba: BTreeSet<AttrId> = a.iter().collect();
                let bb: BTreeSet<AttrId> = b.iter().collect();
                assert_eq!(a.cmp(&b), ba.cmp(&bb), "masks {m1:#b} vs {m2:#b}");
            }
        }
        // Spot-check the prefix rule: {0} < {0,1} < {1}.
        assert!(set(&[0]) < set(&[0, 1]));
        assert!(set(&[0, 1]) < set(&[1]));
    }

    #[test]
    fn collect_and_extend() {
        let ids = [AttrId(1), AttrId(1), AttrId(4)];
        let s: AttrSet = ids.iter().collect();
        assert_eq!(s, set(&[1, 4]));
        let mut t = AttrSet::new();
        t.extend(ids);
        t.extend(&[AttrId(7)][..]);
        assert_eq!(t, set(&[1, 4, 7]));
        assert_eq!(AttrSet::from_mask(s.mask()), s);
    }

    #[test]
    fn rendering() {
        assert_eq!(set(&[0, 2]).to_string(), "{#0, #2}");
        // Debug matches the BTreeSet rendering this type replaced.
        assert_eq!(format!("{:?}", set(&[0, 2])), "{AttrId(0), AttrId(2)}");
        assert_eq!(AttrSet::new().to_string(), "{}");
    }
}
