//! Error types shared by the core crate.

use std::fmt;

/// Errors raised by core operations (schema mismatches, unknown attributes, arity
/// violations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A tuple was inserted whose arity differs from the schema arity.
    ArityMismatch {
        /// Number of attributes the schema declares.
        expected: usize,
        /// Number of values the offending tuple carried.
        actual: usize,
    },
    /// An attribute id was used that the schema does not know about.
    UnknownAttribute(u32),
    /// An attribute name was looked up that the schema does not contain.
    UnknownAttributeName(String),
    /// An attribute with this name already exists in the schema.
    DuplicateAttribute(String),
    /// A dependency referenced an empty side where a non-empty list was required.
    EmptyList(&'static str),
    /// Two values of incomparable types were compared.
    IncomparableValues(String),
    /// An attribute id does not fit the 64-attribute [`crate::AttrSet`]
    /// domain (bit-packed sets cap the universe; see `AttrSet::MAX_ATTRS`).
    AttrSetOverflow(u32),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "tuple arity {actual} does not match schema arity {expected}"
                )
            }
            CoreError::UnknownAttribute(id) => write!(f, "unknown attribute id {id}"),
            CoreError::UnknownAttributeName(name) => write!(f, "unknown attribute name '{name}'"),
            CoreError::DuplicateAttribute(name) => {
                write!(f, "attribute '{name}' already exists in the schema")
            }
            CoreError::EmptyList(what) => write!(f, "{what} must not be empty"),
            CoreError::IncomparableValues(msg) => write!(f, "incomparable values: {msg}"),
            CoreError::AttrSetOverflow(id) => write!(
                f,
                "attribute id {id} exceeds the 64-attribute AttrSet domain"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience result alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::ArityMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("arity 2"));
        assert!(e.to_string().contains("arity 3"));
        let e = CoreError::UnknownAttributeName("foo".into());
        assert!(e.to_string().contains("foo"));
        let e = CoreError::DuplicateAttribute("bar".into());
        assert!(e.to_string().contains("bar"));
        let e = CoreError::EmptyList("left-hand side");
        assert!(e.to_string().contains("left-hand side"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CoreError::UnknownAttribute(3),
            CoreError::UnknownAttribute(3)
        );
        assert_ne!(
            CoreError::UnknownAttribute(3),
            CoreError::UnknownAttribute(4)
        );
    }
}
