//! Runtime values with a total order.
//!
//! The paper's definitions only require that each attribute's domain is totally
//! ordered.  [`Value`] provides a concrete, totally ordered value type covering
//! the domains used in the paper's examples (integers, floats, strings, dates,
//! booleans, and NULL).  The ordering rules are:
//!
//! * `Null` sorts **before** every non-null value (SQL `NULLS FIRST` under `ASC`),
//! * values of the same type compare naturally (strings lexicographically — which
//!   is exactly the `month_name` trap of the paper's Section 1),
//! * values of different types compare by a fixed type rank (`Null < Boolean <
//!   Integer ≈ Float < Text < Date`); mixed-type columns are not meaningful in the
//!   workloads but a total order keeps sorting well-defined everywhere.

use std::cmp::Ordering;
use std::fmt;

/// A single column value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Sorts before every other value.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN compares greater than every other float.
    Float(f64),
    /// UTF-8 string, ordered lexicographically (byte-wise on chars).
    Str(String),
    /// Calendar date as days since the epoch 1970-01-01.
    Date(i32),
}

impl Value {
    /// Rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Date(_) => 4,
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory footprint in bytes: the enum itself plus owned
    /// heap payload.  Deliberately counts string *lengths*, not capacities, so
    /// the estimate is deterministic for logically equal values — memory
    /// accounting (e.g. stream-monitor compaction metrics) stays bit-identical
    /// across runs.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Str(s) => s.len(),
                _ => 0,
            }
    }

    /// Interpret the value as an integer if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Date(d) => Some(*d as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Interpret the value as a float if it is numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Date(d) => Some(*d as f64),
            Value::Bool(b) => Some(*b as u8 as f64),
            _ => None,
        }
    }

    /// Interpret the value as a string slice if it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Total-order comparison of two floats (NaN sorts last, -0.0 == 0.0).
    fn cmp_floats(a: f64, b: f64) -> Ordering {
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => a.partial_cmp(&b).expect("non-NaN floats are comparable"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => Value::cmp_floats(*a, *b),
            (Int(a), Float(b)) => Value::cmp_floats(*a as f64, *b),
            (Float(a), Int(b)) => Value::cmp_floats(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                // Hash consistently with Int(i) == Float(i as f64).
                let canonical = if f.is_nan() { f64::NAN } else { *f };
                canonical.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => {
                let (y, m, day) = date_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Convert a calendar date to days since 1970-01-01 (proleptic Gregorian).
///
/// Months are 1-based, days are 1-based. Dates before the epoch yield negative
/// day counts. The algorithm is the standard civil-from-days / days-from-civil
/// pair (Howard Hinnant's algorithm), implemented here so the crate stays
/// dependency-free.
pub fn days_from_date(year: i32, month: u32, day: u32) -> i32 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((month + 9) % 12) as i64; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Convert days since 1970-01-01 back to a `(year, month, day)` triple.
pub fn date_from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + (m <= 2) as i64) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn ints_and_floats_compare_numerically() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Float(f64::NAN) > Value::Float(1e300));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn strings_order_lexicographically_demonstrating_the_month_name_trap() {
        // Section 1: "April", "August" sort before "January" even though January
        // precedes them in the calendar — the reason FDs alone cannot justify
        // dropping `quarter` from an ORDER BY.
        let april = Value::from("April");
        let august = Value::from("August");
        let january = Value::from("January");
        assert!(april < august);
        assert!(august < january);
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1969, 12, 31),
            (2000, 2, 29),
            (1990, 1, 1),
            (2026, 6, 14),
            (1600, 3, 1),
            (2400, 12, 31),
        ] {
            let days = days_from_date(y, m, d);
            assert_eq!(date_from_days(days), (y, m, d), "roundtrip for {y}-{m}-{d}");
        }
        assert_eq!(days_from_date(1970, 1, 1), 0);
        assert_eq!(days_from_date(1970, 1, 2), 1);
        assert_eq!(days_from_date(1969, 12, 31), -1);
    }

    #[test]
    fn dates_order_chronologically() {
        let a = Value::Date(days_from_date(1999, 12, 31));
        let b = Value::Date(days_from_date(2000, 1, 1));
        assert!(a < b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::from("hi").to_string(), "'hi'");
        assert_eq!(
            Value::Date(days_from_date(2001, 2, 3)).to_string(),
            "2001-02-03"
        );
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::from("x").as_int(), None);
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::Int(1).as_str(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn hash_consistent_with_eq_for_int_float() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }

    #[test]
    fn mixed_types_have_stable_total_order() {
        let mut vals = [
            Value::from("zzz"),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Date(10),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(5));
        assert_eq!(vals[3], Value::from("zzz"));
        assert_eq!(vals[4], Value::Date(10));
    }
}
