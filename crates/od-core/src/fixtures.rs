//! Small fixture relations taken directly from the paper, used by tests,
//! examples and the reproduction harness.

use crate::attr::{DataType, Schema};
use crate::relation::Relation;
use crate::value::Value;

/// The two-tuple relation of **Figure 1**:
///
/// ```text
/// A B C D E F
/// 3 2 0 4 7 9
/// 3 2 1 3 8 9
/// ```
///
/// Examples 2 and 3 of the paper evaluate ODs and order compatibilities against
/// this instance.
pub fn figure_1_relation() -> Relation {
    let mut schema = Schema::new("figure_1");
    for name in ["A", "B", "C", "D", "E", "F"] {
        schema.add_typed_attr(name, DataType::Integer);
    }
    Relation::from_rows(
        schema,
        vec![
            vec![3, 2, 0, 4, 7, 9].into_iter().map(Value::Int).collect(),
            vec![3, 2, 1, 3, 8, 9].into_iter().map(Value::Int).collect(),
        ],
    )
    .expect("fixture arity is correct")
}

/// The chain counterexample sketch of **Figure 3**: attributes
/// `A, B1, …, Bn, C` with two rows
///
/// ```text
/// A B1 … Bn C
/// 0 0  … 0  1
/// 1 1  … 1  0
/// ```
///
/// The rows swap `A` and `C` while keeping `A ~ B1`, `Bi ~ Bi+1` intact — the
/// configuration the Chain axiom (OD6) rules out when its side conditions hold.
pub fn figure_3_relation(n_middle: usize) -> Relation {
    let mut schema = Schema::new("figure_3");
    schema.add_attr("A");
    for i in 1..=n_middle {
        schema.add_attr(format!("B{i}"));
    }
    schema.add_attr("C");
    let arity = schema.arity();
    let mut row0: Vec<Value> = vec![Value::Int(0); arity];
    let mut row1: Vec<Value> = vec![Value::Int(1); arity];
    row0[arity - 1] = Value::Int(1);
    row1[arity - 1] = Value::Int(0);
    Relation::from_rows(schema, vec![row0, row1]).expect("fixture arity is correct")
}

/// A small version of the **Example 5** taxes relation: `income`, `bracket`,
/// `payable` with brackets and payable amounts monotone in income.
pub fn example_5_taxes() -> Relation {
    let mut schema = Schema::new("taxes");
    schema.add_typed_attr("income", DataType::Integer);
    schema.add_typed_attr("bracket", DataType::Integer);
    schema.add_typed_attr("payable", DataType::Integer);
    let rows = [
        (9_000i64, 1i64, 900i64),
        (15_000, 1, 1_500),
        (32_000, 2, 4_800),
        (48_000, 2, 7_200),
        (75_000, 3, 15_000),
        (120_000, 4, 30_000),
    ];
    Relation::from_rows(
        schema,
        rows.iter()
            .map(|&(i, b, p)| vec![Value::Int(i), Value::Int(b), Value::Int(p)]),
    )
    .expect("fixture arity is correct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{compatibility_holds, od_holds};
    use crate::dep::{OrderCompatibility, OrderDependency};

    #[test]
    fn figure_1_has_expected_shape() {
        let r = figure_1_relation();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().arity(), 6);
        assert_eq!(
            r.schema().attr_name(r.schema().attr_by_name("F").unwrap()),
            "F"
        );
    }

    #[test]
    fn figure_3_swaps_a_and_c_only() {
        let r = figure_3_relation(3);
        let s = r.schema();
        let a = s.attr_by_name("A").unwrap();
        let c = s.attr_by_name("C").unwrap();
        let b1 = s.attr_by_name("B1").unwrap();
        assert!(!compatibility_holds(
            &r,
            &OrderCompatibility::new(vec![a], vec![c])
        ));
        assert!(compatibility_holds(
            &r,
            &OrderCompatibility::new(vec![a], vec![b1])
        ));
        assert!(od_holds(&r, &OrderDependency::new(vec![a], vec![b1])));
    }

    #[test]
    fn example_5_taxes_satisfies_the_motivating_ods() {
        let r = example_5_taxes();
        let s = r.schema();
        let income = s.attr_by_name("income").unwrap();
        let bracket = s.attr_by_name("bracket").unwrap();
        let payable = s.attr_by_name("payable").unwrap();
        assert!(od_holds(
            &r,
            &OrderDependency::new(vec![income], vec![bracket])
        ));
        assert!(od_holds(
            &r,
            &OrderDependency::new(vec![income], vec![payable])
        ));
        assert!(od_holds(
            &r,
            &OrderDependency::new(vec![income], vec![bracket, payable])
        ));
        // bracket alone does not order income (splits), and certainly not vice versa.
        assert!(!od_holds(
            &r,
            &OrderDependency::new(vec![bracket], vec![income])
        ));
    }
}
