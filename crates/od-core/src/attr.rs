//! Attributes and schemas.
//!
//! The paper works over a relation schema `R` with a set of attributes `U`
//! (Table 1).  Attributes are interned into small integer ids ([`AttrId`]) so
//! that attribute lists and sets are cheap to copy, hash and compare; the
//! [`Schema`] owns the id ↔ name mapping and an optional [`DataType`] per
//! attribute.

use crate::error::{CoreError, Result};
use std::collections::HashMap;
use std::fmt;

/// A compact identifier for an attribute within a [`Schema`].
///
/// Ids are assigned densely starting from zero in insertion order, so they can
/// double as column positions in a [`crate::Relation`] built from the same schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for AttrId {
    fn from(v: u32) -> Self {
        AttrId(v)
    }
}

/// Logical data type of an attribute.
///
/// Only the types needed by the paper's examples and the workload generators are
/// modelled.  The type is advisory: [`crate::Value`]s carry their own runtime tag and
/// ordering is defined on values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// 64-bit signed integer.
    #[default]
    Integer,
    /// 64-bit IEEE float with a total order (NaN sorts last).
    Float,
    /// UTF-8 string, ordered lexicographically (this is what makes the
    /// `month-name` example of Section 1 go wrong: `"April" < "August" < ...`).
    Text,
    /// Calendar date stored as days since 1970-01-01.
    Date,
    /// Boolean.
    Boolean,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Integer => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
            DataType::Boolean => "BOOLEAN",
        };
        f.write_str(s)
    }
}

/// A named, typed attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Interned id of the attribute.
    pub id: AttrId,
    /// Human-readable name (unique within the schema).
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
}

/// A relation schema: an ordered collection of named attributes.
///
/// The order of attributes in the schema defines column positions for
/// [`crate::Relation`] instances, but carries no semantic ordering meaning — the
/// ordering semantics of the paper live in [`crate::AttrList`] values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    name: String,
    attrs: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Create an empty schema with the given relation name.
    pub fn new(name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            attrs: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add an attribute with the default type ([`DataType::Integer`]).
    ///
    /// Panics if the name is already present; use [`Schema::try_add_attr`] for a
    /// fallible variant.
    pub fn add_attr(&mut self, name: impl Into<String>) -> AttrId {
        self.try_add_attr(name, DataType::Integer)
            .expect("duplicate attribute name")
    }

    /// Add an attribute with an explicit type.
    ///
    /// Panics if the name is already present.
    pub fn add_typed_attr(&mut self, name: impl Into<String>, dt: DataType) -> AttrId {
        self.try_add_attr(name, dt)
            .expect("duplicate attribute name")
    }

    /// Fallible attribute insertion.
    pub fn try_add_attr(&mut self, name: impl Into<String>, dt: DataType) -> Result<AttrId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(CoreError::DuplicateAttribute(name));
        }
        let id = AttrId(self.attrs.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.attrs.push(Attribute {
            id,
            name,
            data_type: dt,
        });
        Ok(id)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// All attribute ids in declaration order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.attrs.iter().map(|a| a.id)
    }

    /// Look up an attribute by id.
    pub fn attr(&self, id: AttrId) -> Result<&Attribute> {
        self.attrs
            .get(id.index())
            .ok_or(CoreError::UnknownAttribute(id.0))
    }

    /// Look up an attribute id by name.
    pub fn attr_by_name(&self, name: &str) -> Result<AttrId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::UnknownAttributeName(name.to_string()))
    }

    /// Name of an attribute id, or `"?"` if unknown (used for diagnostics only).
    pub fn attr_name(&self, id: AttrId) -> &str {
        self.attrs
            .get(id.index())
            .map(|a| a.name.as_str())
            .unwrap_or("?")
    }

    /// True if the id belongs to this schema.
    pub fn contains(&self, id: AttrId) -> bool {
        id.index() < self.attrs.len()
    }

    /// Render a list of attribute ids as `[name, name, ...]` for diagnostics.
    pub fn render_ids<'a>(&self, ids: impl IntoIterator<Item = &'a AttrId>) -> String {
        let names: Vec<&str> = ids.into_iter().map(|id| self.attr_name(*id)).collect();
        format!("[{}]", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_attributes() {
        let mut s = Schema::new("date_dim");
        let year = s.add_attr("year");
        let month = s.add_typed_attr("month", DataType::Integer);
        let name = s.add_typed_attr("month_name", DataType::Text);

        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_by_name("year").unwrap(), year);
        assert_eq!(s.attr_by_name("month").unwrap(), month);
        assert_eq!(s.attr(name).unwrap().data_type, DataType::Text);
        assert_eq!(s.attr_name(year), "year");
        assert_eq!(year.index(), 0);
        assert_eq!(month.index(), 1);
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let mut s = Schema::new("t");
        s.add_attr("a");
        let err = s.try_add_attr("a", DataType::Integer).unwrap_err();
        assert_eq!(err, CoreError::DuplicateAttribute("a".into()));
    }

    #[test]
    fn unknown_lookups_error() {
        let s = Schema::new("t");
        assert!(matches!(
            s.attr_by_name("nope"),
            Err(CoreError::UnknownAttributeName(_))
        ));
        assert!(matches!(
            s.attr(AttrId(7)),
            Err(CoreError::UnknownAttribute(7))
        ));
        assert_eq!(s.attr_name(AttrId(7)), "?");
    }

    #[test]
    fn render_ids_shows_names() {
        let mut s = Schema::new("t");
        let a = s.add_attr("a");
        let b = s.add_attr("b");
        assert_eq!(s.render_ids(&[a, b]), "[a, b]");
    }

    #[test]
    fn display_impls() {
        assert_eq!(AttrId(3).to_string(), "#3");
        assert_eq!(DataType::Text.to_string(), "TEXT");
        assert_eq!(DataType::Date.to_string(), "DATE");
    }

    #[test]
    fn attr_ids_iterates_in_order() {
        let mut s = Schema::new("t");
        let a = s.add_attr("a");
        let b = s.add_attr("b");
        let c = s.add_attr("c");
        let ids: Vec<AttrId> = s.attr_ids().collect();
        assert_eq!(ids, vec![a, b, c]);
    }
}
