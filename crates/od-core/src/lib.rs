//! # od-core — core types for lexicographic order dependencies
//!
//! This crate provides the foundational vocabulary of the paper *Fundamentals of
//! Order Dependencies* (Szlichta, Godfrey, Gryz — PVLDB 5(11), 2012):
//!
//! * [`Attribute`]s and [`Schema`]s (the paper's set of attributes `U`),
//! * [`AttrList`] — **lists** of attributes (the paper works with lists, not sets,
//!   because `ORDER BY` is positional) and [`AttrSet`] — sets of attributes for the
//!   functional-dependency side of the theory,
//! * typed [`Value`]s, [`Tuple`]s and [`Relation`] instances,
//! * the lexicographic comparison operators `≼`, `≺` and `=_X` of Definitions 1–3
//!   ([`lex`] module),
//! * the dependency statements themselves: [`OrderDependency`] (`X ↦ Y`),
//!   [`OrderEquivalence`] (`X ↔ Y`), [`OrderCompatibility`] (`X ~ Y`) and
//!   [`FunctionalDependency`] (`X → Y`),
//! * instance-level satisfaction checking with explicit **split** / **swap**
//!   violation witnesses (Definitions 13–14, Theorem 15) in the [`check`] module.
//!
//! Higher layers build on this crate: `od-infer` implements the axiom system and
//! the implication machinery, `od-engine`/`od-optimizer` implement the query
//! processing substrate used by the paper's motivating examples, and
//! `od-workload` generates the date-warehouse style data used in the experiments.
//!
//! ## Quick example
//!
//! ```
//! use od_core::{Schema, Relation, Value, OrderDependency, check::check_od};
//!
//! let mut schema = Schema::new("taxes");
//! let income = schema.add_attr("income");
//! let bracket = schema.add_attr("bracket");
//!
//! let mut rel = Relation::new(schema.clone());
//! rel.push(vec![Value::from(10_000i64), Value::from(1i64)]).unwrap();
//! rel.push(vec![Value::from(50_000i64), Value::from(2i64)]).unwrap();
//! rel.push(vec![Value::from(90_000i64), Value::from(3i64)]).unwrap();
//!
//! // [income] orders [bracket]
//! let od = OrderDependency::new(vec![income], vec![bracket]);
//! assert!(check_od(&rel, &od).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod check;
pub mod dep;
pub mod error;
pub mod fixtures;
pub mod lex;
pub mod list;
pub mod relation;
pub mod value;

pub use attr::{AttrId, Attribute, DataType, Schema};
pub use check::{check_od, od_holds, Violation};
pub use dep::{FunctionalDependency, OrderCompatibility, OrderDependency, OrderEquivalence};
pub use error::{CoreError, Result};
pub use lex::{lex_cmp, lex_eq, lex_le, lex_lt};
pub use list::{AttrList, AttrSet};
pub use relation::{Relation, Tuple};
pub use value::{date_from_days, days_from_date, Value};
