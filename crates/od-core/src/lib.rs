//! # od-core — core types for lexicographic order dependencies
//!
//! This crate provides the foundational vocabulary of the paper *Fundamentals of
//! Order Dependencies* (Szlichta, Godfrey, Gryz — PVLDB 5(11), 2012):
//!
//! * [`Attribute`]s and [`Schema`]s (the paper's set of attributes `U`),
//! * [`AttrList`] — **lists** of attributes (the paper works with lists, not sets,
//!   because `ORDER BY` is positional) and [`AttrSet`] — sets of attributes for the
//!   functional-dependency side of the theory,
//! * typed [`Value`]s, [`Tuple`]s and [`Relation`] instances,
//! * the lexicographic comparison operators `≼`, `≺` and `=_X` of Definitions 1–3
//!   ([`lex`] module),
//! * the dependency statements themselves: [`OrderDependency`] (`X ↦ Y`),
//!   [`OrderEquivalence`] (`X ↔ Y`), [`OrderCompatibility`] (`X ~ Y`) and
//!   [`FunctionalDependency`] (`X → Y`),
//! * instance-level satisfaction checking with explicit **split** / **swap**
//!   violation witnesses (Definitions 13–14, Theorem 15) in the [`check`] module.
//!
//! ## Evidence, not booleans: `Verdict` / `g3` semantics
//!
//! Validators across the workspace answer with **violation evidence**.  Here,
//! [`check::od_evidence`] returns exact split/swap pair counts and the
//! minimal number of tuples whose removal makes the OD hold — the numerator
//! of the TANE-style `g3` error (`removal / n`); an OD is ε-approximately
//! valid iff that count stays within `⌊ε·n⌋`.  The partition-backed layers
//! ([`Relation::rank_column`] supplies their order-preserving integer codes)
//! return the same measure per canonical statement as a `Verdict`, and the
//! streaming ledgers maintain it incrementally; differential tests pin all
//! three against each other.
//!
//! ## The set ↔ list canonical translation, briefly
//!
//! The paper works with attribute **lists**; the follow-up set-based
//! discovery line (implemented in `od-setbased`) works with context
//! statements over attribute **sets**.  The bridge is exact: a list OD
//! `X ↦ Y` holds iff all of its *constancy* statements (`set(X) : [] ↦ Bj` —
//! no splits; this is the FD `set(X) → set(Y)` of Lemma 1) and *compatibility*
//! statements (`{A1..Ai−1, B1..Bj−1} : Ai ~ Bj` — no swaps) hold.  The
//! translation and its round trip live in `od-setbased::canonical`; the
//! [`AttrList`] / [`AttrSet`] pair in this crate is what makes both sides
//! first-class.
//!
//! Higher layers build on this crate: `od-infer` implements the axiom system and
//! the implication machinery, `od-engine`/`od-optimizer` implement the query
//! processing substrate used by the paper's motivating examples, `od-workload`
//! generates the date-warehouse style data used in the experiments, and
//! `od-discovery`/`od-setbased` implement snapshot discovery plus streaming
//! maintenance on top of the rank codes and evidence checkers defined here.
//!
//! ## Quick example
//!
//! ```
//! use od_core::{Schema, Relation, Value, OrderDependency, check::check_od};
//!
//! let mut schema = Schema::new("taxes");
//! let income = schema.add_attr("income");
//! let bracket = schema.add_attr("bracket");
//!
//! let mut rel = Relation::new(schema.clone());
//! rel.push(vec![Value::from(10_000i64), Value::from(1i64)]).unwrap();
//! rel.push(vec![Value::from(50_000i64), Value::from(2i64)]).unwrap();
//! rel.push(vec![Value::from(90_000i64), Value::from(3i64)]).unwrap();
//!
//! // [income] orders [bracket]
//! let od = OrderDependency::new(vec![income], vec![bracket]);
//! assert!(check_od(&rel, &od).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod check;
pub mod columnar;
pub mod dep;
pub mod error;
pub mod fixtures;
pub mod lex;
pub mod list;
mod obs;
pub mod radix;
pub mod relation;
pub mod set;
pub mod value;
pub mod wire;

pub use attr::{AttrId, Attribute, DataType, Schema};
pub use check::{check_od, od_holds, Violation};
pub use columnar::{ColumnarEncoding, EncodedColumn};
pub use dep::{FunctionalDependency, OrderCompatibility, OrderDependency, OrderEquivalence};
pub use error::{CoreError, Result};
pub use lex::{lex_cmp, lex_eq, lex_le, lex_lt};
pub use list::AttrList;
pub use relation::{Relation, Tuple};
pub use set::{AttrSet, AttrSetIter};
pub use value::{date_from_days, days_from_date, Value};
