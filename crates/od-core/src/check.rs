//! Instance-level satisfaction checking for order dependencies.
//!
//! Theorem 15 of the paper shows that an OD `X ↦ Y` can be falsified by a table
//! in exactly two ways:
//!
//! * a **split** (Definition 13): two tuples equal on `X` but not on `Y` — this is
//!   a violation of the functional dependency `set(X) → set(Y)`;
//! * a **swap** (Definition 14): two tuples `s`, `t` with `s ≺_X t` but `t ≺_Y s` —
//!   a violation of order compatibility `X ~ Y`.
//!
//! [`check_od`] returns the first such violation found (or `Ok(())`), using an
//! `O(n log n)` sort-based algorithm; [`check_od_naive`] is the quadratic literal
//! transcription of Definition 4 used to cross-validate the fast path in tests.

use crate::dep::{FunctionalDependency, OrderCompatibility, OrderDependency, OrderEquivalence};
use crate::lex::{lex_cmp, lex_le};
use crate::list::AttrList;
use crate::relation::Relation;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// A witness that a relation instance falsifies a dependency.
///
/// Indices refer to tuple positions in the checked [`Relation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Tuples `s` and `t` agree on the left-hand side but differ on the
    /// right-hand side (falsifies the FD part `X ↦ XY`).
    Split {
        /// Index of the first tuple.
        s: usize,
        /// Index of the second tuple.
        t: usize,
    },
    /// Tuple `s` strictly precedes `t` on the left-hand side, but `t` strictly
    /// precedes `s` on the right-hand side (falsifies order compatibility).
    Swap {
        /// Index of the tuple that comes first under `ORDER BY X`.
        s: usize,
        /// Index of the tuple that comes first under `ORDER BY Y`.
        t: usize,
    },
}

impl Violation {
    /// The pair of tuple indices involved.
    pub fn pair(&self) -> (usize, usize) {
        match *self {
            Violation::Split { s, t } | Violation::Swap { s, t } => (s, t),
        }
    }

    /// True if the violation is a split.
    pub fn is_split(&self) -> bool {
        matches!(self, Violation::Split { .. })
    }

    /// True if the violation is a swap.
    pub fn is_swap(&self) -> bool {
        matches!(self, Violation::Swap { .. })
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Split { s, t } => write!(f, "split between tuples {s} and {t}"),
            Violation::Swap { s, t } => write!(f, "swap between tuples {s} and {t}"),
        }
    }
}

/// Check `X ↦ Y` on a relation instance; `Err` carries the first violation found.
///
/// Runs in `O(n log n · (|X| + |Y|))`: sort tuple indices by `X`, then verify that
/// `Y` is constant within every `X`-tie group (otherwise a split) and
/// non-decreasing across consecutive groups (otherwise a swap).
pub fn check_od(rel: &Relation, od: &OrderDependency) -> Result<(), Violation> {
    let n = rel.len();
    if n < 2 {
        return Ok(());
    }
    let tuples = rel.tuples();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| lex_cmp(&tuples[a], &tuples[b], &od.lhs));

    let mut group_start = 0usize;
    let mut prev_group_rep: Option<usize> = None;
    for i in 1..=n {
        let group_ended = i == n
            || lex_cmp(&tuples[idx[i]], &tuples[idx[group_start]], &od.lhs) != Ordering::Equal;
        if !group_ended {
            // Same X-group: Y must agree with the group's first member.
            if lex_cmp(&tuples[idx[i]], &tuples[idx[group_start]], &od.rhs) != Ordering::Equal {
                return Err(Violation::Split {
                    s: idx[group_start],
                    t: idx[i],
                });
            }
            continue;
        }
        // Group [group_start, i) closed; compare its representative with the previous group's.
        if let Some(prev) = prev_group_rep {
            if lex_cmp(&tuples[prev], &tuples[idx[group_start]], &od.rhs) == Ordering::Greater {
                return Err(Violation::Swap {
                    s: prev,
                    t: idx[group_start],
                });
            }
        }
        prev_group_rep = Some(idx[group_start]);
        group_start = i;
    }
    Ok(())
}

/// True if the relation satisfies `X ↦ Y`.
pub fn od_holds(rel: &Relation, od: &OrderDependency) -> bool {
    check_od(rel, od).is_ok()
}

/// Quadratic literal transcription of Definition 4, used for cross-validation.
pub fn check_od_naive(rel: &Relation, od: &OrderDependency) -> Result<(), Violation> {
    let tuples = rel.tuples();
    for i in 0..tuples.len() {
        for j in 0..tuples.len() {
            if i == j {
                continue;
            }
            let (s, t) = (&tuples[i], &tuples[j]);
            if lex_le(s, t, &od.lhs) && !lex_le(s, t, &od.rhs) {
                // Classify the violation per Theorem 15.
                return if lex_cmp(s, t, &od.lhs) == Ordering::Equal {
                    Err(Violation::Split { s: i, t: j })
                } else {
                    Err(Violation::Swap { s: i, t: j })
                };
            }
        }
    }
    Ok(())
}

/// Check an order equivalence `X ↔ Y` (both directions).
pub fn check_equivalence(rel: &Relation, eq: &OrderEquivalence) -> Result<(), Violation> {
    for od in eq.as_ods() {
        check_od(rel, &od)?;
    }
    Ok(())
}

/// True if the relation satisfies `X ↔ Y`.
pub fn equivalence_holds(rel: &Relation, eq: &OrderEquivalence) -> bool {
    check_equivalence(rel, eq).is_ok()
}

/// Check order compatibility `X ~ Y`, i.e. `XY ↔ YX` (Definition 5).
pub fn check_compatibility(rel: &Relation, compat: &OrderCompatibility) -> Result<(), Violation> {
    check_equivalence(rel, &compat.as_equivalence())
}

/// True if the relation satisfies `X ~ Y`.
pub fn compatibility_holds(rel: &Relation, compat: &OrderCompatibility) -> bool {
    check_compatibility(rel, compat).is_ok()
}

/// Check a functional dependency `X → Y` on the instance by hashing on the
/// left-hand side. `Err` carries a split witness.
pub fn check_fd(rel: &Relation, fd: &FunctionalDependency) -> Result<(), Violation> {
    let lhs: AttrList = fd.lhs.iter().copied().collect();
    let rhs: AttrList = fd.rhs.iter().copied().collect();
    let mut seen: HashMap<Vec<Value>, usize> = HashMap::new();
    for i in 0..rel.len() {
        let key = rel.project_tuple(i, &lhs);
        match seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let j = *e.get();
                if rel.project_tuple(i, &rhs) != rel.project_tuple(j, &rhs) {
                    return Err(Violation::Split { s: j, t: i });
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
            }
        }
    }
    Ok(())
}

/// True if the relation satisfies `X → Y`.
pub fn fd_holds(rel: &Relation, fd: &FunctionalDependency) -> bool {
    check_fd(rel, fd).is_ok()
}

/// Collect every violating pair (up to `limit`) for diagnostics and discovery.
pub fn collect_violations(rel: &Relation, od: &OrderDependency, limit: usize) -> Vec<Violation> {
    let tuples = rel.tuples();
    let mut out = Vec::new();
    'outer: for i in 0..tuples.len() {
        for j in 0..tuples.len() {
            if i == j {
                continue;
            }
            let (s, t) = (&tuples[i], &tuples[j]);
            if lex_le(s, t, &od.lhs) && !lex_le(s, t, &od.rhs) {
                let v = if lex_cmp(s, t, &od.lhs) == Ordering::Equal {
                    Violation::Split { s: i, t: j }
                } else {
                    Violation::Swap { s: i, t: j }
                };
                out.push(v);
                if out.len() >= limit {
                    break 'outer;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Schema;
    use crate::fixtures;

    fn rel_from(rows: &[&[i64]]) -> (Relation, Vec<crate::AttrId>) {
        let mut schema = Schema::new("t");
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        let ids: Vec<crate::AttrId> = (0..arity)
            .map(|i| schema.add_attr(format!("c{i}")))
            .collect();
        let rel = Relation::from_rows(
            schema,
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap();
        (rel, ids)
    }

    #[test]
    fn empty_and_singleton_relations_satisfy_everything() {
        let (rel, ids) = rel_from(&[&[1, 2]]);
        let od = OrderDependency::new(vec![ids[0]], vec![ids[1]]);
        assert!(od_holds(&rel, &od));
        let (empty, _) = rel_from(&[]);
        let od0 = OrderDependency::new(AttrList::empty(), AttrList::empty());
        assert!(od_holds(&empty, &od0));
    }

    #[test]
    fn detects_swap() {
        // income orders bracket, but the third row breaks it.
        let (rel, ids) = rel_from(&[&[10, 1], &[20, 2], &[30, 1]]);
        let od = OrderDependency::new(vec![ids[0]], vec![ids[1]]);
        let v = check_od(&rel, &od).unwrap_err();
        assert!(v.is_swap());
        // Cross-check against the naive checker (witness pair may differ, kind must not).
        assert!(check_od_naive(&rel, &od).unwrap_err().is_swap());
    }

    #[test]
    fn detects_split() {
        let (rel, ids) = rel_from(&[&[10, 1], &[10, 2]]);
        let od = OrderDependency::new(vec![ids[0]], vec![ids[1]]);
        let v = check_od(&rel, &od).unwrap_err();
        assert!(v.is_split());
        assert_eq!(v.pair(), (0, 1));
        assert!(check_od_naive(&rel, &od).unwrap_err().is_split());
    }

    #[test]
    fn split_free_swap_free_od_holds() {
        let (rel, ids) = rel_from(&[&[1, 10], &[2, 10], &[3, 20], &[4, 30]]);
        let od = OrderDependency::new(vec![ids[0]], vec![ids[1]]);
        assert!(od_holds(&rel, &od));
        // The converse direction has splits (10 maps to incomes 1 and 2).
        let back = od.reversed();
        assert!(check_od(&rel, &back).unwrap_err().is_split());
    }

    #[test]
    fn figure_1_example_2_and_3() {
        let rel = fixtures::figure_1_relation();
        let s = rel.schema().clone();
        let a = |n: &str| s.attr_by_name(n).unwrap();
        // Example 2: [A,B,C] ↦ [F,E,D] holds, [A,B,C] ↦ [F,D,E] is falsified.
        let good = OrderDependency::new(vec![a("A"), a("B"), a("C")], vec![a("F"), a("E"), a("D")]);
        assert!(od_holds(&rel, &good));
        let bad = OrderDependency::new(vec![a("A"), a("B"), a("C")], vec![a("F"), a("D"), a("E")]);
        let v = check_od(&rel, &bad).unwrap_err();
        assert!(v.is_swap());
        // Example 3: [A,B] ~ [F,C] holds, [A,C] ~ [F,D] is falsified.
        let c1 = OrderCompatibility::new(vec![a("A"), a("B")], vec![a("F"), a("C")]);
        assert!(compatibility_holds(&rel, &c1));
        let c2 = OrderCompatibility::new(vec![a("A"), a("C")], vec![a("F"), a("D")]);
        assert!(!compatibility_holds(&rel, &c2));
    }

    #[test]
    fn fd_check_agrees_with_od_split_detection() {
        let (rel, ids) = rel_from(&[&[1, 5, 7], &[1, 5, 8], &[2, 6, 9]]);
        let fd = FunctionalDependency::new([ids[0]], [ids[2]]);
        assert!(check_fd(&rel, &fd).unwrap_err().is_split());
        let fd_ok = FunctionalDependency::new([ids[0]], [ids[1]]);
        assert!(fd_holds(&rel, &fd_ok));
        // Lemma 1: the OD version must also be falsified.
        let od = OrderDependency::new(vec![ids[0]], vec![ids[0], ids[2]]);
        assert!(!od_holds(&rel, &od));
    }

    #[test]
    fn trivial_ods_always_hold() {
        let (rel, ids) = rel_from(&[&[3, 1], &[1, 4], &[2, 2]]);
        // XY ↦ X (Reflexivity shape).
        let od = OrderDependency::new(vec![ids[0], ids[1]], vec![ids[0]]);
        assert!(od_holds(&rel, &od));
        // X ↦ [].
        let od2 = OrderDependency::new(vec![ids[1]], AttrList::empty());
        assert!(od_holds(&rel, &od2));
        // [] ↦ X does NOT hold unless X is constant.
        let od3 = OrderDependency::new(AttrList::empty(), vec![ids[0]]);
        assert!(!od_holds(&rel, &od3));
    }

    #[test]
    fn empty_lhs_requires_constant_rhs() {
        let (rel, ids) = rel_from(&[&[7, 1], &[7, 2]]);
        let od = OrderDependency::new(AttrList::empty(), vec![ids[0]]);
        assert!(od_holds(&rel, &od));
        let od2 = OrderDependency::new(AttrList::empty(), vec![ids[1]]);
        assert!(!od_holds(&rel, &od2));
    }

    #[test]
    fn collect_violations_respects_limit() {
        let (rel, ids) = rel_from(&[&[1, 3], &[2, 2], &[3, 1]]);
        let od = OrderDependency::new(vec![ids[0]], vec![ids[1]]);
        let all = collect_violations(&rel, &od, 100);
        assert!(all.len() >= 3);
        let limited = collect_violations(&rel, &od, 2);
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn violation_display() {
        assert_eq!(
            Violation::Split { s: 1, t: 2 }.to_string(),
            "split between tuples 1 and 2"
        );
        assert_eq!(
            Violation::Swap { s: 0, t: 3 }.to_string(),
            "swap between tuples 0 and 3"
        );
    }
}
