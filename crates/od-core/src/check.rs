//! Instance-level satisfaction checking for order dependencies.
//!
//! Theorem 15 of the paper shows that an OD `X ↦ Y` can be falsified by a table
//! in exactly two ways:
//!
//! * a **split** (Definition 13): two tuples equal on `X` but not on `Y` — this is
//!   a violation of the functional dependency `set(X) → set(Y)`;
//! * a **swap** (Definition 14): two tuples `s`, `t` with `s ≺_X t` but `t ≺_Y s` —
//!   a violation of order compatibility `X ~ Y`.
//!
//! [`check_od`] returns the first such violation found (or `Ok(())`), using an
//! `O(n log n)` sort-based algorithm; [`check_od_naive`] is the quadratic literal
//! transcription of Definition 4 used to cross-validate the fast path in tests.
//!
//! Checking is no longer only boolean: [`od_evidence`] measures *how far* an
//! OD is from holding — exact split/swap pair counts and the minimal number of
//! tuples to remove so the OD holds (the TANE-style `g3` numerator), plus a
//! bounded witness sample ([`collect_violations`]).  It is the sort-based
//! oracle that the partition-backed `Verdict`s of `od-setbased` (and the
//! delta-maintained ledgers of its `stream` module) are differentially tested
//! against.

use crate::dep::{FunctionalDependency, OrderCompatibility, OrderDependency, OrderEquivalence};
use crate::lex::{lex_cmp, lex_le};
use crate::list::AttrList;
use crate::relation::Relation;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// A witness that a relation instance falsifies a dependency.
///
/// Indices refer to tuple positions in the checked [`Relation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Tuples `s` and `t` agree on the left-hand side but differ on the
    /// right-hand side (falsifies the FD part `X ↦ XY`).
    Split {
        /// Index of the first tuple.
        s: usize,
        /// Index of the second tuple.
        t: usize,
    },
    /// Tuple `s` strictly precedes `t` on the left-hand side, but `t` strictly
    /// precedes `s` on the right-hand side (falsifies order compatibility).
    Swap {
        /// Index of the tuple that comes first under `ORDER BY X`.
        s: usize,
        /// Index of the tuple that comes first under `ORDER BY Y`.
        t: usize,
    },
}

impl Violation {
    /// The pair of tuple indices involved.
    pub fn pair(&self) -> (usize, usize) {
        match *self {
            Violation::Split { s, t } | Violation::Swap { s, t } => (s, t),
        }
    }

    /// True if the violation is a split.
    pub fn is_split(&self) -> bool {
        matches!(self, Violation::Split { .. })
    }

    /// True if the violation is a swap.
    pub fn is_swap(&self) -> bool {
        matches!(self, Violation::Swap { .. })
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Split { s, t } => write!(f, "split between tuples {s} and {t}"),
            Violation::Swap { s, t } => write!(f, "swap between tuples {s} and {t}"),
        }
    }
}

/// Check `X ↦ Y` on a relation instance; `Err` carries the first violation found.
///
/// Runs in `O(n log n · (|X| + |Y|))`: sort tuple indices by `X`, then verify that
/// `Y` is constant within every `X`-tie group (otherwise a split) and
/// non-decreasing across consecutive groups (otherwise a swap).
pub fn check_od(rel: &Relation, od: &OrderDependency) -> Result<(), Violation> {
    let n = rel.len();
    if n < 2 {
        return Ok(());
    }
    let tuples = rel.tuples();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_unstable_by(|&a, &b| lex_cmp(&tuples[a], &tuples[b], &od.lhs));

    let mut group_start = 0usize;
    let mut prev_group_rep: Option<usize> = None;
    for i in 1..=n {
        let group_ended = i == n
            || lex_cmp(&tuples[idx[i]], &tuples[idx[group_start]], &od.lhs) != Ordering::Equal;
        if !group_ended {
            // Same X-group: Y must agree with the group's first member.
            if lex_cmp(&tuples[idx[i]], &tuples[idx[group_start]], &od.rhs) != Ordering::Equal {
                return Err(Violation::Split {
                    s: idx[group_start],
                    t: idx[i],
                });
            }
            continue;
        }
        // Group [group_start, i) closed; compare its representative with the previous group's.
        if let Some(prev) = prev_group_rep {
            if lex_cmp(&tuples[prev], &tuples[idx[group_start]], &od.rhs) == Ordering::Greater {
                return Err(Violation::Swap {
                    s: prev,
                    t: idx[group_start],
                });
            }
        }
        prev_group_rep = Some(idx[group_start]);
        group_start = i;
    }
    Ok(())
}

/// True if the relation satisfies `X ↦ Y`.
pub fn od_holds(rel: &Relation, od: &OrderDependency) -> bool {
    check_od(rel, od).is_ok()
}

/// Quadratic literal transcription of Definition 4, used for cross-validation.
pub fn check_od_naive(rel: &Relation, od: &OrderDependency) -> Result<(), Violation> {
    let tuples = rel.tuples();
    for i in 0..tuples.len() {
        for j in 0..tuples.len() {
            if i == j {
                continue;
            }
            let (s, t) = (&tuples[i], &tuples[j]);
            if lex_le(s, t, &od.lhs) && !lex_le(s, t, &od.rhs) {
                // Classify the violation per Theorem 15.
                return if lex_cmp(s, t, &od.lhs) == Ordering::Equal {
                    Err(Violation::Split { s: i, t: j })
                } else {
                    Err(Violation::Swap { s: i, t: j })
                };
            }
        }
    }
    Ok(())
}

/// Check an order equivalence `X ↔ Y` (both directions).
pub fn check_equivalence(rel: &Relation, eq: &OrderEquivalence) -> Result<(), Violation> {
    for od in eq.as_ods() {
        check_od(rel, &od)?;
    }
    Ok(())
}

/// True if the relation satisfies `X ↔ Y`.
pub fn equivalence_holds(rel: &Relation, eq: &OrderEquivalence) -> bool {
    check_equivalence(rel, eq).is_ok()
}

/// Check order compatibility `X ~ Y`, i.e. `XY ↔ YX` (Definition 5).
pub fn check_compatibility(rel: &Relation, compat: &OrderCompatibility) -> Result<(), Violation> {
    check_equivalence(rel, &compat.as_equivalence())
}

/// True if the relation satisfies `X ~ Y`.
pub fn compatibility_holds(rel: &Relation, compat: &OrderCompatibility) -> bool {
    check_compatibility(rel, compat).is_ok()
}

/// Check a functional dependency `X → Y` on the instance by hashing on the
/// left-hand side. `Err` carries a split witness.
pub fn check_fd(rel: &Relation, fd: &FunctionalDependency) -> Result<(), Violation> {
    let lhs: AttrList = fd.lhs.iter().collect();
    let rhs: AttrList = fd.rhs.iter().collect();
    let mut seen: HashMap<Vec<Value>, usize> = HashMap::new();
    for i in 0..rel.len() {
        let key = rel.project_tuple(i, &lhs);
        match seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let j = *e.get();
                if rel.project_tuple(i, &rhs) != rel.project_tuple(j, &rhs) {
                    return Err(Violation::Split { s: j, t: i });
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
            }
        }
    }
    Ok(())
}

/// True if the relation satisfies `X → Y`.
pub fn fd_holds(rel: &Relation, fd: &FunctionalDependency) -> bool {
    check_fd(rel, fd).is_ok()
}

/// Aggregate violation evidence for one OD check: how many tuple pairs
/// violate it (by kind), the minimal number of tuples to remove so it holds
/// (the TANE-style `g3` numerator), and a bounded witness sample.
///
/// This is the sort-based oracle counterpart of `od-setbased`'s per-statement
/// `Verdict`: it measures the violation of a **whole** list OD `X ↦ Y`, which
/// the partition engine approximates per canonical statement.  Differential
/// tests pin the two against each other (a single canonical statement's
/// removal count equals the removal count of its defining list OD).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OdEvidence {
    /// Tuple pairs equal on `X` but not on `Y` (Definition 13 violations).
    pub split_pairs: usize,
    /// Tuple pairs ordered by `X` but inverted by `Y` (Definition 14 violations).
    pub swap_pairs: usize,
    /// Minimal number of tuples to remove so `X ↦ Y` holds on the remainder.
    pub removal_count: usize,
    /// Sampled violations (at most the requested cap).
    pub witnesses: Vec<Violation>,
}

impl OdEvidence {
    /// True when the OD holds exactly.
    pub fn holds(&self) -> bool {
        self.removal_count == 0
    }

    /// The `g3` error: fraction of tuples to remove (0 on empty relations).
    pub fn g3(&self, n_rows: usize) -> f64 {
        if n_rows == 0 {
            0.0
        } else {
            self.removal_count as f64 / n_rows as f64
        }
    }
}

/// A Fenwick tree over dense ranks supporting prefix **sums** (pair counting)
/// and prefix **maxima** (the weighted-chain DP); both uses are monotone
/// point updates.
struct Fenwick {
    sums: Vec<usize>,
    maxes: Vec<usize>,
}

impl Fenwick {
    fn new(size: usize) -> Self {
        Fenwick {
            sums: vec![0; size + 1],
            maxes: vec![0; size + 1],
        }
    }

    /// Record `count` tuples at `rank` (0-based) and raise the rank's best
    /// chain weight to `val`.
    fn add(&mut self, rank: usize, count: usize, val: usize) {
        let mut i = rank + 1;
        while i < self.sums.len() {
            self.sums[i] += count;
            self.maxes[i] = self.maxes[i].max(val);
            i += i & i.wrapping_neg();
        }
    }

    /// `(count, max)` over ranks `0..=rank`.
    fn prefix(&self, rank: usize) -> (usize, usize) {
        let (mut count, mut max) = (0, 0);
        let mut i = rank + 1;
        while i > 0 {
            count += self.sums[i];
            max = max.max(self.maxes[i]);
            i -= i & i.wrapping_neg();
        }
        (count, max)
    }
}

/// Full violation evidence for `X ↦ Y` in `O(n log n · (|X| + |Y|))`:
///
/// * tuples are sorted by `X` and grouped into `X`-tie groups, and every tuple
///   gets a dense rank of its `Y`-projection;
/// * **split pairs** are counted per group as `C(g, 2) − Σ C(y, 2)` over the
///   group's `Y`-rank multiplicities;
/// * **swap pairs** are inversions of `Y`-rank across distinct `X`-groups,
///   counted with a Fenwick pass in `X` order;
/// * **removal count** is `n −` the maximum-weight valid chain: a kept set
///   must take at most one `Y`-value per `X`-group (split freedom) with
///   `Y`-ranks non-decreasing across groups (swap freedom), so the optimum is
///   a weighted longest-non-decreasing-subsequence over `(group, Y-rank)`
///   candidates, solved by a prefix-max DP on the same Fenwick tree.
pub fn od_evidence(rel: &Relation, od: &OrderDependency, witness_cap: usize) -> OdEvidence {
    let n = rel.len();
    if n < 2 {
        return OdEvidence::default();
    }
    let tuples = rel.tuples();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_unstable_by(|&a, &b| lex_cmp(&tuples[a], &tuples[b], &od.lhs));

    // Dense Y-ranks (equal rank ⟺ equal Y-projection).
    let mut by_y: Vec<usize> = (0..n).collect();
    by_y.sort_unstable_by(|&a, &b| lex_cmp(&tuples[a], &tuples[b], &od.rhs));
    let mut y_rank = vec![0usize; n];
    let mut rank = 0usize;
    for w in 0..n {
        if w > 0 && lex_cmp(&tuples[by_y[w]], &tuples[by_y[w - 1]], &od.rhs) != Ordering::Equal {
            rank += 1;
        }
        y_rank[by_y[w]] = rank;
    }
    let n_ranks = rank + 1;

    let mut evidence = OdEvidence::default();
    let mut fenwick = Fenwick::new(n_ranks);
    // Running max Y-rank over *previous* groups, for swap witnesses.
    let mut prev_max: Option<(usize, usize)> = None; // (rank, row)
    let mut members: Vec<(usize, usize)> = Vec::new(); // (y_rank, row) of one group
    let mut processed = 0usize; // tuples inserted into the Fenwick so far
    let mut best_chain = 0usize;

    let mut group_start = 0usize;
    for i in 1..=n {
        let group_ended = i == n
            || lex_cmp(&tuples[idx[i]], &tuples[idx[group_start]], &od.lhs) != Ordering::Equal;
        if !group_ended {
            continue;
        }
        members.clear();
        members.extend(idx[group_start..i].iter().map(|&row| (y_rank[row], row)));
        members.sort_unstable();
        let g = members.len();

        // Split pairs: all pairs minus the Y-agreeing ones; witness from two
        // adjacent members with different ranks.
        let mut same_rank_pairs = 0usize;
        let mut run = 0usize;
        for w in 0..g {
            run += 1;
            if w + 1 == g || members[w + 1].0 != members[w].0 {
                same_rank_pairs += run * (run - 1) / 2;
                run = 0;
            }
        }
        evidence.split_pairs += g * (g - 1) / 2 - same_rank_pairs;
        if evidence.witnesses.len() < witness_cap {
            if let Some(w) = (1..g).find(|&w| members[w].0 != members[w - 1].0) {
                evidence.witnesses.push(Violation::Split {
                    s: members[w - 1].1,
                    t: members[w].1,
                });
            }
        }

        // Swap pairs against earlier groups (strictly greater rank before a
        // smaller one), plus the chain-DP candidates of this group.
        let mut group_updates: Vec<(usize, usize, usize)> = Vec::new(); // (rank, run len, chain weight)
        let mut run_start = 0usize;
        for w in 0..g {
            let (r, row) = members[w];
            let (le_count, le_max) = fenwick.prefix(r);
            evidence.swap_pairs += processed - le_count;
            if evidence.witnesses.len() < witness_cap {
                if let Some((mr, mrow)) = prev_max {
                    if r < mr {
                        evidence.witnesses.push(Violation::Swap { s: mrow, t: row });
                    }
                }
            }
            if w + 1 == g || members[w + 1].0 != r {
                // Close the rank run: keeping this whole Y-subgroup after the
                // best chain ending at rank ≤ r.
                let run_len = w - run_start + 1;
                group_updates.push((r, run_len, run_len + le_max));
                run_start = w + 1;
            }
        }
        // Apply the DP updates only after the whole group is scanned, so a
        // chain never takes two different Y-values from one X-group.
        for &(r, run_len, weight) in &group_updates {
            best_chain = best_chain.max(weight);
            fenwick.add(r, run_len, weight);
        }
        processed += g;
        let top = members[g - 1];
        prev_max = Some(match prev_max {
            Some(m) if m.0 >= top.0 => m,
            _ => top,
        });
        group_start = i;
    }
    evidence.removal_count = n - best_chain;
    evidence
}

/// Minimal number of tuples to remove so `X ↦ Y` holds (the `g3` numerator) —
/// see [`od_evidence`].
pub fn od_removal_count(rel: &Relation, od: &OrderDependency) -> usize {
    od_evidence(rel, od, 0).removal_count
}

/// Collect every violating pair (up to `limit`) for diagnostics and discovery.
pub fn collect_violations(rel: &Relation, od: &OrderDependency, limit: usize) -> Vec<Violation> {
    let tuples = rel.tuples();
    let mut out = Vec::new();
    'outer: for i in 0..tuples.len() {
        for j in 0..tuples.len() {
            if i == j {
                continue;
            }
            let (s, t) = (&tuples[i], &tuples[j]);
            if lex_le(s, t, &od.lhs) && !lex_le(s, t, &od.rhs) {
                let v = if lex_cmp(s, t, &od.lhs) == Ordering::Equal {
                    Violation::Split { s: i, t: j }
                } else {
                    Violation::Swap { s: i, t: j }
                };
                out.push(v);
                if out.len() >= limit {
                    break 'outer;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Schema;
    use crate::fixtures;

    fn rel_from(rows: &[&[i64]]) -> (Relation, Vec<crate::AttrId>) {
        let mut schema = Schema::new("t");
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        let ids: Vec<crate::AttrId> = (0..arity)
            .map(|i| schema.add_attr(format!("c{i}")))
            .collect();
        let rel = Relation::from_rows(
            schema,
            rows.iter()
                .map(|r| r.iter().map(|&v| Value::Int(v)).collect()),
        )
        .unwrap();
        (rel, ids)
    }

    #[test]
    fn empty_and_singleton_relations_satisfy_everything() {
        let (rel, ids) = rel_from(&[&[1, 2]]);
        let od = OrderDependency::new(vec![ids[0]], vec![ids[1]]);
        assert!(od_holds(&rel, &od));
        let (empty, _) = rel_from(&[]);
        let od0 = OrderDependency::new(AttrList::empty(), AttrList::empty());
        assert!(od_holds(&empty, &od0));
    }

    #[test]
    fn detects_swap() {
        // income orders bracket, but the third row breaks it.
        let (rel, ids) = rel_from(&[&[10, 1], &[20, 2], &[30, 1]]);
        let od = OrderDependency::new(vec![ids[0]], vec![ids[1]]);
        let v = check_od(&rel, &od).unwrap_err();
        assert!(v.is_swap());
        // Cross-check against the naive checker (witness pair may differ, kind must not).
        assert!(check_od_naive(&rel, &od).unwrap_err().is_swap());
    }

    #[test]
    fn detects_split() {
        let (rel, ids) = rel_from(&[&[10, 1], &[10, 2]]);
        let od = OrderDependency::new(vec![ids[0]], vec![ids[1]]);
        let v = check_od(&rel, &od).unwrap_err();
        assert!(v.is_split());
        assert_eq!(v.pair(), (0, 1));
        assert!(check_od_naive(&rel, &od).unwrap_err().is_split());
    }

    #[test]
    fn split_free_swap_free_od_holds() {
        let (rel, ids) = rel_from(&[&[1, 10], &[2, 10], &[3, 20], &[4, 30]]);
        let od = OrderDependency::new(vec![ids[0]], vec![ids[1]]);
        assert!(od_holds(&rel, &od));
        // The converse direction has splits (10 maps to incomes 1 and 2).
        let back = od.reversed();
        assert!(check_od(&rel, &back).unwrap_err().is_split());
    }

    #[test]
    fn figure_1_example_2_and_3() {
        let rel = fixtures::figure_1_relation();
        let s = rel.schema().clone();
        let a = |n: &str| s.attr_by_name(n).unwrap();
        // Example 2: [A,B,C] ↦ [F,E,D] holds, [A,B,C] ↦ [F,D,E] is falsified.
        let good = OrderDependency::new(vec![a("A"), a("B"), a("C")], vec![a("F"), a("E"), a("D")]);
        assert!(od_holds(&rel, &good));
        let bad = OrderDependency::new(vec![a("A"), a("B"), a("C")], vec![a("F"), a("D"), a("E")]);
        let v = check_od(&rel, &bad).unwrap_err();
        assert!(v.is_swap());
        // Example 3: [A,B] ~ [F,C] holds, [A,C] ~ [F,D] is falsified.
        let c1 = OrderCompatibility::new(vec![a("A"), a("B")], vec![a("F"), a("C")]);
        assert!(compatibility_holds(&rel, &c1));
        let c2 = OrderCompatibility::new(vec![a("A"), a("C")], vec![a("F"), a("D")]);
        assert!(!compatibility_holds(&rel, &c2));
    }

    #[test]
    fn fd_check_agrees_with_od_split_detection() {
        let (rel, ids) = rel_from(&[&[1, 5, 7], &[1, 5, 8], &[2, 6, 9]]);
        let fd = FunctionalDependency::new([ids[0]], [ids[2]]);
        assert!(check_fd(&rel, &fd).unwrap_err().is_split());
        let fd_ok = FunctionalDependency::new([ids[0]], [ids[1]]);
        assert!(fd_holds(&rel, &fd_ok));
        // Lemma 1: the OD version must also be falsified.
        let od = OrderDependency::new(vec![ids[0]], vec![ids[0], ids[2]]);
        assert!(!od_holds(&rel, &od));
    }

    #[test]
    fn trivial_ods_always_hold() {
        let (rel, ids) = rel_from(&[&[3, 1], &[1, 4], &[2, 2]]);
        // XY ↦ X (Reflexivity shape).
        let od = OrderDependency::new(vec![ids[0], ids[1]], vec![ids[0]]);
        assert!(od_holds(&rel, &od));
        // X ↦ [].
        let od2 = OrderDependency::new(vec![ids[1]], AttrList::empty());
        assert!(od_holds(&rel, &od2));
        // [] ↦ X does NOT hold unless X is constant.
        let od3 = OrderDependency::new(AttrList::empty(), vec![ids[0]]);
        assert!(!od_holds(&rel, &od3));
    }

    #[test]
    fn empty_lhs_requires_constant_rhs() {
        let (rel, ids) = rel_from(&[&[7, 1], &[7, 2]]);
        let od = OrderDependency::new(AttrList::empty(), vec![ids[0]]);
        assert!(od_holds(&rel, &od));
        let od2 = OrderDependency::new(AttrList::empty(), vec![ids[1]]);
        assert!(!od_holds(&rel, &od2));
    }

    /// Brute-force `g3` numerator: the smallest number of rows whose removal
    /// makes the OD hold, by trying every keep-subset.
    fn brute_force_removal(rel: &Relation, od: &OrderDependency) -> usize {
        let n = rel.len();
        assert!(n <= 12, "oracle is exponential");
        let mut best = 0usize;
        for mask in 0..(1u32 << n) {
            let keep: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            if keep.len() <= best {
                continue;
            }
            let sub = Relation::from_rows(
                rel.schema().clone(),
                keep.iter().map(|&i| rel.tuple(i).clone()),
            )
            .unwrap();
            if od_holds(&sub, od) {
                best = keep.len();
            }
        }
        n - best
    }

    #[test]
    fn evidence_counts_match_the_pair_scan_and_the_brute_force_oracle() {
        let cases: Vec<Vec<Vec<i64>>> = vec![
            vec![
                vec![1, 10],
                vec![2, 20],
                vec![3, 15],
                vec![3, 15],
                vec![4, 40],
            ],
            vec![vec![1, 3], vec![2, 2], vec![3, 1]],
            vec![vec![10, 1], vec![10, 2], vec![20, 1], vec![20, 1]],
            vec![vec![0, 0], vec![0, 0], vec![0, 0]],
            vec![vec![5, 1], vec![4, 2], vec![3, 3], vec![2, 4], vec![1, 5]],
        ];
        for rows in cases {
            let rows_refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            let (rel, ids) = rel_from(&rows_refs);
            for od in [
                OrderDependency::new(vec![ids[0]], vec![ids[1]]),
                OrderDependency::new(vec![ids[1]], vec![ids[0]]),
                OrderDependency::new(vec![ids[0], ids[1]], vec![ids[1], ids[0]]),
                OrderDependency::new(AttrList::empty(), vec![ids[1]]),
            ] {
                let ev = od_evidence(&rel, &od, 16);
                let pairs = collect_violations(&rel, &od, usize::MAX);
                let splits = pairs.iter().filter(|v| v.is_split()).count();
                let swaps = pairs.iter().filter(|v| v.is_swap()).count();
                assert_eq!(ev.split_pairs, splits, "splits of {od} on {rows_refs:?}");
                assert_eq!(ev.swap_pairs, swaps, "swaps of {od} on {rows_refs:?}");
                assert_eq!(ev.holds(), od_holds(&rel, &od), "holds of {od}");
                assert_eq!(
                    ev.removal_count,
                    brute_force_removal(&rel, &od),
                    "removal of {od} on {rows_refs:?}"
                );
                // Witnesses are genuine violations of the right kind.
                for w in &ev.witnesses {
                    let (s, t) = w.pair();
                    match w {
                        Violation::Split { .. } => {
                            assert_eq!(
                                lex_cmp(rel.tuple(s), rel.tuple(t), &od.lhs),
                                Ordering::Equal
                            );
                            assert_ne!(
                                lex_cmp(rel.tuple(s), rel.tuple(t), &od.rhs),
                                Ordering::Equal
                            );
                        }
                        Violation::Swap { .. } => {
                            assert_eq!(
                                lex_cmp(rel.tuple(s), rel.tuple(t), &od.lhs),
                                Ordering::Less
                            );
                            assert_eq!(
                                lex_cmp(rel.tuple(s), rel.tuple(t), &od.rhs),
                                Ordering::Greater
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn evidence_g3_and_degenerate_inputs() {
        let (rel, ids) = rel_from(&[&[1, 3], &[2, 2], &[3, 1], &[4, 0]]);
        let od = OrderDependency::new(vec![ids[0]], vec![ids[1]]);
        let ev = od_evidence(&rel, &od, 2);
        // Fully reversed column: keep one tuple.
        assert_eq!(ev.removal_count, 3);
        assert_eq!(ev.g3(rel.len()), 0.75);
        assert_eq!(ev.witnesses.len(), 2, "cap respected");
        assert_eq!(od_removal_count(&rel, &od), 3);
        // Tiny relations carry no evidence.
        let (single, sids) = rel_from(&[&[1, 2]]);
        let ev1 = od_evidence(
            &single,
            &OrderDependency::new(vec![sids[0]], vec![sids[1]]),
            4,
        );
        assert_eq!(ev1, OdEvidence::default());
        assert_eq!(OdEvidence::default().g3(0), 0.0);
    }

    #[test]
    fn collect_violations_respects_limit() {
        let (rel, ids) = rel_from(&[&[1, 3], &[2, 2], &[3, 1]]);
        let od = OrderDependency::new(vec![ids[0]], vec![ids[1]]);
        let all = collect_violations(&rel, &od, 100);
        assert!(all.len() >= 3);
        let limited = collect_violations(&rel, &od, 2);
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn violation_display() {
        assert_eq!(
            Violation::Split { s: 1, t: 2 }.to_string(),
            "split between tuples 1 and 2"
        );
        assert_eq!(
            Violation::Swap { s: 0, t: 3 }.to_string(),
            "swap between tuples 0 and 3"
        );
    }
}
